
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/pipesim.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/lexer.cc" "src/CMakeFiles/pipesim.dir/assembler/lexer.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/assembler/lexer.cc.o.d"
  "/root/repo/src/assembler/program.cc" "src/CMakeFiles/pipesim.dir/assembler/program.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/assembler/program.cc.o.d"
  "/root/repo/src/cache/icache.cc" "src/CMakeFiles/pipesim.dir/cache/icache.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/cache/icache.cc.o.d"
  "/root/repo/src/cache/subblock_cache.cc" "src/CMakeFiles/pipesim.dir/cache/subblock_cache.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/cache/subblock_cache.cc.o.d"
  "/root/repo/src/codegen/codegen.cc" "src/CMakeFiles/pipesim.dir/codegen/codegen.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/codegen/codegen.cc.o.d"
  "/root/repo/src/codegen/ir.cc" "src/CMakeFiles/pipesim.dir/codegen/ir.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/codegen/ir.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/pipesim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/pipesim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/strutil.cc" "src/CMakeFiles/pipesim.dir/common/strutil.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/common/strutil.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/pipesim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/common/table.cc.o.d"
  "/root/repo/src/core/conventional_fetch.cc" "src/CMakeFiles/pipesim.dir/core/conventional_fetch.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/core/conventional_fetch.cc.o.d"
  "/root/repo/src/core/fetch_unit.cc" "src/CMakeFiles/pipesim.dir/core/fetch_unit.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/core/fetch_unit.cc.o.d"
  "/root/repo/src/core/pipe_fetch.cc" "src/CMakeFiles/pipesim.dir/core/pipe_fetch.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/core/pipe_fetch.cc.o.d"
  "/root/repo/src/core/stream_follower.cc" "src/CMakeFiles/pipesim.dir/core/stream_follower.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/core/stream_follower.cc.o.d"
  "/root/repo/src/core/tib_fetch.cc" "src/CMakeFiles/pipesim.dir/core/tib_fetch.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/core/tib_fetch.cc.o.d"
  "/root/repo/src/cpu/pipeline.cc" "src/CMakeFiles/pipesim.dir/cpu/pipeline.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/cpu/pipeline.cc.o.d"
  "/root/repo/src/cpu/regfile.cc" "src/CMakeFiles/pipesim.dir/cpu/regfile.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/cpu/regfile.cc.o.d"
  "/root/repo/src/isa/decode.cc" "src/CMakeFiles/pipesim.dir/isa/decode.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/isa/decode.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/pipesim.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encode.cc" "src/CMakeFiles/pipesim.dir/isa/encode.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/isa/encode.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/pipesim.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/CMakeFiles/pipesim.dir/isa/opcodes.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/isa/opcodes.cc.o.d"
  "/root/repo/src/mem/data_memory.cc" "src/CMakeFiles/pipesim.dir/mem/data_memory.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/mem/data_memory.cc.o.d"
  "/root/repo/src/mem/external_memory.cc" "src/CMakeFiles/pipesim.dir/mem/external_memory.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/mem/external_memory.cc.o.d"
  "/root/repo/src/mem/fpu.cc" "src/CMakeFiles/pipesim.dir/mem/fpu.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/mem/fpu.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/pipesim.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/queue/arch_queues.cc" "src/CMakeFiles/pipesim.dir/queue/arch_queues.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/queue/arch_queues.cc.o.d"
  "/root/repo/src/sim/cli.cc" "src/CMakeFiles/pipesim.dir/sim/cli.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/sim/cli.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/pipesim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/pipesim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/pipesim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/trace/pipeview.cc" "src/CMakeFiles/pipesim.dir/trace/pipeview.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/trace/pipeview.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/pipesim.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/trace/trace.cc.o.d"
  "/root/repo/src/workloads/benchmark_program.cc" "src/CMakeFiles/pipesim.dir/workloads/benchmark_program.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/workloads/benchmark_program.cc.o.d"
  "/root/repo/src/workloads/livermore.cc" "src/CMakeFiles/pipesim.dir/workloads/livermore.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/workloads/livermore.cc.o.d"
  "/root/repo/src/workloads/reference.cc" "src/CMakeFiles/pipesim.dir/workloads/reference.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/workloads/reference.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/pipesim.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/pipesim.dir/workloads/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
