file(REMOVE_RECURSE
  "libpipesim.a"
)
