file(REMOVE_RECURSE
  "CMakeFiles/test_pipeview.dir/test_pipeview.cc.o"
  "CMakeFiles/test_pipeview.dir/test_pipeview.cc.o.d"
  "test_pipeview"
  "test_pipeview.pdb"
  "test_pipeview[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
