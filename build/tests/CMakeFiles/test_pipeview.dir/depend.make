# Empty dependencies file for test_pipeview.
# This may be replaced when dependencies are built.
