file(REMOVE_RECURSE
  "CMakeFiles/test_external_memory.dir/test_external_memory.cc.o"
  "CMakeFiles/test_external_memory.dir/test_external_memory.cc.o.d"
  "test_external_memory"
  "test_external_memory.pdb"
  "test_external_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_external_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
