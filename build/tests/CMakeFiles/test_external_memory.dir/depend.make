# Empty dependencies file for test_external_memory.
# This may be replaced when dependencies are built.
