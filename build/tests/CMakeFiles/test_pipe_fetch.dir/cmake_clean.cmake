file(REMOVE_RECURSE
  "CMakeFiles/test_pipe_fetch.dir/test_pipe_fetch.cc.o"
  "CMakeFiles/test_pipe_fetch.dir/test_pipe_fetch.cc.o.d"
  "test_pipe_fetch"
  "test_pipe_fetch.pdb"
  "test_pipe_fetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipe_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
