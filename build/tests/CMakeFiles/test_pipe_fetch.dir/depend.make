# Empty dependencies file for test_pipe_fetch.
# This may be replaced when dependencies are built.
