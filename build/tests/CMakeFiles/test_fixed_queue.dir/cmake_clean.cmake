file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_queue.dir/test_fixed_queue.cc.o"
  "CMakeFiles/test_fixed_queue.dir/test_fixed_queue.cc.o.d"
  "test_fixed_queue"
  "test_fixed_queue.pdb"
  "test_fixed_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
