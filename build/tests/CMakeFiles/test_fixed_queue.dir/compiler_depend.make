# Empty compiler generated dependencies file for test_fixed_queue.
# This may be replaced when dependencies are built.
