file(REMOVE_RECURSE
  "CMakeFiles/test_arch_queues.dir/test_arch_queues.cc.o"
  "CMakeFiles/test_arch_queues.dir/test_arch_queues.cc.o.d"
  "test_arch_queues"
  "test_arch_queues.pdb"
  "test_arch_queues[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
