# Empty dependencies file for test_arch_queues.
# This may be replaced when dependencies are built.
