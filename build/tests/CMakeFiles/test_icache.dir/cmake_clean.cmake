file(REMOVE_RECURSE
  "CMakeFiles/test_icache.dir/test_icache.cc.o"
  "CMakeFiles/test_icache.dir/test_icache.cc.o.d"
  "test_icache"
  "test_icache.pdb"
  "test_icache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
