file(REMOVE_RECURSE
  "CMakeFiles/test_tib_fetch.dir/test_tib_fetch.cc.o"
  "CMakeFiles/test_tib_fetch.dir/test_tib_fetch.cc.o.d"
  "test_tib_fetch"
  "test_tib_fetch.pdb"
  "test_tib_fetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tib_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
