# Empty dependencies file for test_stream_follower.
# This may be replaced when dependencies are built.
