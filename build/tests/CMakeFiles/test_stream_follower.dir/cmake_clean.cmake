file(REMOVE_RECURSE
  "CMakeFiles/test_stream_follower.dir/test_stream_follower.cc.o"
  "CMakeFiles/test_stream_follower.dir/test_stream_follower.cc.o.d"
  "test_stream_follower"
  "test_stream_follower.pdb"
  "test_stream_follower[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_follower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
