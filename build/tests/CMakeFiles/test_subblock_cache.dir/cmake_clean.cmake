file(REMOVE_RECURSE
  "CMakeFiles/test_subblock_cache.dir/test_subblock_cache.cc.o"
  "CMakeFiles/test_subblock_cache.dir/test_subblock_cache.cc.o.d"
  "test_subblock_cache"
  "test_subblock_cache.pdb"
  "test_subblock_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subblock_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
