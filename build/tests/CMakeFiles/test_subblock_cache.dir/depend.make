# Empty dependencies file for test_subblock_cache.
# This may be replaced when dependencies are built.
