file(REMOVE_RECURSE
  "CMakeFiles/test_conventional_fetch.dir/test_conventional_fetch.cc.o"
  "CMakeFiles/test_conventional_fetch.dir/test_conventional_fetch.cc.o.d"
  "test_conventional_fetch"
  "test_conventional_fetch.pdb"
  "test_conventional_fetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conventional_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
