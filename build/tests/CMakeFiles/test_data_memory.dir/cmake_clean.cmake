file(REMOVE_RECURSE
  "CMakeFiles/test_data_memory.dir/test_data_memory.cc.o"
  "CMakeFiles/test_data_memory.dir/test_data_memory.cc.o.d"
  "test_data_memory"
  "test_data_memory.pdb"
  "test_data_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
