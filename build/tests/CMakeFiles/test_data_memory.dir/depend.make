# Empty dependencies file for test_data_memory.
# This may be replaced when dependencies are built.
