file(REMOVE_RECURSE
  "CMakeFiles/test_livermore.dir/test_livermore.cc.o"
  "CMakeFiles/test_livermore.dir/test_livermore.cc.o.d"
  "test_livermore"
  "test_livermore.pdb"
  "test_livermore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_livermore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
