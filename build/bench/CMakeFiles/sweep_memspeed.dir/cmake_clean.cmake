file(REMOVE_RECURSE
  "CMakeFiles/sweep_memspeed.dir/sweep_memspeed.cc.o"
  "CMakeFiles/sweep_memspeed.dir/sweep_memspeed.cc.o.d"
  "sweep_memspeed"
  "sweep_memspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_memspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
