# Empty compiler generated dependencies file for sweep_memspeed.
# This may be replaced when dependencies are built.
