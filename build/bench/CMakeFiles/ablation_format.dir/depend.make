# Empty dependencies file for ablation_format.
# This may be replaced when dependencies are built.
