# Empty dependencies file for fig4_memspeed1.
# This may be replaced when dependencies are built.
