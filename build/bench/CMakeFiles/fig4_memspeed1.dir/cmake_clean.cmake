file(REMOVE_RECURSE
  "CMakeFiles/fig4_memspeed1.dir/fig4_memspeed1.cc.o"
  "CMakeFiles/fig4_memspeed1.dir/fig4_memspeed1.cc.o.d"
  "fig4_memspeed1"
  "fig4_memspeed1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memspeed1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
