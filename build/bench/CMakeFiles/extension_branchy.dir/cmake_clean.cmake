file(REMOVE_RECURSE
  "CMakeFiles/extension_branchy.dir/extension_branchy.cc.o"
  "CMakeFiles/extension_branchy.dir/extension_branchy.cc.o.d"
  "extension_branchy"
  "extension_branchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_branchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
