# Empty compiler generated dependencies file for extension_branchy.
# This may be replaced when dependencies are built.
