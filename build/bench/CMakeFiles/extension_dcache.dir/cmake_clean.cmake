file(REMOVE_RECURSE
  "CMakeFiles/extension_dcache.dir/extension_dcache.cc.o"
  "CMakeFiles/extension_dcache.dir/extension_dcache.cc.o.d"
  "extension_dcache"
  "extension_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
