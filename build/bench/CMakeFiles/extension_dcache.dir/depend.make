# Empty dependencies file for extension_dcache.
# This may be replaced when dependencies are built.
