# Empty dependencies file for fig5_memspeed6.
# This may be replaced when dependencies are built.
