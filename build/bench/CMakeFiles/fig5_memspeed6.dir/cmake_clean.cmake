file(REMOVE_RECURSE
  "CMakeFiles/fig5_memspeed6.dir/fig5_memspeed6.cc.o"
  "CMakeFiles/fig5_memspeed6.dir/fig5_memspeed6.cc.o.d"
  "fig5_memspeed6"
  "fig5_memspeed6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memspeed6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
