file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_sizes.dir/ablation_queue_sizes.cc.o"
  "CMakeFiles/ablation_queue_sizes.dir/ablation_queue_sizes.cc.o.d"
  "ablation_queue_sizes"
  "ablation_queue_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
