# Empty compiler generated dependencies file for ablation_queue_sizes.
# This may be replaced when dependencies are built.
