# Empty compiler generated dependencies file for extension_tib.
# This may be replaced when dependencies are built.
