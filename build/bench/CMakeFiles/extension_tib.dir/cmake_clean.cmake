file(REMOVE_RECURSE
  "CMakeFiles/extension_tib.dir/extension_tib.cc.o"
  "CMakeFiles/extension_tib.dir/extension_tib.cc.o.d"
  "extension_tib"
  "extension_tib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
