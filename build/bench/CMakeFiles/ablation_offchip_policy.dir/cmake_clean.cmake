file(REMOVE_RECURSE
  "CMakeFiles/ablation_offchip_policy.dir/ablation_offchip_policy.cc.o"
  "CMakeFiles/ablation_offchip_policy.dir/ablation_offchip_policy.cc.o.d"
  "ablation_offchip_policy"
  "ablation_offchip_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offchip_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
