# Empty compiler generated dependencies file for table1_loop_sizes.
# This may be replaced when dependencies are built.
