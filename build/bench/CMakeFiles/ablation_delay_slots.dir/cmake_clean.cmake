file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_slots.dir/ablation_delay_slots.cc.o"
  "CMakeFiles/ablation_delay_slots.dir/ablation_delay_slots.cc.o.d"
  "ablation_delay_slots"
  "ablation_delay_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
