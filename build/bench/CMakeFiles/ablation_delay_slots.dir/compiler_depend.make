# Empty compiler generated dependencies file for ablation_delay_slots.
# This may be replaced when dependencies are built.
