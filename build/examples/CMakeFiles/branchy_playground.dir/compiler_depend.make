# Empty compiler generated dependencies file for branchy_playground.
# This may be replaced when dependencies are built.
