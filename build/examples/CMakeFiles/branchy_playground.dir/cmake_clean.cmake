file(REMOVE_RECURSE
  "CMakeFiles/branchy_playground.dir/branchy_playground.cpp.o"
  "CMakeFiles/branchy_playground.dir/branchy_playground.cpp.o.d"
  "branchy_playground"
  "branchy_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branchy_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
