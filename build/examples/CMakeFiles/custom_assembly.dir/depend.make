# Empty dependencies file for custom_assembly.
# This may be replaced when dependencies are built.
