file(REMOVE_RECURSE
  "CMakeFiles/custom_assembly.dir/custom_assembly.cpp.o"
  "CMakeFiles/custom_assembly.dir/custom_assembly.cpp.o.d"
  "custom_assembly"
  "custom_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
