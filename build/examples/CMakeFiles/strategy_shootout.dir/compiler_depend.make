# Empty compiler generated dependencies file for strategy_shootout.
# This may be replaced when dependencies are built.
