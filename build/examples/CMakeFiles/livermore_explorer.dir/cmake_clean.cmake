file(REMOVE_RECURSE
  "CMakeFiles/livermore_explorer.dir/livermore_explorer.cpp.o"
  "CMakeFiles/livermore_explorer.dir/livermore_explorer.cpp.o.d"
  "livermore_explorer"
  "livermore_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livermore_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
