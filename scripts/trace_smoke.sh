#!/usr/bin/env bash
# Trace-replay smoke test (see docs/trace_replay.md).
#
# Captures a Livermore trace with pipesim-trace, round-trips it
# through inspect (checksum verification happens on every read), and
# checks the replay engine's validation contract end to end:
#
#   1. capture -> inspect -> replay round-trips with matching hashes;
#   2. a --engine trace sweep renders the *same table* as the cycle
#      engine, byte-identical under --jobs 1 and --jobs 8;
#   3. the replay stats JSON attributes the run to the trace (engine,
#      trace_sha256, program_sha256);
#   4. a truncated trace file raises a FatalError diagnostic (exit 1),
#      never a crash or hang.
#
# Usage: scripts/trace_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
TOOL="$BUILD/tools/pipesim-trace"
BENCH="$BUILD/bench/sweep_memspeed"
SCALE=0.05
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== capture"
"$TOOL" capture "$WORK/livermore.pipetrc" --scale "$SCALE" \
    > "$WORK/capture.txt"
grep -q "trace sha256" "$WORK/capture.txt"

echo "== inspect (checksum-verified read)"
"$TOOL" inspect "$WORK/livermore.pipetrc" > "$WORK/inspect.txt"
grep -q "records:" "$WORK/inspect.txt"
# Capture and inspect agree on the content hash.
CAP_SHA=$(awk '/trace sha256/ { print $3 }' "$WORK/capture.txt")
INS_SHA=$(awk '/trace sha256/ { print $3 }' "$WORK/inspect.txt")
test "$CAP_SHA" = "$INS_SHA"

echo "== exact replay with stats json"
"$TOOL" replay "$WORK/livermore.pipetrc" --scale "$SCALE" \
    --stats-json "$WORK/replay.json" > "$WORK/replay.txt"
grep -q "trace-exact" "$WORK/replay.txt"
grep -q '"engine":"trace-exact"' "$WORK/replay.json"
grep -q "\"trace_sha256\":\"$CAP_SHA\"" "$WORK/replay.json"
grep -q '"program_sha256"' "$WORK/replay.json"

echo "== cycle sweep vs trace sweep: identical tables"
"$BENCH" --scale "$SCALE" --jobs 1 > "$WORK/cycle.txt"
"$BENCH" --scale "$SCALE" --jobs 1 --engine trace \
    --trace-file "$WORK/livermore.pipetrc" > "$WORK/trace_j1.txt"
"$BENCH" --scale "$SCALE" --jobs 8 --engine trace \
    --trace-file "$WORK/livermore.pipetrc" > "$WORK/trace_j8.txt"
cmp "$WORK/cycle.txt" "$WORK/trace_j1.txt"
cmp "$WORK/trace_j1.txt" "$WORK/trace_j8.txt"

echo "== corrupted trace raises FatalError, never a crash"
head -c 100 "$WORK/livermore.pipetrc" > "$WORK/truncated.pipetrc"
set +e
"$TOOL" inspect "$WORK/truncated.pipetrc" > "$WORK/bad.txt" 2>&1
STATUS=$?
set -e
test "$STATUS" -eq 1 # FatalError exit code (sim/guard.hh)
grep -q "fatal:" "$WORK/bad.txt"

echo "trace smoke: OK"
