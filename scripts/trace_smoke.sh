#!/usr/bin/env bash
# Trace-replay smoke test (see docs/trace_replay.md).
#
# Captures a Livermore trace with pipesim-trace, round-trips it
# through inspect (checksum verification happens on every read), and
# checks the replay engine's validation contract end to end:
#
#   1. capture -> inspect -> replay round-trips with matching hashes;
#   2. a --engine trace sweep renders the *same table* as the cycle
#      engine, byte-identical under --jobs 1 and --jobs 8;
#   3. the replay stats JSON attributes the run to the trace (engine,
#      trace_sha256, program_sha256);
#   4. a truncated trace file raises a FatalError diagnostic (exit 1),
#      never a crash or hang;
#   5. live-points checkpoints: --ckpt-create snapshots the sampling
#      windows, restores at --jobs 1 and --jobs 8 produce byte-identical
#      stats to the cold serial run, the checkpoint inspects cleanly,
#      and the cold-vs-checkpointed wall-clock ratio is reported.
#
# Usage: scripts/trace_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
TOOL="$BUILD/tools/pipesim-trace"
BENCH="$BUILD/bench/sweep_memspeed"
SCALE=0.05
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== capture"
"$TOOL" capture "$WORK/livermore.pipetrc" --scale "$SCALE" \
    > "$WORK/capture.txt"
grep -q "trace sha256" "$WORK/capture.txt"

echo "== inspect (checksum-verified read)"
"$TOOL" inspect "$WORK/livermore.pipetrc" > "$WORK/inspect.txt"
grep -q "records:" "$WORK/inspect.txt"
# Capture and inspect agree on the content hash.
CAP_SHA=$(awk '/trace sha256/ { print $3 }' "$WORK/capture.txt")
INS_SHA=$(awk '/trace sha256/ { print $3 }' "$WORK/inspect.txt")
test "$CAP_SHA" = "$INS_SHA"

echo "== exact replay with stats json"
"$TOOL" replay "$WORK/livermore.pipetrc" --scale "$SCALE" \
    --stats-json "$WORK/replay.json" > "$WORK/replay.txt"
grep -q "trace-exact" "$WORK/replay.txt"
grep -q '"engine":"trace-exact"' "$WORK/replay.json"
grep -q "\"trace_sha256\":\"$CAP_SHA\"" "$WORK/replay.json"
grep -q '"program_sha256"' "$WORK/replay.json"

echo "== cycle sweep vs trace sweep: identical tables"
"$BENCH" --scale "$SCALE" --jobs 1 > "$WORK/cycle.txt"
"$BENCH" --scale "$SCALE" --jobs 1 --engine trace \
    --trace-file "$WORK/livermore.pipetrc" > "$WORK/trace_j1.txt"
"$BENCH" --scale "$SCALE" --jobs 8 --engine trace \
    --trace-file "$WORK/livermore.pipetrc" > "$WORK/trace_j8.txt"
cmp "$WORK/cycle.txt" "$WORK/trace_j1.txt"
cmp "$WORK/trace_j1.txt" "$WORK/trace_j8.txt"

echo "== checkpointed sampled replay: identical at any job count"
SAMPLE_ARGS=(--scale "$SCALE" --sample-period 2000)
# The checkpoint mode is the only legitimate difference between the
# stats documents, so strip it before the byte comparison.
strip_mode() { sed 's/"ckpt_mode":"[a-z]*",\{0,1\}//' "$1"; }
replay_stats() { # out.json extra-args...
    local out="$1"; shift
    "$TOOL" replay "$WORK/livermore.pipetrc" "${SAMPLE_ARGS[@]}" \
        --stats-json "$out" "$@" > /dev/null
}
ms_now() { echo $(( $(date +%s%N) / 1000000 )); }

T0=$(ms_now)
replay_stats "$WORK/cold.json"
T1=$(ms_now)
replay_stats "$WORK/ck_create.json" --ckpt-dir "$WORK/ck" --ckpt-create
T2=$(ms_now)
replay_stats "$WORK/ck_r1.json" --ckpt-dir "$WORK/ck" --jobs 1
T3=$(ms_now)
replay_stats "$WORK/ck_r8.json" --ckpt-dir "$WORK/ck" --jobs 8
grep -q '"ckpt_mode":"create"' "$WORK/ck_create.json"
grep -q '"ckpt_mode":"restore"' "$WORK/ck_r1.json"
for v in ck_create ck_r1 ck_r8; do
    diff <(strip_mode "$WORK/cold.json") <(strip_mode "$WORK/$v.json")
done
awk -v c=$((T1-T0)) -v s=$((T2-T1)) -v r=$((T3-T2)) 'BEGIN {
    printf "cold %dms, create %dms, checkpointed %dms (%.1fx vs cold)\n",
        c, s, r, (r > 0 ? c / r : 0) }'

echo "== checkpoint file inspects cleanly"
"$TOOL" checkpoint "$WORK"/ck/ckpt-*.pipeckpt > "$WORK/ckpt.txt"
grep -q "windows:" "$WORK/ckpt.txt"
grep -q "config hash:" "$WORK/ckpt.txt"

echo "== corrupted trace raises FatalError, never a crash"
head -c 100 "$WORK/livermore.pipetrc" > "$WORK/truncated.pipetrc"
set +e
"$TOOL" inspect "$WORK/truncated.pipetrc" > "$WORK/bad.txt" 2>&1
STATUS=$?
set -e
test "$STATUS" -eq 1 # FatalError exit code (sim/guard.hh)
grep -q "fatal:" "$WORK/bad.txt"

echo "trace smoke: OK"
