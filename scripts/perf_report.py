#!/usr/bin/env python3
"""Validate, render and diff pipesim benchmark result documents.

The C++ side (obs/bench_json.hh) emits two JSON schemas:

  pipesim-bench v1    bench results: host info, git rev, config,
                      named records with numeric metrics, plus the
                      host profile and metrics snapshots
  pipesim-profile v1  a standalone host profile (--profile-json)

This script is the other half of the perf-trajectory pipeline:

  perf_report.py --check FILE...      validate schema (CI perf-smoke)
  perf_report.py render FILE...       human-readable tables
  perf_report.py diff OLD NEW         delta table, (name, metric) keyed

Stdlib only — no pip installs.
"""

import argparse
import json
import os
import sys

SCHEMAS = {"pipesim-bench", "pipesim-profile"}
SUPPORTED_VERSION = 1


def fail(path, msg):
    raise ValueError(f"{path}: {msg}")


def _check_string_map(path, doc, key, required=True):
    if key not in doc:
        if required:
            fail(path, f"missing '{key}' object")
        return
    obj = doc[key]
    if not isinstance(obj, dict):
        fail(path, f"'{key}' must be an object")
    for k, v in obj.items():
        if not isinstance(v, str):
            fail(path, f"'{key}.{k}' must be a string, got {type(v).__name__}")


def _check_profile(path, profile):
    if not isinstance(profile, dict):
        fail(path, "'profile' must be an object")
    for key in ("enabled", "wall_ns", "coverage", "dropped_spans", "phases"):
        if key not in profile:
            fail(path, f"profile missing '{key}'")
    if not isinstance(profile["phases"], list):
        fail(path, "'profile.phases' must be an array")
    for i, phase in enumerate(profile["phases"]):
        for key in ("path", "ns", "count"):
            if key not in phase:
                fail(path, f"profile.phases[{i}] missing '{key}'")


def check_document(path, doc):
    """Raise ValueError when the document violates its schema."""
    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        fail(path, f"unknown schema {schema!r} (expected one of {sorted(SCHEMAS)})")
    version = doc.get("schema_version")
    if version != SUPPORTED_VERSION:
        fail(path, f"unsupported {schema} schema_version {version!r}")
    for key in ("git_rev", "host", "profile", "metrics", "histograms"):
        if key not in doc:
            fail(path, f"missing '{key}'")
    _check_string_map(path, doc, "host")
    _check_profile(path, doc["profile"])
    if not isinstance(doc["metrics"], dict):
        fail(path, "'metrics' must be an object")
    if not isinstance(doc["histograms"], dict):
        fail(path, "'histograms' must be an object")

    if schema == "pipesim-bench":
        for key in ("tool", "generated_unix", "results"):
            if key not in doc:
                fail(path, f"missing '{key}'")
        _check_string_map(path, doc, "config")
        if not isinstance(doc["results"], list):
            fail(path, "'results' must be an array")
        for i, rec in enumerate(doc["results"]):
            if "name" not in rec:
                fail(path, f"results[{i}] missing 'name'")
            metrics = rec.get("metrics")
            if not isinstance(metrics, dict):
                fail(path, f"results[{i}] missing 'metrics' object")
            for m, v in metrics.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    fail(path, f"results[{i}].metrics.{m} must be numeric")
            config = rec.get("config")
            if config is not None:
                if not isinstance(config, dict):
                    fail(path, f"results[{i}].config must be an object")
                for k, v in config.items():
                    if not isinstance(v, str):
                        fail(path, f"results[{i}].config.{k} must be a "
                                   f"string")
    return doc


def load(path):
    if not os.path.exists(path):
        raise ValueError(
            f"{path}: bench-json file does not exist (run the bench "
            f"with --bench-json {path} to produce it)")
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"not valid JSON: {e}")
    return check_document(path, doc)


def flatten(doc):
    """(record name, metric) -> value for every numeric result."""
    out = {}
    for rec in doc.get("results", []):
        for metric, value in rec["metrics"].items():
            out[(rec["name"], metric)] = value
    return out


# Per-result config keys that are really annotations on the
# measurement (rendered alongside the metrics).  They stay strings
# because they have non-numeric states: a single-window sampled run
# reports cpi_rel_ci95 as "n/a" rather than a fake 0.
RENDERED_CONFIG_KEYS = ("cpi_rel_ci95",)


def flatten_annotations(doc):
    """(record name, key) -> string for rendered per-result config."""
    out = {}
    for rec in doc.get("results", []):
        for key in RENDERED_CONFIG_KEYS:
            value = rec.get("config", {}).get(key)
            if value is not None:
                out[(rec["name"], key)] = value
    return out


def fmt(value):
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 1e6 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.4g}"
    return f"{value:.4f}"


def print_table(rows, headers):
    widths = [
        max(len(headers[c]), max((len(r[c]) for r in rows), default=0))
        for c in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def cmd_check(paths):
    for path in paths:
        doc = load(path)
        n = len(doc.get("results", []))
        kind = doc["schema"]
        print(f"{path}: OK ({kind} v{doc['schema_version']}, "
              f"{n} result(s), git {doc['git_rev']})")
    return 0


def cmd_render(paths):
    for path in paths:
        doc = load(path)
        tool = doc.get("tool", doc["schema"])
        print(f"== {path}: {tool} @ {doc['git_rev']} ==")
        cells = {k: fmt(v) for k, v in flatten(doc).items()}
        cells.update(flatten_annotations(doc))
        rows = [
            [name, metric, value]
            for (name, metric), value in sorted(cells.items())
        ]
        if rows:
            print_table(rows, ["result", "metric", "value"])
        profile = doc["profile"]
        if profile.get("enabled") and profile.get("phases"):
            print(f"\nhost profile (coverage "
                  f"{100.0 * profile['coverage']:.1f}%):")
            for phase in profile["phases"]:
                indent = "  " * phase.get("depth", 0)
                ms = phase["ns"] / 1e6
                print(f"  {indent}{phase['path'].split('/')[-1]:24s} "
                      f"{ms:10.2f} ms  x{phase['count']}")
        print()
    return 0


def cmd_diff(old_path, new_path):
    old, new = load(old_path), load(new_path)
    a, b = flatten(old), flatten(new)
    print(f"perf trajectory: {old['git_rev']} -> {new['git_rev']}")
    rows = []
    for key in sorted(a.keys() | b.keys()):
        name, metric = key
        if key not in a:
            rows.append([name, metric, "-", fmt(b[key]), "new"])
        elif key not in b:
            rows.append([name, metric, fmt(a[key]), "-", "gone"])
        else:
            va, vb = a[key], b[key]
            delta = "n/a" if va == 0 else f"{100.0 * (vb - va) / va:+.1f}%"
            rows.append([name, metric, fmt(va), fmt(vb), delta])
    print_table(rows, ["result", "metric", "old", "new", "delta"])
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", nargs="+", metavar="FILE",
                        help="validate files against their schema and exit")
    sub = parser.add_subparsers(dest="command")
    p_render = sub.add_parser("render", help="print result tables")
    p_render.add_argument("files", nargs="+")
    p_diff = sub.add_parser("diff", help="delta table between two documents")
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_check = sub.add_parser("check", help="same as --check")
    p_check.add_argument("files", nargs="+")
    args = parser.parse_args(argv)

    try:
        if args.check:
            return cmd_check(args.check)
        if args.command == "render":
            return cmd_render(args.files)
        if args.command == "diff":
            return cmd_diff(args.old, args.new)
        if args.command == "check":
            return cmd_check(args.files)
    except (ValueError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
