#!/usr/bin/env bash
# End-to-end smoke test for the sweep daemon (docs/serving.md).
#
# Exercises pipesim-serve + pipesim-client against a real store:
#
#   1. two clients submitting the same sweep get byte-identical
#      tables, and the second is served entirely from the store
#      (every result event cached:true, stats reports 0 simulated) —
#      at --jobs 1 and --jobs 8, with identical tables across both;
#   2. kill-resume chaos: the daemon is SIGKILLed mid-sweep
#      (PIPESIM_STORE_CRASH_AFTER_PUTS), restarted on the same store,
#      and a resubmitted request completes with the journaled points
#      cached and a byte-identical table;
#   3. SIGTERM mid-sweep drains cleanly: the daemon exits 143
#      (128+SIGTERM), in-flight points are journaled, and a restart +
#      resubmit completes byte-identically.
#
# Usage: scripts/serve_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
SERVE="$BUILD/tools/pipesim-serve"
CLIENT="$BUILD/tools/pipesim-client"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2> /dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/daemon.sock"
SWEEP=(--socket "$SOCK" --workload livermore --scale 0.05
       --cache-sizes 64,128,256 --strategies conv,16-16)
POINTS=6

start_daemon() { # jobs store-dir [env...]
    local jobs="$1" store="$2"; shift 2
    rm -f "$SOCK" # a SIGKILLed daemon leaves a stale socket behind
    env "$@" "$SERVE" --socket "$SOCK" --jobs "$jobs" \
        --store-dir "$store" 2> "$WORK/daemon.log" &
    DAEMON_PID=$!
    for _ in $(seq 100); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    echo "daemon did not come up"; cat "$WORK/daemon.log"; exit 1
}

stop_daemon() { # signal expected-exit
    kill "-$1" "$DAEMON_PID"
    set +e
    wait "$DAEMON_PID"
    local status=$?
    set -e
    DAEMON_PID=""
    test "$status" -eq "$2"
}

# Count result events in an --events NDJSON dump, total and cached.
count_results() { # events-file
    python3 - "$1" <<'EOF'
import json, sys
total = cached = 0
for line in open(sys.argv[1]):
    ev = json.loads(line)
    if ev.get("event") == "result":
        total += 1
        cached += bool(ev.get("cached"))
print(total, cached)
EOF
}

echo "== cold + warm client pair, --jobs 1 and --jobs 8"
for J in 1 8; do
    start_daemon "$J" "$WORK/store_j$J"
    "$CLIENT" "${SWEEP[@]}" --id cold \
        --events "$WORK/cold_j$J.ndjson" > "$WORK/cold_j$J.txt"
    "$CLIENT" "${SWEEP[@]}" --id warm \
        --events "$WORK/warm_j$J.ndjson" > "$WORK/warm_j$J.txt"
    cmp "$WORK/cold_j$J.txt" "$WORK/warm_j$J.txt"
    read -r TOTAL CACHED <<< "$(count_results "$WORK/warm_j$J.ndjson")"
    test "$TOTAL" -eq "$POINTS"
    test "$CACHED" -eq "$POINTS" # warm run never simulates
    grep -q '"simulated":0' "$WORK/warm_j$J.ndjson"
    stop_daemon TERM 143
done
cmp "$WORK/cold_j1.txt" "$WORK/cold_j8.txt" # jobs never change bytes

echo "== SIGKILL mid-sweep, restart, resubmit resumes from journal"
CRASH_AT=2
start_daemon 1 "$WORK/store_kill" \
    PIPESIM_STORE_CRASH_AFTER_PUTS=$CRASH_AT
set +e
"$CLIENT" "${SWEEP[@]}" --id doomed > "$WORK/doomed.txt" \
    2> "$WORK/doomed.log"
STATUS=$?
set -e
test "$STATUS" -eq 2 # stream ended before completion
set +e
wait "$DAEMON_PID" # SIGKILLed itself via the chaos hook
test $? -eq 137
set -e
DAEMON_PID=""
start_daemon 1 "$WORK/store_kill"
"$CLIENT" "${SWEEP[@]}" --id resumed \
    --events "$WORK/resumed.ndjson" > "$WORK/resumed.txt"
cmp "$WORK/cold_j1.txt" "$WORK/resumed.txt"
read -r TOTAL CACHED <<< "$(count_results "$WORK/resumed.ndjson")"
test "$TOTAL" -eq "$POINTS"
test "$CACHED" -ge "$CRASH_AT" # the journaled prefix was not re-run
stop_daemon TERM 143

echo "== SIGTERM mid-sweep drains, restart + resubmit completes"
# A 24-point grid at --jobs 1 runs for seconds, so the TERM below
# reliably lands mid-sweep.
LONG=(--socket "$SOCK" --workload livermore --scale 2
      --cache-sizes 16,32,64,128,256,512,1024,2048
      --strategies conv,16-16,32-32)
start_daemon 1 "$WORK/store_term"
"$CLIENT" "${LONG[@]}" --id interrupted > "$WORK/interrupted.txt" \
    2> "$WORK/interrupted.log" &
CLIENT_PID=$!
sleep 1
stop_daemon TERM 143
set +e
wait "$CLIENT_PID"
STATUS=$?
set -e
test "$STATUS" -ne 0 # the stream was cut short, never a fake success
grep -q "interrupted" "$WORK/interrupted.log"
start_daemon 1 "$WORK/store_term"
"$CLIENT" "${LONG[@]}" --id retry \
    --events "$WORK/retry.ndjson" > "$WORK/retry.txt"
test -s "$WORK/retry.txt"
# The drained daemon journaled its completed points: the retry
# starts from them instead of re-simulating everything.
# 23, not 24: 32-32 cannot fit a 16-byte cache, so that grid point
# is skipped at planning (a "-" cell), exactly as in a local sweep.
read -r TOTAL CACHED <<< "$(count_results "$WORK/retry.ndjson")"
test "$TOTAL" -eq 23
test "$CACHED" -ge 1
stop_daemon TERM 143

echo "serve smoke: OK"
