#!/usr/bin/env bash
# Fault-injection smoke test (see docs/robustness.md).
#
# Runs sweep_memspeed with a fixed-seed injected deadlock at one sweep
# point and checks the failure-isolation contract end to end:
#
#   1. the sweep exits 0 (collect-and-continue is the bench default);
#   2. the wedged point renders ERR and the report carries the machine
#      snapshot;
#   3. every healthy cell is byte-identical to a fault-free run;
#   4. the entire output is byte-identical under --jobs 1 and --jobs 8
#      and across repeated runs (the report is deterministic).
#
# Usage: scripts/fault_smoke.sh [path/to/sweep_memspeed]
set -euo pipefail

BENCH="${1:-build/bench/sweep_memspeed}"
ARGS=(--scale 0.05)
FAULT=(--fi-kind grant --fi-rate 1 --fi-seed 7 --fi-point 16-16:64)
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== clean run (--jobs 1)"
"$BENCH" "${ARGS[@]}" --jobs 1 > "$WORK/clean.txt"

echo "== faulty run (--jobs 1)"
"$BENCH" "${ARGS[@]}" --jobs 1 "${FAULT[@]}" > "$WORK/fault_j1.txt"

echo "== faulty run (--jobs 8)"
"$BENCH" "${ARGS[@]}" --jobs 8 "${FAULT[@]}" > "$WORK/fault_j8.txt"

echo "== faulty run again (--jobs 1, same seed)"
"$BENCH" "${ARGS[@]}" --jobs 1 "${FAULT[@]}" > "$WORK/fault_again.txt"

echo "== checking: worker count does not change the output"
cmp "$WORK/fault_j1.txt" "$WORK/fault_j8.txt"

echo "== checking: the report is reproducible run to run"
cmp "$WORK/fault_j1.txt" "$WORK/fault_again.txt"

echo "== checking: the wedged point rendered ERR with a snapshot"
grep -q "ERR" "$WORK/fault_j1.txt"
grep -q "sweep point(s) failed" "$WORK/fault_j1.txt"
grep -q "machine snapshot at cycle" "$WORK/fault_j1.txt"
grep -q "deadlocked" "$WORK/fault_j1.txt"

echo "== checking: every healthy cell matches the clean run"
# Drop the failure report (its header line plus indented detail) and
# blank lines so the faulty output lines up with the clean table, then
# compare field-wise, skipping only the ERR cells.
grep -v -e "sweep point(s) failed" -e '^  ' -e '^$' "$WORK/fault_j1.txt" \
    > "$WORK/fault_table.txt"
grep -v '^$' "$WORK/clean.txt" > "$WORK/clean_table.txt"
awk '
    NR == FNR { clean[FNR] = $0; clean_lines = FNR; next }
    {
        m = split(clean[FNR], c)
        n = split($0, f)
        if (n != m) {
            printf "line %d: %d fields vs %d in clean run\n", FNR, n, m
            bad = 1
            next
        }
        for (i = 1; i <= n; i++)
            if (f[i] != "ERR" && f[i] != c[i]) {
                printf "line %d field %d: %s != clean %s\n", \
                       FNR, i, f[i], c[i]
                bad = 1
            }
    }
    END {
        if (FNR != clean_lines) {
            printf "%d lines vs %d in clean run\n", FNR, clean_lines
            bad = 1
        }
        exit bad
    }' "$WORK/clean_table.txt" "$WORK/fault_table.txt"

echo "fault smoke: OK"
