#!/usr/bin/env bash
# Crash-safety smoke test for the sweep result store
# (docs/robustness.md, "Crash safety and resume").
#
# Exercises the PIPERES journal end to end against a real bench:
#
#   1. a --store-dir sweep renders the same table as a store-less one,
#      and a warm repeat (every point served from the store) is
#      byte-identical too;
#   2. kill-resume chaos: the process is SIGKILLed at a deterministic
#      mid-sweep point (PIPESIM_STORE_CRASH_AFTER_PUTS); the resumed
#      sweep simulates only the missing points and its output is
#      byte-identical to an uninterrupted cold run, at --jobs 1 and 8;
#   3. pipesim-trace store inspect/compact round-trips the journal;
#   4. a torn tail (journal truncated mid-record, as a crash leaves
#      it) is recovered: the resumed sweep still matches the baseline;
#   5. interior corruption (a flipped byte with records following it)
#      is a FatalError naming the offset, never silently served;
#   6. a wedged point under --point-deadline-ms renders ERR(timeout)
#      without stalling the rest of the sweep.
#
# Usage: scripts/store_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
TOOL="$BUILD/tools/pipesim-trace"
BENCH="$BUILD/bench/sweep_memspeed"
SCALE=0.05
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run_bench() { # jobs extra-args...
    local jobs="$1"; shift
    "$BENCH" --scale "$SCALE" --jobs "$jobs" "$@"
}

echo "== cold baseline (no store)"
run_bench 1 > "$WORK/baseline.txt"

echo "== store-backed sweep matches the baseline, cold and warm"
run_bench 1 --store-dir "$WORK/store" > "$WORK/cold.txt"
cmp "$WORK/baseline.txt" "$WORK/cold.txt"
run_bench 1 --store-dir "$WORK/store" > "$WORK/warm.txt"
cmp "$WORK/baseline.txt" "$WORK/warm.txt"
run_bench 8 --store-dir "$WORK/store" > "$WORK/warm_j8.txt"
cmp "$WORK/baseline.txt" "$WORK/warm_j8.txt"

echo "== store inspects and compacts cleanly"
"$TOOL" store inspect "$WORK/store" > "$WORK/inspect.txt"
grep -q "entries:" "$WORK/inspect.txt"
grep -q "recovered: clean" "$WORK/inspect.txt"
ENTRIES=$(awk '/^entries:/ { print $2 }' "$WORK/inspect.txt")
test "$ENTRIES" -gt 0
"$TOOL" store compact "$WORK/store" > "$WORK/compact.txt"
grep -q "compacted" "$WORK/compact.txt"
grep -q "entries:   $ENTRIES" "$WORK/compact.txt"
run_bench 1 --store-dir "$WORK/store" > "$WORK/after_compact.txt"
cmp "$WORK/baseline.txt" "$WORK/after_compact.txt"

echo "== kill-resume chaos: SIGKILL after 5 journaled points"
for J in 1 8; do
    DIR="$WORK/store_kill_j$J"
    set +e
    PIPESIM_STORE_CRASH_AFTER_PUTS=5 \
        run_bench "$J" --store-dir "$DIR" > "$WORK/killed_j$J.txt" 2>&1
    STATUS=$?
    set -e
    test "$STATUS" -eq 137 # 128 + SIGKILL
    "$TOOL" store inspect "$DIR" > "$WORK/kill_inspect_j$J.txt"
    grep -q "entries:   5" "$WORK/kill_inspect_j$J.txt"
    run_bench "$J" --store-dir "$DIR" > "$WORK/resumed_j$J.txt"
    cmp "$WORK/baseline.txt" "$WORK/resumed_j$J.txt"
done

echo "== torn tail is recovered, resume still matches the baseline"
DIR="$WORK/store_torn"
cp -r "$WORK/store_kill_j1" "$DIR"
truncate -s -7 "$DIR/results.piperes" # cut into the last record
run_bench 1 --store-dir "$DIR" > "$WORK/torn_resumed.txt"
cmp "$WORK/baseline.txt" "$WORK/torn_resumed.txt"
"$TOOL" store inspect "$DIR" > "$WORK/torn_inspect.txt"
grep -q "recovered: clean" "$WORK/torn_inspect.txt" # repaired on open

echo "== interior corruption raises FatalError, never a wrong result"
DIR="$WORK/store_corrupt"
cp -r "$WORK/store_kill_j1" "$DIR"
# Flip one byte inside the first record's payload: records follow it,
# so this must be fatal (a torn *tail* is the only recoverable damage).
python3 - "$DIR/results.piperes" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[28] ^= 0x5A
open(path, "wb").write(bytes(data))
EOF
set +e
run_bench 1 --store-dir "$DIR" > "$WORK/corrupt.txt" 2>&1
STATUS=$?
set -e
test "$STATUS" -eq 1 # FatalError exit code (sim/guard.hh)
grep -q "fatal:" "$WORK/corrupt.txt"
grep -q "byte offset" "$WORK/corrupt.txt"

echo "== deadline: a wedged point renders ERR(timeout), sweep completes"
run_bench 8 --fi-kind grant --fi-rate 1 --fi-point 16-16:64 \
    --progress-window 1000000000 --point-deadline-ms 300 \
    > "$WORK/deadline.txt"
grep -q "ERR(timeout)" "$WORK/deadline.txt"
grep -q "wall-clock deadline" "$WORK/deadline.txt"
# Healthy cells still carry cycle counts (the sweep did not stall).
grep -q "16 " "$WORK/deadline.txt"

echo "store smoke: OK"
