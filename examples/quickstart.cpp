/**
 * Quickstart: build the paper's 14-loop benchmark, run it on the
 * PIPE fetch strategy and on the conventional always-prefetch cache,
 * and compare total execution cycles — the paper's headline
 * experiment in ~40 lines.
 *
 *     ./quickstart [--cache 128] [--mem 6] [--bus 8] [--scale 0.2]
 */

#include <iostream>

#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("pipesim quickstart: PIPE vs conventional fetch");
    cli.addOption("cache", "128", "instruction cache size in bytes");
    cli.addOption("mem", "6", "memory access time in cycles");
    cli.addOption("bus", "8", "input bus width in bytes (4 or 8)");
    cli.addOption("scale", "0.2", "workload scale (1.0 = paper size)");
    // Single run: no sweep/engine groups, just obs + fault.
    const StandardFlagGroups groups{false, false};
    registerStandardFlags(cli, groups);
    if (!cli.parse(argc, argv))
        return 0;
    const StandardFlags flags = standardFlagsFromCli(cli, groups);

    // 1. Generate the benchmark program (the 14 Livermore loops
    //    compiled back to back, as in the paper).
    const auto bench =
        workloads::buildLivermoreBenchmark(cli.getDouble("scale"));
    std::cout << "benchmark: " << bench.program.codeSize()
              << " bytes of code, 14 kernels\n\n";

    // 2. Run both fetch strategies on the same machine parameters.
    for (const char *strategy : {"conv", "16-16"}) {
        SimConfig cfg;
        cfg.mem.accessTime = unsigned(cli.getInt("mem"));
        cfg.mem.busWidthBytes = unsigned(cli.getInt("bus"));
        cfg.fault = flags.fault;
        cfg.fetch =
            std::string(strategy) == "conv"
                ? conventionalConfigFor(unsigned(cli.getInt("cache")))
                : pipeConfigFor(strategy, unsigned(cli.getInt("cache")));

        Simulator sim(cfg, bench.program);
        // The file-producing outputs observe the PIPE run (the second
        // pass would otherwise overwrite the conventional one's).
        obs::ObsOptions pass_opts = flags.obs;
        if (std::string(strategy) == "conv") {
            pass_opts.traceJson.clear();
            pass_opts.statsJson.clear();
        }
        obs::ObsSession obs_session(pass_opts, sim);
        const SimResult res = sim.run();

        // 3. Check the computation really happened (bit-exact vs a
        //    host-side reference).
        unsigned bad = 0;
        for (std::size_t i = 0; i < bench.kernels.size(); ++i) {
            if (!workloads::verifyAgainstReference(
                    sim.dataMemory(), bench.kernels[i],
                    bench.codeInfo[i]))
                ++bad;
        }

        std::cout << strategy << ": " << res.totalCycles << " cycles, "
                  << res.instructions << " instructions, CPI "
                  << res.cpi() << (bad ? "  [VERIFY FAILED]" : "  [ok]")
                  << "\n";
        obs_session.finish(res, strategy);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
