/**
 * Branchy playground: generate a synthetic branch-heavy program
 * (short basic blocks, data-dependent forward branches), run it under
 * any fetch strategy, verify the checksum against the host model and
 * report the branch behaviour — a counterpoint to the loop-dominated
 * Livermore benchmark.
 *
 *     ./branchy_playground --strategy tib --blocks 8 --slots 2 \
 *         --mask 1 --mem 6
 */

#include <iostream>

#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("synthetic branch-heavy workload explorer");
    cli.addOption("strategy", "16-16",
                  "conv, tib, 8-8, 16-16, 16-32 or 32-32");
    cli.addOption("cache", "64", "on-chip fetch storage in bytes");
    cli.addOption("blocks", "8", "basic blocks per iteration");
    cli.addOption("filler", "4", "skippable ops per block");
    cli.addOption("slots", "2", "PBR delay slots per branch (0-7)");
    cli.addOption("mask", "1",
                  "taken-selectivity bits (0=always, 1=~50%, 2=~25%)");
    cli.addOption("iterations", "128", "outer loop trips");
    cli.addOption("mem", "6", "memory access time");
    cli.addOption("bus", "8", "bus width bytes");
    // Single run: no sweep/engine groups, just obs + fault.
    const StandardFlagGroups groups{false, false};
    registerStandardFlags(cli, groups);
    if (!cli.parse(argc, argv))
        return 0;
    const StandardFlags flags = standardFlagsFromCli(cli, groups);

    workloads::BranchySpec spec;
    spec.blocks = unsigned(cli.getInt("blocks"));
    spec.fillerOps = unsigned(cli.getInt("filler"));
    spec.delaySlots = unsigned(cli.getInt("slots"));
    spec.maskBits = unsigned(cli.getInt("mask"));
    spec.iterations = unsigned(cli.getInt("iterations"));

    const auto built = workloads::buildBranchyProgram(spec);
    const auto ref = workloads::runBranchyReference(spec);

    SimConfig cfg;
    const std::string strategy = cli.get("strategy");
    const unsigned cache = unsigned(cli.getInt("cache"));
    if (strategy == "conv")
        cfg.fetch = conventionalConfigFor(cache, 16);
    else if (strategy == "tib")
        cfg.fetch = tibConfigFor(cache, 16);
    else
        cfg.fetch = pipeConfigFor(strategy, cache);
    cfg.mem.accessTime = unsigned(cli.getInt("mem"));
    cfg.mem.busWidthBytes = unsigned(cli.getInt("bus"));
    cfg.fault = flags.fault;

    Simulator sim(cfg, built.program);
    obs::ObsSession obs_session(flags.obs, sim);
    const SimResult res = sim.run();
    obs_session.finish(res, "branchy:" + strategy);

    const Word acc = sim.dataMemory().readWord(built.accSlot);
    const bool ok = acc == ref.acc &&
                    sim.dataMemory().readWord(built.stateSlot) ==
                        ref.state;

    std::cout << "program:     " << built.program.codeSize()
              << " bytes, " << spec.blocks << " blocks x "
              << spec.iterations << " iterations\n"
              << "branches:    " << ref.takenBranches << " taken / "
              << ref.notTakenBranches << " not taken ("
              << 100.0 * double(ref.takenBranches) /
                     double(ref.takenBranches + ref.notTakenBranches)
              << "% taken)\n"
              << "cycles:      " << res.totalCycles << " ("
              << res.instructions << " instructions, CPI "
              << res.cpi() << ")\n"
              << "checksum:    0x" << std::hex << acc << std::dec
              << (ok ? "  [matches host model]" : "  [MISMATCH]")
              << "\n"
              << "fetch stalls: "
              << res.counter("cpu.fetch_starve_cycles") << " cycles\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
