/**
 * Strategy shootout: sweep cache sizes for every fetch strategy on a
 * configurable machine and print the figure-style table — a
 * generalisation of the paper's Figures 4-6 to any parameter point.
 * Accepts the standard flag groups (sim/standard_flags.hh), so the
 * sweep composes with --jobs, fault injection, the observability
 * outputs and --engine trace.
 *
 *     ./strategy_shootout --mem 6 --bus 8 --pipelined --scale 0.3
 *     ./strategy_shootout --engine trace --sample-period 5000
 */

#include <iostream>
#include <memory>

#include "common/log.hh"
#include "common/strutil.hh"
#include "replay/trace_format.hh"
#include "sim/cli.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("cache-size sweep across all fetch strategies");
    cli.addOption("mem", "6", "memory access time in cycles");
    cli.addOption("bus", "8", "bus width bytes (4 or 8)");
    cli.addOption("scale", "0.3", "workload scale (1.0 = paper)");
    cli.addOption("sizes", "16,32,64,128,256,512",
                  "comma-separated cache sizes");
    cli.addFlag("pipelined", "pipelined external memory");
    cli.addFlag("tib", "include the target-instruction-buffer strategy");
    cli.addFlag("csv", "emit CSV instead of a text table");
    registerStandardFlags(cli);
    if (!cli.parse(argc, argv))
        return 0;
    const StandardFlags flags = standardFlagsFromCli(cli);

    const auto bench =
        workloads::buildLivermoreBenchmark(cli.getDouble("scale"));

    SweepSpec spec;
    if (cli.getFlag("tib"))
        spec.strategies.insert(spec.strategies.begin() + 1, "tib");
    spec.mem.accessTime = unsigned(cli.getInt("mem"));
    spec.mem.busWidthBytes = unsigned(cli.getInt("bus"));
    spec.mem.pipelined = cli.getFlag("pipelined");
    spec.cacheSizes.clear();
    for (const auto &part : split(cli.get("sizes"), ','))
        spec.cacheSizes.push_back(unsigned(*parseInt(part)));
    applyStandardFlags(spec, flags);
    const auto trace = prepareSweepTrace(spec, flags, bench.program);

    std::cout << "total cycles, " << bench.kernels.size()
              << " Livermore loops, mem=" << spec.mem.accessTime
              << " bus=" << spec.mem.busWidthBytes
              << (spec.mem.pipelined ? " pipelined" : " non-pipelined")
              << "\n\n";

    const SweepResult result = runCacheSweep(spec, bench.program);
    std::cout << (cli.getFlag("csv") ? result.table.toCsv()
                                     : result.table.toText());
    if (!result.ok())
        std::cout << "\n" << result.failureReport();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
