/**
 * Strategy shootout: sweep cache sizes for every fetch strategy on a
 * configurable machine and print the figure-style table — a
 * generalisation of the paper's Figures 4-6 to any parameter point.
 *
 *     ./strategy_shootout --mem 6 --bus 8 --pipelined --scale 0.3
 */

#include <iostream>
#include <memory>

#include "common/log.hh"
#include "common/strutil.hh"
#include "fault/fault_cli.hh"
#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("cache-size sweep across all fetch strategies");
    cli.addOption("mem", "6", "memory access time in cycles");
    cli.addOption("bus", "8", "bus width bytes (4 or 8)");
    cli.addOption("scale", "0.3", "workload scale (1.0 = paper)");
    cli.addOption("sizes", "16,32,64,128,256,512",
                  "comma-separated cache sizes");
    cli.addOption("jobs", "0",
                  "parallel sweep workers (0 = PIPESIM_JOBS env or "
                  "hardware concurrency, 1 = serial)");
    cli.addFlag("pipelined", "pipelined external memory");
    cli.addFlag("tib", "include the target-instruction-buffer strategy");
    cli.addFlag("csv", "emit CSV instead of a text table");
    obs::ObsOptions::addOptions(cli);
    cli.addOption("obs-point", "16-16:128",
                  "sweep point (strategy:cachebytes) the observability "
                  "outputs apply to");
    fault::addFaultOptions(cli);
    cli.addOption("fi-point", "",
                  "restrict fault injection to one sweep point "
                  "(strategy:cachebytes); empty = every point");
    cli.addFlag("fail-fast",
                "abort the sweep on the first point failure instead of "
                "rendering ERR cells and reporting at the end");
    cli.addOption("point-retries", "0",
                  "extra attempts granted to a failing sweep point");
    if (!cli.parse(argc, argv))
        return 0;
    const auto obs_opts = obs::ObsOptions::fromCli(cli);

    const auto bench =
        workloads::buildLivermoreBenchmark(cli.getDouble("scale"));

    SweepSpec spec;
    const std::int64_t jobs = cli.getInt("jobs");
    if (jobs < 0)
        fatal("--jobs must be >= 0, got ", jobs);
    spec.jobs = unsigned(jobs);
    if (cli.getFlag("tib"))
        spec.strategies.insert(spec.strategies.begin() + 1, "tib");
    spec.mem.accessTime = unsigned(cli.getInt("mem"));
    spec.mem.busWidthBytes = unsigned(cli.getInt("bus"));
    spec.mem.pipelined = cli.getFlag("pipelined");
    spec.cacheSizes.clear();
    for (const auto &part : split(cli.get("sizes"), ','))
        spec.cacheSizes.push_back(unsigned(*parseInt(part)));
    spec.fault = fault::faultConfigFromCli(cli);
    spec.faultPoint = cli.get("fi-point");
    const std::int64_t retries = cli.getInt("point-retries");
    if (retries < 0)
        fatal("--point-retries must be >= 0, got ", retries);
    spec.pointRetries = unsigned(retries);
    spec.failurePolicy = cli.getFlag("fail-fast")
                             ? SweepFailurePolicy::FailFast
                             : SweepFailurePolicy::CollectAndContinue;

    std::cout << "total cycles, " << bench.kernels.size()
              << " Livermore loops, mem=" << spec.mem.accessTime
              << " bus=" << spec.mem.busWidthBytes
              << (spec.mem.pipelined ? " pipelined" : " non-pipelined")
              << "\n\n";

    if (obs_opts.any()) {
        const std::string point = cli.get("obs-point");
        auto session =
            std::make_shared<std::optional<obs::ObsSession>>();
        spec.preRun = [session, obs_opts, point](
                          Simulator &sim, const std::string &strategy,
                          unsigned cache) {
            if (strategy + ":" + std::to_string(cache) == point)
                session->emplace(obs_opts, sim);
        };
        auto produced = std::make_shared<bool>(false);
        spec.postRun = [session, produced](Simulator &,
                                           const std::string &, unsigned,
                                           const SimResult &result) {
            if (session->has_value()) {
                (*session)->finish(result);
                session->reset();
                *produced = true;
            }
        };
        spec.onSweepEnd = [produced, point]() {
            if (!*produced)
                warn("--obs-point " + point +
                     " matched no sweep point that ran; no "
                     "observability output was produced");
        };
    }

    const SweepResult result = runCacheSweep(spec, bench.program);
    std::cout << (cli.getFlag("csv") ? result.table.toCsv()
                                     : result.table.toText());
    if (!result.ok())
        std::cout << "\n" << result.failureReport();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
