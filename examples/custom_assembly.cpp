/**
 * Custom assembly: assemble and run your own PIPE program, with an
 * optional per-instruction trace.  With no file argument a built-in
 * demo program (queue-based memcpy with loop control) runs.
 *
 *     ./custom_assembly [file.s] [--strategy conv] [--trace]
 */

#include <iostream>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "trace/trace.hh"

using namespace pipesim;

namespace
{

/** Copy 8 words through the architectural queues, then checksum. */
const char *demoProgram = R"(
; queue-based memcpy + checksum demo
.equ    N, 8
        li   r1, src
        li   r2, dst
        li   r3, N
        li   r4, 0          ; checksum
        lbr  b0, loop
loop:
        ld   [r1 + 0]       ; LAQ <- &src[i]
        addi r1, r1, 4
        st   [r2 + 0]       ; SAQ <- &dst[i]
        addi r2, r2, 4
        mov  r5, r7         ; value from LDQ
        mov  r7, r5         ; push to SDQ (store data)
        add  r4, r4, r5     ; checksum
        subi r3, r3, 1
        pbr  b0, 0, nez, r3
        li   r6, sum
        st   [r6 + 0]
        mov  r7, r4
        halt
.data 0x4000
src:    .word 1, 2, 3, 4, 5, 6, 7, 8
dst:    .space 32
sum:    .word 0
)";

} // namespace

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("assemble and run a PIPE assembly program");
    cli.addOption("strategy", "16-16", "fetch strategy");
    cli.addOption("cache", "128", "instruction cache bytes");
    cli.addOption("mem", "1", "memory access time");
    cli.addFlag("trace", "print every retired instruction");
    cli.addFlag("list", "print the assembled program and exit");
    // Single run: no sweep/engine groups, just obs + fault.
    const StandardFlagGroups groups{false, false};
    registerStandardFlags(cli, groups);
    if (!cli.parse(argc, argv))
        return 0;
    const StandardFlags flags = standardFlagsFromCli(cli, groups);

    Program program =
        cli.positional().empty()
            ? assembler::assemble(demoProgram)
            : assembler::assembleFile(cli.positional()[0]);

    if (cli.getFlag("list")) {
        for (Addr a = program.codeBase(); program.inCode(a);) {
            const auto inst = *program.decodeAt(a);
            std::cout << a << ":\t" << isa::disassemble(inst) << "\n";
            a += inst.sizeBytes();
        }
        return 0;
    }

    SimConfig cfg;
    const std::string strategy = cli.get("strategy");
    cfg.fetch = strategy == "conv"
                    ? conventionalConfigFor(unsigned(cli.getInt("cache")))
                    : pipeConfigFor(strategy,
                                    unsigned(cli.getInt("cache")));
    cfg.mem.accessTime = unsigned(cli.getInt("mem"));
    cfg.fault = flags.fault;

    Simulator sim(cfg, program);
    obs::ObsSession obs_session(flags.obs, sim);
    InstructionTracer tracer(std::cout);
    if (cli.getFlag("trace"))
        tracer.attach(sim.probes());

    const SimResult res = sim.run();
    std::cout << "\nhalted after " << res.totalCycles << " cycles, "
              << res.instructions << " instructions\n";
    obs_session.finish(res, strategy);

    // For the demo program, show the results it computed.
    if (cli.positional().empty()) {
        std::cout << "dst: ";
        for (unsigned i = 0; i < 8; ++i)
            std::cout << sim.dataMemory().readWord(
                             *program.symbol("dst") + 4 * i)
                      << " ";
        std::cout << "\nchecksum: "
                  << sim.dataMemory().readWord(*program.symbol("sum"))
                  << " (expected 36)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
