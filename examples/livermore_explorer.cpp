/**
 * Livermore explorer: run a single kernel under any machine
 * configuration and dump the full statistics report, including the
 * per-queue occupancy histograms and fetch-unit counters.
 *
 *     ./livermore_explorer --kernel 7 --strategy 16-32 --cache 64 \
 *         --mem 6 --bus 8 --pipelined
 */

#include <iostream>

#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/livermore.hh"
#include "trace/pipeview.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("run one Livermore kernel and dump statistics");
    cli.addOption("kernel", "1", "kernel id (1..14)");
    cli.addOption("strategy", "16-16",
                  "conv, 8-8, 16-16, 16-32 or 32-32");
    cli.addOption("cache", "128", "instruction cache bytes");
    cli.addOption("mem", "1", "memory access time");
    cli.addOption("bus", "4", "bus width bytes");
    cli.addOption("scale", "0.2", "trip-count scale");
    cli.addFlag("pipelined", "pipelined external memory");
    cli.addFlag("data-priority", "data beats demand I-fetch");
    cli.addFlag("timeline", "print a cycle-by-cycle issue timeline");
    // Single run: no sweep/engine groups, just obs + fault.
    const StandardFlagGroups groups{false, false};
    registerStandardFlags(cli, groups);
    if (!cli.parse(argc, argv))
        return 0;
    const StandardFlags flags = standardFlagsFromCli(cli, groups);

    const auto kernel = workloads::livermoreKernel(
        int(cli.getInt("kernel")), cli.getDouble("scale"));
    std::vector<codegen::Kernel> kernels{kernel};
    const auto bench = workloads::buildBenchmark(kernels);
    const auto &info = bench.codeInfo[0];

    SimConfig cfg;
    const std::string strategy = cli.get("strategy");
    cfg.fetch = strategy == "conv"
                    ? conventionalConfigFor(unsigned(cli.getInt("cache")))
                    : pipeConfigFor(strategy,
                                    unsigned(cli.getInt("cache")));
    cfg.mem.accessTime = unsigned(cli.getInt("mem"));
    cfg.mem.busWidthBytes = unsigned(cli.getInt("bus"));
    cfg.mem.pipelined = cli.getFlag("pipelined");
    cfg.mem.instructionPriority = !cli.getFlag("data-priority");
    cfg.fault = flags.fault;

    std::cout << "kernel " << kernel.id << " (" << kernel.name << "): "
              << kernel.tripCount << " iterations, inner loop "
              << info.innerLoopBytes << " bytes, " << info.delaySlots
              << " delay slots\n\n";

    Simulator sim(cfg, bench.program);
    obs::ObsSession obs_session(flags.obs, sim);
    PipeViewer viewer;
    SimResult res;
    if (cli.getFlag("timeline")) {
        viewer.run(sim);
        res = sim.result();
    } else {
        res = sim.run();
    }

    std::string diag;
    const bool ok = workloads::verifyAgainstReference(
        sim.dataMemory(), kernel, info, &diag);

    std::cout << "cycles:       " << res.totalCycles << "\n"
              << "instructions: " << res.instructions << "\n"
              << "CPI:          " << res.cpi() << "\n"
              << "verification: " << (ok ? "ok (bit-exact)" : diag)
              << "\n\n--- statistics ---\n"
              << sim.stats().dump();
    if (cli.getFlag("timeline")) {
        std::cout << "\n--- timeline (I=issue f=fetch-starve "
                     "d=ldq-wait q=queue-full) ---\n"
                  << viewer.timeline() << viewer.summary() << "\n";
    }
    obs_session.finish(res, "k" + std::to_string(kernel.id) + ":" +
                                strategy);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
