/**
 * pipesim-client: submit one sweep to a pipesim-serve daemon and
 * render the streamed results (docs/serving.md).
 *
 *     pipesim-client --socket /path/daemon.sock [sweep flags...]
 *     pipesim-client --host 127.0.0.1 --port 7421 [sweep flags...]
 *     pipesim-client --socket S --request req.json   # raw request
 *
 * Builds the request from the familiar sweep flags (--workload,
 * --cache-sizes, --strategies, --engine, --fi-*, ...) unless
 * --request supplies a ready-made JSON line ("-" = stdin).  The
 * event stream renders as: progress and per-point notes on stderr,
 * the final table text on stdout (byte-identical to the same sweep
 * run locally), and optionally the raw NDJSON events into --events.
 *
 * Exit codes: 0 success, 1 request rejected or any point failed,
 * 2 stream ended before the table (daemon interrupted or crashed).
 */

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/strutil.hh"
#include "obs/json.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"

using namespace pipesim;

namespace
{

int
connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("client: cannot create socket: ", std::strerror(errno));
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("client: socket path too long: ", path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        fatal("client: cannot connect to ", path, ": ",
              std::strerror(errno));
    }
    return fd;
}

int
connectTcp(const std::string &host, unsigned port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("client: cannot create socket: ", std::strerror(errno));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("client: --host must be an IPv4 address, got ", host);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        fatal("client: cannot connect to ", host, ":", port, ": ",
              std::strerror(errno));
    }
    return fd;
}

void
addSweepRequestOptions(CliParser &cli)
{
    cli.addOption("id", "cli", "request id echoed in every event");
    cli.addOption("workload", "livermore",
                  "workload: livermore | branchy");
    cli.addOption("scale", "1.0", "livermore trip-count multiplier");
    cli.addOption("cache-sizes", "",
                  "comma list of cache sizes in bytes (empty = "
                  "server default grid)");
    cli.addOption("strategies", "",
                  "comma list of strategies (empty = server default)");
    cli.addOption("engine", "cycle", "point engine: cycle | trace");
    cli.addOption("trace-file", "",
                  "server-side trace path for --engine trace");
    cli.addOption("sample-period", "0",
                  "trace engine: sampling period (0 = exact)");
    cli.addOption("sample-warmup", "300",
                  "trace engine: warm-up insts per window");
    cli.addOption("sample-measure", "700",
                  "trace engine: measured insts per window");
    cli.addOption("point-retries", "0",
                  "extra attempts for a failing point");
    cli.addOption("retry-backoff-ms", "10",
                  "deterministic retry back-off base (0 = none)");
    cli.addOption("point-deadline-ms", "0",
                  "per-attempt wall-clock deadline (0 = none)");
    cli.addOption("max-cycles", "0",
                  "per-point cycle watchdog override (0 = default)");
    cli.addOption("progress-window", "0",
                  "per-point progress watchdog override");
    cli.addOption("fi-kind", "none",
                  "fault kinds: none, all, or latency,grant,parity");
    cli.addOption("fi-seed", "1", "fault-injection seed");
    cli.addOption("fi-rate", "0.01", "per-opportunity fault rate");
    cli.addOption("fi-point", "",
                  "restrict injection to strategy:cachebytes");
}

std::string
buildRequestLine(const CliParser &cli)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("type").value("sweep");
    w.key("id").value(cli.get("id"));
    w.key("workload").value(cli.get("workload"));
    w.key("scale").value(cli.getDouble("scale"));
    if (!cli.get("cache-sizes").empty()) {
        w.key("cache_sizes").beginArray();
        for (const std::string &s : split(cli.get("cache-sizes"), ','))
            w.value(std::uint64_t(std::stoull(s)));
        w.endArray();
    }
    if (!cli.get("strategies").empty()) {
        w.key("strategies").beginArray();
        for (const std::string &s : split(cli.get("strategies"), ','))
            w.value(s);
        w.endArray();
    }
    w.key("engine").value(cli.get("engine"));
    if (!cli.get("trace-file").empty())
        w.key("trace_file").value(cli.get("trace-file"));
    for (const char *opt : {"sample-period", "sample-warmup",
                            "sample-measure", "point-retries",
                            "retry-backoff-ms", "point-deadline-ms",
                            "max-cycles", "progress-window"}) {
        std::string key(opt);
        for (char &c : key)
            if (c == '-')
                c = '_';
        w.key(key).value(std::uint64_t(cli.getInt(opt)));
    }
    if (cli.get("fi-kind") != "none") {
        w.key("fault").beginObject();
        w.key("kinds").value(cli.get("fi-kind"));
        w.key("seed").value(std::uint64_t(cli.getInt("fi-seed")));
        w.key("rate").value(cli.getDouble("fi-rate"));
        if (!cli.get("fi-point").empty())
            w.key("point").value(cli.get("fi-point"));
        w.endObject();
    }
    w.endObject();
    return os.str();
}

std::string
loadRequestLine(const std::string &path)
{
    std::ostringstream buf;
    if (path == "-") {
        buf << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        if (!in)
            fatal("client: cannot read --request file ", path);
        buf << in.rdbuf();
    }
    std::string line = buf.str();
    const std::size_t nl = line.find('\n');
    if (nl != std::string::npos)
        line.resize(nl);
    if (line.empty())
        fatal("client: --request ", path, " is empty");
    return line;
}

/** Render one event line; @return an exit code once terminal. */
std::optional<int>
renderEvent(const std::string &line, bool &anyFailed)
{
    const std::optional<obs::JsonValue> doc = obs::parseJson(line);
    if (!doc || !doc->isObject()) {
        std::cerr << "[client] unparseable event: " << line << "\n";
        return std::nullopt;
    }
    const obs::JsonValue *ev = doc->find("event");
    const std::string event =
        ev && ev->type == obs::JsonValue::Type::String ? ev->string
                                                       : "";
    auto str = [&](const char *k) {
        const obs::JsonValue *v = doc->find(k);
        return v && v->type == obs::JsonValue::Type::String ? v->string
                                                            : "";
    };
    auto num = [&](const char *k) -> std::uint64_t {
        const obs::JsonValue *v = doc->find(k);
        return v && v->type == obs::JsonValue::Type::Number
                   ? std::uint64_t(v->number)
                   : 0;
    };
    if (event == "error") {
        std::cerr << "[client] request failed: " << str("message")
                  << "\n";
        return 1;
    }
    if (event == "accepted") {
        std::cerr << "[client] accepted: " << num("points")
                  << " points, " << num("cached")
                  << " already cached (program "
                  << str("program_sha256").substr(0, 16) << "..., "
                  << str("engine") << ")\n";
    } else if (event == "progress") {
        std::cerr << "[client] progress: " << num("done") << "/"
                  << num("total") << " points\n";
    } else if (event == "err") {
        anyFailed = true;
        std::cerr << "[client] point " << str("strategy") << ":"
                  << num("cache_bytes") << " failed after "
                  << num("attempts") << " attempts: " << str("message")
                  << "\n";
    } else if (event == "table") {
        std::cout << str("text");
        std::cout.flush();
    } else if (event == "stats") {
        std::cerr << "[client] done: " << num("points") << " points ("
                  << num("cached") << " cached, " << num("simulated")
                  << " simulated, " << num("failed") << " failed)\n";
        return anyFailed ? 1 : 0;
    }
    return std::nullopt;
}

int
run(int argc, char **argv)
{
    CliParser cli("submit one sweep request to a pipesim-serve "
                  "daemon and render the streamed results "
                  "(docs/serving.md)");
    cli.addOption("socket", "", "daemon Unix-domain socket path");
    cli.addOption("host", "127.0.0.1", "daemon TCP host (with --port)");
    cli.addOption("port", "0", "daemon TCP port (0 = use --socket)");
    cli.addOption("request", "",
                  "send this JSON request file verbatim ('-' = "
                  "stdin) instead of building one from the flags");
    cli.addOption("events", "",
                  "also append the raw NDJSON event stream here");
    addSweepRequestOptions(cli);
    if (!cli.parse(argc, argv))
        return 0;

    const std::string request = !cli.get("request").empty()
                                    ? loadRequestLine(cli.get("request"))
                                    : buildRequestLine(cli);

    const std::int64_t port = cli.getInt("port");
    if (port < 0 || port > 65535)
        fatal("--port must be in [0, 65535], got ", port);
    if (port == 0 && cli.get("socket").empty())
        fatal("client: --socket (or --host/--port) is required");
    const int fd = port ? connectTcp(cli.get("host"), unsigned(port))
                        : connectUnix(cli.get("socket"));

    std::ofstream events;
    if (!cli.get("events").empty()) {
        events.open(cli.get("events"), std::ios::app);
        if (!events)
            fatal("client: cannot open --events file ",
                  cli.get("events"));
    }

    const std::string line = request + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::send(fd, line.data() + off, line.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            fatal("client: send failed: ", std::strerror(errno));
        }
        off += std::size_t(n);
    }

    std::string buffer;
    char chunk[4096];
    bool anyFailed = false;
    int exitCode = 2; // stream ended before the stats event
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        buffer.append(chunk, std::size_t(n));
        std::size_t nl;
        bool terminal = false;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            const std::string evLine = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (events.is_open())
                events << evLine << "\n";
            if (const auto code = renderEvent(evLine, anyFailed)) {
                exitCode = *code;
                terminal = true;
            }
        }
        if (terminal)
            break;
    }
    ::close(fd);
    if (exitCode == 2)
        std::cerr << "[client] stream ended before completion "
                     "(daemon interrupted?)\n";
    return exitCode;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuardedMain([&] { return run(argc, argv); });
}
