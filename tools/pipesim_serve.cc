/**
 * pipesim-serve: the batch sweep daemon (docs/serving.md).
 *
 *     pipesim-serve --socket /path/daemon.sock [--port 7421]
 *                   [--jobs N] [--store-dir DIR]
 *
 * Listens on a Unix-domain socket (and optionally loopback TCP) for
 * newline-delimited JSON sweep requests, schedules their points
 * fairly on one shared worker pool, serves repeated points from the
 * content-addressed result store, and streams NDJSON result events
 * back (src/server/).  SIGTERM drains in-flight points into the
 * journal and exits 128+sig; a SIGKILLed daemon loses at most the
 * records being written and resumes from the journal on restart.
 */

#include "common/log.hh"
#include "server/server.hh"
#include "sim/cli.hh"
#include "sim/guard.hh"

using namespace pipesim;

int
main(int argc, char **argv)
{
    return runGuardedMain([&] {
        CliParser cli("batch sweep daemon: accepts NDJSON sweep "
                      "requests on a Unix-domain socket and streams "
                      "results back (docs/serving.md)");
        cli.addOption("socket", "", "Unix-domain socket path to "
                                    "listen on (required)");
        cli.addOption("port", "0", "also listen on 127.0.0.1:<port> "
                                   "(0 = unix socket only)");
        cli.addOption("jobs", "0", "simulation workers (0 = "
                                   "PIPESIM_JOBS or hardware "
                                   "concurrency)");
        cli.addOption("store-dir", "",
                      "content-addressed result store directory "
                      "(empty = no caching)");
        if (!cli.parse(argc, argv))
            return 0;

        server::ServeOptions opts;
        opts.socketPath = cli.get("socket");
        const std::int64_t port = cli.getInt("port");
        if (port < 0 || port > 65535)
            fatal("--port must be in [0, 65535], got ", port);
        opts.port = unsigned(port);
        const std::int64_t jobs = cli.getInt("jobs");
        if (jobs < 0)
            fatal("--jobs must be >= 0, got ", jobs);
        opts.jobs = unsigned(jobs);
        opts.storeDir = cli.get("store-dir");
        return server::runServer(opts);
    });
}
