/**
 * pipesim-trace: capture, inspect and replay committed-instruction
 * traces (docs/trace_replay.md).
 *
 *     pipesim-trace capture    <out.pipetrc> [--workload ...] [--scale f]
 *     pipesim-trace inspect    <trace.pipetrc>
 *     pipesim-trace replay     <trace.pipetrc> [--strategy s] [--cache n]
 *                              [--sample-period n] [--jobs n]
 *                              [--ckpt-dir d [--ckpt-create]]
 *                              [--stats-json path]
 *     pipesim-trace checkpoint <ckpt.pipeckpt> [--json]
 *     pipesim-trace store      inspect <store-dir> [--json]
 *     pipesim-trace store      compact <store-dir>
 *
 * A trace stores the committed fetch-address stream plus the traced
 * program's sha256, so `replay` rebuilds the same workload
 * (--workload/--scale must match the capture) and refuses a trace
 * whose program hash disagrees.  Replay is exact (bit-identical
 * counters and cycle count) by default; --sample-period enables
 * systematic sampling for a fast estimate, whose windows can run on a
 * thread pool (--jobs) and skip their warm-ups entirely via a
 * live-points checkpoint directory (--ckpt-dir; create the snapshots
 * first with --ckpt-create).  `checkpoint` inspects a PIPECKPT file.
 * `store` inspects or compacts a sweep result store (a PIPERES
 * journal written by --store-dir; see docs/robustness.md).
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/stats_export.hh"
#include "replay/capture.hh"
#include "replay/checkpoint.hh"
#include "replay/replay_engine.hh"
#include "replay/trace_format.hh"
#include "sim/cli.hh"
#include "sim/config.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "store/result_store.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;

namespace
{

void
addWorkloadOptions(CliParser &cli)
{
    cli.addOption("workload", "livermore",
                  "traced workload: livermore | branchy | "
                  "synth:<insts> (synthetic loop sized to ~<insts> "
                  "dynamic instructions)");
    cli.addOption("scale", "1.0",
                  "livermore workload scale (1.0 = paper size)");
}

Program
buildWorkload(const CliParser &cli)
{
    const std::string name = cli.get("workload");
    if (name == "livermore")
        return workloads::buildLivermoreBenchmark(cli.getDouble("scale"))
            .program;
    if (name == "branchy")
        return workloads::buildBranchyProgram({}).program;
    if (name.rfind("synth:", 0) == 0) {
        const std::uint64_t target =
            std::stoull(name.substr(std::string("synth:").size()));
        return workloads::buildSyntheticStream(target).program;
    }
    fatal("unknown --workload '", name,
          "' (expected livermore, branchy or synth:<insts>)");
}

int
runCapture(CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() != 2)
        fatal("capture needs exactly one output path: pipesim-trace "
              "capture <out.pipetrc>");
    const Program program = buildWorkload(cli);
    replay::Trace trace = replay::captureTrace(
        SimConfig{}, program,
        "pipesim-trace capture --workload " + cli.get("workload"));
    replay::writeTrace(trace, args[1]);
    std::cout << "wrote " << args[1] << "\n"
              << replay::describeTrace(trace);
    return 0;
}

int
runInspect(CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() != 2)
        fatal("inspect needs exactly one trace path: pipesim-trace "
              "inspect <trace.pipetrc>");
    const replay::Trace trace = replay::readTrace(args[1]);
    std::cout << replay::describeTrace(trace);
    std::uint64_t loads = 0, stores = 0, taken = 0, notTaken = 0;
    for (const auto &r : trace.records) {
        if (r.hasMemAddr)
            ++(r.memIsStore ? stores : loads);
        if (r.isPbr)
            ++(r.branchTaken ? taken : notTaken);
    }
    std::cout << "loads:             " << loads << "\n"
              << "stores:            " << stores << "\n"
              << "pbr taken:         " << taken << "\n"
              << "pbr not taken:     " << notTaken << "\n";
    return 0;
}

int
runReplay(CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() != 2)
        fatal("replay needs exactly one trace path: pipesim-trace "
              "replay <trace.pipetrc>");
    const replay::Trace trace = replay::readTrace(args[1]);
    const Program program = buildWorkload(cli);

    SimConfig cfg;
    const std::string strategy = cli.get("strategy");
    const unsigned cache = unsigned(cli.getInt("cache"));
    if (strategy == "conv")
        cfg.fetch = conventionalConfigFor(cache, 16);
    else if (strategy == "tib")
        cfg.fetch = tibConfigFor(cache);
    else
        cfg.fetch = pipeConfigFor(strategy, cache);

    replay::ReplayOptions opt;
    opt.samplePeriod = unsigned(cli.getInt("sample-period"));
    opt.sampleWarmup = unsigned(cli.getInt("sample-warmup"));
    opt.sampleMeasure = unsigned(cli.getInt("sample-measure"));
    opt.jobs = unsigned(cli.getInt("jobs"));
    opt.ckptDir = cli.get("ckpt-dir");
    opt.ckptCreate = cli.getFlag("ckpt-create");
    if (!opt.ckptDir.empty() && opt.samplePeriod == 0)
        fatal("--ckpt-dir requires --sample-period > 0: checkpoints "
              "snapshot sampling windows");
    if (opt.ckptCreate && opt.ckptDir.empty())
        fatal("--ckpt-create requires --ckpt-dir to name the "
              "checkpoint directory");

    const SimResult result =
        replay::replayTrace(cfg, program, trace, opt);
    const std::string jsonPath = cli.get("stats-json");
    // With "--stats-json -" stdout must stay pure JSON (pipeable into
    // a parser), so the human summary moves to stderr.
    (jsonPath == "-" ? std::cerr : std::cout)
        << cfg.fetchName() << ": " << result.totalCycles << " cycles, "
        << result.instructions << " instructions, cpi " << result.cpi()
        << " (" << result.meta.at("engine") << ")\n";

    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            obs::writeStatsJson(std::cout, result, nullptr,
                                cfg.fetchName());
        } else {
            std::ofstream out(jsonPath);
            if (!out)
                fatal("cannot write --stats-json file ", jsonPath);
            obs::writeStatsJson(out, result, nullptr, cfg.fetchName());
            std::cout << "stats json: " << jsonPath << "\n";
        }
    }
    return 0;
}

int
runCheckpointInspect(CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() != 2)
        fatal("checkpoint needs exactly one checkpoint path: "
              "pipesim-trace checkpoint <ckpt.pipeckpt>");
    const replay::CheckpointSet set = replay::readCheckpoint(args[1]);
    if (!cli.getFlag("json")) {
        std::cout << replay::describeCheckpoint(set);
        return 0;
    }
    obs::JsonWriter w(std::cout);
    w.beginObject();
    w.key("file_sha256").value(set.sha256);
    w.key("trace_sha256").value(set.meta.traceSha256);
    w.key("program_sha256").value(set.meta.programSha256);
    w.key("config_sha256").value(set.meta.configSha256);
    w.key("sample_period").value(set.meta.samplePeriod);
    w.key("sample_warmup").value(set.meta.sampleWarmup);
    w.key("sample_measure").value(set.meta.sampleMeasure);
    w.key("trace_records").value(set.meta.traceRecords);
    w.key("provenance").value(set.meta.provenance);
    std::uint64_t stateBytes = 0;
    for (const auto &win : set.windows)
        stateBytes += win.payload.size();
    w.key("windows").value(std::uint64_t(set.windows.size()));
    w.key("state_bytes").value(stateBytes);
    w.endObject();
    std::cout << "\n";
    return 0;
}

int
runStore(CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() != 3 ||
        (args[1] != "inspect" && args[1] != "compact"))
        fatal("store needs an action and a directory: pipesim-trace "
              "store <inspect|compact> <store-dir>");
    store::ResultStore rs(args[2]);
    if (args[1] == "compact") {
        const std::uintmax_t before =
            std::filesystem::file_size(rs.path());
        const std::uint64_t after = rs.compact();
        std::cout << "compacted " << rs.path() << ": " << before
                  << " -> " << after << " bytes\n";
    }
    if (args[1] == "inspect" && cli.getFlag("json")) {
        obs::JsonWriter w(std::cout);
        w.beginObject();
        w.key("path").value(rs.path());
        w.key("entries").value(std::uint64_t(rs.entries()));
        w.key("recovered_bytes").value(rs.recoveredBytes());
        w.key("bytes").value(std::uint64_t(
            std::filesystem::file_size(rs.path())));
        w.key("results").beginArray();
        for (const store::StoreEntry *e : rs.entriesInOrder()) {
            w.beginObject();
            w.key("key").value(e->keyHex);
            w.key("label").value(e->label);
            w.key("cycles").value(
                std::uint64_t(e->result.totalCycles));
            w.key("instructions").value(e->result.instructions);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::cout << "\n";
        return 0;
    }
    std::cout << store::describeStore(rs);
    return 0;
}

int
run(int argc, char **argv)
{
    CliParser cli("capture, inspect and replay committed-instruction "
                  "traces (subcommands: capture | inspect | replay | "
                  "checkpoint | store)");
    addWorkloadOptions(cli);
    cli.addOption("strategy", "16-16",
                  "replay fetch strategy: conv | tib | <iq>-<iqb>");
    cli.addOption("cache", "128", "replay cache bytes");
    cli.addOption("sample-period", "0",
                  "replay sampling period in instructions (0 = exact)");
    cli.addOption("sample-warmup", "300",
                  "sampled replay: warm-up instructions per window");
    cli.addOption("sample-measure", "700",
                  "sampled replay: measured instructions per window");
    cli.addOption("jobs", "1",
                  "sampled replay: worker threads for the windows "
                  "(0 = PIPESIM_JOBS env or hardware concurrency; "
                  "results are bit-identical for any value)");
    cli.addOption("ckpt-dir", "",
                  "sampled replay: live-points checkpoint directory "
                  "(restore windows from warm snapshots)");
    cli.addFlag("ckpt-create",
                "sampled replay: create/refresh the checkpoint file "
                "under --ckpt-dir instead of requiring it");
    cli.addOption("stats-json", "",
                  "replay: write the result as JSON ('-' = stdout)");
    cli.addFlag("json",
                "checkpoint / store inspect: emit machine-readable "
                "JSON on stdout instead of the human summary");
    obs::ProfileOptions::addOptions(cli);
    if (!cli.parse(argc, argv))
        return 0;
    obs::activateProfiling(obs::ProfileOptions::fromCli(cli));

    const auto &args = cli.positional();
    if (args.empty())
        fatal("missing subcommand: pipesim-trace capture | inspect | "
              "replay | checkpoint | store (--help for usage)");
    if (args[0] == "capture")
        return runCapture(cli);
    if (args[0] == "inspect")
        return runInspect(cli);
    if (args[0] == "replay")
        return runReplay(cli);
    if (args[0] == "checkpoint")
        return runCheckpointInspect(cli);
    if (args[0] == "store")
        return runStore(cli);
    fatal("unknown subcommand '", args[0],
          "' (expected capture, inspect, replay, checkpoint or store)");
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
