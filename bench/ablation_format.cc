/**
 * Instruction-format ablation (paper simulation parameter 1): the
 * real PIPE mixes 16- and 32-bit instructions; the paper's presented
 * results use a fixed 32-bit format "to make comparisons to other
 * machines more realistic".
 *
 * This bench regenerates the benchmark in both formats and compares
 * code size and execution cycles per strategy (6-cycle memory,
 * 8-byte bus, 64-byte caches): the compact format packs more
 * instructions per line and per bus beat, benefiting small caches.
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("fixed 32-bit vs native 16/32-bit instruction format");
    auto s = bench::setup(argc, argv, "", &cli);
    if (!s)
        return 0;

    const auto fixed = workloads::buildLivermoreBenchmark(
        s->scale, isa::FormatMode::Fixed32);
    const auto compact = workloads::buildLivermoreBenchmark(
        s->scale, isa::FormatMode::Compact);

    std::cout << "static code size: fixed32 = "
              << fixed.program.codeSize()
              << " bytes, compact = " << compact.program.codeSize()
              << " bytes ("
              << 100.0 * double(compact.program.codeSize()) /
                     double(fixed.program.codeSize())
              << "%)\n\n";

    Table table({"strategy", "fixed32_cycles", "compact_cycles",
                 "ratio"});
    for (const char *strategy :
         {"conv", "8-8", "16-16", "16-32", "32-32"}) {
        SimConfig cfg;
        cfg.fetch = std::string(strategy) == "conv"
                        ? conventionalConfigFor(64, 16)
                        : pipeConfigFor(strategy, 64);
        cfg.mem.accessTime = 6;
        cfg.mem.busWidthBytes = 8;
        const auto rf = runSimulation(cfg, fixed.program);
        const auto rc = runSimulation(cfg, compact.program);
        table.beginRow();
        table.cell(strategy);
        table.cell(std::uint64_t(rf.totalCycles));
        table.cell(std::uint64_t(rc.totalCycles));
        table.cell(double(rf.totalCycles) / double(rc.totalCycles), 3);
    }
    bench::printPanel(*s, "cache = 64 bytes, mem = 6, bus = 8", table);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
