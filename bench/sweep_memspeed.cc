/**
 * Memory-speed sweep: the paper notes that "simulations with memory
 * access times of 2 and 3 clock cycles showed similar results" to
 * the 6-cycle case.  This bench regenerates the cache-size sweep for
 * every access time in {1, 2, 3, 6} (8-byte bus, non-pipelined) so
 * the trend between Figures 4 and 5 is visible.
 */

#include "bench_common.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "cache-size sweep across memory access "
                          "times 1/2/3/6");
    if (!s)
        return 0;

    for (unsigned access : {1u, 2u, 3u, 6u}) {
        SweepSpec spec;
        spec.cacheSizes = bench::paperCacheSizes();
        spec.mem.accessTime = access;
        spec.mem.busWidthBytes = 8;
        spec.mem.pipelined = false;
        bench::applySweepOptions(spec, *s);
        const SweepResult result = runCacheSweep(spec, s->benchmark.program);
        bench::printPanel(*s,
                          "memory access time = " +
                              std::to_string(access) + " cycles",
                          result);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
