/**
 * Figure 6 reproduction: total execution time vs. cache size with an
 * 8-byte bus and a 6-cycle memory access time.
 *
 *   (a) non-pipelined memory (same data as Figure 5b)
 *   (b) pipelined memory (a new request accepted every cycle)
 *
 * Expected shape (paper section 6): pipelining shifts the curves
 * down and compresses them; the best configurations have 16- or
 * 32-byte lines (the reverse of Figure 4); configuration 16-16
 * performs uniformly well across all cache sizes.
 */

#include "bench_common.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "Figure 6: bus 8 bytes, memory access time "
                          "6, non-pipelined vs pipelined");
    if (!s)
        return 0;

    for (bool pipelined : {false, true}) {
        SweepSpec spec;
        spec.cacheSizes = bench::paperCacheSizes();
        spec.mem.accessTime = 6;
        spec.mem.busWidthBytes = 8;
        spec.mem.pipelined = pipelined;
        bench::applySweepOptions(spec, *s);
        const SweepResult result = runCacheSweep(spec, s->benchmark.program);
        bench::printPanel(*s,
                          std::string("Figure 6") +
                              (pipelined ? "b: pipelined memory"
                                         : "a: non-pipelined memory"),
                          result);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
