/**
 * Figure 4 reproduction: total execution time vs. cache size for a
 * non-pipelined memory with a 1-cycle access time.
 *
 *   (a) input bus width = 4 bytes
 *   (b) input bus width = 8 bytes
 *
 * Expected shape (paper section 6): a large improvement up to the
 * knee near 128 bytes (half the inner loops fit), then flattening;
 * with the 8-byte bus, configurations 8-8 and 16-16 are nearly flat
 * — a 16-32 byte PIPE cache performs close to a 512-byte cache.
 */

#include "bench_common.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "Figure 4: cycles vs cache size, memory "
                          "access time 1, non-pipelined");
    if (!s)
        return 0;

    for (unsigned bus : {4u, 8u}) {
        SweepSpec spec;
        spec.cacheSizes = bench::paperCacheSizes();
        spec.mem.accessTime = 1;
        spec.mem.busWidthBytes = bus;
        spec.mem.pipelined = false;
        bench::applySweepOptions(spec, *s);
        const SweepResult result = runCacheSweep(spec, s->benchmark.program);
        bench::printPanel(*s,
                          std::string("Figure 4") +
                              (bus == 4 ? "a" : "b") + ": bus = " +
                              std::to_string(bus) + " bytes",
                          result);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
