/**
 * Delay-slot ablation (paper section 3.1.3): the PBR instruction lets
 * the compiler specify 0-7 delay slots, and the paper argues its
 * compiler easily fills ~4, so "if the number of delay slots can be
 * made large enough no specific branch prediction strategies are
 * necessary".
 *
 * This bench regenerates the benchmark with the code generator capped
 * at 0..7 delay slots and measures total cycles for both strategies
 * and both off-chip policies, showing:
 *   - how deep slots hide the branch-resolution latency, and
 *   - how the GuaranteedOnly policy (the fabricated chip's behaviour)
 *     suffers when the guarantee window shrinks.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("cycles vs PBR delay-slot budget");
    cli.addOption("scale", "1.0", "workload scale (1.0 = paper size)");
    cli.addFlag("csv", "CSV output");
    if (!cli.parse(argc, argv))
        return 0;
    const double scale = cli.getDouble("scale");
    const bool csv = cli.getFlag("csv");

    Table table({"max_delay_slots", "conv", "pipe_true_prefetch",
                 "pipe_guaranteed_only", "guarantee_penalty"});
    for (unsigned slots : {0u, 1u, 2u, 4u, 7u}) {
        codegen::CodeGenOptions opts;
        opts.maxDelaySlots = slots;
        const auto bench = workloads::buildLivermoreBenchmark(scale, opts);

        SimConfig conv;
        conv.fetch = conventionalConfigFor(64, 16);
        conv.mem.accessTime = 6;
        conv.mem.busWidthBytes = 8;
        const auto rc = runSimulation(conv, bench.program);

        SimConfig pipe;
        pipe.fetch = pipeConfigFor("16-16", 64);
        pipe.mem.accessTime = 6;
        pipe.mem.busWidthBytes = 8;
        pipe.fetch.offchipPolicy = OffchipPolicy::TruePrefetch;
        const auto rt = runSimulation(pipe, bench.program);
        pipe.fetch.offchipPolicy = OffchipPolicy::GuaranteedOnly;
        const auto rg = runSimulation(pipe, bench.program);

        table.beginRow();
        table.cell(slots);
        table.cell(std::uint64_t(rc.totalCycles));
        table.cell(std::uint64_t(rt.totalCycles));
        table.cell(std::uint64_t(rg.totalCycles));
        table.cell(double(rg.totalCycles) / double(rt.totalCycles), 3);
    }
    std::cout << "== cycles vs delay-slot budget (cache 64, mem 6, "
                 "bus 8) ==\n"
              << (csv ? table.toCsv() : table.toText());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
