/**
 * Figure 5 reproduction: total execution time vs. cache size for a
 * non-pipelined memory with a 6-cycle access time.
 *
 *   (a) input bus width = 4 bytes
 *   (b) input bus width = 8 bytes
 *
 * Expected shape (paper section 6): every PIPE configuration beats
 * the conventional cache at every size; at small caches the PIPE
 * configurations are far less sensitive to the bus width than the
 * conventional cache ("if one is forced to use a bus width of 4
 * bytes ... the PIPE strategy will significantly outperform the
 * conventional cache approach").
 */

#include "bench_common.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "Figure 5: cycles vs cache size, memory "
                          "access time 6, non-pipelined");
    if (!s)
        return 0;

    for (unsigned bus : {4u, 8u}) {
        SweepSpec spec;
        spec.cacheSizes = bench::paperCacheSizes();
        spec.mem.accessTime = 6;
        spec.mem.busWidthBytes = bus;
        spec.mem.pipelined = false;
        bench::applySweepOptions(spec, *s);
        const SweepResult result = runCacheSweep(spec, s->benchmark.program);
        bench::printPanel(*s,
                          std::string("Figure 5") +
                              (bus == 4 ? "a" : "b") + ": bus = " +
                              std::to_string(bus) + " bytes",
                          result);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
