/**
 * Trace-replay throughput: wall-clock instructions/second of the
 * cycle simulator vs. exact trace replay vs. sampled trace replay on
 * the same workloads, plus each engine's cycle estimate so the
 * speed/accuracy trade is visible in one table (docs/trace_replay.md;
 * results in results/trace_replay.md).
 */

#include <chrono>
#include <iostream>

#include "bench_common.hh"
#include "obs/bench_json.hh"
#include "obs/profiler.hh"
#include "replay/capture.hh"
#include "replay/replay_engine.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;

namespace
{

double
secondsOf(const std::function<void()> &body, unsigned reps)
{
    double best = 1e30;
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

int
run(int argc, char **argv)
{
    CliParser cli("trace-replay throughput vs. the cycle simulator");
    cli.addOption("scale", "1.0", "livermore workload scale");
    cli.addOption("synth", "2000000",
                  "synthetic stream target instructions (0 = skip)");
    cli.addOption("sample-period", "20000",
                  "sampled replay period (insts)");
    cli.addOption("reps", "3", "timing repetitions (best-of)");
    cli.addFlag("csv", "CSV output");
    cli.addOption("bench-json", "",
                  "write the results as a pipesim-bench JSON document "
                  "to this file");
    obs::ProfileOptions::addOptions(cli);
    if (!cli.parse(argc, argv))
        return 0;
    obs::activateProfiling(obs::ProfileOptions::fromCli(cli));

    const unsigned reps = unsigned(cli.getInt("reps"));
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.maxCycles = Cycle(1) << 40;

    struct Workload
    {
        std::string name;
        Program program;
    };
    std::vector<Workload> workloads;
    workloads.push_back(
        {"livermore",
         workloads::buildLivermoreBenchmark(cli.getDouble("scale"))
             .program});
    const auto synthTarget = std::uint64_t(cli.getInt("synth"));
    if (synthTarget > 0)
        workloads.push_back(
            {"synth-" + std::to_string(synthTarget),
             workloads::buildSyntheticStream(synthTarget).program});

    replay::ReplayOptions sampled;
    sampled.samplePeriod = unsigned(cli.getInt("sample-period"));

    obs::BenchReport report;
    report.tool = "trace_throughput";
    report.config["scale"] = cli.get("scale");
    report.config["synth"] = cli.get("synth");
    report.config["sample_period"] = cli.get("sample-period");
    report.config["reps"] = cli.get("reps");

    Table table({"workload", "insts", "engine", "est_cycles",
                 "wall_ms", "minsts_per_s", "speedup"});
    for (const auto &w : workloads) {
        const replay::Trace trace =
            replay::captureTrace(cfg, w.program, "throughput bench");
        const double insts = double(trace.records.size());

        SimResult cycleRes, exactRes, sampledRes;
        const double cycleS = secondsOf(
            [&] { cycleRes = runSimulation(cfg, w.program); }, reps);
        const double exactS = secondsOf(
            [&] { exactRes = replay::replayTrace(cfg, w.program,
                                                 trace); },
            reps);
        const double sampledS = secondsOf(
            [&] {
                sampledRes = replay::replayTrace(cfg, w.program, trace,
                                                 sampled);
            },
            reps);

        const auto row = [&](const std::string &engine,
                             const SimResult &res, double secs) {
            table.beginRow();
            table.cell(w.name);
            table.cell(std::uint64_t(insts));
            table.cell(engine);
            table.cell(std::uint64_t(res.totalCycles));
            table.cell(secs * 1e3);
            table.cell(insts / secs / 1e6);
            table.cell(cycleS / secs);

            obs::BenchRecord &rec = report.add(w.name + "/" + engine);
            rec.config["workload"] = w.name;
            rec.config["engine"] = engine;
            // The sampling confidence interval is a string on purpose:
            // a single-window run reports "n/a", not a fake 0.
            if (const auto ci = res.meta.find("cpi_rel_ci95");
                ci != res.meta.end())
                rec.config["cpi_rel_ci95"] = ci->second;
            rec.metrics["insts"] = insts;
            rec.metrics["est_cycles"] = double(res.totalCycles);
            rec.metrics["wall_ms"] = secs * 1e3;
            rec.metrics["minsts_per_s"] = insts / secs / 1e6;
            rec.metrics["speedup_vs_cycle"] = cycleS / secs;
        };
        row("cycle", cycleRes, cycleS);
        row("trace-exact", exactRes, exactS);
        row("trace-sampled", sampledRes, sampledS);
    }
    std::cout << (cli.getFlag("csv") ? table.toCsv() : table.toText())
              << "\n";
    const std::string benchJson = cli.get("bench-json");
    if (!benchJson.empty()) {
        report.writeFile(benchJson);
        std::cerr << "wrote bench results to " << benchJson << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
