/**
 * Simulator throughput microbenchmarks (google-benchmark): host
 * cycles-per-second of the cycle model for both fetch strategies,
 * plus the cost of program generation and assembly.  These measure
 * the simulator itself, not the simulated machine.
 *
 * The probe-overhead pairs guard the observability layer's "free when
 * detached" property: BM_SimulatePipe/BM_SimulateConventional run
 * with every listener detached (cpiStack off) and must stay within a
 * few percent of the pre-probe-bus simulation rate;
 * BM_SimulatePipeCpiStack and BM_SimulatePipeTraced show what the
 * attached consumers cost.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "assembler/assembler.hh"
#include "common/log.hh"
#include "obs/bench_json.hh"
#include "obs/trace_export.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

/** Standard flags (fault injection, profiling) applied to every BM_
 *  body; filled by main() before RunSpecifiedBenchmarks. */
StandardFlags g_flags;

const workloads::Benchmark &
smallBench()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.05);
    return b;
}

void
BM_SimulatePipe(benchmark::State &state)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = unsigned(state.range(0));
    cfg.cpiStack = false; // raw rate: no probe listener attached
    cfg.fault = g_flags.fault;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto res = runSimulation(cfg, smallBench().program);
        cycles += res.totalCycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatePipe)->Arg(1)->Arg(6);

void
BM_SimulateConventional(benchmark::State &state)
{
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(128, 16);
    cfg.mem.accessTime = unsigned(state.range(0));
    cfg.cpiStack = false; // raw rate: no probe listener attached
    cfg.fault = g_flags.fault;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto res = runSimulation(cfg, smallBench().program);
        cycles += res.totalCycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateConventional)->Arg(1)->Arg(6);

void
BM_SimulatePipeCpiStack(benchmark::State &state)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = unsigned(state.range(0));
    cfg.cpiStack = true; // the default: cycle accountant attached
    cfg.fault = g_flags.fault;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto res = runSimulation(cfg, smallBench().program);
        cycles += res.totalCycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatePipeCpiStack)->Arg(1)->Arg(6);

void
BM_SimulatePipeTraced(benchmark::State &state)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = unsigned(state.range(0));
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim(cfg, smallBench().program);
        obs::ChromeTraceWriter trace;
        trace.attach(sim.probes());
        const auto res = sim.run();
        trace.detach();
        cycles += res.totalCycles;
        events += trace.eventCount();
        benchmark::DoNotOptimize(events);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
    state.counters["trace_events_per_run"] =
        double(events) / double(state.iterations());
}
BENCHMARK(BM_SimulatePipeTraced)->Arg(1)->Arg(6);

const workloads::Benchmark &
paperBench()
{
    static const auto b = workloads::buildLivermoreBenchmark(1.0);
    return b;
}

/**
 * Sweep throughput: one full figure-style sweep (7 sizes x 5
 * strategies, paper-scale Livermore workload) per iteration, with the
 * worker count as the argument.  Arg(1) is the serial baseline; the
 * serial-vs-parallel ratio is the wall-clock speedup recorded in
 * results/simspeed_parallel.md.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    SweepSpec spec;
    spec.jobs = unsigned(state.range(0));
    spec.fault = g_flags.fault;
    spec.mem.accessTime = 6;
    spec.mem.busWidthBytes = 8;
    unsigned valid = 0;
    for (const auto &strategy : spec.strategies)
        for (unsigned size : spec.cacheSizes)
            valid += sweepPointValid(spec, strategy, size) ? 1 : 0;
    for (auto _ : state) {
        const SweepResult r = runCacheSweep(spec, paperBench().program);
        benchmark::DoNotOptimize(r.table.numRows());
    }
    state.counters["sweep_points_per_s"] = benchmark::Counter(
        double(valid) * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_BuildBenchmark(benchmark::State &state)
{
    for (auto _ : state) {
        const auto b = workloads::buildLivermoreBenchmark(0.05);
        benchmark::DoNotOptimize(b.program.codeSize());
    }
}
BENCHMARK(BM_BuildBenchmark);

void
BM_Assemble(benchmark::State &state)
{
    const char *src = R"(
        li r1, 0x4000
        li r2, 100
        lbr b0, loop
    loop:
        ld [r1 + 0]
        addi r1, r1, 4
        add r3, r3, r7
        subi r2, r2, 1
        pbr b0, 2, nez, r2
        nop
        nop
        halt
    )";
    for (auto _ : state) {
        const Program p = assembler::assemble(src);
        benchmark::DoNotOptimize(p.codeSize());
    }
}
BENCHMARK(BM_Assemble);

/**
 * ConsoleReporter that additionally captures every per-iteration run
 * into a pipesim-bench report: the printed output is unchanged, but
 * --bench-json gets a machine-readable copy with raw counter values
 * and their rate forms (scripts/perf_report.py diffs these).
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CapturingReporter(obs::BenchReport &report)
        : _report(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            obs::BenchRecord &rec = _report.add(run.benchmark_name());
            rec.metrics["iterations"] = double(run.iterations);
            rec.metrics["real_time_s_per_iter"] =
                run.iterations
                    ? run.real_accumulated_time / double(run.iterations)
                    : 0.0;
            // Counters reach the reporter already "finished" (rate
            // counters hold the displayed per-second value).
            for (const auto &[name, counter] : run.counters)
                rec.metrics[name] = counter.value;
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    obs::BenchReport &_report;
};

} // namespace

// Guarded main on the standard flag surface: pipesim options (fault
// injection, host profiling, --bench-json) parse through CliParser,
// while --benchmark_* arguments pass through to google-benchmark.
int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&]() -> int {
        // Split argv: google-benchmark flags keep their --benchmark_*
        // prefix; everything else (argv[0] included) is ours.
        std::vector<char *> gbArgs = {argv[0]};
        std::vector<const char *> ourArgs = {argv[0]};
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]).rfind("--benchmark", 0) == 0)
                gbArgs.push_back(argv[i]);
            else
                ourArgs.push_back(argv[i]);
        }

        CliParser cli("Simulator throughput microbenchmarks "
                      "(google-benchmark); also accepts --benchmark_* "
                      "arguments");
        registerStandardFlags(cli, {false, false});
        cli.addOption("bench-json", "",
                      "write the results as a pipesim-bench JSON "
                      "document to this file");
        if (!cli.parse(int(ourArgs.size()), ourArgs.data()))
            return 0;
        g_flags = standardFlagsFromCli(cli, {false, false});
        if (g_flags.obs.any())
            warn("--cpi-stack/--trace-json/--stats-json have no effect "
                 "here: the microbenchmarks run thousands of "
                 "simulations; use an example or figure bench for "
                 "per-run observability outputs");
        const std::string benchJson = cli.get("bench-json");

        int gbArgc = int(gbArgs.size());
        benchmark::Initialize(&gbArgc, gbArgs.data());
        if (benchmark::ReportUnrecognizedArguments(gbArgc,
                                                   gbArgs.data()))
            return 1;

        obs::BenchReport report;
        report.tool = "micro_simspeed";
        report.config["workload"] = "livermore";
        report.config["fault_kinds"] =
            g_flags.fault.enabled() ? "enabled" : "none";
        CapturingReporter reporter(report);
        benchmark::RunSpecifiedBenchmarks(&reporter);
        benchmark::Shutdown();

        if (!benchJson.empty()) {
            report.writeFile(benchJson);
            std::cerr << "wrote bench results to " << benchJson << "\n";
        }
        return 0;
    });
}
