/**
 * IQ/IQB size ablation (paper simulation parameters 7 and 8): with
 * the line size held at 16 bytes, sweep the instruction queue and
 * instruction queue buffer capacities to show how the lookahead
 * window drives performance (6-cycle memory, 8-byte bus).
 *
 * Table II itself ties IQ/IQB to the line size; this ablation
 * separates the effects.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "IQ/IQB size sweep at a fixed 16-byte line");
    if (!s)
        return 0;

    for (unsigned cache : {32u, 128u}) {
        Table table({"iq_bytes", "iqb_bytes", "cycles"});
        for (unsigned iq : {8u, 16u, 32u}) {
            for (unsigned iqb : {16u, 32u, 64u}) {
                SimConfig cfg;
                cfg.fetch.strategy = FetchStrategy::Pipe;
                cfg.fetch.cacheBytes = cache;
                cfg.fetch.lineBytes = 16;
                cfg.fetch.iqBytes = iq;
                cfg.fetch.iqbBytes = iqb;
                cfg.mem.accessTime = 6;
                cfg.mem.busWidthBytes = 8;
                const auto res =
                    runSimulation(cfg, s->benchmark.program);
                table.beginRow();
                table.cell(iq);
                table.cell(iqb);
                table.cell(std::uint64_t(res.totalCycles));
            }
        }
        bench::printPanel(*s,
                          "cache = " + std::to_string(cache) +
                              " bytes, line = 16 bytes",
                          table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
