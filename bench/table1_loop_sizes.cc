/**
 * Table I reproduction: inner-loop sizes (bytes) of the 14 Lawrence
 * Livermore loops, plus the total dynamic instruction count of a
 * benchmark run (the paper reports 150,575).
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

/** Paper Table I inner-loop sizes, for side-by-side comparison. */
const unsigned paperSizes[14] = {116, 204, 64,  80, 76, 72, 288,
                                 732, 272, 260, 56, 56, 328, 224};

} // namespace

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "Table I: Livermore inner-loop sizes");
    if (!s)
        return 0;

    Table table({"loop", "name", "inner_loop_bytes", "paper_bytes",
                 "delay_slots"});
    for (std::size_t i = 0; i < s->benchmark.codeInfo.size(); ++i) {
        const auto &info = s->benchmark.codeInfo[i];
        table.beginRow();
        table.cell(unsigned(info.id));
        table.cell(info.name);
        table.cell(info.innerLoopBytes);
        table.cell(paperSizes[i]);
        table.cell(info.delaySlots);
    }
    bench::printPanel(*s, "Table I: inner loop sizes", table);

    // Dynamic instruction count of one full run.
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const auto res = runSimulation(cfg, s->benchmark.program);
    std::cout << "dynamic instructions: " << res.instructions
              << "  (paper: 150,575 at scale 1.0; this run at scale "
              << s->scale << ")\n"
              << "static code size:     "
              << s->benchmark.program.codeSize() << " bytes\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
