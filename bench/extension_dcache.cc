/**
 * Extension study: spending a transistor budget on instructions vs
 * data.
 *
 * The paper's closing argument (section 6): the IQ/IQB approach
 * reaches near-peak instruction supply with a tiny I-cache, so "the
 * higher densities achieved in the mature technology can be used to
 * expand the on-chip cache to include data or to provide more
 * on-chip functionality."
 *
 * This bench makes that concrete: a fixed on-chip storage budget is
 * split between the instruction cache and an optional write-through
 * data cache, for both fetch strategies.  With the PIPE fetch logic
 * the best split leans heavily toward data, validating the paper's
 * claim; the conventional cache still wants the instruction side.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "I-cache vs D-cache split of a fixed "
                          "on-chip storage budget");
    if (!s)
        return 0;

    for (unsigned budget : {256u, 512u}) {
        Table table({"icache_bytes", "dcache_bytes", "conv_cycles",
                     "pipe16x16_cycles"});
        for (unsigned icache = 16; icache <= budget; icache *= 2) {
            // The data cache takes the rest of the budget, rounded
            // down to a power of two (cache geometry requirement).
            unsigned dcache = 0;
            while ((dcache * 2) <= budget - icache && dcache < budget)
                dcache = dcache ? dcache * 2 : 16;
            if (dcache < 16)
                dcache = 0;
            SimConfig conv;
            conv.fetch = conventionalConfigFor(icache, 16);
            conv.mem.accessTime = 6;
            conv.mem.busWidthBytes = 8;
            conv.mem.dcacheBytes = dcache;
            const auto rc = runSimulation(conv, s->benchmark.program);

            SimConfig pipe;
            pipe.fetch = pipeConfigFor("16-16", icache);
            pipe.mem = conv.mem;
            const auto rp = runSimulation(pipe, s->benchmark.program);

            table.beginRow();
            table.cell(icache);
            table.cell(dcache);
            table.cell(std::uint64_t(rc.totalCycles));
            table.cell(std::uint64_t(rp.totalCycles));
        }
        bench::printPanel(*s,
                          "budget = " + std::to_string(budget) +
                              " bytes (mem 6, bus 8)",
                          table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
