/**
 * Extension study: fetch strategies on branch-heavy code.
 *
 * The paper evaluates on the Livermore loops — long inner loops, one
 * predictable backward branch each.  This bench runs the synthetic
 * branchy workload (short basic blocks, data-dependent forward
 * branches) to probe the regime the paper does not measure:
 *
 *  - how the PIPE lookahead degrades when PBRs are frequent and
 *    delay slots shallow;
 *  - whether the conventional always-prefetch cache or the TIB copes
 *    better with irregular redirects;
 *  - how the guarantee policy behaves when the guarantee window is
 *    short (the regime where the fabricated chip's conservative
 *    policy actually binds).
 */

#include "bench_common.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    CliParser cli("fetch strategies on branch-heavy synthetic code");
    cli.addOption("iterations", "256", "outer loop trips");
    cli.addFlag("csv", "CSV output");
    if (!cli.parse(argc, argv))
        return 0;
    const bool csv = cli.getFlag("csv");

    for (unsigned slots : {1u, 4u, 7u}) {
        workloads::BranchySpec spec;
        spec.blocks = 8;
        spec.fillerOps = 4;
        spec.delaySlots = slots;
        spec.iterations = unsigned(cli.getInt("iterations"));
        const auto built = workloads::buildBranchyProgram(spec);
        const auto ref = workloads::runBranchyReference(spec);

        Table table({"strategy", "cycles_mem1", "cycles_mem6",
                     "cycles_mem6_guaranteed"});
        for (const char *strategy :
             {"conv", "tib", "8-8", "16-16", "16-32", "32-32"}) {
            auto config = [&](unsigned access,
                              OffchipPolicy policy) {
                SimConfig cfg;
                const std::string s = strategy;
                if (s == "conv")
                    cfg.fetch = conventionalConfigFor(64, 16);
                else if (s == "tib")
                    cfg.fetch = tibConfigFor(64, 16);
                else
                    cfg.fetch = pipeConfigFor(s, 64);
                cfg.fetch.offchipPolicy = policy;
                cfg.mem.accessTime = access;
                cfg.mem.busWidthBytes = 8;
                return cfg;
            };
            const auto r1 = runSimulation(
                config(1, OffchipPolicy::TruePrefetch), built.program);
            const auto r6 = runSimulation(
                config(6, OffchipPolicy::TruePrefetch), built.program);
            const auto rg = runSimulation(
                config(6, OffchipPolicy::GuaranteedOnly),
                built.program);
            table.beginRow();
            table.cell(strategy);
            table.cell(std::uint64_t(r1.totalCycles));
            table.cell(std::uint64_t(r6.totalCycles));
            table.cell(std::uint64_t(rg.totalCycles));
        }
        std::cout << "== delay slots = " << slots << " ("
                  << ref.takenBranches << " taken / "
                  << ref.notTakenBranches
                  << " not-taken block branches) ==\n"
                  << (csv ? table.toCsv() : table.toText()) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
