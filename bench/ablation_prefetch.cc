/**
 * Always-prefetch ablation: the paper adopts Hill's always-prefetch
 * as the conventional baseline because "throughout his study, the
 * always-prefetch strategy consistently provided the best
 * performance" (section 4).  This bench compares it against a plain
 * demand-fetch sub-blocked cache inside our model.
 *
 * Expected outcome: a near tie.  Our demand engine requests the next
 * undelivered instruction as soon as the decoder consumes the current
 * one (a pipelined IF stage), which provides exactly the
 * one-instruction lookahead always-prefetch adds to a *blocking*
 * fetch stage; the prefetch-class requests even lose memory
 * arbitration that demand requests win.  Hill's gains came from
 * comparing against blocking fetch models.  See EXPERIMENTS.md.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "always-prefetch vs demand-only "
                          "conventional cache");
    if (!s)
        return 0;

    for (unsigned access : {1u, 6u}) {
        Table table({"cache_bytes", "demand_only", "always_prefetch",
                     "speedup"});
        for (unsigned size : bench::paperCacheSizes()) {
            SimConfig cfg;
            cfg.fetch = conventionalConfigFor(size, 16);
            cfg.mem.accessTime = access;
            cfg.mem.busWidthBytes = 8;

            cfg.fetch.alwaysPrefetch = false;
            const auto demand = runSimulation(cfg, s->benchmark.program);
            cfg.fetch.alwaysPrefetch = true;
            const auto pf = runSimulation(cfg, s->benchmark.program);

            table.beginRow();
            table.cell(size);
            table.cell(std::uint64_t(demand.totalCycles));
            table.cell(std::uint64_t(pf.totalCycles));
            table.cell(double(demand.totalCycles) /
                           double(pf.totalCycles),
                       3);
        }
        bench::printPanel(*s,
                          "memory access time = " +
                              std::to_string(access) + " (bus 8)",
                          table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
