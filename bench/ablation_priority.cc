/**
 * Memory-interface priority ablation (paper section 5): "The
 * simulator was also able to select whether data or instructions
 * have priority at the memory interface"; the presented results give
 * instruction requests priority over data requests.
 *
 * This bench compares both orders for every strategy (6-cycle
 * memory, both bus widths, 64-byte cache).
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "instruction vs data priority at the "
                          "memory interface");
    if (!s)
        return 0;

    for (unsigned bus : {4u, 8u}) {
        Table table({"strategy", "inst_priority", "data_priority",
                     "ratio"});
        for (const char *strategy :
             {"conv", "8-8", "16-16", "16-32", "32-32"}) {
            SimConfig cfg;
            cfg.fetch = std::string(strategy) == "conv"
                            ? conventionalConfigFor(64, 16)
                            : pipeConfigFor(strategy, 64);
            cfg.mem.accessTime = 6;
            cfg.mem.busWidthBytes = bus;

            cfg.mem.instructionPriority = true;
            const auto ipri = runSimulation(cfg, s->benchmark.program);
            cfg.mem.instructionPriority = false;
            const auto dpri = runSimulation(cfg, s->benchmark.program);

            table.beginRow();
            table.cell(strategy);
            table.cell(std::uint64_t(ipri.totalCycles));
            table.cell(std::uint64_t(dpri.totalCycles));
            table.cell(double(dpri.totalCycles) /
                           double(ipri.totalCycles),
                       3);
        }
        bench::printPanel(*s,
                          "bus = " + std::to_string(bus) +
                              " bytes, cache = 64 bytes",
                          table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
