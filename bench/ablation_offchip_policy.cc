/**
 * Off-chip policy ablation (paper section 6, paragraph 3): the
 * fabricated PIPE chip only requests a line from off-chip memory
 * when it is guaranteed to contain an unconditionally executed
 * instruction; the paper found this non-optimal for a single-chip
 * processor and presents all results with true prefetching enabled.
 *
 * This bench quantifies that design decision: cycles for
 * GuaranteedOnly vs TruePrefetch across cache sizes for each PIPE
 * configuration (6-cycle memory, 8-byte bus).
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "guaranteed-only vs true off-chip prefetch");
    if (!s)
        return 0;

    for (const auto &name : tableIIConfigNames()) {
        Table table({"cache_bytes", "guaranteed_only", "true_prefetch",
                     "speedup", "blocked_fills", "extra_lines"});
        for (unsigned size : bench::paperCacheSizes()) {
            if (pipeConfigFor(name, size).lineBytes > size)
                continue;
            SimConfig cfg;
            cfg.fetch = pipeConfigFor(name, size);
            cfg.mem.accessTime = 6;
            cfg.mem.busWidthBytes = 8;

            cfg.fetch.offchipPolicy = OffchipPolicy::GuaranteedOnly;
            const auto guarded =
                runSimulation(cfg, s->benchmark.program);
            cfg.fetch.offchipPolicy = OffchipPolicy::TruePrefetch;
            const auto free_run =
                runSimulation(cfg, s->benchmark.program);

            const auto lines = [](const SimResult &r) {
                return r.counter("fetch.offchip_demand_lines") +
                       r.counter("fetch.offchip_prefetch_lines");
            };

            table.beginRow();
            table.cell(size);
            table.cell(std::uint64_t(guarded.totalCycles));
            table.cell(std::uint64_t(free_run.totalCycles));
            table.cell(double(guarded.totalCycles) /
                           double(free_run.totalCycles),
                       3);
            // Mechanism columns: how often the guarantee blocked a
            // fill, and the speculative lines true prefetch added.
            table.cell(guarded.counter("fetch.blocked_on_guarantee"));
            table.cell(std::int64_t(lines(free_run)) -
                       std::int64_t(lines(guarded)));
        }
        bench::printPanel(*s, "PIPE configuration " + name, table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
