/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *     --scale <f>   workload scale (1.0 = the paper's ~150k insts)
 *     --csv         CSV output instead of aligned text
 * plus the standard flag groups registered by
 * registerStandardFlags() (sim/standard_flags.hh): observability,
 * fault injection, sweep control (--jobs, --obs-point, --fi-point,
 * --fail-fast, --point-retries) and engine selection (--engine
 * cycle|trace with --trace-file / --sample-*).  Each bench prints one
 * table per figure panel with the same axes the paper uses (total
 * execution cycles vs. cache size, one column per fetch strategy).
 * Failed points render "ERR" and are reported after the table (see
 * docs/robustness.md); under --engine trace the sweep replays one
 * capture of the workload instead of cycle-simulating every point
 * (see docs/trace_replay.md).
 */

#ifndef PIPESIM_BENCH_COMMON_HH
#define PIPESIM_BENCH_COMMON_HH

#include <iostream>
#include <memory>

#include "common/log.hh"
#include "replay/trace_format.hh"
#include "sim/cli.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"

namespace pipesim::bench
{

struct BenchSetup
{
    workloads::Benchmark benchmark;
    bool csv = false;
    double scale = 1.0;
    StandardFlags flags;

    /** The capture a --engine=trace sweep replays; made once per
     *  bench by applySweepOptions() and reused across panels. */
    std::shared_ptr<const replay::Trace> trace;
};

/** Parse standard options and build the workload. @return nullopt on
 *  --help. */
inline std::optional<BenchSetup>
setup(int argc, char **argv, const std::string &description,
      CliParser *extra = nullptr)
{
    CliParser own(description);
    CliParser &cli = extra ? *extra : own;
    cli.addOption("scale", "1.0", "workload scale (1.0 = paper size)");
    cli.addFlag("csv", "CSV output");
    registerStandardFlags(cli);
    if (!cli.parse(argc, argv))
        return std::nullopt;

    BenchSetup s;
    s.scale = cli.getDouble("scale");
    s.csv = cli.getFlag("csv");
    s.flags = standardFlagsFromCli(cli);
    s.benchmark = workloads::buildLivermoreBenchmark(s.scale);
    return s;
}

/**
 * Apply the standard flags to @p spec (applyStandardFlags(): worker
 * count, fault/failure policy, engine, observability hooks) and, for
 * --engine trace, capture or load the workload trace once and point
 * the spec at it.  Benches default to collect-and-continue so a
 * wedged point still yields every healthy cell plus a failure report.
 */
inline void
applySweepOptions(SweepSpec &spec, BenchSetup &s)
{
    applyStandardFlags(spec, s.flags);
    if (s.flags.engine == SweepEngine::Trace) {
        if (!s.trace)
            s.trace = prepareSweepTrace(spec, s.flags,
                                        s.benchmark.program);
        spec.trace = s.trace.get();
    }
}

/** The paper's evaluation sweeps caches from tiny to comfortably
 *  larger than every inner loop. */
inline std::vector<unsigned>
paperCacheSizes()
{
    return {16, 32, 64, 128, 256, 512, 1024};
}

inline void
printPanel(const BenchSetup &s, const std::string &title,
           const Table &table)
{
    std::cout << "== " << title << " ==\n";
    std::cout << (s.csv ? table.toCsv() : table.toText()) << "\n";
}

/** Print a sweep's panel plus its failure report, when any. */
inline void
printPanel(const BenchSetup &s, const std::string &title,
           const SweepResult &result)
{
    printPanel(s, title, result.table);
    if (!result.ok())
        std::cout << result.failureReport() << "\n";
}

} // namespace pipesim::bench

#endif // PIPESIM_BENCH_COMMON_HH
