/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *     --scale <f>   workload scale (1.0 = the paper's ~150k insts)
 *     --csv         CSV output instead of aligned text
 *     --jobs <n>    sweep worker threads (0 = PIPESIM_JOBS env or
 *                   hardware concurrency; 1 = serial)
 * plus the shared observability options (--cpi-stack, --trace-json,
 * --stats-json; see obs/obs_cli.hh) together with
 *     --obs-point <strategy:cachebytes>
 * selecting which sweep point those outputs observe, the fault
 * injection options (--fi-kind, --fi-seed, --fi-rate; see
 * fault/fault_cli.hh) with
 *     --fi-point <strategy:cachebytes>  restrict injection to one point
 *     --fail-fast                       rethrow the first point failure
 *     --point-retries <n>               attempts granted a failing point
 * and prints one table per figure panel with the same axes the paper
 * uses (total execution cycles vs. cache size, one column per fetch
 * strategy).  Failed points render "ERR" and are reported after the
 * table (see docs/robustness.md).
 */

#ifndef PIPESIM_BENCH_COMMON_HH
#define PIPESIM_BENCH_COMMON_HH

#include <iostream>
#include <memory>

#include "common/log.hh"
#include "fault/fault_cli.hh"
#include "obs/obs_cli.hh"
#include "sim/cli.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "workloads/benchmark_program.hh"

namespace pipesim::bench
{

struct BenchSetup
{
    workloads::Benchmark benchmark;
    bool csv = false;
    double scale = 1.0;
    unsigned jobs = 0; //!< sweep workers (0 = env/hardware default)
    obs::ObsOptions obs;
    std::string obsPoint; //!< "strategy:cachebytes" the outputs observe
    fault::FaultConfig fault;
    std::string faultPoint; //!< restrict injection to this point
    bool failFast = false;  //!< rethrow instead of collecting failures
    unsigned pointRetries = 0;
};

/** Parse standard options and build the workload. @return nullopt on
 *  --help. */
inline std::optional<BenchSetup>
setup(int argc, char **argv, const std::string &description,
      CliParser *extra = nullptr)
{
    CliParser own(description);
    CliParser &cli = extra ? *extra : own;
    cli.addOption("scale", "1.0", "workload scale (1.0 = paper size)");
    cli.addFlag("csv", "CSV output");
    cli.addOption("jobs", "0",
                  "parallel sweep workers (0 = PIPESIM_JOBS env or "
                  "hardware concurrency, 1 = serial)");
    obs::ObsOptions::addOptions(cli);
    cli.addOption("obs-point", "16-16:128",
                  "sweep point (strategy:cachebytes) the observability "
                  "outputs apply to");
    fault::addFaultOptions(cli);
    cli.addOption("fi-point", "",
                  "restrict fault injection to one sweep point "
                  "(strategy:cachebytes); empty = every point");
    cli.addFlag("fail-fast",
                "abort the sweep on the first point failure instead of "
                "rendering ERR cells and reporting at the end");
    cli.addOption("point-retries", "0",
                  "extra attempts granted to a failing sweep point");
    if (!cli.parse(argc, argv))
        return std::nullopt;

    BenchSetup s;
    s.scale = cli.getDouble("scale");
    s.csv = cli.getFlag("csv");
    const std::int64_t jobs = cli.getInt("jobs");
    if (jobs < 0)
        fatal("--jobs must be >= 0, got ", jobs);
    s.jobs = unsigned(jobs);
    s.obs = obs::ObsOptions::fromCli(cli);
    s.obsPoint = cli.get("obs-point");
    s.fault = fault::faultConfigFromCli(cli);
    s.faultPoint = cli.get("fi-point");
    s.failFast = cli.getFlag("fail-fast");
    const std::int64_t retries = cli.getInt("point-retries");
    if (retries < 0)
        fatal("--point-retries must be >= 0, got ", retries);
    s.pointRetries = unsigned(retries);
    s.benchmark = workloads::buildLivermoreBenchmark(s.scale);
    return s;
}

/**
 * Install the observability hooks on @p spec: when the sweep reaches
 * the point named by --obs-point, the requested outputs (trace JSON,
 * stats JSON, CPI-stack breakdown) are produced for that run.  A
 * no-op when no observability output was requested.
 *
 * If the named point never runs (typo'd strategy, a size outside the
 * sweep, or a degenerate point that renders "-"), a warning is
 * emitted after the sweep instead of silently producing nothing.
 */
inline void
installObs(SweepSpec &spec, const BenchSetup &s)
{
    if (!s.obs.any())
        return;
    const obs::ObsOptions opts = s.obs;
    const std::string point = s.obsPoint;
    auto session = std::make_shared<std::optional<obs::ObsSession>>();
    auto produced = std::make_shared<bool>(false);
    auto matches = [point](const std::string &strategy, unsigned cache) {
        return strategy + ":" + std::to_string(cache) == point;
    };
    spec.preRun = [session, opts, matches](Simulator &sim,
                                           const std::string &strategy,
                                           unsigned cache) {
        if (matches(strategy, cache))
            session->emplace(opts, sim);
    };
    spec.postRun = [session, matches, produced](
                       Simulator &sim [[maybe_unused]],
                       const std::string &strategy, unsigned cache,
                       const SimResult &result) {
        if (!matches(strategy, cache) || !session->has_value())
            return;
        (*session)->finish(result,
                           strategy + ":" + std::to_string(cache));
        session->reset();
        *produced = true;
    };
    spec.onSweepEnd = [produced, point, prev = spec.onSweepEnd]() {
        if (prev)
            prev();
        if (!*produced)
            warn("--obs-point " + point +
                 " matched no sweep point that ran; the requested "
                 "observability outputs were not produced (check the "
                 "strategy name and cache size against the sweep)");
    };
}

/**
 * Apply the shared sweep options to @p spec: the --jobs worker count,
 * the fault-injection/failure-policy options, and the observability
 * hooks (installObs()).  Benches default to collect-and-continue so a
 * wedged point still yields every healthy cell plus a failure report.
 */
inline void
applySweepOptions(SweepSpec &spec, const BenchSetup &s)
{
    spec.jobs = s.jobs;
    spec.fault = s.fault;
    spec.faultPoint = s.faultPoint;
    spec.pointRetries = s.pointRetries;
    spec.failurePolicy = s.failFast ? SweepFailurePolicy::FailFast
                                    : SweepFailurePolicy::CollectAndContinue;
    installObs(spec, s);
}

/** The paper's evaluation sweeps caches from tiny to comfortably
 *  larger than every inner loop. */
inline std::vector<unsigned>
paperCacheSizes()
{
    return {16, 32, 64, 128, 256, 512, 1024};
}

inline void
printPanel(const BenchSetup &s, const std::string &title,
           const Table &table)
{
    std::cout << "== " << title << " ==\n";
    std::cout << (s.csv ? table.toCsv() : table.toText()) << "\n";
}

/** Print a sweep's panel plus its failure report, when any. */
inline void
printPanel(const BenchSetup &s, const std::string &title,
           const SweepResult &result)
{
    printPanel(s, title, result.table);
    if (!result.ok())
        std::cout << result.failureReport() << "\n";
}

} // namespace pipesim::bench

#endif // PIPESIM_BENCH_COMMON_HH
