/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *     --scale <f>   workload scale (1.0 = the paper's ~150k insts)
 *     --csv         CSV output instead of aligned text
 * and prints one table per figure panel with the same axes the paper
 * uses (total execution cycles vs. cache size, one column per fetch
 * strategy).
 */

#ifndef PIPESIM_BENCH_COMMON_HH
#define PIPESIM_BENCH_COMMON_HH

#include <iostream>

#include "sim/cli.hh"
#include "sim/experiment.hh"
#include "workloads/benchmark_program.hh"

namespace pipesim::bench
{

struct BenchSetup
{
    workloads::Benchmark benchmark;
    bool csv = false;
    double scale = 1.0;
};

/** Parse standard options and build the workload. @return nullopt on
 *  --help. */
inline std::optional<BenchSetup>
setup(int argc, char **argv, const std::string &description,
      CliParser *extra = nullptr)
{
    CliParser own(description);
    CliParser &cli = extra ? *extra : own;
    cli.addOption("scale", "1.0", "workload scale (1.0 = paper size)");
    cli.addFlag("csv", "CSV output");
    if (!cli.parse(argc, argv))
        return std::nullopt;

    BenchSetup s;
    s.scale = cli.getDouble("scale");
    s.csv = cli.getFlag("csv");
    s.benchmark = workloads::buildLivermoreBenchmark(s.scale);
    return s;
}

/** The paper's evaluation sweeps caches from tiny to comfortably
 *  larger than every inner loop. */
inline std::vector<unsigned>
paperCacheSizes()
{
    return {16, 32, 64, 128, 256, 512, 1024};
}

inline void
printPanel(const BenchSetup &s, const std::string &title,
           const Table &table)
{
    std::cout << "== " << title << " ==\n";
    std::cout << (s.csv ? table.toCsv() : table.toText()) << "\n";
}

} // namespace pipesim::bench

#endif // PIPESIM_BENCH_COMMON_HH
