/**
 * Extension study: Target Instruction Buffer vs cache strategies.
 *
 * Section 2.1 of the paper discusses the TIB approach (AMD 29000):
 * "the results of the studies indicate that a small TIB can provide
 * better performance than a simple small instruction cache, [but]
 * the use of a TIB implies large amounts of off-chip accessing,
 * which again can be a problem in SCP design."
 *
 * This bench tests both claims against our implementations: total
 * cycles AND off-chip instruction-fetch traffic (bytes over the input
 * bus) for equal on-chip storage, across the paper's memory
 * parameters.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

std::uint64_t
ifetchBytes(const SimResult &r, const SimConfig &cfg)
{
    if (cfg.fetch.strategy == FetchStrategy::Tib)
        return r.counter("fetch.offchip_fetches") * cfg.fetch.lineBytes;
    if (cfg.fetch.strategy == FetchStrategy::Pipe)
        return (r.counter("fetch.offchip_demand_lines") +
                r.counter("fetch.offchip_prefetch_lines")) *
               cfg.fetch.lineBytes;
    // Conventional: requests fetch one bus region each.
    return (r.counter("fetch.demand_fetches") +
            r.counter("fetch.prefetch_fetches")) *
           cfg.mem.busWidthBytes;
}

} // namespace

namespace
{

int
run(int argc, char **argv)
{
    auto s = bench::setup(argc, argv,
                          "TIB vs conventional vs PIPE: cycles and "
                          "off-chip traffic at equal storage");
    if (!s)
        return 0;

    for (unsigned access : {1u, 6u}) {
        Table table({"onchip_bytes", "conv_cycles", "tib_cycles",
                     "pipe16x16_cycles", "conv_KB", "tib_KB",
                     "pipe_KB"});
        for (unsigned size : {16u, 32u, 64u, 128u, 256u, 512u}) {
            SimConfig conv;
            conv.fetch = conventionalConfigFor(size, 16);
            conv.mem.accessTime = access;
            conv.mem.busWidthBytes = 8;
            const auto rc = runSimulation(conv, s->benchmark.program);

            SimConfig tib;
            tib.fetch = tibConfigFor(size, 16);
            tib.mem = conv.mem;
            const auto rt = runSimulation(tib, s->benchmark.program);

            SimConfig pipe;
            pipe.fetch = pipeConfigFor("16-16", std::max(size, 16u));
            pipe.mem = conv.mem;
            const auto rp = runSimulation(pipe, s->benchmark.program);

            table.beginRow();
            table.cell(size);
            table.cell(std::uint64_t(rc.totalCycles));
            table.cell(std::uint64_t(rt.totalCycles));
            table.cell(std::uint64_t(rp.totalCycles));
            table.cell(double(ifetchBytes(rc, conv)) / 1024.0, 0);
            table.cell(double(ifetchBytes(rt, tib)) / 1024.0, 0);
            table.cell(double(ifetchBytes(rp, pipe)) / 1024.0, 0);
        }
        bench::printPanel(*s,
                          "memory access time = " +
                              std::to_string(access) +
                              " (bus 8, non-pipelined)",
                          table);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return pipesim::runGuardedMain([&] { return run(argc, argv); });
}
