#include "common/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace pipesim
{

Histogram::Histogram(std::uint64_t bucket_width, unsigned num_buckets)
    : _bucketWidth(bucket_width), _buckets(num_buckets + 1, 0)
{
    PIPESIM_ASSERT(bucket_width >= 1, "histogram bucket width must be >= 1");
    PIPESIM_ASSERT(num_buckets >= 1, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t value)
{
    const std::size_t idx =
        std::min<std::size_t>(value / _bucketWidth, _buckets.size() - 1);
    ++_buckets[idx];
    ++_count;
    _sum += value;
    if (_count == 1) {
        _min = _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = _sum = _min = _max = 0;
}

double
Histogram::mean() const
{
    return _count ? static_cast<double>(_sum) / _count : 0.0;
}

void
StatGroup::regCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    PIPESIM_ASSERT(c, "null counter registered as '", name, "'");
    if (_counters.count(name) || _hists.count(name) || _formulas.count(name))
        panic("duplicate stat name '", name, "'");
    _counters.emplace(name, CounterEntry{c, desc});
    _order.push_back(name);
}

void
StatGroup::regHistogram(const std::string &name, Histogram *h,
                        const std::string &desc)
{
    PIPESIM_ASSERT(h, "null histogram registered as '", name, "'");
    if (_counters.count(name) || _hists.count(name) || _formulas.count(name))
        panic("duplicate stat name '", name, "'");
    _hists.emplace(name, HistEntry{h, desc});
    _order.push_back(name);
}

void
StatGroup::regFormula(const std::string &name, std::function<double()> f,
                      const std::string &desc)
{
    PIPESIM_ASSERT(f, "null formula registered as '", name, "'");
    if (_counters.count(name) || _hists.count(name) || _formulas.count(name))
        panic("duplicate stat name '", name, "'");
    _formulas.emplace(name, FormulaEntry{std::move(f), desc});
    _order.push_back(name);
}

void
StatGroup::resetAll()
{
    for (auto &[name, entry] : _counters)
        entry.counter->reset();
    for (auto &[name, entry] : _hists)
        entry.hist->reset();
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = _counters.find(name);
    if (it == _counters.end())
        panic("unknown counter '", name, "'");
    return it->second.counter->value();
}

double
StatGroup::formulaValue(const std::string &name) const
{
    auto it = _formulas.find(name);
    if (it == _formulas.end())
        panic("unknown formula '", name, "'");
    return it->second.fn();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return _counters.count(name) != 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &name : _order) {
        if (auto it = _counters.find(name); it != _counters.end()) {
            os << std::left << std::setw(40) << name
               << std::right << std::setw(14) << it->second.counter->value();
            if (!it->second.desc.empty())
                os << "  # " << it->second.desc;
            os << "\n";
        } else if (auto hit = _hists.find(name); hit != _hists.end()) {
            const Histogram &h = *hit->second.hist;
            os << std::left << std::setw(40) << name
               << " count=" << h.count() << " mean=" << std::fixed
               << std::setprecision(2) << h.mean() << " min=" << h.min()
               << " max=" << h.max();
            if (!hit->second.desc.empty())
                os << "  # " << hit->second.desc;
            os << "\n";
        } else if (auto fit = _formulas.find(name); fit != _formulas.end()) {
            os << std::left << std::setw(40) << name
               << std::right << std::setw(14) << std::fixed
               << std::setprecision(4) << fit->second.fn();
            if (!fit->second.desc.empty())
                os << "  # " << fit->second.desc;
            os << "\n";
        }
    }
    return os.str();
}

std::vector<std::string>
StatGroup::counterNames() const
{
    std::vector<std::string> names;
    for (const auto &name : _order)
        if (_counters.count(name))
            names.push_back(name);
    return names;
}

std::vector<std::string>
StatGroup::formulaNames() const
{
    std::vector<std::string> names;
    for (const auto &name : _order)
        if (_formulas.count(name))
            names.push_back(name);
    return names;
}

} // namespace pipesim
