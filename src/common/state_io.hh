/**
 * @file
 * Little-endian binary state serialization for machine checkpoints.
 *
 * StateWriter appends primitive values to a byte buffer; StateReader
 * reads them back with bounds checking.  Every component that can be
 * checkpointed (replay/checkpoint.hh) implements
 * saveState(StateWriter&) / restoreState(StateReader&) on top of
 * these primitives, so the payload layout is defined entirely by the
 * order of the calls — no per-field tags, no padding, no host
 * endianness leaks.
 *
 * A StateReader never trusts its input: short payloads, impossible
 * enum values and capacity mismatches all surface as FatalError via
 * fail(), naming the byte offset, in the same spirit as the PIPETRC
 * decoder (replay/trace_format.cc).
 */

#ifndef PIPESIM_COMMON_STATE_IO_HH
#define PIPESIM_COMMON_STATE_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"

namespace pipesim
{

/** Append-only little-endian encoder for checkpoint payloads. */
class StateWriter
{
  public:
    void u8(std::uint8_t v) { _bytes.push_back(v); }

    void b(bool v) { u8(v ? 1 : 0); }

    void u32(std::uint32_t v)
    {
        u8(std::uint8_t(v & 0xff));
        u8(std::uint8_t((v >> 8) & 0xff));
        u8(std::uint8_t((v >> 16) & 0xff));
        u8(std::uint8_t((v >> 24) & 0xff));
    }

    void u64(std::uint64_t v)
    {
        u32(std::uint32_t(v & 0xffffffffu));
        u32(std::uint32_t(v >> 32));
    }

    /** Raw byte run (length must be framed by the caller). */
    void bytes(const std::uint8_t *data, std::size_t len)
    {
        _bytes.insert(_bytes.end(), data, data + len);
    }

    const std::vector<std::uint8_t> &data() const { return _bytes; }
    std::vector<std::uint8_t> take() { return std::move(_bytes); }

  private:
    std::vector<std::uint8_t> _bytes;
};

/** Bounds-checked little-endian decoder for checkpoint payloads. */
class StateReader
{
  public:
    /** @param label Context prefix for diagnostics ("checkpoint
     *         window 3" and the like). */
    StateReader(const std::vector<std::uint8_t> &bytes,
                std::string label)
        : _bytes(bytes.data()), _size(bytes.size()),
          _label(std::move(label))
    {
    }

    std::uint8_t u8()
    {
        if (_pos >= _size)
            fail("payload truncated");
        return _bytes[_pos++];
    }

    bool b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            fail("bool field holds ", unsigned(v));
        return v != 0;
    }

    std::uint32_t u32()
    {
        std::uint32_t v = u8();
        v |= std::uint32_t(u8()) << 8;
        v |= std::uint32_t(u8()) << 16;
        v |= std::uint32_t(u8()) << 24;
        return v;
    }

    std::uint64_t u64()
    {
        std::uint64_t v = u32();
        v |= std::uint64_t(u32()) << 32;
        return v;
    }

    void bytes(std::uint8_t *out, std::size_t len)
    {
        if (len > remaining())
            fail("payload truncated (need ", len, " bytes, have ",
                 remaining(), ")");
        for (std::size_t i = 0; i < len; ++i)
            out[i] = _bytes[_pos + i];
        _pos += len;
    }

    std::size_t remaining() const { return _size - _pos; }
    std::size_t pos() const { return _pos; }

    /** Require that the payload was consumed exactly. */
    void expectEnd()
    {
        if (_pos != _size)
            fail("payload has ", remaining(), " trailing bytes");
    }

    /** Abort restore with a corruption diagnostic naming the offset. */
    template <typename... Args>
    [[noreturn]] void fail(Args &&...what) const
    {
        fatal(_label, ": corrupt state at byte ", _pos, ": ",
              std::forward<Args>(what)...);
    }

  private:
    const std::uint8_t *_bytes;
    std::size_t _size;
    std::size_t _pos = 0;
    std::string _label;
};

} // namespace pipesim

#endif // PIPESIM_COMMON_STATE_IO_HH
