/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4), used to fingerprint program
 * images and trace files so replay results are attributable to an
 * exact capture.  Streaming interface plus one-shot helpers; no
 * external dependencies.
 */

#ifndef PIPESIM_COMMON_SHA256_HH
#define PIPESIM_COMMON_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pipesim
{

class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart as if freshly constructed. */
    void reset();

    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len);

    /** Finish and return the 32-byte digest (object must be reset()
     *  before reuse). */
    std::array<std::uint8_t, 32> digest();

    /** Finish and return the digest as 64 lower-case hex chars. */
    std::string hexDigest();

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> _state;
    std::array<std::uint8_t, 64> _buffer;
    std::size_t _bufferLen = 0;
    std::uint64_t _totalBytes = 0;
};

/** One-shot digest of a byte buffer, as lower-case hex. */
std::string sha256Hex(const void *data, std::size_t len);

/** One-shot digest of a byte vector, as lower-case hex. */
std::string sha256Hex(const std::vector<std::uint8_t> &bytes);

} // namespace pipesim

#endif // PIPESIM_COMMON_SHA256_HH
