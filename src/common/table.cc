#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace pipesim
{

Table::Table(std::vector<std::string> headers) : _headers(std::move(headers))
{
    PIPESIM_ASSERT(!_headers.empty(), "table needs at least one column");
}

void
Table::beginRow()
{
    if (_inRow)
        checkRowWidth();
    if (!_current.empty()) {
        _rows.push_back(std::move(_current));
        _current.clear();
    }
    _inRow = true;
}

void
Table::cell(const std::string &value)
{
    PIPESIM_ASSERT(_inRow, "cell() before beginRow()");
    PIPESIM_ASSERT(_current.size() < _headers.size(),
                   "row has more cells than headers");
    _current.push_back(value);
}

void Table::cell(const char *value) { cell(std::string(value)); }

void
Table::cell(std::uint64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(std::int64_t value)
{
    cell(std::to_string(value));
}

void Table::cell(int value) { cell(std::to_string(value)); }
void Table::cell(unsigned value) { cell(std::to_string(value)); }

void
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    cell(os.str());
}

void
Table::checkRowWidth() const
{
    PIPESIM_ASSERT(_current.size() == _headers.size(),
                   "row width ", _current.size(), " != header width ",
                   _headers.size());
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    // Allow access to the row under construction once finished rows
    // are exhausted.
    if (row < _rows.size())
        return _rows[row].at(col);
    PIPESIM_ASSERT(row == _rows.size() && !_current.empty(),
                   "table row out of range");
    return _current.at(col);
}

namespace
{

std::vector<std::vector<std::string>>
allRows(const std::vector<std::vector<std::string>> &rows,
        const std::vector<std::string> &current)
{
    auto out = rows;
    if (!current.empty())
        out.push_back(current);
    return out;
}

} // namespace

std::string
Table::toText() const
{
    const auto rows = allRows(_rows, _current);
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };
    emitRow(_headers);
    std::string rule;
    for (std::size_t c = 0; c < _headers.size(); ++c) {
        rule += std::string(width[c], '-');
        if (c + 1 < _headers.size())
            rule += "  ";
    }
    os << rule << "\n";
    for (const auto &row : rows)
        emitRow(row);
    return os.str();
}

std::string
Table::toMarkdown() const
{
    const auto rows = allRows(_rows, _current);
    std::ostringstream os;
    os << "|";
    for (const auto &h : _headers)
        os << " " << h << " |";
    os << "\n|";
    for (std::size_t c = 0; c < _headers.size(); ++c)
        os << "---|";
    os << "\n";
    for (const auto &row : rows) {
        os << "|";
        for (const auto &cell : row)
            os << " " << cell << " |";
        os << "\n";
    }
    return os.str();
}

std::string
Table::toCsv() const
{
    const auto rows = allRows(_rows, _current);
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        return out;
    };
    auto quote = [&](const std::string &s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos)
            return s;
        return "\"" + escape(s) + "\"";
    };
    // "ERR"/"ERR(timeout)" (failed point) and "-" (point not run) are
    // sentinels for the human-readable renderings; in CSV they would
    // poison numeric columns for downstream parsers, so they become
    // empty fields and a trailing always-quoted "note" column says
    // which columns held them.
    auto isSentinel = [](const std::string &s) {
        return s.rfind("ERR", 0) == 0 || s == "-";
    };
    bool hasSentinel = false;
    for (const auto &row : rows)
        for (const auto &cell : row)
            hasSentinel = hasSentinel || isSentinel(cell);

    std::ostringstream os;
    for (std::size_t c = 0; c < _headers.size(); ++c) {
        os << quote(_headers[c]);
        if (c + 1 < _headers.size())
            os << ",";
    }
    if (hasSentinel)
        os << ",note";
    os << "\n";
    for (const auto &row : rows) {
        std::string note;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (isSentinel(row[c])) {
                note += (note.empty() ? "" : "; ") + _headers[c] +
                        (row[c] == "-" ? "=no data" : "=" + row[c]);
            } else {
                os << quote(row[c]);
            }
            if (c + 1 < row.size())
                os << ",";
        }
        if (hasSentinel) {
            os << ",";
            if (!note.empty())
                os << "\"" << escape(note) << "\"";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace pipesim
