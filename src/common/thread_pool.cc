#include "common/thread_pool.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "obs/metrics.hh"

namespace pipesim
{

namespace
{

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

unsigned
resolveJobCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PIPESIM_JOBS")) {
        try {
            const long n = std::stol(env);
            if (n > 0)
                return unsigned(n);
            warn("ignoring non-positive PIPESIM_JOBS=" +
                 std::string(env));
        } catch (const std::exception &) {
            warn("ignoring unparsable PIPESIM_JOBS=" + std::string(env));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned n = resolveJobCount(workers);
    _stats.resize(n);
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _accepting = false;
    }
    _wakeWorker.notify_all();
    for (auto &w : _workers)
        w.join();
    publishMetrics();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> wrapped(std::move(task));
    std::future<void> future = wrapped.get_future();
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_accepting)
            panic("ThreadPool::submit after shutdown began");
        _queue.push_back(std::move(wrapped));
        ++_pending;
        depth = _queue.size();
    }
    obs::MetricsRegistry::instance()
        .histogram("pool.queue_depth")
        .sample(depth);
    _wakeWorker.notify_one();
    return future;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _pending == 0; });
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _pending;
}

std::vector<WorkerStats>
ThreadPool::workerStats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
ThreadPool::publishMetrics()
{
    WorkerStats total;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (const WorkerStats &s : _stats) {
            total.busyNs += s.busyNs;
            total.idleNs += s.idleNs;
            total.tasks += s.tasks;
            total.emptyWakeups += s.emptyWakeups;
        }
    }
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("pool.tasks").add(total.tasks);
    reg.counter("pool.busy_ns").add(total.busyNs);
    reg.counter("pool.idle_ns").add(total.idleNs);
    reg.counter("pool.empty_wakeups").add(total.emptyWakeups);
    reg.gauge("pool.workers").set(std::int64_t(_workers.size()));
}

void
ThreadPool::workerLoop(std::size_t index)
{
    // Keep SIGINT/SIGTERM off the workers: the guard's handler only
    // sets a flag so it would be safe anywhere, but masking here
    // guarantees termination signals are always delivered to the
    // main thread, whose polling sites (sim/guard.hh) own the
    // cooperative-shutdown protocol.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGINT);
    sigaddset(&mask, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);

    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            const std::uint64_t waitStart = nowNs();
            // wait() evaluates its predicate once on entry, before
            // any wakeup; counting that evaluation would charge one
            // phantom empty wakeup per executed task.
            bool woken = false;
            _wakeWorker.wait(lock, [this, index, &woken] {
                if (woken && _queue.empty() && _accepting)
                    ++_stats[index].emptyWakeups;
                woken = true;
                return !_queue.empty() || !_accepting;
            });
            _stats[index].idleNs += nowNs() - waitStart;
            // Shutdown drains: only exit once the queue is empty.
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        const std::uint64_t taskStart = nowNs();
        task(); // exceptions land in the task's future
        const std::uint64_t taskNs = nowNs() - taskStart;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _stats[index].busyNs += taskNs;
            ++_stats[index].tasks;
            if (--_pending == 0)
                _idle.notify_all();
        }
    }
}

} // namespace pipesim
