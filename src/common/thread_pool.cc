#include "common/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "common/log.hh"

namespace pipesim
{

unsigned
resolveJobCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PIPESIM_JOBS")) {
        try {
            const long n = std::stol(env);
            if (n > 0)
                return unsigned(n);
            warn("ignoring non-positive PIPESIM_JOBS=" +
                 std::string(env));
        } catch (const std::exception &) {
            warn("ignoring unparsable PIPESIM_JOBS=" + std::string(env));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned n = resolveJobCount(workers);
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _accepting = false;
    }
    _wakeWorker.notify_all();
    for (auto &w : _workers)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> wrapped(std::move(task));
    std::future<void> future = wrapped.get_future();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_accepting)
            panic("ThreadPool::submit after shutdown began");
        _queue.push_back(std::move(wrapped));
        ++_pending;
    }
    _wakeWorker.notify_one();
    return future;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _pending == 0; });
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _pending;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wakeWorker.wait(lock, [this] {
                return !_queue.empty() || !_accepting;
            });
            // Shutdown drains: only exit once the queue is empty.
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task(); // exceptions land in the task's future
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_pending == 0)
                _idle.notify_all();
        }
    }
}

} // namespace pipesim
