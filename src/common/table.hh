/**
 * @file
 * Tabular output for benchmark harnesses.
 *
 * Every figure/table bench prints its series through this class so
 * that the output format (aligned text, markdown, CSV) is uniform
 * across the whole reproduction.
 */

#ifndef PIPESIM_COMMON_TABLE_HH
#define PIPESIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace pipesim
{

/**
 * A simple column-oriented table builder.
 *
 * Cells are strings; numeric convenience overloads format with
 * reasonable defaults.  Rows must match the header width.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a new row.  Cells are appended with cell(). */
    void beginRow();

    void cell(const std::string &value);
    void cell(const char *value);
    void cell(std::uint64_t value);
    void cell(std::int64_t value);
    void cell(int value);
    void cell(unsigned value);
    /** Floating point cell with @p precision decimal places. */
    void cell(double value, int precision = 2);

    /** Number of data rows, including the row under construction. */
    std::size_t
    numRows() const
    {
        return _rows.size() + (_current.empty() ? 0 : 1);
    }
    std::size_t numCols() const { return _headers.size(); }

    /** Access a finished cell (for tests). */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render as an aligned plain-text table. */
    std::string toText() const;

    /** Render as GitHub-flavoured markdown. */
    std::string toMarkdown() const;

    /**
     * Render as CSV (RFC-4180-ish; quotes cells containing commas).
     * The "ERR" / "-" sentinels the text renderings show for failed
     * or not-run sweep points become *empty* fields so numeric
     * columns stay parseable; when any are present a trailing "note"
     * column carries a quoted explanation per affected row.
     */
    std::string toCsv() const;

  private:
    void checkRowWidth() const;

    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
    std::vector<std::string> _current;
    bool _inRow = false;
};

} // namespace pipesim

#endif // PIPESIM_COMMON_TABLE_HH
