/**
 * @file
 * Fundamental scalar types used throughout pipesim.
 *
 * The PIPE processor is modelled as a byte-addressed machine with
 * 16-bit instruction parcels and 32-bit data words.  All simulated
 * time is expressed in processor clock cycles.
 */

#ifndef PIPESIM_COMMON_TYPES_HH
#define PIPESIM_COMMON_TYPES_HH

#include <cstdint>

namespace pipesim
{

/** A byte address in the simulated machine's address space. */
using Addr = std::uint32_t;

/** Simulated time, in processor clock cycles. */
using Cycle = std::uint64_t;

/** A 16-bit instruction parcel (the PIPE ISA's atomic code unit). */
using Parcel = std::uint16_t;

/** A 32-bit data word (register width and memory access width). */
using Word = std::uint32_t;

/** Signed view of a data word, for arithmetic semantics. */
using SWord = std::int32_t;

/** Size of an instruction parcel in bytes. */
inline constexpr unsigned parcelBytes = 2;

/** Size of a data word in bytes. */
inline constexpr unsigned wordBytes = 4;

} // namespace pipesim

#endif // PIPESIM_COMMON_TYPES_HH
