/**
 * @file
 * Simulation-abort reporting: the SimAbort exception and the machine
 * snapshot it carries.
 *
 * SimAbort completes the error taxonomy documented in common/log.hh:
 * the *simulated machine* wedged (deadlock, runaway, unrecoverable
 * injected fault) while the simulator itself is healthy.  It is
 * neither a user error (FatalError) nor a simulator bug (PanicError),
 * so tools can keep going -- a sweep records the failed point and
 * finishes its healthy cells.
 *
 * The snapshot is forensic: plain pre-rendered text per component
 * (each component exposes dumpState(std::ostream&)) plus the ring of
 * recently retired PCs, so the report needs no live simulator to
 * print.  Simulator::run() attaches the snapshot to any SimAbort that
 * escapes a component without one.
 */

#ifndef PIPESIM_COMMON_ABORT_HH
#define PIPESIM_COMMON_ABORT_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace pipesim
{

/** Post-mortem state of one simulated machine. */
struct MachineSnapshot
{
    Cycle cycle = 0;             //!< cycle at which the abort fired
    Cycle lastProgressCycle = 0; //!< last cycle an instruction retired
    std::uint64_t instructionsRetired = 0;

    /** Recently retired PCs, oldest first (fed from the probe bus). */
    std::vector<Addr> lastRetiredPcs;

    std::string pipelineState; //!< Pipeline::dumpState output
    std::string fetchState;    //!< FetchUnit::dumpState output
    std::string memoryState;   //!< MemorySystem::dumpState output

    /** Render the human-readable report. */
    void print(std::ostream &os) const;
    std::string toString() const;
};

/**
 * Exception raised by simAbort(): the simulated machine cannot make
 * progress (deadlock, cycle-limit runaway, exhausted fault retries).
 */
class SimAbort : public std::runtime_error
{
  public:
    explicit SimAbort(const std::string &msg) : std::runtime_error(msg) {}

    SimAbort(const std::string &msg, MachineSnapshot snapshot)
        : std::runtime_error(msg),
          _snapshot(std::make_shared<const MachineSnapshot>(
              std::move(snapshot)))
    {
    }

    /** @return true once a machine snapshot has been attached. */
    bool hasSnapshot() const { return _snapshot != nullptr; }

    /** The attached snapshot (hasSnapshot() must hold). */
    const MachineSnapshot &snapshot() const { return *_snapshot; }

    /** Write the message plus the snapshot (when present) to @p os. */
    void report(std::ostream &os) const;

  private:
    std::shared_ptr<const MachineSnapshot> _snapshot;
};

/**
 * A SimAbort flavour for host-side wall-clock deadlines: the point's
 * cooperative cancellation flag (SimConfig::cancelFlag, set by the
 * sweep engine's deadline watchdog) was observed in the tick loop.
 * The simulated machine may be perfectly healthy — it was just too
 * slow for the budget — so the sweep dispositions it separately as
 * ERR(timeout) (PointFailure::timeout) while everything downstream
 * of SimAbort (snapshot attachment, guard exit code) works unchanged.
 */
class TimeoutAbort : public SimAbort
{
  public:
    using SimAbort::SimAbort;
};

/**
 * Report that the simulated machine wedged.  Never returns.  The
 * thrown SimAbort has no snapshot; Simulator::run() attaches one.
 *
 * @param args Message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
simAbort(Args &&...args)
{
    throw SimAbort("abort: " +
                   detail::buildMessage(std::forward<Args>(args)...));
}

} // namespace pipesim

#endif // PIPESIM_COMMON_ABORT_HH
