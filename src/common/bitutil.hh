/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the
 * cache indexing logic.
 */

#ifndef PIPESIM_COMMON_BITUTIL_HH
#define PIPESIM_COMMON_BITUTIL_HH

#include <cstdint>

#include "common/log.hh"

namespace pipesim
{

/** @return a mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract the bit field [first, first+count) from @p value.
 *
 * @param value  Source word.
 * @param first  Least significant bit of the field.
 * @param count  Width of the field in bits.
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned count)
{
    return (value >> first) & mask(count);
}

/**
 * Insert @p field into bits [first, first+count) of @p value.
 */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned count,
           std::uint64_t field)
{
    const std::uint64_t m = mask(count) << first;
    return (value & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t value, unsigned width)
{
    const std::uint64_t m = mask(width);
    const std::uint64_t v = value & m;
    const std::uint64_t sign = std::uint64_t{1} << (width - 1);
    return static_cast<std::int64_t>((v ^ sign) - sign);
}

/** @return true if @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace pipesim

#endif // PIPESIM_COMMON_BITUTIL_HH
