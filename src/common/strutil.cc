#include "common/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pipesim
{

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (s.empty())
        return std::nullopt;

    bool neg = false;
    if (s.front() == '-' || s.front() == '+') {
        neg = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty())
            return std::nullopt;
    }

    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
        base = 2;
        s.remove_prefix(2);
    }
    if (s.empty())
        return std::nullopt;

    std::int64_t value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        value = value * base + digit;
    }
    return neg ? -value : value;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace pipesim
