/**
 * @file
 * Lightweight statistics infrastructure.
 *
 * A StatGroup owns a set of named scalar counters and distributions.
 * Components register their statistics against a group so that the
 * simulator can dump a complete, ordered report after a run.  This is
 * a deliberately small subset of what gem5's stats package offers:
 * scalars, formulas evaluated at dump time, and fixed-bucket
 * histograms, which is all this study needs.
 */

#ifndef PIPESIM_COMMON_STATS_HH
#define PIPESIM_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace pipesim
{

/** A named monotonically growing (or explicitly set) counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void set(std::uint64_t v) { _value = v; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/**
 * A histogram with fixed-width buckets plus an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (>= 1).
     * @param num_buckets  Number of regular buckets (>= 1).
     */
    Histogram(std::uint64_t bucket_width = 1, unsigned num_buckets = 16);

    /** Record one sample. */
    void sample(std::uint64_t value);

    void reset();

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _min; }
    std::uint64_t max() const { return _max; }
    double mean() const;

    /** Bucket contents; the final entry is the overflow bucket. */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t bucketWidth() const { return _bucketWidth; }

  private:
    std::uint64_t _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
};

/**
 * A registry of named statistics belonging to one component tree.
 *
 * Names are hierarchical by convention ("fetch.icache.misses").
 * Registration stores pointers; the registered objects must outlive
 * the group.
 */
class StatGroup
{
  public:
    /** Register a counter under @p name. Names must be unique. */
    void regCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");

    /** Register a histogram under @p name. */
    void regHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");

    /**
     * Register a formula: a callable evaluated at dump time
     * (e.g. a miss ratio derived from two counters).
     */
    void regFormula(const std::string &name, std::function<double()> f,
                    const std::string &desc = "");

    /** Reset every registered counter and histogram. */
    void resetAll();

    /** @return the value of the counter registered under @p name. */
    std::uint64_t counterValue(const std::string &name) const;

    /** @return the value of the formula registered under @p name. */
    double formulaValue(const std::string &name) const;

    /** @return true if a counter with @p name exists. */
    bool hasCounter(const std::string &name) const;

    /** Render a human-readable report of all statistics. */
    std::string dump() const;

    /** All registered counter names, in registration order. */
    std::vector<std::string> counterNames() const;

    /** All registered formula names, in registration order. */
    std::vector<std::string> formulaNames() const;

  private:
    struct CounterEntry
    {
        Counter *counter;
        std::string desc;
    };
    struct HistEntry
    {
        Histogram *hist;
        std::string desc;
    };
    struct FormulaEntry
    {
        std::function<double()> fn;
        std::string desc;
    };

    std::vector<std::string> _order;
    std::map<std::string, CounterEntry> _counters;
    std::map<std::string, HistEntry> _hists;
    std::map<std::string, FormulaEntry> _formulas;
};

} // namespace pipesim

#endif // PIPESIM_COMMON_STATS_HH
