#include "common/log.hh"

#include <iostream>

namespace pipesim
{

namespace
{
bool quietFlag = false;
} // namespace

void
warn(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (!quietFlag)
        std::cout << "info: " << msg << "\n";
}

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

} // namespace pipesim
