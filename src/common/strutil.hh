/**
 * @file
 * Small string helpers shared by the assembler, CLI parser and table
 * formatter.
 */

#ifndef PIPESIM_COMMON_STRUTIL_HH
#define PIPESIM_COMMON_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pipesim
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split @p s on @p sep, trimming each piece; empty pieces are kept. */
std::vector<std::string> split(std::string_view s, char sep);

/** Case-insensitive string equality. */
bool iequals(std::string_view a, std::string_view b);

/** Lower-case copy of @p s. */
std::string toLower(std::string_view s);

/**
 * Parse an integer literal: decimal, 0x-hex, 0b-binary, optional
 * leading '-'.  @return std::nullopt on malformed input.
 */
std::optional<std::int64_t> parseInt(std::string_view s);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace pipesim

#endif // PIPESIM_COMMON_STRUTIL_HH
