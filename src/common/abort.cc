#include "common/abort.hh"

#include <ostream>
#include <sstream>

namespace pipesim
{

namespace
{

/** Write @p text with every line prefixed by @p prefix. */
void
writeIndented(std::ostream &os, const std::string &text,
              const char *prefix)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        os << prefix << line << "\n";
}

} // namespace

void
MachineSnapshot::print(std::ostream &os) const
{
    os << "machine snapshot at cycle " << cycle << "\n";
    os << "  instructions retired: " << instructionsRetired
       << " (last progress at cycle " << lastProgressCycle << ")\n";
    os << "  last retired PCs (oldest first):";
    if (lastRetiredPcs.empty()) {
        os << " none";
    } else {
        const auto flags = os.flags();
        os << std::hex;
        for (Addr pc : lastRetiredPcs)
            os << " 0x" << pc;
        os.flags(flags);
    }
    os << "\n";
    os << "  [pipeline]\n";
    writeIndented(os, pipelineState, "    ");
    os << "  [fetch]\n";
    writeIndented(os, fetchState, "    ");
    os << "  [memory]\n";
    writeIndented(os, memoryState, "    ");
}

std::string
MachineSnapshot::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
SimAbort::report(std::ostream &os) const
{
    os << what() << "\n";
    if (_snapshot)
        _snapshot->print(os);
}

} // namespace pipesim
