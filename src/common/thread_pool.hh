/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel
 * simulation work (the experiment sweeps behind every figure).
 *
 * Deliberately minimal: a single FIFO task queue, a fixed worker
 * count chosen at construction, no work stealing and no task
 * priorities.  Sweep points are coarse-grained (each is a full
 * simulator run, milliseconds to seconds), so a shared queue under
 * one mutex is nowhere near contention-bound.
 *
 * Exceptions thrown by a task are captured in the std::future
 * returned by submit(); they never escape a worker thread.
 *
 * The pool self-reports host telemetry: per-worker busy/idle wall
 * time, executed-task counts and empty-queue wakeups (workerStats()),
 * plus a queue-depth histogram.  On destruction the aggregates are
 * published into the process-wide obs::MetricsRegistry under
 * "pool.*" (see docs/observability.md, "Host-side profiling").
 *
 * Workers mask SIGINT/SIGTERM, so termination signals are always
 * delivered to the main thread and surface through the guard's
 * cooperative-shutdown flag (sim/guard.hh): a task observing the
 * flag returns early, the queue drains, and destruction joins as
 * usual — the pool itself needs no cancellation machinery.
 */

#ifndef PIPESIM_COMMON_THREAD_POOL_HH
#define PIPESIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pipesim
{

/**
 * Resolve a requested worker count to an effective one:
 *
 *   1. @p requested, when non-zero (an explicit --jobs N);
 *   2. the PIPESIM_JOBS environment variable, when set to a
 *      positive integer;
 *   3. std::thread::hardware_concurrency(), never less than 1.
 */
unsigned resolveJobCount(unsigned requested = 0);

/** Host telemetry for one pool worker (wall-clock, not CPU time). */
struct WorkerStats
{
    std::uint64_t busyNs = 0;  //!< time spent inside tasks
    std::uint64_t idleNs = 0;  //!< time blocked waiting for work
    std::uint64_t tasks = 0;   //!< tasks executed by this worker
    /** Wakeups that found the queue empty (spurious or shutdown). */
    std::uint64_t emptyWakeups = 0;
};

class ThreadPool
{
  public:
    /**
     * Start @p workers worker threads (0 = resolveJobCount(0)).
     */
    explicit ThreadPool(unsigned workers = 0);

    /**
     * Drain: stop accepting new work, finish every queued task, then
     * join the workers.  Queued tasks are never dropped.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task.  Tasks are dispatched to workers in FIFO
     * submission order (with one worker this is strict serial order).
     *
     * @return a future carrying the task's completion or exception.
     */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    unsigned workerCount() const { return unsigned(_workers.size()); }

    /** Tasks submitted but not yet finished (queued or running). */
    std::size_t pendingTasks() const;

    /** Per-worker telemetry snapshot (index = worker ordinal). */
    std::vector<WorkerStats> workerStats() const;

  private:
    void workerLoop(std::size_t index);

    /** Sum the per-worker stats into the global metrics registry. */
    void publishMetrics();

    mutable std::mutex _mutex;
    std::condition_variable _wakeWorker; //!< signalled on new work/stop
    std::condition_variable _idle;       //!< signalled when work drains
    std::deque<std::packaged_task<void()>> _queue;
    std::vector<std::thread> _workers;
    std::vector<WorkerStats> _stats; //!< guarded by _mutex
    std::size_t _pending = 0; //!< queued + currently running tasks
    bool _accepting = true;
};

} // namespace pipesim

#endif // PIPESIM_COMMON_THREAD_POOL_HH
