/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows the gem5 convention:
 *  - panic():  an internal simulator bug; never the user's fault.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, malformed assembly, ...).
 *  - warn():   something is suspicious but simulation continues.
 *  - inform(): purely informational status output.
 *
 * A third failure class lives in common/abort.hh:
 *  - simAbort(): the *simulated machine* wedged (deadlock, cycle
 *              runaway, unrecoverable injected fault) -- neither a
 *              user error nor a simulator bug.  SimAbort carries a
 *              MachineSnapshot for post-mortem reports; see
 *              docs/robustness.md for the full taxonomy.
 *
 * Unlike gem5 we raise typed exceptions instead of terminating the
 * process, so that library users (and the test suite) can catch and
 * inspect failures.
 */

#ifndef PIPESIM_COMMON_LOG_HH
#define PIPESIM_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace pipesim
{

/** Exception raised by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception raised by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Build a single message string from a variadic argument pack. */
template <typename... Args>
std::string
buildMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug.  Never returns.
 *
 * @param args Message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError("panic: " +
                     detail::buildMessage(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error.  Never returns.
 *
 * @param args Message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError("fatal: " +
                     detail::buildMessage(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define PIPESIM_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond))                                                        \
            ::pipesim::panic("assertion '", #cond, "' failed: ",            \
                             ##__VA_ARGS__);                                \
    } while (0)

/** Emit a warning to stderr; simulation continues. */
void warn(const std::string &msg);

/** Emit an informational message to stdout. */
void inform(const std::string &msg);

/** Suppress or re-enable warn()/inform() output (used by tests). */
void setLogQuiet(bool quiet);

/** @return true if warn()/inform() output is currently suppressed. */
bool logQuiet();

} // namespace pipesim

#endif // PIPESIM_COMMON_LOG_HH
