/**
 * @file
 * PIPERES: the journaled, content-addressed on-disk sweep result
 * store behind crash-safe resumable sweeps (docs/robustness.md,
 * "Crash safety and resume").
 *
 * One store is a single append-only journal file
 * `<dir>/results.piperes`.  Each completed sweep point's counters and
 * meta are appended under a content key — SHA-256 over the program
 * image hash, the canonical machine-configuration hash
 * (replay::configSha256, the same cache-key machinery the PIPECKPT
 * checkpoint store uses), the engine (cycle / trace-exact /
 * trace-sampled), the trace content hash and the sampling parameters,
 * plus the point's derived fault-injection stream — so a result is
 * only ever served back for the exact simulation that produced it.
 * Failed (ERR) points are never journaled: a resumed sweep always
 * re-attempts them.
 *
 * File layout (all integers little-endian):
 *
 *     header   magic "PIPERES\0", u32 version, u32 reserved,
 *              u32 CRC-32 of everything above
 *     records  per record: u32 payload bytes, u32 CRC-32 of the
 *              payload, payload (state_io stream: 32-byte raw key,
 *              label, totalCycles, instructions, counters, meta)
 *
 * Unlike PIPETRC/PIPECKPT there is no whole-file digest: the store
 * must stay appendable and must survive being killed mid-write.
 * Recovery discipline on open:
 *
 *  - a torn tail (the journal ends inside a record — the writer died
 *    mid-append, or the file was truncated) is *recovered*: the
 *    partial record is truncated away, every complete record before
 *    it is served, and the `store.recovered` metric is bumped;
 *  - interior corruption (a record whose CRC fails while more
 *    records follow it, or a damaged header) is a FatalError naming
 *    the byte offset — the journal cannot be trusted and must be
 *    rebuilt.
 *
 * Appends are serialized under the store's mutex and flushed
 * record-at-a-time, so a SIGKILL at any instant loses at most the
 * record being written.
 *
 * Single-writer discipline: opening a store takes an exclusive
 * advisory flock(2) on `<dir>/results.piperes.lock` for the store's
 * lifetime, so a daemon and a concurrent CLI sweep pointed at the
 * same --store-dir can never interleave journal appends — the second
 * opener gets a FatalError naming the holder (pid and program).  The
 * lock is advisory per open file description: it protects against
 * other ResultStore instances (same or different process), dies with
 * the holding process (SIGKILL releases it), and never outlives a
 * crash.
 */

#ifndef PIPESIM_STORE_RESULT_STORE_HH
#define PIPESIM_STORE_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/simulator.hh"

namespace pipesim::store
{

/** Current (and only) PIPERES format version. */
inline constexpr std::uint32_t resultStoreFormatVersion = 1;

/**
 * Everything besides the machine configuration that selects a
 * result: which engine produced it, from which trace, with which
 * sampling parameters.  The program hash comes from
 * replay::programSha256; the config hash is derived internally from
 * the SimConfig (replay::configSha256 plus the point's fault stream).
 */
struct ResultKeyParams
{
    std::string programSha256; //!< hex digest of the program image
    std::string engine;        //!< "cycle" | "trace-exact" | "trace-sampled"
    std::string traceSha256;   //!< trace content hash; empty for cycle
    std::uint32_t samplePeriod = 0;
    std::uint32_t sampleWarmup = 0;
    std::uint32_t sampleMeasure = 0;
};

/**
 * The content key for one sweep point: 64 lower-case hex chars.
 * Pure function of the arguments; independent of worker count, sweep
 * composition and wall-clock.  Watchdog limits (maxCycles,
 * progressWindow) are deliberately excluded — they can only abort a
 * run, never change a completed result.
 */
std::string resultKeyHex(const SimConfig &config,
                         const ResultKeyParams &params);

/** One journaled result. */
struct StoreEntry
{
    std::string keyHex; //!< 64 hex chars (resultKeyHex)
    std::string label;  //!< human provenance, e.g. "16-16:128"
    SimResult result;   //!< counters + meta of the completed point
};

class ResultStore
{
  public:
    /**
     * Open (or create) the journal under @p dir, replaying it with
     * the recovery discipline above.
     * @throws FatalError on interior corruption, a damaged header, an
     *         unwritable directory, or when another ResultStore holds
     *         the directory's single-writer lock (the error names the
     *         holder).
     */
    explicit ResultStore(const std::string &dir);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** The journal file path (`<dir>/results.piperes`). */
    const std::string &path() const { return _path; }

    /** A stored result by content key, if one was journaled. */
    std::optional<SimResult> lookup(const std::string &keyHex) const;

    /**
     * Append one completed result and flush it to the journal.
     * A repeated key supersedes the earlier record (last one wins on
     * replay; compact() drops the shadowed ones).
     */
    void put(const std::string &keyHex, const std::string &label,
             const SimResult &result);

    /** Number of distinct keys currently served. */
    std::size_t entries() const;

    /** Journal bytes truncated by torn-tail recovery at open. */
    std::uint64_t recoveredBytes() const { return _recoveredBytes; }

    /**
     * Rewrite the journal atomically (temp + rename, the
     * PIPETRC/PIPECKPT discipline) keeping one record per key, in
     * first-seen order.
     * @return journal size in bytes after compaction.
     */
    std::uint64_t compact();

    /** Entries in first-seen journal order (for inspection). */
    std::vector<const StoreEntry *> entriesInOrder() const;

  private:
    void writeHeader(std::FILE *f) const;
    void openForAppend();
    void acquireWriterLock(const std::string &dir);
    void loadJournal();
    std::vector<std::uint8_t> encodeRecord(const StoreEntry &e) const;

    mutable std::mutex _mutex;
    std::string _path;
    std::FILE *_file = nullptr;
    int _lockFd = -1; //!< holds the single-writer advisory flock
    std::map<std::string, StoreEntry> _entries; //!< by keyHex
    std::vector<std::string> _order;            //!< first-seen key order
    std::uint64_t _recoveredBytes = 0;

    /**
     * Chaos hook for the kill-resume smoke test
     * (scripts/store_smoke.sh): when the environment variable
     * PIPESIM_STORE_CRASH_AFTER_PUTS is a positive integer N, the
     * process raises SIGKILL immediately after the Nth successful
     * append — a deterministic mid-sweep crash with N records safely
     * journaled.  Zero (or unset) disables the hook.
     */
    unsigned _crashAfterPuts = 0;
    unsigned _puts = 0;
};

/** Human-readable summary of a store (entries, bytes, recovery). */
std::string describeStore(const ResultStore &store);

} // namespace pipesim::store

#endif // PIPESIM_STORE_RESULT_STORE_HH
