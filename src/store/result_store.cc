#include "store/result_store.hh"

#include <array>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/file.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/sha256.hh"
#include "common/state_io.hh"
#include "replay/checkpoint.hh"
#include "replay/trace_format.hh"

namespace pipesim::store
{

namespace
{

constexpr std::array<std::uint8_t, 8> kMagic = {'P', 'I', 'P', 'E',
                                                'R', 'E', 'S', 0};

/** Header: magic, u32 version, u32 reserved, u32 CRC of the above. */
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4;

/** Per-record framing: u32 payload length, u32 payload CRC-32. */
constexpr std::size_t kFrameBytes = 8;

void
putString(StateWriter &w, const std::string &s)
{
    w.u32(std::uint32_t(s.size()));
    w.bytes(reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
}

std::string
takeString(StateReader &r, std::size_t maxLen, const char *what)
{
    const std::uint32_t len = r.u32();
    if (len > maxLen)
        r.fail(what, " length ", len, " exceeds the plausibility bound ",
               maxLen);
    std::string s(len, '\0');
    r.bytes(reinterpret_cast<std::uint8_t *>(s.data()), len);
    return s;
}

void
putHexKey(StateWriter &w, const std::string &hex)
{
    if (hex.size() != 64)
        fatal("result store: content key must be 64 hex chars, got ",
              hex.size());
    const auto nibble = [&](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return std::uint8_t(c - '0');
        if (c >= 'a' && c <= 'f')
            return std::uint8_t(c - 'a' + 10);
        fatal("result store: content key must be lower-case hex, "
              "got '", c, "'");
    };
    for (unsigned i = 0; i < 64; i += 2)
        w.u8(std::uint8_t(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
}

std::string
takeHexKey(StateReader &r)
{
    std::array<std::uint8_t, 32> raw;
    r.bytes(raw.data(), raw.size());
    static const char hex[] = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (const std::uint8_t b : raw) {
        s += hex[b >> 4];
        s += hex[b & 0xf];
    }
    return s;
}

StoreEntry
decodePayload(const std::vector<std::uint8_t> &payload,
              std::size_t fileOffset)
{
    StateReader r(payload,
                  "result store record at byte offset " +
                      std::to_string(fileOffset));
    StoreEntry e;
    e.keyHex = takeHexKey(r);
    e.label = takeString(r, 4096, "label");
    e.result.totalCycles = r.u64();
    e.result.instructions = r.u64();
    const std::uint32_t nCounters = r.u32();
    if (nCounters > 1u << 20)
        r.fail("implausible counter count ", nCounters);
    for (std::uint32_t i = 0; i < nCounters; ++i) {
        std::string name = takeString(r, 4096, "counter name");
        e.result.counters[std::move(name)] = r.u64();
    }
    const std::uint32_t nMeta = r.u32();
    if (nMeta > 1u << 20)
        r.fail("implausible meta count ", nMeta);
    for (std::uint32_t i = 0; i < nMeta; ++i) {
        std::string key = takeString(r, 4096, "meta key");
        e.result.meta[std::move(key)] =
            takeString(r, 1u << 20, "meta value");
    }
    r.expectEnd();
    return e;
}

unsigned
crashAfterPutsFromEnv()
{
    const char *env = std::getenv("PIPESIM_STORE_CRASH_AFTER_PUTS");
    if (!env || !*env)
        return 0;
    return unsigned(std::strtoul(env, nullptr, 10));
}

} // namespace

std::string
resultKeyHex(const SimConfig &config, const ResultKeyParams &params)
{
    StateWriter w;
    putString(w, params.programSha256);
    putString(w, replay::configSha256(config));
    putString(w, params.engine);
    putString(w, params.traceSha256);
    w.u32(params.samplePeriod);
    w.u32(params.sampleWarmup);
    w.u32(params.sampleMeasure);
    // The point's fault stream changes its result, so it is part of
    // the identity; a fault-free point keys identically no matter
    // what seed the (inactive) injector holds.
    if (config.fault.enabled()) {
        w.u32(config.fault.kinds);
        w.u64(config.fault.seed);
        std::uint64_t rateBits = 0;
        static_assert(sizeof(rateBits) == sizeof(config.fault.rate));
        std::memcpy(&rateBits, &config.fault.rate, sizeof(rateBits));
        w.u64(rateBits);
        w.u32(config.fault.maxLatencyJitter);
    } else {
        w.u32(0);
        w.u64(0);
        w.u64(0);
        w.u32(0);
    }
    return sha256Hex(w.data());
}

ResultStore::ResultStore(const std::string &dir)
    : _crashAfterPuts(crashAfterPutsFromEnv())
{
    if (dir.empty())
        fatal("result store: the store directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("result store: cannot create directory ", dir, ": ",
              ec.message());
    _path = dir + "/results.piperes";
    acquireWriterLock(dir);
    // From here on the lock is held: any constructor failure (a
    // corrupt journal is a FatalError) must release it, or the fd
    // would pin the lock for the rest of the process.
    try {
        loadJournal();
    } catch (...) {
        if (_file)
            std::fclose(_file);
        _file = nullptr;
        ::close(_lockFd);
        _lockFd = -1;
        throw;
    }
}

void
ResultStore::loadJournal()
{
    std::error_code ec;
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(_path, std::ios::binary);
        if (in) {
            bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        }
    }

    if (bytes.size() < kHeaderBytes) {
        // Missing, empty or torn-off mid-header-write: nothing usable
        // was ever journaled, so start fresh.  (A *damaged* complete
        // header is fatal below — it means the file is not ours.)
        _recoveredBytes = bytes.size();
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        if (!f)
            fatal("result store: cannot create ", _path);
        writeHeader(f);
        std::fclose(f);
    } else {
        if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0)
            fatal("result store ", _path,
                  ": bad magic (not a PIPERES file, at byte offset 0)");
        const auto u32At = [&](std::size_t pos) {
            return std::uint32_t(bytes[pos]) |
                   std::uint32_t(bytes[pos + 1]) << 8 |
                   std::uint32_t(bytes[pos + 2]) << 16 |
                   std::uint32_t(bytes[pos + 3]) << 24;
        };
        const std::uint32_t version = u32At(8);
        if (version != resultStoreFormatVersion)
            fatal("result store ", _path, ": unsupported version ",
                  version, " (this build reads version ",
                  resultStoreFormatVersion, ")");
        if (u32At(16) != replay::crc32(bytes.data(), 16))
            fatal("result store ", _path,
                  ": header CRC mismatch (at byte offset 16)");

        // Replay the journal.  A record that runs off the end of the
        // file is a torn tail (recovered); a record whose CRC fails
        // with more bytes *after* it is interior corruption (fatal).
        std::size_t pos = kHeaderBytes;
        std::size_t goodEnd = pos;
        while (pos < bytes.size()) {
            if (bytes.size() - pos < kFrameBytes)
                break; // torn tail: frame itself is incomplete
            const std::uint32_t len = u32At(pos);
            const std::uint32_t crc = u32At(pos + 4);
            if (bytes.size() - pos - kFrameBytes < len)
                break; // torn tail: payload is incomplete
            const std::uint8_t *payload = bytes.data() + pos + kFrameBytes;
            if (replay::crc32(payload, len) != crc) {
                if (pos + kFrameBytes + len == bytes.size())
                    break; // torn tail: last record damaged in place
                fatal("result store ", _path,
                      ": record CRC mismatch at byte offset ", pos,
                      " with ",
                      bytes.size() - (pos + kFrameBytes + len),
                      " bytes following it (interior corruption -- "
                      "the journal cannot be trusted; delete it to "
                      "rebuild)");
            }
            StoreEntry e = decodePayload(
                std::vector<std::uint8_t>(payload, payload + len), pos);
            if (!_entries.count(e.keyHex))
                _order.push_back(e.keyHex);
            _entries[e.keyHex] = std::move(e);
            pos += kFrameBytes + len;
            goodEnd = pos;
        }
        if (goodEnd != bytes.size()) {
            _recoveredBytes = bytes.size() - goodEnd;
            std::filesystem::resize_file(_path, goodEnd, ec);
            if (ec)
                fatal("result store: cannot truncate torn tail of ",
                      _path, ": ", ec.message());
        }
    }

    openForAppend();
}

ResultStore::~ResultStore()
{
    if (_file)
        std::fclose(_file);
    if (_lockFd >= 0)
        ::close(_lockFd); // releases the advisory flock
}

void
ResultStore::acquireWriterLock(const std::string &dir)
{
    const std::string lockPath = dir + "/results.piperes.lock";
    _lockFd = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
    if (_lockFd < 0)
        fatal("result store: cannot open lock file ", lockPath, ": ",
              std::strerror(errno));
    if (::flock(_lockFd, LOCK_EX | LOCK_NB) != 0) {
        // Contended: the file's content names the current holder
        // (written below by whoever won the lock).
        char buf[128] = {};
        const ssize_t n = ::pread(_lockFd, buf, sizeof(buf) - 1, 0);
        std::string holder =
            n > 0 ? std::string(buf, std::size_t(n)) : "another process";
        while (!holder.empty() &&
               (holder.back() == '\n' || holder.back() == '\r'))
            holder.pop_back();
        ::close(_lockFd);
        _lockFd = -1;
        fatal("result store ", dir, " is already open for writing by ",
              holder, " (single-writer advisory lock on ", lockPath,
              "); a daemon and a concurrent sweep must not share a "
              "--store-dir -- wait for the holder or use a different "
              "directory");
    }
    // Won the lock: record our identity for the next loser's message.
#ifdef __GLIBC__
    const char *name = program_invocation_short_name;
#else
    const char *name = "pipesim";
#endif
    const std::string ident =
        "pid " + std::to_string(::getpid()) + " (" + name + ")\n";
    if (::ftruncate(_lockFd, 0) != 0 ||
        ::pwrite(_lockFd, ident.data(), ident.size(), 0) < 0) {
        // Best effort: the lock itself is held either way.
    }
}

void
ResultStore::writeHeader(std::FILE *f) const
{
    std::vector<std::uint8_t> out(kMagic.begin(), kMagic.end());
    StateWriter w;
    w.u32(resultStoreFormatVersion);
    w.u32(0); // reserved
    out.insert(out.end(), w.data().begin(), w.data().end());
    const std::uint32_t crc = replay::crc32(out.data(), out.size());
    StateWriter c;
    c.u32(crc);
    out.insert(out.end(), c.data().begin(), c.data().end());
    if (std::fwrite(out.data(), 1, out.size(), f) != out.size() ||
        std::fflush(f) != 0)
        fatal("result store: cannot write header of ", _path);
}

void
ResultStore::openForAppend()
{
    _file = std::fopen(_path.c_str(), "ab");
    if (!_file)
        fatal("result store: cannot open ", _path, " for appending");
}

std::vector<std::uint8_t>
ResultStore::encodeRecord(const StoreEntry &e) const
{
    StateWriter w;
    putHexKey(w, e.keyHex);
    putString(w, e.label);
    w.u64(e.result.totalCycles);
    w.u64(e.result.instructions);
    w.u32(std::uint32_t(e.result.counters.size()));
    for (const auto &[name, value] : e.result.counters) {
        putString(w, name);
        w.u64(value);
    }
    w.u32(std::uint32_t(e.result.meta.size()));
    for (const auto &[key, value] : e.result.meta) {
        putString(w, key);
        putString(w, value);
    }
    const std::vector<std::uint8_t> payload = w.data();
    StateWriter rec;
    rec.u32(std::uint32_t(payload.size()));
    rec.u32(replay::crc32(payload.data(), payload.size()));
    rec.bytes(payload.data(), payload.size());
    return rec.take();
}

std::optional<SimResult>
ResultStore::lookup(const std::string &keyHex) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _entries.find(keyHex);
    if (it == _entries.end())
        return std::nullopt;
    return it->second.result;
}

void
ResultStore::put(const std::string &keyHex, const std::string &label,
                 const SimResult &result)
{
    std::lock_guard<std::mutex> lock(_mutex);
    StoreEntry e{keyHex, label, result};
    const std::vector<std::uint8_t> record = encodeRecord(e);
    // One fwrite + one fflush per record: after the flush the record
    // is out of the process, so even SIGKILL loses at most the
    // record currently being written (recovered as a torn tail).
    if (std::fwrite(record.data(), 1, record.size(), _file) !=
            record.size() ||
        std::fflush(_file) != 0)
        fatal("result store: cannot append to ", _path);
    if (!_entries.count(keyHex))
        _order.push_back(keyHex);
    _entries[keyHex] = std::move(e);
    ++_puts;
    if (_crashAfterPuts && _puts >= _crashAfterPuts)
        std::raise(SIGKILL); // chaos hook; see result_store.hh
}

std::size_t
ResultStore::entries() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

std::vector<const StoreEntry *>
ResultStore::entriesInOrder() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<const StoreEntry *> out;
    out.reserve(_order.size());
    for (const std::string &key : _order)
        out.push_back(&_entries.at(key));
    return out;
}

std::uint64_t
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(_mutex);
    const std::string tmp = _path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("result store: cannot create ", tmp);
    writeHeader(f);
    std::uint64_t total = kHeaderBytes;
    for (const std::string &key : _order) {
        const std::vector<std::uint8_t> record =
            encodeRecord(_entries.at(key));
        if (std::fwrite(record.data(), 1, record.size(), f) !=
            record.size()) {
            std::fclose(f);
            fatal("result store: cannot write ", tmp);
        }
        total += record.size();
    }
    if (std::fflush(f) != 0 || std::fclose(f) != 0)
        fatal("result store: cannot finish writing ", tmp);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
    if (std::rename(tmp.c_str(), _path.c_str()) != 0)
        fatal("result store: cannot rename ", tmp, " over ", _path);
    openForAppend();
    return total;
}

std::string
describeStore(const ResultStore &store)
{
    std::ostringstream os;
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(store.path(), ec);
    os << "store:     " << store.path() << "\n"
       << "entries:   " << store.entries() << "\n"
       << "bytes:     " << (ec ? 0 : size) << "\n";
    if (store.recoveredBytes())
        os << "recovered: " << store.recoveredBytes()
           << " torn-tail bytes truncated at open\n";
    else
        os << "recovered: clean\n";
    for (const StoreEntry *e : store.entriesInOrder())
        os << "  " << e->label << "  key=" << e->keyHex.substr(0, 16)
           << "  cycles=" << e->result.totalCycles
           << "  insts=" << e->result.instructions << "\n";
    return os.str();
}

} // namespace pipesim::store
