/**
 * @file
 * The conventional instruction cache baseline: Hill's always-prefetch
 * strategy (paper section 4.1).
 *
 * Model summary:
 *  - Direct-mapped cache with sub-blocked lines (one valid bit per
 *    instruction slot).  The PC is presented every cycle; tag and
 *    array lookup complete within the cycle, so a hit delivers one
 *    instruction per cycle.
 *  - On every instruction reference the next sequential location is
 *    prefetched, even across a line boundary (allocating/retagging
 *    the next line if needed).
 *  - Memory requests fetch one aligned bus-width region (one
 *    instruction on a 4-byte bus, two on an 8-byte bus); only one
 *    request may be outstanding, so a demand miss must wait for an
 *    in-flight prefetch to finish.
 *  - Data fetches have priority over instruction fetches and
 *    prefetches at the memory interface (configured in the memory
 *    system); demand fetches have priority over prefetches.
 *
 * The processor executes the same PIPE ISA, so PBR delay slots and
 * resolution timing are identical between strategies; only the
 * instruction-supply machinery differs.
 */

#ifndef PIPESIM_CORE_CONVENTIONAL_FETCH_HH
#define PIPESIM_CORE_CONVENTIONAL_FETCH_HH

#include <optional>

#include "cache/subblock_cache.hh"
#include "core/fetch_unit.hh"
#include "core/stream_follower.hh"

namespace pipesim
{

class ConventionalFetchUnit : public FetchUnit
{
  public:
    ConventionalFetchUnit(const FetchConfig &config, const Program &program,
                          MemorySystem &mem);

    void reset(Addr entry) override;
    void tick(Cycle now) override;
    bool instructionReady() const override;
    isa::FetchedInst take() override;
    void branchResolved(bool taken, Addr target) override;
    void regStats(StatGroup &stats, const std::string &prefix) override;
    void dumpState(std::ostream &os) const override;
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;
    void rebindRequest(MemRequest &req) override;

    const SubblockCache &cache() const { return _cache; }

  protected:
    std::optional<MemRequest> peekOffchip(ReqClass cls) override;
    void offchipAccepted() override;

  private:
    /** First sub-block of [addr, addr+bytes) missing from the cache. */
    std::optional<Addr> firstMissing(Addr addr, unsigned bytes) const;

    /** Build a fetch request for the aligned region containing addr. */
    MemRequest makeRequest(Addr addr, ReqClass cls);

    /** True if the outstanding request will fill @p addr's sub-block. */
    bool inflightCovers(Addr addr) const;

    void onBeatArrived(Addr addr, unsigned bytes);

    /** Attach the fill callbacks to @p req (creation and rebind). */
    void bindRequestCallbacks(MemRequest &req);

    FetchConfig _cfg;
    SubblockCache _cache;
    StreamFollower _follower;

    std::optional<MemRequest> _want;
    bool _outstanding = false;
    Addr _outstandingAddr = 0;
    unsigned _outstandingBytes = 0;

    /** Pending always-prefetch target (set on each reference). */
    std::optional<Addr> _prefetchAddr;

    /** Address whose demand miss has been counted already. */
    std::optional<Addr> _missRecordedFor;

    Counter _deliveredInsts;
    Counter _demandFetches;
    Counter _prefetchFetches;

    unsigned _busRegionBytes;
};

} // namespace pipesim

#endif // PIPESIM_CORE_CONVENTIONAL_FETCH_HH
