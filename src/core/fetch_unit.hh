/**
 * @file
 * The instruction-supply interface shared by the two fetch
 * strategies under study, plus the fetch-side configuration.
 *
 * Per cycle the simulator calls tick() (internal machinery: cache
 * lookups, buffer management, off-chip request generation) and the
 * pipeline consumes at most one instruction via instructionReady() /
 * take().  The pipeline pushes branch resolutions back with
 * branchResolved().
 */

#ifndef PIPESIM_CORE_FETCH_UNIT_HH
#define PIPESIM_CORE_FETCH_UNIT_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "assembler/program.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/memory_system.hh"
#include "mem/request.hh"
#include "obs/probe.hh"

namespace pipesim
{

/** Which fetch strategy to instantiate. */
enum class FetchStrategy
{
    Pipe,          //!< cache + IQ + IQB (the paper's contribution)
    Conventional,  //!< Hill's always-prefetch sub-blocked cache
    Tib,           //!< target instruction buffer (paper section 2.1)
};

/** Off-chip request gating policy for the PIPE strategy (section 6). */
enum class OffchipPolicy
{
    /**
     * Issue off-chip prefetches only for lines guaranteed to contain
     * at least one unconditionally executed instruction (the policy
     * the fabricated PIPE chip uses).
     */
    GuaranteedOnly,
    /**
     * True prefetching: speculative off-chip line requests are
     * allowed.  All results presented in the paper use this policy.
     */
    TruePrefetch,
};

/** Fetch-side configuration (paper simulation parameters 2,3,7,8). */
struct FetchConfig
{
    FetchStrategy strategy = FetchStrategy::Pipe;
    unsigned cacheBytes = 128;  //!< parameter 2 (the PIPE chip: 128)
    unsigned lineBytes = 8;     //!< parameter 3
    unsigned iqBytes = 8;       //!< parameter 7 (PIPE only)
    unsigned iqbBytes = 8;      //!< parameter 8 (PIPE only)
    OffchipPolicy offchipPolicy = OffchipPolicy::TruePrefetch;

    /**
     * Conventional strategy only: enable Hill's always-prefetch.
     * Disabling it gives the plain demand-fetch cache -- the
     * baseline always-prefetch consistently beat in Hill's study,
     * which is the premise the paper builds on.
     */
    bool alwaysPrefetch = true;

    /**
     * Consecutive instruction-fill parity errors (fault injection;
     * see docs/robustness.md) tolerated before the unit declares the
     * machine wedged with a SimAbort.  Each erroring fill is simply
     * retried: a corrupted transfer delivers no bytes, so the
     * allocated line stays invalid and the demand path re-requests it.
     */
    unsigned parityRetryLimit = 4;
};

class FetchUnit
{
  public:
    /**
     * @param program Program image instructions are decoded from.
     * @param mem     Memory system; the unit registers its demand
     *                and prefetch request clients with it.
     */
    FetchUnit(const Program &program, MemorySystem &mem);
    virtual ~FetchUnit();

    FetchUnit(const FetchUnit &) = delete;
    FetchUnit &operator=(const FetchUnit &) = delete;

    /** Restart fetching at @p entry with cold buffers and cache. */
    virtual void reset(Addr entry) = 0;

    /** Advance internal machinery one cycle. */
    virtual void tick(Cycle now) = 0;

    /** @return true if an instruction can be consumed this cycle. */
    virtual bool instructionReady() const = 0;

    /** Consume the next instruction (instructionReady() holds). */
    virtual isa::FetchedInst take() = 0;

    /**
     * A PBR resolved in the pipeline (applies to the oldest
     * unresolved PBR, in program order).
     */
    virtual void branchResolved(bool taken, Addr target) = 0;

    /** Register statistics under @p prefix. */
    virtual void regStats(StatGroup &stats, const std::string &prefix) = 0;

    /** Write the unit's internal state (forensic snapshots). */
    virtual void dumpState(std::ostream &os) const = 0;

    /** Serialize the unit's full state for a checkpoint. */
    virtual void saveState(StateWriter &w) const = 0;

    /**
     * Restore state saved by saveState() on a unit built from the
     * same FetchConfig and Program; re-binds the callbacks of any
     * pending request the unit holds.
     */
    virtual void restoreState(StateReader &r) = 0;

    /**
     * Re-attach this unit's callbacks to an in-flight instruction
     * fill restored by MemorySystem::restoreState (the request's
     * address identifies the fill; the unit's restored fill state
     * must agree with it).
     */
    virtual void rebindRequest(MemRequest &req) = 0;

    /**
     * Attach the probe bus the unit emits into: icacheAccess on every
     * cache/buffer lookup, fetchRequest when an off-chip line request
     * wins the bus, fetchFill when its last beat arrives.  Pass
     * nullptr to detach.
     */
    void setProbes(obs::ProbeBus *probes) { _probes = probes; }

  protected:
    /**
     * MemClient adapter: routes the memory system's pull requests to
     * the owning unit, filtered by request class.
     */
    class ClientPort : public MemClient
    {
      public:
        ClientPort(FetchUnit &unit, ReqClass cls)
            : _unit(unit), _cls(cls)
        {
        }

        std::optional<MemRequest>
        peek() override
        {
            return _unit.peekOffchip(_cls);
        }

        void accepted() override { _unit.offchipAccepted(); }

      private:
        FetchUnit &_unit;
        ReqClass _cls;
    };

    /** The unit's candidate off-chip request of class @p cls. */
    virtual std::optional<MemRequest> peekOffchip(ReqClass cls) = 0;

    /** The candidate request was accepted on the output bus. */
    virtual void offchipAccepted() = 0;

    /** Decode the instruction at @p addr from the program image. */
    isa::Instruction decodeAt(Addr addr) const;

    /** Byte size of the instruction at @p addr. */
    unsigned instSizeAt(Addr addr) const;

    /**
     * An instruction fill ended in an injected parity error.  The
     * caller has already rolled back its fill state so the fetch is
     * retried from scratch; this counts the retry and raises SimAbort
     * once parityRetryLimit consecutive fills have failed.
     */
    void noteParityError(Addr addr, unsigned bytes);

    /** A fill completed cleanly: reset the consecutive-error run. */
    void noteGoodFill() { _consecutiveParityErrors = 0; }

    /** Register the shared parity-retry counter under @p prefix. */
    void regParityStats(StatGroup &stats, const std::string &prefix);

    /** Serialize the base-class state shared by every strategy. */
    void saveBaseState(StateWriter &w) const
    {
        w.u32(_parityRetryLimit);
        w.u32(_consecutiveParityErrors);
        w.u64(_parityRetries.value());
        w.u64(_obsNow);
    }

    void restoreBaseState(StateReader &r)
    {
        if (r.u32() != _parityRetryLimit)
            r.fail("parity retry limit mismatch");
        _consecutiveParityErrors = r.u32();
        _parityRetries.set(r.u64());
        _obsNow = r.u64();
    }

    const Program &_program;
    MemorySystem &_mem;
    ClientPort _demandPort;
    ClientPort _prefetchPort;
    obs::ProbeBus *_probes = nullptr;
    /** See FetchConfig::parityRetryLimit (subclasses copy it here). */
    unsigned _parityRetryLimit = 4;
    unsigned _consecutiveParityErrors = 0;
    Counter _parityRetries;
    /**
     * Cycle of the most recent tick().  Acceptance and fill callbacks
     * fire from the memory system's tick, which runs after the fetch
     * tick in the same cycle, so stamping events with this is exact.
     */
    Cycle _obsNow = 0;
};

} // namespace pipesim

#endif // PIPESIM_CORE_FETCH_UNIT_HH
