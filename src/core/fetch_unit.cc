#include "core/fetch_unit.hh"

#include <sstream>

#include "common/abort.hh"

namespace pipesim
{

FetchUnit::FetchUnit(const Program &program, MemorySystem &mem)
    : _program(program), _mem(mem),
      _demandPort(*this, ReqClass::IFetchDemand),
      _prefetchPort(*this, ReqClass::IPrefetch)
{
    _mem.setDemandClient(&_demandPort);
    _mem.setPrefetchClient(&_prefetchPort);
}

FetchUnit::~FetchUnit()
{
    _mem.setDemandClient(nullptr);
    _mem.setPrefetchClient(nullptr);
}

isa::Instruction
FetchUnit::decodeAt(Addr addr) const
{
    if (auto inst = _program.decodeAt(addr))
        return *inst;
    // Past the program image: decode the zero parcel (an ALU no-op).
    // The simulation halts before such instructions ever issue; they
    // only exist so prefetch lookahead can run off the end of code.
    return isa::decode(0, 0, _program.mode());
}

unsigned
FetchUnit::instSizeAt(Addr addr) const
{
    return decodeAt(addr).sizeBytes();
}

void
FetchUnit::noteParityError(Addr addr, unsigned bytes)
{
    ++_parityRetries;
    ++_consecutiveParityErrors;
    if (_consecutiveParityErrors >= _parityRetryLimit) {
        std::ostringstream hex;
        hex << std::hex << addr;
        simAbort("instruction fill at 0x", hex.str(), " (", bytes,
                 " B) failed parity ", _consecutiveParityErrors,
                 " consecutive times (retry limit ", _parityRetryLimit,
                 "): giving up");
    }
}

void
FetchUnit::regParityStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".parity_retries", &_parityRetries,
                     "instruction fills retried after an injected "
                     "parity error");
}

} // namespace pipesim
