/**
 * @file
 * The PIPE instruction fetch strategy: a small direct-mapped
 * instruction cache backed by an Instruction Queue (IQ) and an
 * Instruction Queue Buffer (IQB), with control logic that exploits
 * the PBR instruction to track which instructions are guaranteed to
 * execute.
 *
 * Model summary (paper section 4.2):
 *  - Decode consumes from the head of the IQ.  When the IQ empties
 *    it refills from the IQB; when the IQB empties, the next
 *    sequential line is prefetched from the cache; a cache miss
 *    turns into an off-chip whole-line request.
 *  - Off-chip line data streams through the input bus into both the
 *    cache and the queues, so instructions are consumable as their
 *    bytes arrive.
 *  - The control logic scans buffered instructions for PBRs.  Under
 *    the GuaranteedOnly policy an off-chip request is only made for
 *    a line guaranteed to contain an unconditionally executed
 *    instruction; under TruePrefetch (used for all of the paper's
 *    presented results) speculative sequential prefetch is allowed.
 *  - When a PBR resolves taken, sequential bytes beyond the redirect
 *    point are squashed and the IQB starts filling from the branch
 *    target while the delay-slot instructions drain from the IQ.
 *
 * The IQ and IQB are modelled as one unified stream buffer of
 * capacity iqBytes + iqbBytes holding contiguous runs ("segments")
 * of the dynamic instruction stream; the IQB portion being free
 * (occupancy <= iqBytes) is the line-prefetch trigger.  This
 * preserves the architectural behaviour (capacities, lookahead
 * windows, single line-wide cache port) without simulating the
 * physical shift registers.
 */

#ifndef PIPESIM_CORE_PIPE_FETCH_HH
#define PIPESIM_CORE_PIPE_FETCH_HH

#include <deque>
#include <optional>

#include "cache/icache.hh"
#include "core/fetch_unit.hh"
#include "core/stream_follower.hh"

namespace pipesim
{

class PipeFetchUnit : public FetchUnit
{
  public:
    PipeFetchUnit(const FetchConfig &config, const Program &program,
                  MemorySystem &mem);

    void reset(Addr entry) override;
    void tick(Cycle now) override;
    bool instructionReady() const override;
    isa::FetchedInst take() override;
    void branchResolved(bool taken, Addr target) override;
    void regStats(StatGroup &stats, const std::string &prefix) override;
    void dumpState(std::ostream &os) const override;
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;
    void rebindRequest(MemRequest &req) override;

    const InstructionCache &cache() const { return _cache; }

    /** Total buffered bytes (IQ + IQB occupancy), for tests. */
    unsigned bufferedBytes() const { return _occupancy; }

  protected:
    std::optional<MemRequest> peekOffchip(ReqClass cls) override;
    void offchipAccepted() override;

  private:
    /** A contiguous run of buffered stream bytes. */
    struct Segment
    {
        Addr start;
        unsigned len;
    };

    /** An in-progress line fill into the stream buffer. */
    struct Fill
    {
        Addr lineBase;   //!< line being brought in
        Addr nextByte;   //!< next stream byte to append to the buffer
        Addr bufferCap;  //!< bytes at/after this address go cache-only
        bool offchip;    //!< beats stream from memory when true
        bool newSegment; //!< first append opens a fresh segment
        bool dead = false; //!< squashed; fills the cache only
    };

    void handleResolvedRedirect();
    void startFillIfNeeded();
    void performCacheFill();
    void appendBytes(Addr start, unsigned len);
    void truncateBufferAt(Addr r);

    /** Stream address one past the last buffered byte. */
    Addr tailEnd() const;

    /** Where the next fill should begin, and whether it retargets. */
    struct FillPlan
    {
        Addr start;
        bool newSegment;
    };
    std::optional<FillPlan> planNextFill() const;

    /** Walk @p n instruction lengths forward from @p addr. */
    Addr staticWalk(Addr addr, unsigned n) const;

    /**
     * True if an off-chip fill beginning at @p fill_start is
     * guaranteed to contain an unconditionally executed instruction.
     */
    bool fillGuaranteed(Addr fill_start, bool new_segment) const;

    /** True if the decoder is starving for bytes at nextAddr(). */
    bool decoderStarving() const;

    void onBeatArrived(Addr addr, unsigned bytes);
    void onFillComplete();

    /** Attach the fill callbacks to @p req (creation and rebind). */
    void bindFillCallbacks(MemRequest &req);

    FetchConfig _cfg;
    InstructionCache _cache;
    StreamFollower _follower;

    std::deque<Segment> _buffer;
    unsigned _occupancy = 0;
    unsigned _capacity;

    std::optional<Fill> _fill;
    std::optional<MemRequest> _want;
    bool _offchipInFlight = false;

    /** Redirect ids whose squash/retarget handling already ran. */
    std::uint64_t _squashDoneId = std::uint64_t(-1);

    /**
     * Redirect id whose target fill has been initiated.  Once set,
     * further fills while that redirect drains its delay slots are
     * plain sequential continuations of the *target* stream; without
     * this marker the address-based comparison against the redirect
     * point would re-plan the target (duplicating stream bytes) or
     * wrongly cap post-target fills.
     */
    std::uint64_t _targetPlannedId = std::uint64_t(-1);

    Counter _deliveredInsts;
    Counter _offchipDemandLines;
    Counter _offchipPrefetchLines;
    Counter _squashedBytes;
    Counter _blockedOnGuarantee;
};

} // namespace pipesim

#endif // PIPESIM_CORE_PIPE_FETCH_HH
