/**
 * @file
 * Shared constructor for the three fetch strategies, so the cycle
 * simulator and the trace-replay engine build identical front ends.
 */

#ifndef PIPESIM_CORE_FETCH_FACTORY_HH
#define PIPESIM_CORE_FETCH_FACTORY_HH

#include <memory>

#include "core/fetch_unit.hh"

namespace pipesim
{

class Program;
class MemorySystem;

/** Build the fetch unit selected by @p config.strategy. */
std::unique_ptr<FetchUnit> makeFetchUnit(const FetchConfig &config,
                                         const Program &program,
                                         MemorySystem &mem);

} // namespace pipesim

#endif // PIPESIM_CORE_FETCH_FACTORY_HH
