/**
 * @file
 * Architectural instruction-stream bookkeeping shared by both fetch
 * strategies.
 *
 * PIPE's prepare-to-branch (PBR) instruction names a branch register
 * (the target), a condition, and a delay-slot count k: exactly k
 * dynamic instructions after the PBR execute unconditionally, then
 * the stream continues at the target (if taken) or falls through.
 * The StreamFollower tracks where the next instruction to *deliver*
 * to decode comes from, blocking when the stream reaches an
 * unresolved redirect point.
 *
 * Branch resolutions arrive from the pipeline (one cycle after the
 * PBR issues) in program order.
 */

#ifndef PIPESIM_CORE_STREAM_FOLLOWER_HH
#define PIPESIM_CORE_STREAM_FOLLOWER_HH

#include <deque>
#include <optional>

#include "common/state_io.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace pipesim
{

class StreamFollower
{
  public:
    /** Restart the stream at @p entry. */
    void reset(Addr entry);

    /**
     * Address of the next instruction to deliver, or nullopt when
     * delivery is blocked at an unresolved redirect point.
     */
    std::optional<Addr> nextAddr() const;

    /** @return true if delivery is blocked awaiting a resolution. */
    bool blocked() const { return !nextAddr().has_value(); }

    /**
     * Record the delivery of the instruction at nextAddr().
     * Advances the stream; a PBR opens a new pending redirect whose
     * delay-slot countdown begins immediately (nested PBRs queue and
     * start counting when they reach the front -- the code generator
     * never nests PBRs inside delay slots).
     */
    void delivered(const isa::Instruction &inst);

    /**
     * A PBR resolved in the pipeline.  Applies to the oldest
     * unresolved pending redirect.
     *
     * @param taken  Branch direction.
     * @param target Branch-register contents (valid when taken).
     */
    void resolved(bool taken, Addr target);

    /**
     * Stream address of the front redirect point: the address of the
     * first instruction past the current PBR's delay slots, if the
     * slot countdown has completed or the byte position is already
     * determined by delivered instructions.  Used by fetch control
     * logic for squashing and guarantee decisions.
     */
    std::optional<Addr> frontRedirectAddr() const;

    /** Front pending redirect is resolved? (false if none pending) */
    bool frontResolved() const;
    /** Front pending redirect resolved taken? */
    bool frontTaken() const;
    /** Front pending redirect target (valid when resolved taken). */
    Addr frontTarget() const;

    /** @return true if any redirect is pending (unapplied). */
    bool hasPending() const { return !_pending.empty(); }

    /**
     * Current stream position: the address following the last
     * delivered instruction, before any unapplied redirect.
     */
    Addr streamPos() const { return _next; }

    /** Delay slots of the front pending redirect still to deliver. */
    unsigned frontSlotsLeft() const;

    /**
     * Identity of the front pending redirect (monotonic), letting
     * fetch control apply squash/retarget actions exactly once.
     */
    std::uint64_t frontId() const;

    void saveState(StateWriter &w) const
    {
        w.u32(_next);
        w.u64(_nextId);
        w.u32(std::uint32_t(_pending.size()));
        for (const Pending &p : _pending) {
            w.u32(p.slotsLeft);
            w.u64(p.id);
            w.b(p.resolvedFlag);
            w.b(p.taken);
            w.u32(p.target);
        }
    }

    void restoreState(StateReader &r)
    {
        _next = r.u32();
        _nextId = r.u64();
        _pending.clear();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            Pending p;
            p.slotsLeft = r.u32();
            p.id = r.u64();
            p.resolvedFlag = r.b();
            p.taken = r.b();
            p.target = r.u32();
            _pending.push_back(p);
        }
    }

  private:
    /** Apply the front redirect if the stream has reached it. */
    void applyFrontIfDue();

    struct Pending
    {
        unsigned slotsLeft;             //!< delay slots not yet delivered
        std::uint64_t id = 0;
        bool resolvedFlag = false;
        bool taken = false;
        Addr target = 0;
    };

    Addr _next = 0;
    std::uint64_t _nextId = 0;
    std::deque<Pending> _pending;
};

} // namespace pipesim

#endif // PIPESIM_CORE_STREAM_FOLLOWER_HH
