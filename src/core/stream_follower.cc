#include "core/stream_follower.hh"

#include "common/log.hh"

namespace pipesim
{

void
StreamFollower::reset(Addr entry)
{
    _next = entry;
    _pending.clear();
}

std::optional<Addr>
StreamFollower::nextAddr() const
{
    if (!_pending.empty() && _pending.front().slotsLeft == 0)
        return std::nullopt; // at the redirect point, unresolved
    return _next;
}

void
StreamFollower::delivered(const isa::Instruction &inst)
{
    PIPESIM_ASSERT(nextAddr().has_value(),
                   "delivery while blocked at a redirect point");
    _next += inst.sizeBytes();
    if (!_pending.empty() && _pending.front().slotsLeft > 0)
        --_pending.front().slotsLeft;
    if (inst.isPbr()) {
        Pending p{inst.count, _nextId++, false, false, 0};
        _pending.push_back(p);
    }
    applyFrontIfDue();
}

void
StreamFollower::resolved(bool taken, Addr target)
{
    for (Pending &p : _pending) {
        if (!p.resolvedFlag) {
            p.resolvedFlag = true;
            p.taken = taken;
            p.target = target;
            applyFrontIfDue();
            return;
        }
    }
    panic("branch resolution with no unresolved PBR pending");
}

void
StreamFollower::applyFrontIfDue()
{
    while (!_pending.empty() && _pending.front().slotsLeft == 0 &&
           _pending.front().resolvedFlag) {
        if (_pending.front().taken)
            _next = _pending.front().target;
        _pending.pop_front();
    }
}

std::optional<Addr>
StreamFollower::frontRedirectAddr() const
{
    if (_pending.empty() || _pending.front().slotsLeft != 0)
        return std::nullopt;
    return _next;
}

bool
StreamFollower::frontResolved() const
{
    return !_pending.empty() && _pending.front().resolvedFlag;
}

bool
StreamFollower::frontTaken() const
{
    return frontResolved() && _pending.front().taken;
}

Addr
StreamFollower::frontTarget() const
{
    PIPESIM_ASSERT(frontResolved(), "frontTarget of unresolved redirect");
    return _pending.front().target;
}

unsigned
StreamFollower::frontSlotsLeft() const
{
    PIPESIM_ASSERT(hasPending(), "frontSlotsLeft with nothing pending");
    return _pending.front().slotsLeft;
}

std::uint64_t
StreamFollower::frontId() const
{
    PIPESIM_ASSERT(hasPending(), "frontId with nothing pending");
    return _pending.front().id;
}

} // namespace pipesim
