#include "core/fetch_factory.hh"

#include "common/log.hh"
#include "core/conventional_fetch.hh"
#include "core/pipe_fetch.hh"
#include "core/tib_fetch.hh"

namespace pipesim
{

std::unique_ptr<FetchUnit>
makeFetchUnit(const FetchConfig &config, const Program &program,
              MemorySystem &mem)
{
    switch (config.strategy) {
      case FetchStrategy::Pipe:
        return std::make_unique<PipeFetchUnit>(config, program, mem);
      case FetchStrategy::Conventional:
        return std::make_unique<ConventionalFetchUnit>(config, program,
                                                       mem);
      case FetchStrategy::Tib:
        return std::make_unique<TibFetchUnit>(config, program, mem);
    }
    panic("unknown fetch strategy ", unsigned(config.strategy));
}

} // namespace pipesim
