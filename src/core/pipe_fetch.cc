#include "core/pipe_fetch.hh"

#include <ostream>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pipesim
{

PipeFetchUnit::PipeFetchUnit(const FetchConfig &config,
                             const Program &program, MemorySystem &mem)
    : FetchUnit(program, mem), _cfg(config),
      _cache(config.cacheBytes, config.lineBytes),
      _capacity(config.iqBytes + config.iqbBytes)
{
    _parityRetryLimit = config.parityRetryLimit;
    if (config.iqBytes < 2 * parcelBytes)
        fatal("IQ must hold at least one two-parcel instruction");
    if (config.iqbBytes < config.lineBytes)
        fatal("IQB (", config.iqbBytes, " B) must hold a full cache line (",
              config.lineBytes, " B)");
    reset(program.entry());
}

void
PipeFetchUnit::reset(Addr entry)
{
    _buffer.clear();
    _occupancy = 0;
    _fill.reset();
    _want.reset();
    _offchipInFlight = false;
    _squashDoneId = std::uint64_t(-1);
    _follower.reset(entry);
    _cache.invalidateAll();
}

Addr
PipeFetchUnit::tailEnd() const
{
    if (!_buffer.empty())
        return _buffer.back().start + _buffer.back().len;
    return _follower.streamPos();
}

Addr
PipeFetchUnit::staticWalk(Addr addr, unsigned n) const
{
    for (unsigned i = 0; i < n; ++i)
        addr += instSizeAt(addr);
    return addr;
}

void
PipeFetchUnit::appendBytes(Addr start, unsigned len)
{
    if (len == 0)
        return;
    if (!_buffer.empty() &&
        _buffer.back().start + _buffer.back().len == start) {
        _buffer.back().len += len;
    } else {
        _buffer.push_back(Segment{start, len});
    }
    _occupancy += len;
}

void
PipeFetchUnit::truncateBufferAt(Addr r)
{
    // The buffered stream from the current delivery position onward
    // is a single sequential run (redirect-target segments are only
    // created for already-squashed redirects), so squashing affects
    // the tail segment(s) whose addresses reach past r.
    while (!_buffer.empty()) {
        Segment &tail = _buffer.back();
        if (r <= tail.start) {
            _squashedBytes += tail.len;
            _occupancy -= tail.len;
            _buffer.pop_back();
            continue;
        }
        if (r < tail.start + tail.len) {
            const unsigned cut = tail.start + tail.len - r;
            _squashedBytes += cut;
            _occupancy -= cut;
            tail.len -= cut;
        }
        break;
    }
}

void
PipeFetchUnit::branchResolved(bool taken, Addr target)
{
    // Squash bookkeeping must run before the follower applies a
    // zero-delay-slot redirect.  Squashing is only possible when the
    // resolution lands on the front pending redirect; otherwise the
    // tick-time handler deals with it once the redirect reaches the
    // front.
    if (_follower.hasPending() && !_follower.frontResolved()) {
        _squashDoneId = _follower.frontId();
        if (taken) {
            const Addr r = staticWalk(_follower.streamPos(),
                                      _follower.frontSlotsLeft());
            truncateBufferAt(r);
            if (_fill && !_fill->dead) {
                if (_fill->nextByte >= r)
                    _fill->dead = true;
                else
                    _fill->bufferCap = std::min(_fill->bufferCap, r);
            }
        }
    }
    _follower.resolved(taken, target);
}

void
PipeFetchUnit::handleResolvedRedirect()
{
    // A redirect resolved while it was not the front (its elder was
    // still draining delay slots) is squashed once it is promoted.
    if (!_follower.hasPending() || !_follower.frontResolved() ||
        _follower.frontId() == _squashDoneId)
        return;
    _squashDoneId = _follower.frontId();
    if (_follower.frontTaken()) {
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        truncateBufferAt(r);
        if (_fill && !_fill->dead) {
            if (_fill->nextByte >= r)
                _fill->dead = true;
            else
                _fill->bufferCap = std::min(_fill->bufferCap, r);
        }
    }
}

std::optional<PipeFetchUnit::FillPlan>
PipeFetchUnit::planNextFill() const
{
    const Addr te = tailEnd();
    if (_follower.hasPending() && _follower.frontResolved() &&
        _follower.frontTaken() &&
        _follower.frontId() != _targetPlannedId) {
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        if (te >= r)
            return FillPlan{_follower.frontTarget(), true};
        return FillPlan{te, false};
    }
    return FillPlan{te, false};
}

bool
PipeFetchUnit::decoderStarving() const
{
    const auto next = _follower.nextAddr();
    if (!next)
        return false; // blocked on a branch, not on bytes
    if (_buffer.empty())
        return true;
    const Segment &head = _buffer.front();
    if (head.start != *next)
        return true;
    return head.len < instSizeAt(*next);
}

bool
PipeFetchUnit::fillGuaranteed(Addr fill_start, bool new_segment) const
{
    if (new_segment)
        return true; // resolved-taken branch target: will execute

    if (_follower.hasPending()) {
        if (_follower.frontResolved() && !_follower.frontTaken()) {
            // Fall-through resolved: sequential flow continues; any
            // further constraint comes from a younger PBR, handled
            // conservatively by treating the window as guaranteed
            // only up to the younger redirect once it is the front.
            return true;
        }
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        return fill_start < r;
    }

    // No PBR in flight: scan the buffered, undelivered instructions
    // (the IQ/IQB contents) for a PBR.  If none is found the next
    // sequential line is guaranteed to contain at least one
    // unconditionally executed instruction.
    auto next = _follower.nextAddr();
    if (!next)
        return false;
    Addr cursor = *next;
    bool in_stream = false;
    for (const Segment &seg : _buffer) {
        if (!in_stream) {
            if (cursor < seg.start || cursor >= seg.start + seg.len)
                continue;
            in_stream = true;
        } else {
            cursor = seg.start; // stream resumes at a redirect target
        }
        while (cursor < seg.start + seg.len) {
            const isa::Instruction inst = decodeAt(cursor);
            if (cursor + inst.sizeBytes() > seg.start + seg.len) {
                // The visible window ends mid-instruction; no PBR was
                // seen, so the next line is guaranteed (paper 4.2).
                return true;
            }
            if (inst.isPbr()) {
                const Addr r =
                    staticWalk(cursor + inst.sizeBytes(), inst.count);
                return fill_start < r;
            }
            cursor += inst.sizeBytes();
        }
    }
    return true;
}

void
PipeFetchUnit::startFillIfNeeded()
{
    if (_fill)
        return; // one fill (and one off-chip request) at a time

    if (_occupancy > _cfg.iqBytes && !decoderStarving())
        return; // IQB portion still occupied; no prefetch trigger

    const auto plan = planNextFill();
    if (!plan)
        return;

    const Addr line = _cache.lineBase(plan->start);
    const Addr line_end = line + _cfg.lineBytes;
    Addr buffer_cap = line_end;
    if (plan->newSegment) {
        _targetPlannedId = _follower.frontId();
    } else if (_follower.hasPending() && _follower.frontResolved() &&
               _follower.frontTaken() &&
               _follower.frontId() != _targetPlannedId) {
        // Pre-target sequential fill: cap at the redirect point.
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        buffer_cap = std::min(buffer_cap, r);
    }

    const bool hit = _cache.lineValid(line);
    _cache.recordLookup(hit);
    if (_probes && _probes->icacheAccess.active())
        _probes->icacheAccess.notify(obs::CacheEvent{_obsNow, line, hit});
    if (hit) {
        _fill = Fill{line, plan->start, buffer_cap, false,
                     plan->newSegment};
        performCacheFill();
        return;
    }

    if (_cfg.offchipPolicy == OffchipPolicy::GuaranteedOnly &&
        !fillGuaranteed(plan->start, plan->newSegment)) {
        ++_blockedOnGuarantee;
        return;
    }

    // Whole-line off-chip fetch, streaming into the cache and the
    // queues as beats arrive.
    _cache.allocate(line);
    _fill = Fill{line, plan->start, buffer_cap, true, plan->newSegment};

    MemRequest req;
    req.addr = line;
    req.bytes = _cfg.lineBytes;
    req.isStore = false;
    const bool demand = decoderStarving() || _buffer.empty();
    req.cls = demand ? ReqClass::IFetchDemand : ReqClass::IPrefetch;
    if (demand)
        ++_offchipDemandLines;
    else
        ++_offchipPrefetchLines;
    bindFillCallbacks(req);
    _want = std::move(req);
}

void
PipeFetchUnit::bindFillCallbacks(MemRequest &req)
{
    req.onBeat = [this](Addr addr, unsigned bytes) {
        onBeatArrived(addr, bytes);
    };
    req.onComplete = [this]() { onFillComplete(); };
    req.onParityError = [this]() {
        // A corrupted transfer delivered no beats, so nothing was
        // appended and the allocated line is still invalid: dropping
        // the fill makes the next tick re-plan and re-request it.
        PIPESIM_ASSERT(_fill && _fill->offchip,
                       "parity error with no off-chip fill active");
        const Addr line = _fill->lineBase;
        const bool dead = _fill->dead;
        if (_fill->newSegment && _follower.hasPending() &&
            _follower.frontId() == _targetPlannedId)
            _targetPlannedId = std::uint64_t(-1);
        _offchipInFlight = false;
        _fill.reset();
        if (!dead)
            noteParityError(line, _cfg.lineBytes);
    };
}

void
PipeFetchUnit::rebindRequest(MemRequest &req)
{
    bindFillCallbacks(req);
}

void
PipeFetchUnit::performCacheFill()
{
    PIPESIM_ASSERT(_fill && !_fill->offchip, "no cache fill in progress");
    const Addr line_end = _fill->lineBase + _cfg.lineBytes;
    const Addr hi = std::min(line_end, _fill->bufferCap);
    if (_fill->nextByte < hi) {
        if (_fill->newSegment) {
            _buffer.push_back(Segment{_fill->nextByte, 0});
            _fill->newSegment = false;
        }
        appendBytes(_fill->nextByte, hi - _fill->nextByte);
    }
    _fill.reset();
}

void
PipeFetchUnit::onBeatArrived(Addr addr, unsigned bytes)
{
    PIPESIM_ASSERT(_fill && _fill->offchip,
                   "beat arrived with no off-chip fill active");
    _cache.fill(addr, bytes);
    if (_fill->dead)
        return;
    const Addr lo = std::max(addr, _fill->nextByte);
    const Addr hi = std::min<Addr>(addr + bytes, _fill->bufferCap);
    if (lo >= hi)
        return;
    PIPESIM_ASSERT(lo == _fill->nextByte, "non-streaming buffer append");
    if (_fill->newSegment) {
        _buffer.push_back(Segment{lo, 0});
        _fill->newSegment = false;
    }
    appendBytes(lo, hi - lo);
    _fill->nextByte = hi;
}

void
PipeFetchUnit::onFillComplete()
{
    if (_probes && _probes->fetchFill.active() && _fill) {
        _probes->fetchFill.notify(obs::FetchEvent{
            _obsNow, _fill->lineBase, _cfg.lineBytes, false});
    }
    _offchipInFlight = false;
    _fill.reset();
    noteGoodFill();
}

std::optional<MemRequest>
PipeFetchUnit::peekOffchip(ReqClass cls)
{
    if (_want && _want->cls == cls)
        return _want;
    return std::nullopt;
}

void
PipeFetchUnit::offchipAccepted()
{
    PIPESIM_ASSERT(_want, "acceptance with no request outstanding");
    if (_probes && _probes->fetchRequest.active()) {
        _probes->fetchRequest.notify(obs::FetchEvent{
            _obsNow, _want->addr, _want->bytes,
            _want->cls == ReqClass::IFetchDemand});
    }
    _offchipInFlight = true;
    _want.reset();
}

void
PipeFetchUnit::tick(Cycle now)
{
    _obsNow = now;
    handleResolvedRedirect();

    // A prefetch-class request whose line the decoder now starves
    // for is promoted to demand priority.
    if (_want && _want->cls == ReqClass::IPrefetch &&
        (decoderStarving() || _buffer.empty())) {
        _want->cls = ReqClass::IFetchDemand;
    }

    startFillIfNeeded();
}

bool
PipeFetchUnit::instructionReady() const
{
    const auto next = _follower.nextAddr();
    if (!next || _buffer.empty())
        return false;
    const Segment &head = _buffer.front();
    PIPESIM_ASSERT(head.start == *next, "buffer head ", head.start,
                   " does not match stream position ", *next);
    return head.len >= instSizeAt(*next);
}

isa::FetchedInst
PipeFetchUnit::take()
{
    PIPESIM_ASSERT(instructionReady(), "take() with nothing ready");
    const Addr pc = *_follower.nextAddr();
    const isa::Instruction inst = decodeAt(pc);
    Segment &head = _buffer.front();
    head.start += inst.sizeBytes();
    head.len -= inst.sizeBytes();
    _occupancy -= inst.sizeBytes();
    if (head.len == 0)
        _buffer.pop_front();
    _follower.delivered(inst);
    ++_deliveredInsts;
    return isa::FetchedInst{pc, inst};
}

void
PipeFetchUnit::dumpState(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "pipe fetch: " << _occupancy << "/" << _capacity
       << " B buffered in " << _buffer.size() << " segment(s)";
    if (const auto next = _follower.nextAddr())
        os << ", next pc 0x" << std::hex << *next << std::dec;
    else
        os << ", decode blocked on an unresolved branch";
    os << "\n";
    for (const Segment &seg : _buffer)
        os << "  segment: 0x" << std::hex << seg.start << std::dec
           << " (" << seg.len << " B)\n";
    if (_fill) {
        os << "  fill: line 0x" << std::hex << _fill->lineBase
           << ", next byte 0x" << _fill->nextByte << std::dec
           << (_fill->offchip ? ", off-chip" : ", from cache")
           << (_fill->dead ? ", squashed" : "") << "\n";
    }
    if (_want) {
        os << "  queued request: 0x" << std::hex << _want->addr
           << std::dec << " (" << _want->bytes << " B, "
           << reqClassName(_want->cls) << ")\n";
    }
    os << "  off-chip in flight: " << (_offchipInFlight ? "yes" : "no")
       << ", consecutive parity errors: " << _consecutiveParityErrors
       << "\n";
    os.flags(flags);
}

void
PipeFetchUnit::saveState(StateWriter &w) const
{
    saveBaseState(w);
    _follower.saveState(w);
    _cache.saveState(w);
    w.u32(std::uint32_t(_buffer.size()));
    for (const Segment &seg : _buffer) {
        w.u32(seg.start);
        w.u32(seg.len);
    }
    w.u32(_occupancy);
    w.b(_fill.has_value());
    if (_fill) {
        w.u32(_fill->lineBase);
        w.u32(_fill->nextByte);
        w.u32(_fill->bufferCap);
        w.b(_fill->offchip);
        w.b(_fill->newSegment);
        w.b(_fill->dead);
    }
    w.b(_want.has_value());
    if (_want)
        saveMemRequest(w, *_want);
    w.b(_offchipInFlight);
    w.u64(_squashDoneId);
    w.u64(_targetPlannedId);
    w.u64(_deliveredInsts.value());
    w.u64(_offchipDemandLines.value());
    w.u64(_offchipPrefetchLines.value());
    w.u64(_squashedBytes.value());
    w.u64(_blockedOnGuarantee.value());
}

void
PipeFetchUnit::restoreState(StateReader &r)
{
    restoreBaseState(r);
    _follower.restoreState(r);
    _cache.restoreState(r);
    _buffer.clear();
    const std::uint32_t segs = r.u32();
    for (std::uint32_t i = 0; i < segs; ++i) {
        Segment seg;
        seg.start = r.u32();
        seg.len = r.u32();
        _buffer.push_back(seg);
    }
    _occupancy = r.u32();
    if (_occupancy > _capacity)
        r.fail("buffer occupancy ", _occupancy, " > capacity ",
               _capacity);
    _fill.reset();
    if (r.b()) {
        Fill f;
        f.lineBase = r.u32();
        f.nextByte = r.u32();
        f.bufferCap = r.u32();
        f.offchip = r.b();
        f.newSegment = r.b();
        f.dead = r.b();
        _fill = f;
    }
    _want.reset();
    if (r.b()) {
        MemRequest req = restoreMemRequest(r);
        bindFillCallbacks(req);
        _want = std::move(req);
    }
    _offchipInFlight = r.b();
    _squashDoneId = r.u64();
    _targetPlannedId = r.u64();
    _deliveredInsts.set(r.u64());
    _offchipDemandLines.set(r.u64());
    _offchipPrefetchLines.set(r.u64());
    _squashedBytes.set(r.u64());
    _blockedOnGuarantee.set(r.u64());
}

void
PipeFetchUnit::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".delivered_insts", &_deliveredInsts,
                     "instructions delivered to decode");
    stats.regCounter(prefix + ".offchip_demand_lines",
                     &_offchipDemandLines,
                     "demand-class off-chip line fetches");
    stats.regCounter(prefix + ".offchip_prefetch_lines",
                     &_offchipPrefetchLines,
                     "prefetch-class off-chip line fetches");
    stats.regCounter(prefix + ".squashed_bytes", &_squashedBytes,
                     "buffered bytes squashed by taken branches");
    stats.regCounter(prefix + ".blocked_on_guarantee",
                     &_blockedOnGuarantee,
                     "fill opportunities blocked by the guarantee policy");
    regParityStats(stats, prefix);
    _cache.regStats(stats, prefix + ".icache");
}

} // namespace pipesim
