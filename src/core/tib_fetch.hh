/**
 * @file
 * Target Instruction Buffer (TIB) fetch strategy — the third approach
 * discussed in the paper's section 2.1 (used by the AMD 29000 and
 * studied by Rau/Rossman, Grohoski/Patel and Hill):
 *
 *   "A TIB can be used in place of or in addition to an instruction
 *    cache, and contains the n sequential instructions stored at a
 *    branch target address. When a branch is taken, the n
 *    instructions are taken out of the TIB while the I-Fetch control
 *    logic issues requests for the instructions sequential to the
 *    ones in the TIB. If there are more instructions in the TIB than
 *    the number of clock cycles it takes to access external memory,
 *    the instruction stream will have no gaps in it."
 *
 * Our rendition uses the TIB *in place of* a cache (the 29000
 * arrangement):
 *
 *  - sequential instructions stream from off-chip memory into a small
 *    stream buffer (no cache; every instruction travels the bus, so
 *    off-chip traffic is high — the drawback the paper notes);
 *  - each taken branch allocates/uses a TIB entry, direct-mapped on
 *    the target address, holding the first tibEntryBytes of the
 *    target path;
 *  - on a TIB hit the buffered target instructions are consumed while
 *    the off-chip fetch for the instructions following the entry is
 *    issued immediately, hiding the memory latency.
 *
 * Configuration reuses FetchConfig: cacheBytes is the total TIB
 * capacity and lineBytes the entry size, so the standard sweeps
 * compare equal on-chip storage across strategies.
 */

#ifndef PIPESIM_CORE_TIB_FETCH_HH
#define PIPESIM_CORE_TIB_FETCH_HH

#include <deque>
#include <optional>
#include <vector>

#include "core/fetch_unit.hh"
#include "core/stream_follower.hh"

namespace pipesim
{

class TibFetchUnit : public FetchUnit
{
  public:
    TibFetchUnit(const FetchConfig &config, const Program &program,
                 MemorySystem &mem);

    void reset(Addr entry) override;
    void tick(Cycle now) override;
    bool instructionReady() const override;
    isa::FetchedInst take() override;
    void branchResolved(bool taken, Addr target) override;
    void regStats(StatGroup &stats, const std::string &prefix) override;
    void dumpState(std::ostream &os) const override;
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;
    void rebindRequest(MemRequest &req) override;

    unsigned numEntries() const { return unsigned(_entries.size()); }
    unsigned entryBytes() const { return _entryBytes; }

  protected:
    std::optional<MemRequest> peekOffchip(ReqClass cls) override;
    void offchipAccepted() override;

  private:
    struct TibEntry
    {
        bool valid = false;
        Addr target = 0;
        unsigned validBytes = 0; //!< filled from the target onward
    };

    /** A contiguous run of fetched stream bytes (cf. PipeFetchUnit). */
    struct Segment
    {
        Addr start;
        unsigned len;
    };

    TibEntry &entryFor(Addr target);

    void handleResolvedRedirect();
    void startFetchIfNeeded();
    void appendBytes(Addr start, unsigned len);
    void truncateBufferAt(Addr r);
    Addr tailEnd() const;
    Addr staticWalk(Addr addr, unsigned n) const;
    bool decoderStarving() const;

    void onBeatArrived(Addr addr, unsigned bytes);

    /** Attach the fetch callbacks to @p req (creation and rebind). */
    void bindFetchCallbacks(MemRequest &req);

    FetchConfig _cfg;
    StreamFollower _follower;
    std::vector<TibEntry> _entries;
    unsigned _entryBytes;

    std::deque<Segment> _buffer;
    unsigned _occupancy = 0;
    unsigned _bufferCapacity;

    /** In-progress off-chip fetch streaming into the buffer. */
    struct Fetch
    {
        Addr nextByte;       //!< next stream byte to append
        Addr end;            //!< one past the last byte requested
        bool dead = false;   //!< squashed by a taken branch
        /** Fill this TIB entry (by target) as bytes arrive. */
        std::optional<Addr> fillTibTarget;
        /** This fetch planned the front redirect's target (set
         *  _targetPlannedId); a parity retry must re-plan it. */
        bool retargeted = false;
    };
    std::optional<Fetch> _fetch;
    std::optional<MemRequest> _want;
    bool _offchipInFlight = false;

    std::uint64_t _squashDoneId = std::uint64_t(-1);

    /** Redirect id whose target fetch was already initiated (see
     *  PipeFetchUnit::_targetPlannedId). */
    std::uint64_t _targetPlannedId = std::uint64_t(-1);

    /**
     * Targets of resolved-taken branches whose first fetch has not
     * happened yet.  A redirect can be applied by the stream follower
     * before any tick observes it (when the delay slots were already
     * buffered), so the TIB lookup keys off this queue rather than
     * the pending-redirect state.
     */
    std::deque<Addr> _pendingTargets;

    Counter _deliveredInsts;
    Counter _tibHits;
    Counter _tibMisses;
    Counter _offchipFetches;
    Counter _squashedBytes;
};

} // namespace pipesim

#endif // PIPESIM_CORE_TIB_FETCH_HH
