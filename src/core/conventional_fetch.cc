#include "core/conventional_fetch.hh"

#include <ostream>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pipesim
{

namespace
{

/** Sub-block size: one instruction slot. */
unsigned
subblockBytesFor(const Program &program)
{
    return program.mode() == isa::FormatMode::Fixed32 ? 2 * parcelBytes
                                                      : parcelBytes;
}

} // namespace

ConventionalFetchUnit::ConventionalFetchUnit(const FetchConfig &config,
                                             const Program &program,
                                             MemorySystem &mem)
    : FetchUnit(program, mem), _cfg(config),
      _cache(config.cacheBytes, config.lineBytes,
             std::min(config.lineBytes, subblockBytesFor(program))),
      _busRegionBytes(mem.config().busWidthBytes)
{
    // With the compact (16/32-bit) format an instruction can straddle
    // a line boundary.  In a single-frame cache the two halves evict
    // each other forever (demand fetch and always-prefetch retag the
    // only frame), so that geometry is rejected.
    if (program.mode() == isa::FormatMode::Compact &&
        config.cacheBytes == _cache.lineBytes())
        fatal("conventional cache needs at least two frames for the "
              "compact instruction format (cache ",
              config.cacheBytes, " B, line ", _cache.lineBytes(), " B)");
    _parityRetryLimit = config.parityRetryLimit;
    reset(program.entry());
}

void
ConventionalFetchUnit::reset(Addr entry)
{
    _want.reset();
    _outstanding = false;
    _prefetchAddr.reset();
    _missRecordedFor.reset();
    _follower.reset(entry);
    _cache.invalidateAll();
}

std::optional<Addr>
ConventionalFetchUnit::firstMissing(Addr addr, unsigned bytes) const
{
    for (Addr a = _cache.subblockBase(addr); a < addr + bytes;
         a += _cache.subblockBytes()) {
        if (!_cache.subblockValid(a))
            return a;
    }
    return std::nullopt;
}

bool
ConventionalFetchUnit::inflightCovers(Addr addr) const
{
    return _outstanding && addr >= _outstandingAddr &&
           addr < _outstandingAddr + _outstandingBytes;
}

MemRequest
ConventionalFetchUnit::makeRequest(Addr addr, ReqClass cls)
{
    const Addr region = Addr(alignDown(addr, _busRegionBytes));
    if (!_cache.linePresent(region))
        _cache.allocate(region);

    MemRequest req;
    req.addr = region;
    req.bytes = _busRegionBytes;
    req.isStore = false;
    req.cls = cls;
    bindRequestCallbacks(req);
    return req;
}

void
ConventionalFetchUnit::bindRequestCallbacks(MemRequest &req)
{
    req.onBeat = [this](Addr a, unsigned n) { onBeatArrived(a, n); };
    req.onComplete = [this]() {
        if (_probes && _probes->fetchFill.active()) {
            _probes->fetchFill.notify(obs::FetchEvent{
                _obsNow, _outstandingAddr, _outstandingBytes, false});
        }
        _outstanding = false;
        noteGoodFill();
    };
    req.onParityError = [this]() {
        // No beats were delivered, so the region's sub-blocks are
        // still invalid; the demand/prefetch paths simply re-request.
        _outstanding = false;
        noteParityError(_outstandingAddr, _outstandingBytes);
    };
}

void
ConventionalFetchUnit::rebindRequest(MemRequest &req)
{
    bindRequestCallbacks(req);
}

void
ConventionalFetchUnit::onBeatArrived(Addr addr, unsigned bytes)
{
    // The line was allocated when the request was made and no other
    // allocation can intervene (single outstanding request), except a
    // prefetch allocation for a region in the same frame; guard by
    // re-checking the tag.
    if (_cache.linePresent(addr))
        _cache.fill(addr, bytes);
}

void
ConventionalFetchUnit::tick(Cycle now)
{
    _obsNow = now;

    // Always-prefetch: the reference made last cycle launches a
    // prefetch of the next sequential location (lowest priority at
    // the memory interface), before the PC re-checks the cache --
    // this is how Hill's model gets ahead of the instruction stream.
    if (_cfg.alwaysPrefetch && _prefetchAddr && !_outstanding &&
        !_want) {
        const Addr p = *_prefetchAddr;
        const Addr region = Addr(alignDown(p, _busRegionBytes));
        if (firstMissing(region, _busRegionBytes)) {
            _want = makeRequest(p, ReqClass::IPrefetch);
            ++_prefetchFetches;
        }
        _prefetchAddr.reset();
    }

    // Demand path: the instruction the decoder needs next.
    const auto next = _follower.nextAddr();
    if (!next)
        return;
    const unsigned size = instSizeAt(*next);
    const auto missing = firstMissing(*next, size);
    if (!missing) {
        _missRecordedFor.reset();
        return;
    }
    if (_missRecordedFor != *next) {
        _cache.recordLookup(false);
        if (_probes && _probes->icacheAccess.active())
            _probes->icacheAccess.notify(
                obs::CacheEvent{_obsNow, *next, false});
        _missRecordedFor = *next;
    }
    if (inflightCovers(*missing))
        return; // the in-flight request will satisfy it
    if (!_outstanding && !_want) {
        _want = makeRequest(*missing, ReqClass::IFetchDemand);
        ++_demandFetches;
    } else if (_want && _want->cls == ReqClass::IPrefetch) {
        const bool covers =
            *missing >= _want->addr &&
            *missing < _want->addr + _want->bytes;
        if (covers) {
            // The PC now waits on this request, so it is presented
            // to the memory interface as an instruction fetch.
            _want->cls = ReqClass::IFetchDemand;
        } else {
            // Not sent yet and useless for the demand miss: the
            // instruction fetch replaces the queued prefetch.
            _want = makeRequest(*missing, ReqClass::IFetchDemand);
        }
        ++_demandFetches;
        // An already in-flight prefetch keeps its (lowest) priority
        // until it completes -- the cost Hill notes.
    }
}

bool
ConventionalFetchUnit::instructionReady() const
{
    const auto next = _follower.nextAddr();
    if (!next)
        return false;
    return _cache.bytesValid(*next, instSizeAt(*next));
}

isa::FetchedInst
ConventionalFetchUnit::take()
{
    PIPESIM_ASSERT(instructionReady(), "take() with nothing ready");
    const Addr pc = *_follower.nextAddr();
    const isa::Instruction inst = decodeAt(pc);
    _cache.recordLookup(true);
    if (_probes && _probes->icacheAccess.active())
        _probes->icacheAccess.notify(obs::CacheEvent{_obsNow, pc, true});
    _missRecordedFor.reset();
    _follower.delivered(inst);
    ++_deliveredInsts;
    // Always-prefetch: reference made, note the next sequential
    // location (even if it maps into the next cache line).
    _prefetchAddr = pc + inst.sizeBytes();
    return isa::FetchedInst{pc, inst};
}

void
ConventionalFetchUnit::branchResolved(bool taken, Addr target)
{
    _follower.resolved(taken, target);
}

std::optional<MemRequest>
ConventionalFetchUnit::peekOffchip(ReqClass cls)
{
    if (_want && _want->cls == cls)
        return _want;
    return std::nullopt;
}

void
ConventionalFetchUnit::offchipAccepted()
{
    PIPESIM_ASSERT(_want, "acceptance with no request outstanding");
    if (_probes && _probes->fetchRequest.active()) {
        _probes->fetchRequest.notify(obs::FetchEvent{
            _obsNow, _want->addr, _want->bytes,
            _want->cls == ReqClass::IFetchDemand});
    }
    _outstanding = true;
    _outstandingAddr = _want->addr;
    _outstandingBytes = _want->bytes;
    _want.reset();
}

void
ConventionalFetchUnit::dumpState(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "conventional fetch:";
    if (const auto next = _follower.nextAddr())
        os << " next pc 0x" << std::hex << *next << std::dec;
    else
        os << " decode blocked on an unresolved branch";
    os << "\n";
    if (_outstanding) {
        os << "  outstanding fetch: 0x" << std::hex << _outstandingAddr
           << std::dec << " (" << _outstandingBytes << " B)\n";
    }
    if (_want) {
        os << "  queued request: 0x" << std::hex << _want->addr
           << std::dec << " (" << _want->bytes << " B, "
           << reqClassName(_want->cls) << ")\n";
    }
    if (_prefetchAddr)
        os << "  pending prefetch target: 0x" << std::hex
           << *_prefetchAddr << std::dec << "\n";
    os << "  consecutive parity errors: " << _consecutiveParityErrors
       << "\n";
    os.flags(flags);
}

void
ConventionalFetchUnit::saveState(StateWriter &w) const
{
    saveBaseState(w);
    _follower.saveState(w);
    _cache.saveState(w);
    w.b(_want.has_value());
    if (_want)
        saveMemRequest(w, *_want);
    w.b(_outstanding);
    w.u32(_outstandingAddr);
    w.u32(_outstandingBytes);
    w.b(_prefetchAddr.has_value());
    if (_prefetchAddr)
        w.u32(*_prefetchAddr);
    w.b(_missRecordedFor.has_value());
    if (_missRecordedFor)
        w.u32(*_missRecordedFor);
    w.u64(_deliveredInsts.value());
    w.u64(_demandFetches.value());
    w.u64(_prefetchFetches.value());
}

void
ConventionalFetchUnit::restoreState(StateReader &r)
{
    restoreBaseState(r);
    _follower.restoreState(r);
    _cache.restoreState(r);
    _want.reset();
    if (r.b()) {
        MemRequest req = restoreMemRequest(r);
        bindRequestCallbacks(req);
        _want = std::move(req);
    }
    _outstanding = r.b();
    _outstandingAddr = r.u32();
    _outstandingBytes = r.u32();
    _prefetchAddr.reset();
    if (r.b())
        _prefetchAddr = r.u32();
    _missRecordedFor.reset();
    if (r.b())
        _missRecordedFor = r.u32();
    _deliveredInsts.set(r.u64());
    _demandFetches.set(r.u64());
    _prefetchFetches.set(r.u64());
}

void
ConventionalFetchUnit::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".delivered_insts", &_deliveredInsts,
                     "instructions delivered to decode");
    stats.regCounter(prefix + ".demand_fetches", &_demandFetches,
                     "demand fetch requests issued");
    stats.regCounter(prefix + ".prefetch_fetches", &_prefetchFetches,
                     "always-prefetch requests issued");
    regParityStats(stats, prefix);
    _cache.regStats(stats, prefix + ".icache");
}

} // namespace pipesim
