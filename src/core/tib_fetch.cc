#include "core/tib_fetch.hh"

#include <ostream>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pipesim
{

TibFetchUnit::TibFetchUnit(const FetchConfig &config,
                           const Program &program, MemorySystem &mem)
    : FetchUnit(program, mem), _cfg(config),
      _entryBytes(config.lineBytes),
      _bufferCapacity(config.iqBytes + config.iqbBytes)
{
    if (!isPowerOf2(_entryBytes) || _entryBytes < 2 * parcelBytes)
        fatal("TIB entry size must be a power of two >= 4 bytes");
    if (config.cacheBytes % _entryBytes != 0 ||
        config.cacheBytes < _entryBytes)
        fatal("TIB capacity must be a multiple of the entry size");
    if (_bufferCapacity < 2 * _entryBytes)
        fatal("TIB stream buffer must hold two entries' worth");
    _parityRetryLimit = config.parityRetryLimit;
    _entries.resize(config.cacheBytes / _entryBytes);
    reset(program.entry());
}

void
TibFetchUnit::reset(Addr entry)
{
    _buffer.clear();
    _occupancy = 0;
    _fetch.reset();
    _want.reset();
    _offchipInFlight = false;
    _squashDoneId = std::uint64_t(-1);
    _targetPlannedId = std::uint64_t(-1);
    _pendingTargets.clear();
    _follower.reset(entry);
    for (TibEntry &e : _entries)
        e = TibEntry{};
}

TibFetchUnit::TibEntry &
TibFetchUnit::entryFor(Addr target)
{
    return _entries[(target / _entryBytes) % _entries.size()];
}

Addr
TibFetchUnit::tailEnd() const
{
    if (!_buffer.empty())
        return _buffer.back().start + _buffer.back().len;
    return _follower.streamPos();
}

Addr
TibFetchUnit::staticWalk(Addr addr, unsigned n) const
{
    for (unsigned i = 0; i < n; ++i)
        addr += instSizeAt(addr);
    return addr;
}

void
TibFetchUnit::appendBytes(Addr start, unsigned len)
{
    if (len == 0)
        return;
    if (!_buffer.empty() &&
        _buffer.back().start + _buffer.back().len == start) {
        _buffer.back().len += len;
    } else {
        _buffer.push_back(Segment{start, len});
    }
    _occupancy += len;
}

void
TibFetchUnit::truncateBufferAt(Addr r)
{
    while (!_buffer.empty()) {
        Segment &tail = _buffer.back();
        if (r <= tail.start) {
            _squashedBytes += tail.len;
            _occupancy -= tail.len;
            _buffer.pop_back();
            continue;
        }
        if (r < tail.start + tail.len) {
            const unsigned cut = tail.start + tail.len - r;
            _squashedBytes += cut;
            _occupancy -= cut;
            tail.len -= cut;
        }
        break;
    }
}

void
TibFetchUnit::branchResolved(bool taken, Addr target)
{
    if (_follower.hasPending() && !_follower.frontResolved()) {
        _squashDoneId = _follower.frontId();
        if (taken) {
            _pendingTargets.push_back(target);
            const Addr r = staticWalk(_follower.streamPos(),
                                      _follower.frontSlotsLeft());
            truncateBufferAt(r);
            if (_fetch && !_fetch->dead) {
                if (_fetch->nextByte >= r)
                    _fetch->dead = true;
                else
                    _fetch->end = std::min(_fetch->end, r);
            }
        }
    }
    _follower.resolved(taken, target);
}

void
TibFetchUnit::handleResolvedRedirect()
{
    if (!_follower.hasPending() || !_follower.frontResolved() ||
        _follower.frontId() == _squashDoneId)
        return;
    _squashDoneId = _follower.frontId();
    if (_follower.frontTaken()) {
        _pendingTargets.push_back(_follower.frontTarget());
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        truncateBufferAt(r);
        if (_fetch && !_fetch->dead) {
            if (_fetch->nextByte >= r)
                _fetch->dead = true;
            else
                _fetch->end = std::min(_fetch->end, r);
        }
    }
}

bool
TibFetchUnit::decoderStarving() const
{
    const auto next = _follower.nextAddr();
    if (!next)
        return false;
    if (_buffer.empty())
        return true;
    const Segment &head = _buffer.front();
    return head.start != *next || head.len < instSizeAt(*next);
}

void
TibFetchUnit::startFetchIfNeeded()
{
    if (_fetch)
        return; // one outstanding request

    if (_occupancy + _entryBytes > _bufferCapacity &&
        !decoderStarving())
        return;

    Addr start = tailEnd();
    std::optional<Addr> fill_target;
    Addr cap = Addr(-1);
    bool retargeted = false;

    if (_follower.hasPending() && _follower.frontResolved() &&
        _follower.frontTaken() &&
        _follower.frontId() != _targetPlannedId) {
        const Addr r = staticWalk(_follower.streamPos(),
                                  _follower.frontSlotsLeft());
        if (start >= r) {
            start = _follower.frontTarget();
            _targetPlannedId = _follower.frontId();
            retargeted = true;
        } else {
            cap = r; // pre-target sequential fetch toward the slots
        }
    }

    // The first fetch at a taken branch's target goes through the TIB
    // (whether the redirect is still pending or already applied).
    const bool is_target = !_pendingTargets.empty() &&
                           start == _pendingTargets.front();
    if (is_target)
        _pendingTargets.pop_front();

    if (is_target) {
        TibEntry &entry = entryFor(start);
        const bool tib_hit = entry.valid && entry.target == start &&
                             entry.validBytes > 0;
        if (_probes && _probes->icacheAccess.active())
            _probes->icacheAccess.notify(
                obs::CacheEvent{_obsNow, start, tib_hit});
        if (tib_hit) {
            // TIB hit: the buffered target instructions supply the
            // decoder while the off-chip fetch for the instructions
            // past the entry is launched.
            ++_tibHits;
            appendBytes(start, entry.validBytes);
            return; // fetch for start+validBytes begins next tick
        }
        ++_tibMisses;
        entry.valid = true;
        entry.target = start;
        entry.validBytes = 0;
        fill_target = start;
    }

    Fetch f;
    f.nextByte = start;
    f.end = std::min<Addr>(start + _entryBytes, cap);
    f.fillTibTarget = fill_target;
    f.retargeted = retargeted;
    _fetch = f;

    MemRequest req;
    req.addr = start;
    req.bytes = _entryBytes;
    req.isStore = false;
    const bool demand = decoderStarving() || _buffer.empty();
    req.cls = demand ? ReqClass::IFetchDemand : ReqClass::IPrefetch;
    bindFetchCallbacks(req);
    _want = std::move(req);
    ++_offchipFetches;
}

void
TibFetchUnit::bindFetchCallbacks(MemRequest &req)
{
    // The fetch's base address identifies it in the callbacks; taking
    // it from the request (rather than a captured local) lets restored
    // in-flight requests re-bind with identical behaviour.
    const Addr start = req.addr;
    req.onBeat = [this](Addr addr, unsigned bytes) {
        onBeatArrived(addr, bytes);
    };
    req.onComplete = [this, start]() {
        if (_probes && _probes->fetchFill.active())
            _probes->fetchFill.notify(
                obs::FetchEvent{_obsNow, start, _entryBytes, false});
        _offchipInFlight = false;
        _fetch.reset();
        noteGoodFill();
    };
    req.onParityError = [this, start]() {
        // Nothing was appended (no beats); undo the planning side
        // effects so the next tick re-plans the identical fetch.  A
        // TIB-miss fetch popped its pending target and left the entry
        // with zero valid bytes -- restoring the target makes the
        // retry take the same miss path and refill the entry.
        PIPESIM_ASSERT(_fetch, "parity error with no fetch active");
        const bool dead = _fetch->dead;
        const bool retargeted = _fetch->retargeted;
        const bool was_tib = _fetch->fillTibTarget.has_value();
        _offchipInFlight = false;
        _fetch.reset();
        if (dead)
            return;
        if (retargeted)
            _targetPlannedId = std::uint64_t(-1);
        if (was_tib)
            _pendingTargets.push_front(start);
        noteParityError(start, _entryBytes);
    };
}

void
TibFetchUnit::rebindRequest(MemRequest &req)
{
    bindFetchCallbacks(req);
}

void
TibFetchUnit::onBeatArrived(Addr addr, unsigned bytes)
{
    PIPESIM_ASSERT(_fetch, "beat with no fetch active");
    if (_fetch->fillTibTarget) {
        TibEntry &entry = entryFor(*_fetch->fillTibTarget);
        if (entry.valid && entry.target == *_fetch->fillTibTarget &&
            entry.target + entry.validBytes == addr) {
            entry.validBytes = std::min(
                entry.validBytes + bytes, _entryBytes);
        }
    }
    if (_fetch->dead)
        return;
    const Addr lo = std::max(addr, _fetch->nextByte);
    const Addr hi = std::min<Addr>(addr + bytes, _fetch->end);
    if (lo >= hi)
        return;
    PIPESIM_ASSERT(lo == _fetch->nextByte, "non-streaming append");
    appendBytes(lo, hi - lo);
    _fetch->nextByte = hi;
}

std::optional<MemRequest>
TibFetchUnit::peekOffchip(ReqClass cls)
{
    if (_want && _want->cls == cls)
        return _want;
    return std::nullopt;
}

void
TibFetchUnit::offchipAccepted()
{
    PIPESIM_ASSERT(_want, "acceptance with no request outstanding");
    if (_probes && _probes->fetchRequest.active()) {
        _probes->fetchRequest.notify(obs::FetchEvent{
            _obsNow, _want->addr, _want->bytes,
            _want->cls == ReqClass::IFetchDemand});
    }
    _offchipInFlight = true;
    _want.reset();
}

void
TibFetchUnit::tick(Cycle now)
{
    _obsNow = now;
    handleResolvedRedirect();
    if (_want && _want->cls == ReqClass::IPrefetch &&
        (decoderStarving() || _buffer.empty()))
        _want->cls = ReqClass::IFetchDemand;
    startFetchIfNeeded();
}

bool
TibFetchUnit::instructionReady() const
{
    const auto next = _follower.nextAddr();
    if (!next || _buffer.empty())
        return false;
    const Segment &head = _buffer.front();
    if (head.len == 0)
        return false;
    PIPESIM_ASSERT(head.start == *next, "buffer head ", head.start,
                   " does not match stream position ", *next);
    return head.len >= instSizeAt(*next);
}

isa::FetchedInst
TibFetchUnit::take()
{
    PIPESIM_ASSERT(instructionReady(), "take() with nothing ready");
    const Addr pc = *_follower.nextAddr();
    const isa::Instruction inst = decodeAt(pc);
    Segment &head = _buffer.front();
    head.start += inst.sizeBytes();
    head.len -= inst.sizeBytes();
    _occupancy -= inst.sizeBytes();
    if (head.len == 0)
        _buffer.pop_front();
    _follower.delivered(inst);
    ++_deliveredInsts;
    return isa::FetchedInst{pc, inst};
}

void
TibFetchUnit::dumpState(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "tib fetch: " << _occupancy << "/" << _bufferCapacity
       << " B buffered in " << _buffer.size() << " segment(s)";
    if (const auto next = _follower.nextAddr())
        os << ", next pc 0x" << std::hex << *next << std::dec;
    else
        os << ", decode blocked on an unresolved branch";
    os << "\n";
    for (const Segment &seg : _buffer)
        os << "  segment: 0x" << std::hex << seg.start << std::dec
           << " (" << seg.len << " B)\n";
    if (_fetch) {
        os << "  fetch: next byte 0x" << std::hex << _fetch->nextByte
           << ", end 0x" << _fetch->end << std::dec
           << (_fetch->dead ? ", squashed" : "")
           << (_fetch->fillTibTarget ? ", filling TIB entry" : "")
           << "\n";
    }
    if (_want) {
        os << "  queued request: 0x" << std::hex << _want->addr
           << std::dec << " (" << _want->bytes << " B, "
           << reqClassName(_want->cls) << ")\n";
    }
    os << "  pending branch targets: " << _pendingTargets.size()
       << ", off-chip in flight: " << (_offchipInFlight ? "yes" : "no")
       << ", consecutive parity errors: " << _consecutiveParityErrors
       << "\n";
    os.flags(flags);
}

void
TibFetchUnit::saveState(StateWriter &w) const
{
    saveBaseState(w);
    _follower.saveState(w);
    w.u32(std::uint32_t(_entries.size()));
    for (const TibEntry &e : _entries) {
        w.b(e.valid);
        w.u32(e.target);
        w.u32(e.validBytes);
    }
    w.u32(std::uint32_t(_buffer.size()));
    for (const Segment &seg : _buffer) {
        w.u32(seg.start);
        w.u32(seg.len);
    }
    w.u32(_occupancy);
    w.b(_fetch.has_value());
    if (_fetch) {
        w.u32(_fetch->nextByte);
        w.u32(_fetch->end);
        w.b(_fetch->dead);
        w.b(_fetch->fillTibTarget.has_value());
        if (_fetch->fillTibTarget)
            w.u32(*_fetch->fillTibTarget);
        w.b(_fetch->retargeted);
    }
    w.b(_want.has_value());
    if (_want)
        saveMemRequest(w, *_want);
    w.b(_offchipInFlight);
    w.u64(_squashDoneId);
    w.u64(_targetPlannedId);
    w.u32(std::uint32_t(_pendingTargets.size()));
    for (Addr t : _pendingTargets)
        w.u32(t);
    w.u64(_deliveredInsts.value());
    w.u64(_tibHits.value());
    w.u64(_tibMisses.value());
    w.u64(_offchipFetches.value());
    w.u64(_squashedBytes.value());
}

void
TibFetchUnit::restoreState(StateReader &r)
{
    restoreBaseState(r);
    _follower.restoreState(r);
    if (r.u32() != _entries.size())
        r.fail("TIB geometry mismatch");
    for (TibEntry &e : _entries) {
        e.valid = r.b();
        e.target = r.u32();
        e.validBytes = r.u32();
    }
    _buffer.clear();
    const std::uint32_t segs = r.u32();
    for (std::uint32_t i = 0; i < segs; ++i) {
        Segment seg;
        seg.start = r.u32();
        seg.len = r.u32();
        _buffer.push_back(seg);
    }
    _occupancy = r.u32();
    _fetch.reset();
    if (r.b()) {
        Fetch f;
        f.nextByte = r.u32();
        f.end = r.u32();
        f.dead = r.b();
        if (r.b())
            f.fillTibTarget = r.u32();
        f.retargeted = r.b();
        _fetch = f;
    }
    _want.reset();
    if (r.b()) {
        MemRequest req = restoreMemRequest(r);
        bindFetchCallbacks(req);
        _want = std::move(req);
    }
    _offchipInFlight = r.b();
    _squashDoneId = r.u64();
    _targetPlannedId = r.u64();
    _pendingTargets.clear();
    const std::uint32_t targets = r.u32();
    for (std::uint32_t i = 0; i < targets; ++i)
        _pendingTargets.push_back(r.u32());
    _deliveredInsts.set(r.u64());
    _tibHits.set(r.u64());
    _tibMisses.set(r.u64());
    _offchipFetches.set(r.u64());
    _squashedBytes.set(r.u64());
}

void
TibFetchUnit::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".delivered_insts", &_deliveredInsts,
                     "instructions delivered to decode");
    stats.regCounter(prefix + ".tib_hits", &_tibHits,
                     "taken branches whose target hit the TIB");
    stats.regCounter(prefix + ".tib_misses", &_tibMisses,
                     "taken branches that missed the TIB");
    stats.regCounter(prefix + ".offchip_fetches", &_offchipFetches,
                     "off-chip fetch requests issued");
    stats.regCounter(prefix + ".squashed_bytes", &_squashedBytes,
                     "buffered bytes squashed by taken branches");
    regParityStats(stats, prefix);
}

} // namespace pipesim
