#include "server/server.hh"

#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "obs/metrics.hh"
#include "server/scheduler.hh"
#include "server/session.hh"
#include "sim/guard.hh"
#include "store/result_store.hh"

namespace pipesim::server
{

namespace
{

/** Close-on-destruction fd wrapper for the listeners. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { reset(); }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : _fd(other._fd) { other._fd = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            _fd = other._fd;
            other._fd = -1;
        }
        return *this;
    }

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }

    void
    reset()
    {
        if (_fd >= 0)
            ::close(_fd);
        _fd = -1;
    }

  private:
    int _fd = -1;
};

Fd
listenUnix(const std::string &path)
{
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        fatal("serve: cannot create unix socket: ",
              std::strerror(errno));
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path too long (", path.size(), " >= ",
              sizeof(addr.sun_path), "): ", path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // A stale socket file from a killed daemon would fail the bind;
    // remove it (a live daemon would have accepted connections on
    // it, and the store lock already enforces one daemon per store).
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind ", path, ": ", std::strerror(errno));
    if (::listen(fd.get(), 64) != 0)
        fatal("serve: cannot listen on ", path, ": ",
              std::strerror(errno));
    return fd;
}

Fd
listenTcp(unsigned port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        fatal("serve: cannot create TCP socket: ",
              std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    // Loopback only: the daemon speaks an unauthenticated protocol.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd.get(), reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind 127.0.0.1:", port, ": ",
              std::strerror(errno));
    if (::listen(fd.get(), 64) != 0)
        fatal("serve: cannot listen on 127.0.0.1:", port, ": ",
              std::strerror(errno));
    return fd;
}

/** One accepted connection being served on its own thread. */
struct Session
{
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
};

/** Pre-create every server metric (the key-set contract:
 *  obs/metrics.hh) so exports are shape-stable from the first
 *  request. */
void
touchServerMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("server.requests");
    reg.counter("server.points_total");
    reg.counter("server.points_cached");
    reg.counter("store.hits");
    reg.counter("store.misses");
    reg.counter("store.recovered");
    reg.counter("point.timeouts");
    reg.gauge("server.active");
    reg.gauge("server.cache_hit_ratio");
    reg.histogram("server.queue_depth");
    obs::updateProcessGauges();
}

} // namespace

int
runServer(const ServeOptions &opts)
{
    if (opts.socketPath.empty())
        fatal("serve: --socket is required");
    // A dead client mid-stream must surface as a send() error, not
    // kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    installSignalGuard();
    touchServerMetrics();

    std::unique_ptr<store::ResultStore> store;
    if (!opts.storeDir.empty()) {
        store = std::make_unique<store::ResultStore>(opts.storeDir);
        if (store->recoveredBytes())
            obs::MetricsRegistry::instance()
                .counter("store.recovered")
                .add(1);
    }
    FairScheduler scheduler(opts.jobs);
    ServerContext ctx{scheduler, store.get()};

    Fd unixFd = listenUnix(opts.socketPath);
    Fd tcpFd;
    if (opts.port)
        tcpFd = listenTcp(opts.port);

    std::cerr << "[serve] listening on " << opts.socketPath;
    if (opts.port)
        std::cerr << " and 127.0.0.1:" << opts.port;
    std::cerr << " (" << scheduler.workerCount() << " workers, store "
              << (store ? opts.storeDir : std::string("off")) << ")\n";

    std::vector<Session> sessions;
    auto reap = [&sessions](bool all) {
        for (auto it = sessions.begin(); it != sessions.end();) {
            if (all || it->done->load(std::memory_order_acquire)) {
                it->thread.join();
                it = sessions.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!pendingSignal()) {
        struct pollfd pfds[2];
        nfds_t n = 0;
        pfds[n++] = {unixFd.get(), POLLIN, 0};
        if (tcpFd.valid())
            pfds[n++] = {tcpFd.get(), POLLIN, 0};
        const int ready = ::poll(pfds, n, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve: poll failed: ", std::strerror(errno));
        }
        reap(false);
        if (ready == 0)
            continue;
        for (nfds_t i = 0; i < n; ++i) {
            if (!(pfds[i].revents & POLLIN))
                continue;
            const int client = ::accept(pfds[i].fd, nullptr, nullptr);
            if (client < 0)
                continue;
            auto done = std::make_shared<std::atomic<bool>>(false);
            sessions.push_back(
                {std::thread([client, &ctx, done] {
                     handleConnection(client, ctx);
                     ::close(client);
                     done->store(true, std::memory_order_release);
                 }),
                 done});
        }
    }

    // Shutdown: stop accepting, let every session observe the signal
    // and drain its in-flight points into the journal, then report
    // the interruption through the guard (exit 128+sig).
    const int sig = pendingSignal();
    unixFd.reset();
    tcpFd.reset();
    reap(true);
    ::unlink(opts.socketPath.c_str());
    throw InterruptedError(sig ? sig : SIGTERM);
}

} // namespace pipesim::server
