/**
 * @file
 * Fair multi-request scheduling on one shared ThreadPool.
 *
 * The daemon serves concurrent sweep requests from a single pool of
 * simulation workers.  Submitting each request's points directly
 * would starve late arrivals behind an earlier large sweep (the
 * pool's queue is strict FIFO), so the FairScheduler interposes a
 * round-robin dispatch layer: each request becomes a Batch holding
 * its still-queued tasks, and a set of "pump" tasks on the pool
 * repeatedly picks the next batch in rotation and runs one of its
 * tasks.  With B active batches each gets ~1/B of the workers
 * regardless of arrival order or batch size — a two-point request
 * submitted behind a thousand-point one starts within one task
 * length (docs/serving.md, "Fairness").
 *
 * Cancellation is cheap and cooperative: Batch::cancel() drops every
 * still-queued task (they settle immediately without running);
 * in-flight tasks finish normally — the session layer additionally
 * arms per-point cancel flags when it wants in-flight work to stop
 * early (sim/experiment.hh, PointControl).
 */

#ifndef PIPESIM_SERVER_SCHEDULER_HH
#define PIPESIM_SERVER_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hh"

namespace pipesim::server
{

/**
 * One request's scheduled tasks.  Thread-safe; obtained from
 * FairScheduler::submit() and shared with the session that waits on
 * it.  A task is "settled" once it finished running or was dropped
 * by cancel().
 */
class Batch
{
  public:
    /** Tasks submitted (fixed at creation). */
    std::size_t total() const;

    /** Tasks finished or dropped so far. */
    std::size_t settled() const;

    /** @return true once every task settled. */
    bool done() const;

    /**
     * Drop every still-queued task (each settles without running);
     * tasks already on a worker finish normally.  Idempotent.
     */
    void cancel();

    bool cancelled() const;

    /** Block until done(). */
    void wait();

    /** Block until done() or @p timeout elapses; @return done(). */
    bool waitFor(std::chrono::milliseconds timeout);

  private:
    friend class FairScheduler;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::deque<std::function<void()>> _pending;
    std::size_t _total = 0;
    std::size_t _settled = 0;
    bool _cancelled = false;
};

class FairScheduler
{
  public:
    /** Start a pool of @p workers threads (0 = resolveJobCount). */
    explicit FairScheduler(unsigned workers = 0);

    /**
     * Drain: cancels nothing — every queued task of every batch
     * still runs; destruction blocks until the pool empties.
     */
    ~FairScheduler();

    FairScheduler(const FairScheduler &) = delete;
    FairScheduler &operator=(const FairScheduler &) = delete;

    /**
     * Enqueue @p tasks as one batch.  Tasks must not throw (a
     * throwing task panics the process — the session layer wraps
     * everything).  Within a batch, tasks start in submission order.
     */
    std::shared_ptr<Batch> submit(std::vector<std::function<void()>> tasks);

    unsigned workerCount() const { return _pool.workerCount(); }

  private:
    /** One pool task: run batch tasks round-robin until none left. */
    void pump();

    /** Pop the next task in rotation; nullptr when all drained. */
    std::function<void()> nextTask(std::shared_ptr<Batch> &batch);

    mutable std::mutex _mutex;
    std::vector<std::shared_ptr<Batch>> _active;
    std::size_t _cursor = 0; //!< round-robin position in _active
    unsigned _pumps = 0;     //!< pump tasks alive on the pool

    /** Declared last: destruction joins the pumps while the members
     *  above are still alive. */
    ThreadPool _pool;
};

} // namespace pipesim::server

#endif // PIPESIM_SERVER_SCHEDULER_HH
