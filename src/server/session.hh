/**
 * @file
 * One pipesim-serve connection, request to close (docs/serving.md).
 *
 * handleConnection() owns the whole conversation: read and validate
 * the request line, build the program, plan the sweep's points
 * (sim/experiment.hh), serve what the result store already holds,
 * schedule the rest on the shared FairScheduler, and stream NDJSON
 * events back in enumeration order.  It takes a plain file
 * descriptor, not a listener — tests drive it over a socketpair
 * without a daemon process.
 *
 * Lifecycle guarantees:
 *
 *  - events stream in deterministic enumeration order (the completed
 *    prefix flushes as points settle), so two identical requests
 *    produce byte-identical result/table events for any worker count;
 *  - a client disconnect cancels the request cooperatively: queued
 *    points are dropped, in-flight points are cancelled through
 *    their PointControl flags, and the session returns once they
 *    unwound — nothing keeps simulating for a closed socket;
 *  - a termination signal (SIGTERM/SIGINT) drains in-flight points
 *    and journals them into the store, drops queued ones, and
 *    reports the interruption to the client — the daemon exits
 *    128+sig with a journal a resubmitted request resumes from.
 */

#ifndef PIPESIM_SERVER_SESSION_HH
#define PIPESIM_SERVER_SESSION_HH

#include "server/scheduler.hh"
#include "store/result_store.hh"

namespace pipesim::server
{

/** What every session shares: the worker pool and the result store. */
struct ServerContext
{
    FairScheduler &scheduler;

    /** nullptr when the daemon runs without --store-dir. */
    store::ResultStore *store = nullptr;
};

/**
 * Serve one connection on @p fd (not closed here — the caller owns
 * it).  Never throws: every failure is reported to the client as an
 * `error` event and swallowed, so session threads cannot take the
 * daemon down.
 */
void handleConnection(int fd, ServerContext &ctx);

} // namespace pipesim::server

#endif // PIPESIM_SERVER_SESSION_HH
