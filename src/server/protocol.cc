#include "server/protocol.hh"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/log.hh"
#include "fault/fault.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace pipesim::server
{

namespace
{

using obs::JsonValue;

/** Reject ids that would corrupt logs or event framing. */
void
validateId(const std::string &id)
{
    if (id.empty())
        fatal("request id must be non-empty");
    if (id.size() > 128)
        fatal("request id too long (", id.size(), " > 128 chars)");
    for (const char c : id)
        if (c < 0x20 || c == 0x7f)
            fatal("request id contains control characters");
}

const JsonValue *
member(const JsonValue &obj, const std::string &key)
{
    return obj.find(key);
}

std::string
stringField(const JsonValue &obj, const std::string &key,
            const std::string &def = "")
{
    const JsonValue *v = member(obj, key);
    if (!v)
        return def;
    if (v->type != JsonValue::Type::String)
        fatal("request field '", key, "' must be a string");
    return v->string;
}

bool
boolField(const JsonValue &obj, const std::string &key, bool def)
{
    const JsonValue *v = member(obj, key);
    if (!v)
        return def;
    if (v->type != JsonValue::Type::Bool)
        fatal("request field '", key, "' must be a boolean");
    return v->boolean;
}

double
numberField(const JsonValue &obj, const std::string &key, double def)
{
    const JsonValue *v = member(obj, key);
    if (!v)
        return def;
    if (v->type != JsonValue::Type::Number)
        fatal("request field '", key, "' must be a number");
    return v->number;
}

/** A bounded non-negative integer field ([min, max], default def). */
std::uint64_t
uintField(const JsonValue &obj, const std::string &key, std::uint64_t def,
          std::uint64_t min, std::uint64_t max)
{
    const double d = numberField(obj, key, double(def));
    if (d < 0 || d != std::floor(d))
        fatal("request field '", key,
              "' must be a non-negative integer");
    const std::uint64_t u = std::uint64_t(d);
    if (u < min || u > max)
        fatal("request field '", key, "' must be in [", min, ", ", max,
              "], got ", u);
    return u;
}

void
parseGrid(const JsonValue &root, SweepSpec &spec)
{
    if (const JsonValue *sizes = member(root, "cache_sizes")) {
        if (!sizes->isArray() || sizes->array.empty())
            fatal("request field 'cache_sizes' must be a non-empty "
                  "array of bytes");
        spec.cacheSizes.clear();
        for (const JsonValue &v : sizes->array) {
            if (v.type != JsonValue::Type::Number || v.number < 1 ||
                v.number > double(1u << 20) ||
                v.number != std::floor(v.number))
                fatal("cache_sizes entries must be integers in "
                      "[1, 1048576]");
            spec.cacheSizes.push_back(unsigned(v.number));
        }
    }
    if (const JsonValue *strategies = member(root, "strategies")) {
        if (!strategies->isArray() || strategies->array.empty())
            fatal("request field 'strategies' must be a non-empty "
                  "array of names");
        spec.strategies.clear();
        for (const JsonValue &v : strategies->array) {
            if (v.type != JsonValue::Type::String || v.string.empty() ||
                v.string.size() > 32)
                fatal("strategies entries must be non-empty names");
            spec.strategies.push_back(v.string);
        }
    }
    const std::size_t points =
        spec.cacheSizes.size() * spec.strategies.size();
    if (points > maxRequestPoints)
        fatal("sweep grid too large: ", spec.cacheSizes.size(), " x ",
              spec.strategies.size(), " = ", points, " points (max ",
              maxRequestPoints, ")");
}

void
parseMem(const JsonValue &root, SweepSpec &spec)
{
    const JsonValue *mem = member(root, "mem");
    if (!mem)
        return;
    if (!mem->isObject())
        fatal("request field 'mem' must be an object");
    spec.mem.accessTime =
        unsigned(uintField(*mem, "access_time", spec.mem.accessTime, 1,
                           1024));
    spec.mem.busWidthBytes = unsigned(
        uintField(*mem, "bus_width", spec.mem.busWidthBytes, 1, 64));
    spec.mem.pipelined = boolField(*mem, "pipelined", spec.mem.pipelined);
    spec.mem.dcacheBytes = unsigned(
        uintField(*mem, "dcache_bytes", spec.mem.dcacheBytes, 0,
                  1u << 20));
}

void
parseEngine(const JsonValue &root, SweepRequest &req)
{
    const std::string engine = stringField(root, "engine", "cycle");
    if (engine == "cycle") {
        req.spec.engine = SweepEngine::Cycle;
    } else if (engine == "trace") {
        req.spec.engine = SweepEngine::Trace;
        req.traceFile = stringField(root, "trace_file");
        if (req.traceFile.empty())
            fatal("engine 'trace' requires 'trace_file' (a trace "
                  "path readable by the daemon)");
    } else {
        fatal("request field 'engine' must be \"cycle\" or \"trace\", "
              "got \"", engine, "\"");
    }
    req.spec.samplePeriod =
        unsigned(uintField(root, "sample_period", 0, 0, 1u << 24));
    req.spec.sampleWarmup = unsigned(uintField(
        root, "sample_warmup", req.spec.sampleWarmup, 1, 1u << 24));
    req.spec.sampleMeasure = unsigned(uintField(
        root, "sample_measure", req.spec.sampleMeasure, 1, 1u << 24));
}

void
parseFault(const JsonValue &root, SweepSpec &spec)
{
    const JsonValue *fi = member(root, "fault");
    if (!fi)
        return;
    if (!fi->isObject())
        fatal("request field 'fault' must be an object");
    spec.fault.kinds =
        fault::faultKindsFromString(stringField(*fi, "kinds", "none"));
    spec.fault.seed = uintField(*fi, "seed", 1, 0, ~std::uint64_t(0));
    spec.fault.rate = numberField(*fi, "rate", 0.01);
    if (spec.fault.rate < 0.0 || spec.fault.rate > 1.0)
        fatal("fault.rate must be in [0,1], got ", spec.fault.rate);
    spec.faultPoint = stringField(*fi, "point");
    if (spec.fault.kinds != fault::None &&
        spec.engine == SweepEngine::Trace)
        fatal("the trace engine cannot inject faults; use engine "
              "\"cycle\" for fault experiments");
}

} // namespace

SweepRequest
parseSweepRequest(const std::string &line)
{
    if (line.size() > maxRequestBytes)
        fatal("request line too long (", line.size(), " > ",
              maxRequestBytes, " bytes)");
    const std::optional<JsonValue> doc = obs::parseJson(line);
    if (!doc)
        fatal("request is not valid JSON");
    if (!doc->isObject())
        fatal("request must be a JSON object");
    const JsonValue &root = *doc;

    const std::string type = stringField(root, "type");
    if (type != "sweep")
        fatal("request field 'type' must be \"sweep\", got \"", type,
              "\"");

    SweepRequest req;
    req.id = stringField(root, "id");
    validateId(req.id);

    // The program: a named workload or inline assembly, never both.
    req.workload = stringField(root, "workload");
    req.programAsm = stringField(root, "asm");
    if (!req.programAsm.empty() && !req.workload.empty())
        fatal("request fields 'workload' and 'asm' are mutually "
              "exclusive");
    if (req.programAsm.empty()) {
        if (req.workload.empty())
            req.workload = "livermore";
        if (req.workload != "livermore" && req.workload != "branchy")
            fatal("request field 'workload' must be \"livermore\" or "
                  "\"branchy\", got \"", req.workload, "\"");
    }
    req.scale = numberField(root, "scale", 1.0);
    if (!(req.scale > 0.0) || req.scale > 100.0)
        fatal("request field 'scale' must be in (0, 100], got ",
              req.scale);
    req.programSha256 = stringField(root, "program_sha256");

    parseGrid(root, req.spec);
    parseEngine(root, req);
    parseMem(root, req.spec);
    parseFault(root, req.spec);

    req.spec.pointRetries =
        unsigned(uintField(root, "point_retries", 0, 0, 10));
    req.spec.retryBackoffMs = unsigned(
        uintField(root, "retry_backoff_ms", req.spec.retryBackoffMs, 0,
                  60'000));
    req.spec.pointDeadlineMs = unsigned(
        uintField(root, "point_deadline_ms", 0, 0, 3'600'000));
    req.spec.maxCycles =
        Cycle(uintField(root, "max_cycles", 0, 0, ~std::uint64_t(0) / 2));
    req.spec.progressWindow = Cycle(
        uintField(root, "progress_window", 0, 0, ~std::uint64_t(0) / 2));

    // The daemon streams ERR cells instead of failing the request.
    req.spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
    return req;
}

namespace
{

/** Start one event object; the caller fills and finish()es it. */
class EventLine
{
  public:
    EventLine(const std::string &event, const std::string &id)
        : _w(_os)
    {
        _w.beginObject();
        _w.key("event").value(event);
        if (!id.empty())
            _w.key("id").value(id);
    }

    obs::JsonWriter &w() { return _w; }

    std::string
    finish()
    {
        _w.endObject();
        _os << "\n";
        return _os.str();
    }

  private:
    std::ostringstream _os;
    obs::JsonWriter _w;
};

void
writePointIdentity(obs::JsonWriter &w, const SweepPointPlan &plan)
{
    w.key("strategy").value(plan.strategy);
    w.key("cache_bytes").value(plan.cacheBytes);
    if (!plan.storeKey.empty())
        w.key("key").value(plan.storeKey);
}

} // namespace

std::string
errorEvent(const std::string &id, const std::string &message)
{
    EventLine e("error", id);
    e.w().key("message").value(message);
    return e.finish();
}

std::string
acceptedEvent(const std::string &id, std::size_t points,
              std::size_t cached, const std::string &programSha256,
              const std::string &engine, bool storeAttached)
{
    EventLine e("accepted", id);
    e.w().key("points").value(std::uint64_t(points));
    e.w().key("cached").value(std::uint64_t(cached));
    e.w().key("program_sha256").value(programSha256);
    e.w().key("engine").value(engine);
    e.w().key("store").value(storeAttached);
    return e.finish();
}

std::string
resultEvent(const std::string &id, const SweepPointPlan &plan,
            const SimResult &result, bool cached)
{
    EventLine e("result", id);
    writePointIdentity(e.w(), plan);
    e.w().key("cycles").value(std::uint64_t(result.totalCycles));
    e.w().key("instructions").value(result.instructions);
    e.w().key("cpi").value(result.cpi());
    e.w().key("cached").value(cached);
    return e.finish();
}

std::string
errEvent(const std::string &id, const SweepPointPlan &plan,
         const std::string &message, unsigned attempts, bool timeout)
{
    EventLine e("err", id);
    writePointIdentity(e.w(), plan);
    e.w().key("message").value(message);
    e.w().key("attempts").value(attempts);
    e.w().key("timeout").value(timeout);
    return e.finish();
}

std::string
progressEvent(const std::string &id, std::size_t done, std::size_t total)
{
    EventLine e("progress", id);
    e.w().key("done").value(std::uint64_t(done));
    e.w().key("total").value(std::uint64_t(total));
    return e.finish();
}

std::string
tableEvent(const std::string &id, const Table &table)
{
    EventLine e("table", id);
    e.w().key("text").value(table.toText());
    e.w().key("csv").value(table.toCsv());
    return e.finish();
}

std::string
statsEvent(const std::string &id, std::size_t points, std::size_t cached,
           std::size_t simulated, std::size_t failed)
{
    obs::updateProcessGauges();
    EventLine e("stats", id);
    e.w().key("points").value(std::uint64_t(points));
    e.w().key("cached").value(std::uint64_t(cached));
    e.w().key("simulated").value(std::uint64_t(simulated));
    e.w().key("failed").value(std::uint64_t(failed));
    e.w().key("host").beginObject();
    obs::MetricsRegistry::instance().writeJson(e.w());
    e.w().endObject();
    return e.finish();
}

} // namespace pipesim::server
