/**
 * @file
 * The pipesim-serve daemon: listeners, session threads and shutdown
 * (docs/serving.md).
 *
 * runServer() owns the process-lifetime pieces — the shared
 * FairScheduler, the single-writer result store, the Unix-domain
 * (and optional loopback TCP) listeners — and spawns one detachedly
 * tracked thread per accepted connection (server/session.hh).  The
 * accept loop polls in short slices so a SIGTERM/SIGINT recorded by
 * the signal guard (sim/guard.hh) is honoured promptly: listeners
 * close, every session drains its in-flight points into the journal,
 * and the function unwinds with InterruptedError so runGuardedMain
 * exits 128+sig — the same discipline as every CLI sweep.
 */

#ifndef PIPESIM_SERVER_SERVER_HH
#define PIPESIM_SERVER_SERVER_HH

#include <string>

namespace pipesim::server
{

struct ServeOptions
{
    /** Unix-domain socket path (required; unlinked on shutdown). */
    std::string socketPath;

    /** Loopback TCP port; 0 disables the TCP listener. */
    unsigned port = 0;

    /** Simulation workers (0 = --jobs/PIPESIM_JOBS/hardware). */
    unsigned jobs = 0;

    /** Crash-safe result store directory; empty disables caching. */
    std::string storeDir;
};

/**
 * Run the daemon until a termination signal.
 * @throws InterruptedError on SIGTERM/SIGINT (after draining),
 *         FatalError when a listener cannot be set up or the store
 *         directory is already locked by another writer.
 */
int runServer(const ServeOptions &opts);

} // namespace pipesim::server

#endif // PIPESIM_SERVER_SERVER_HH
