#include "server/scheduler.hh"

#include "common/log.hh"
#include "obs/metrics.hh"

namespace pipesim::server
{

std::size_t
Batch::total() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _total;
}

std::size_t
Batch::settled() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _settled;
}

bool
Batch::done() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _settled == _total;
}

void
Batch::cancel()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _cancelled = true;
    _settled += _pending.size();
    _pending.clear();
    _cv.notify_all();
}

bool
Batch::cancelled() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _cancelled;
}

void
Batch::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [this] { return _settled == _total; });
}

bool
Batch::waitFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(_mutex);
    return _cv.wait_for(lock, timeout,
                        [this] { return _settled == _total; });
}

FairScheduler::FairScheduler(unsigned workers) : _pool(workers) {}

FairScheduler::~FairScheduler() = default;

std::shared_ptr<Batch>
FairScheduler::submit(std::vector<std::function<void()>> tasks)
{
    auto batch = std::make_shared<Batch>();
    batch->_total = tasks.size();
    for (auto &t : tasks)
        batch->_pending.push_back(std::move(t));
    if (batch->_total == 0)
        return batch;

    obs::MetricsRegistry::instance()
        .histogram("server.queue_depth")
        .sample(batch->_total);

    std::lock_guard<std::mutex> lock(_mutex);
    _active.push_back(batch);
    // Keep one pump per worker alive while there is queued work; a
    // pump retires itself once every batch is drained.
    while (_pumps < _pool.workerCount()) {
        ++_pumps;
        _pool.submit([this] { pump(); });
    }
    return batch;
}

std::function<void()>
FairScheduler::nextTask(std::shared_ptr<Batch> &batch)
{
    std::lock_guard<std::mutex> lock(_mutex);
    // One rotation over the active batches, dropping drained ones.
    while (!_active.empty()) {
        if (_cursor >= _active.size())
            _cursor = 0;
        std::shared_ptr<Batch> candidate = _active[_cursor];
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> blk(candidate->_mutex);
            if (!candidate->_pending.empty()) {
                task = std::move(candidate->_pending.front());
                candidate->_pending.pop_front();
            }
        }
        if (task) {
            ++_cursor; // next pull starts at the following batch
            batch = std::move(candidate);
            return task;
        }
        // Drained (or cancelled): out of rotation; the batch object
        // stays alive through the session's shared_ptr.
        _active.erase(_active.begin() + std::ptrdiff_t(_cursor));
    }
    --_pumps;
    return nullptr;
}

void
FairScheduler::pump()
{
    for (;;) {
        std::shared_ptr<Batch> batch;
        std::function<void()> task = nextTask(batch);
        if (!task)
            return;
        try {
            task();
        } catch (...) {
            // The submit() contract forbids throwing tasks; a breach
            // is a server bug, not a request failure.
            panic("server scheduler: batch task threw an exception");
        }
        std::lock_guard<std::mutex> lock(batch->_mutex);
        ++batch->_settled;
        batch->_cv.notify_all();
    }
}

} // namespace pipesim::server
