#include "server/session.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <optional>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "assembler/assembler.hh"
#include "common/abort.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "replay/trace_format.hh"
#include "server/protocol.hh"
#include "sim/guard.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/synthetic.hh"

namespace pipesim::server
{

namespace
{

/**
 * Read the single request line, polling in 200 ms slices so a
 * pending termination signal is never blocked on a silent client.
 * Bounded: maxRequestBytes and a 30 s overall budget.
 */
std::optional<std::string>
readRequestLine(int fd)
{
    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() + std::chrono::seconds(30);
    std::string line;
    char buf[4096];
    while (!pendingSignal() && clock::now() < deadline) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (ready == 0)
            continue;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return std::nullopt; // EOF or error before a full line
        line.append(buf, std::size_t(n));
        const std::size_t nl = line.find('\n');
        if (nl != std::string::npos) {
            line.resize(nl);
            return line;
        }
        if (line.size() > maxRequestBytes)
            return std::nullopt;
    }
    return std::nullopt;
}

/** Write @p data fully; false once the client is gone (EPIPE &c). */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

Program
buildProgram(const SweepRequest &req)
{
    if (!req.programAsm.empty())
        return assembler::assemble(req.programAsm);
    if (req.workload == "branchy")
        return workloads::buildBranchyProgram({}).program;
    return workloads::buildLivermoreBenchmark(req.scale).program;
}

/** Per-point outcome, settled exactly once by its worker task. */
struct Slot
{
    enum class State { Pending, Done, Failed, Dropped };

    State state = State::Pending;
    SimResult result;    //!< valid when Done
    std::string message; //!< valid when Failed
    unsigned attempts = 0;
    bool timeout = false;
    bool cached = false; //!< Done via the store, never simulated
};

/** RAII: no task may outlive the session's locals it captures. */
class BatchDrain
{
  public:
    BatchDrain(std::shared_ptr<Batch> batch,
               std::vector<PointControl> &controls,
               std::atomic<bool> &aborted)
        : _batch(std::move(batch)), _controls(controls),
          _aborted(aborted)
    {
    }

    /** Drop queued tasks and cancel in-flight ones cooperatively. */
    void
    abort()
    {
        _aborted.store(true, std::memory_order_relaxed);
        _batch->cancel();
        for (PointControl &c : _controls)
            c.cancel.store(true, std::memory_order_relaxed);
    }

    /** Drop queued tasks; let in-flight ones finish and journal. */
    void drain() { _batch->cancel(); }

    ~BatchDrain()
    {
        _batch->cancel();
        _batch->wait();
    }

  private:
    std::shared_ptr<Batch> _batch;
    std::vector<PointControl> &_controls;
    std::atomic<bool> &_aborted;
};

void
runSweepSession(int fd, ServerContext &ctx, const SweepRequest &req)
{
    auto &reg = obs::MetricsRegistry::instance();
    const SweepSpec &spec = req.spec;

    const Program program = buildProgram(req);
    replay::Trace trace;
    SweepSpec planned = spec; // owns the trace pointer
    if (spec.engine == SweepEngine::Trace) {
        trace = replay::readTrace(req.traceFile);
        planned.trace = &trace;
    }
    const store::ResultKeyParams keys = sweepKeyParams(planned, program);
    if (!req.programSha256.empty() &&
        req.programSha256 != keys.programSha256)
        fatal("program_sha256 mismatch: request pinned ",
              req.programSha256, " but the daemon built ",
              keys.programSha256);
    if (spec.engine == SweepEngine::Trace &&
        trace.meta.programSha256 != keys.programSha256)
        fatal("trace ", req.traceFile,
              " was captured from a different program (trace ",
              trace.meta.programSha256, ", request ",
              keys.programSha256, ")");

    std::vector<SweepPointPlan> plans = planSweepPoints(planned, &keys);

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> slots(plans.size());

    // Serve what the store already holds before scheduling anything;
    // hits settle their slots immediately and stream as cached
    // results in enumeration order like everything else.
    std::size_t cached = 0;
    if (ctx.store) {
        for (std::size_t i = 0; i < plans.size(); ++i) {
            const auto hit = ctx.store->lookup(plans[i].storeKey);
            if (!hit)
                continue;
            slots[i].state = Slot::State::Done;
            slots[i].result = *hit;
            slots[i].cached = true;
            ++cached;
        }
        reg.counter("store.hits").add(cached);
        reg.counter("store.misses").add(plans.size() - cached);
    }
    reg.counter("server.points_total").add(plans.size());
    reg.counter("server.points_cached").add(cached);
    const std::uint64_t totalPts =
        reg.counter("server.points_total").value();
    if (totalPts)
        reg.gauge("server.cache_hit_ratio")
            .set(std::int64_t(
                reg.counter("server.points_cached").value() * 100 /
                totalPts));

    if (!writeAll(fd, acceptedEvent(req.id, plans.size(), cached,
                                    keys.programSha256, keys.engine,
                                    ctx.store != nullptr)))
        return;

    // Cancellation wiring: every point's simulated machine polls its
    // PointControl flag — armed by the deadline watchdog and by the
    // disconnect/shutdown paths below.
    std::vector<PointControl> controls(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i)
        plans[i].cfg.cancelFlag = &controls[i].cancel;
    const bool deadlines = spec.pointDeadlineMs > 0;
    DeadlineEnforcer enforcer(controls,
                              deadlines && cached < plans.size());
    std::atomic<bool> aborted{false};

    auto runPointTask = [&, &spec = planned](std::size_t i) {
        Slot out;
        out.state = Slot::State::Dropped;
        PointControl &ctl = controls[i];
        const unsigned attempts = 1 + spec.pointRetries;
        for (unsigned a = 1; a <= attempts; ++a) {
            if (pendingSignal() ||
                aborted.load(std::memory_order_relaxed))
                break;
            if (a > 1) {
                const std::uint64_t backoff = retryBackoffNs(
                    plans[i].strategy, plans[i].cacheBytes, a,
                    spec.retryBackoffMs);
                const std::uint64_t until =
                    obs::profileNowNs() + backoff;
                while (obs::profileNowNs() < until &&
                       !pendingSignal() &&
                       !aborted.load(std::memory_order_relaxed))
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                if (pendingSignal() ||
                    aborted.load(std::memory_order_relaxed))
                    break;
            }
            ctl.cancel.store(false, std::memory_order_relaxed);
            if (deadlines)
                ctl.deadlineNs.store(
                    obs::profileNowNs() +
                        std::uint64_t(spec.pointDeadlineMs) * 1'000'000,
                    std::memory_order_relaxed);
            try {
                const SimResult result = runSweepPointOnce(
                    spec, program, plans[i].cfg);
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                if (ctx.store)
                    ctx.store->put(
                        plans[i].storeKey,
                        plans[i].strategy + ":" +
                            std::to_string(plans[i].cacheBytes),
                        result);
                out.state = Slot::State::Done;
                out.result = result;
                out.attempts = a;
                break;
            } catch (const InterruptedError &) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                break; // daemon shutting down; slot stays Dropped
            } catch (const TimeoutAbort &e) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                if (aborted.load(std::memory_order_relaxed))
                    break; // cancelled by disconnect, not a failure
                reg.counter("point.timeouts").add(1);
                out.message = e.what();
                out.timeout = true;
            } catch (const std::exception &e) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                out.message = e.what();
                out.timeout = false;
            } catch (...) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                out.message = "unknown error";
                out.timeout = false;
            }
            if (a == attempts) {
                out.state = Slot::State::Failed;
                out.attempts = a;
            }
        }
        std::lock_guard<std::mutex> lock(mu);
        slots[i] = std::move(out);
        cv.notify_all();
    };

    std::vector<std::function<void()>> tasks;
    tasks.reserve(plans.size() - cached);
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (!slots[i].cached)
            tasks.push_back([&runPointTask, i] { runPointTask(i); });
    std::shared_ptr<Batch> batch =
        ctx.scheduler.submit(std::move(tasks));
    BatchDrain guard(batch, controls, aborted);

    // Stream the completed prefix in enumeration order; heartbeat
    // roughly every second (which doubles as disconnect detection).
    using clock = std::chrono::steady_clock;
    auto lastBeat = clock::now();
    std::size_t next = 0;
    bool clientGone = false;
    while (next < plans.size()) {
        if (pendingSignal()) {
            // Termination: drop queued points, let in-flight ones
            // finish and journal, then report the interruption.
            guard.drain();
            batch->wait();
            writeAll(fd, errorEvent(
                             req.id,
                             "interrupted: daemon shutting down "
                             "(completed points are journaled; "
                             "resubmit to resume)"));
            return;
        }
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait_for(lock, std::chrono::milliseconds(200));
        }
        for (; next < plans.size() && !clientGone; ++next) {
            Slot snap;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (slots[next].state == Slot::State::Pending)
                    break;
                snap = slots[next];
            }
            if (snap.state == Slot::State::Done) {
                if (!writeAll(fd, resultEvent(req.id, plans[next],
                                              snap.result,
                                              snap.cached)))
                    clientGone = true;
            } else if (snap.state == Slot::State::Failed) {
                if (!writeAll(fd, errEvent(req.id, plans[next],
                                           snap.message, snap.attempts,
                                           snap.timeout)))
                    clientGone = true;
            } else {
                // Dropped: a worker observed the shutdown signal
                // before this loop did.  Leave the slot unconsumed;
                // the top-of-loop signal check runs the drain path.
                if (!pendingSignal())
                    clientGone = true;
                break;
            }
        }
        if (!clientGone && next < plans.size() &&
            clock::now() - lastBeat >= std::chrono::seconds(1)) {
            lastBeat = clock::now();
            if (!writeAll(fd,
                          progressEvent(req.id, next, plans.size())))
                clientGone = true;
        }
        if (clientGone) {
            // The socket is gone (or the request is unwinding):
            // nothing should keep simulating for it.
            guard.abort();
            batch->wait();
            return;
        }
    }

    // Every point settled and streamed: assemble the table exactly
    // like runCacheSweep so a served sweep is byte-identical to a
    // local one.
    std::vector<std::string> headers = {"cache_bytes"};
    for (const auto &s : spec.strategies)
        headers.push_back(s);
    Table table(std::move(headers));
    std::vector<std::vector<std::string>> cells(
        spec.cacheSizes.size(),
        std::vector<std::string>(spec.strategies.size(), "-"));
    std::size_t failed = 0;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        if (slots[i].state == Slot::State::Done) {
            cells[plans[i].row][plans[i].col] =
                std::to_string(slots[i].result.totalCycles);
        } else if (slots[i].state == Slot::State::Failed) {
            cells[plans[i].row][plans[i].col] =
                slots[i].timeout ? "ERR(timeout)" : "ERR";
            ++failed;
        }
    }
    for (std::size_t r = 0; r < spec.cacheSizes.size(); ++r) {
        table.beginRow();
        table.cell(spec.cacheSizes[r]);
        for (std::size_t c = 0; c < spec.strategies.size(); ++c)
            table.cell(cells[r][c]);
    }
    if (!writeAll(fd, tableEvent(req.id, table)))
        return;
    writeAll(fd, statsEvent(req.id, plans.size(), cached,
                            plans.size() - cached - failed, failed));
}

/** server.active while a session is inside handleConnection. */
class ActiveGuard
{
  public:
    ActiveGuard()
    {
        std::lock_guard<std::mutex> lock(mutex());
        obs::MetricsRegistry::instance()
            .gauge("server.active")
            .set(++count());
    }
    ~ActiveGuard()
    {
        std::lock_guard<std::mutex> lock(mutex());
        obs::MetricsRegistry::instance()
            .gauge("server.active")
            .set(--count());
    }

  private:
    static std::mutex &mutex()
    {
        static std::mutex m;
        return m;
    }
    static std::int64_t &count()
    {
        static std::int64_t n = 0;
        return n;
    }
};

} // namespace

void
handleConnection(int fd, ServerContext &ctx)
{
    obs::MetricsRegistry::instance().counter("server.requests").add(1);
    ActiveGuard active;

    const std::optional<std::string> line = readRequestLine(fd);
    if (!line) {
        writeAll(fd, errorEvent("", "no request line received"));
        return;
    }
    SweepRequest req;
    try {
        req = parseSweepRequest(*line);
    } catch (const std::exception &e) {
        writeAll(fd, errorEvent("", e.what()));
        return;
    }
    try {
        runSweepSession(fd, ctx, req);
    } catch (const InterruptedError &) {
        writeAll(fd, errorEvent(req.id, "interrupted: daemon shutting "
                                        "down"));
    } catch (const std::exception &e) {
        writeAll(fd, errorEvent(req.id, e.what()));
    } catch (...) {
        writeAll(fd, errorEvent(req.id, "internal error"));
    }
}

} // namespace pipesim::server
