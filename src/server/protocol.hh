/**
 * @file
 * The pipesim-serve wire protocol: newline-delimited JSON both ways
 * (docs/serving.md).
 *
 * A client sends exactly one request line per connection; the daemon
 * answers with a stream of event lines and closes.  Requests carry
 * the same sweep surface as the standard CLI flags
 * (sim/standard_flags.hh): workload or inline assembly, the sweep
 * grid, engine selection with sampling parameters, fault injection
 * and the per-point robustness knobs.  Events echo the request id so
 * logs from a shared daemon stay attributable.
 *
 * Parsing is strict: unknown `type`, malformed JSON, out-of-range
 * values and oversized grids are FatalErrors, reported to the client
 * as a single `error` event.  Validation happens before anything is
 * scheduled, so a bad request can never occupy the pool.
 */

#ifndef PIPESIM_SERVER_PROTOCOL_HH
#define PIPESIM_SERVER_PROTOCOL_HH

#include <cstddef>
#include <string>

#include "common/table.hh"
#include "sim/experiment.hh"

namespace pipesim::server
{

/** Longest accepted request line (bytes, newline included). */
inline constexpr std::size_t maxRequestBytes = 1u << 20;

/** Largest accepted sweep grid (|cache_sizes| x |strategies|). */
inline constexpr std::size_t maxRequestPoints = 10'000;

/** A validated sweep request, ready to plan. */
struct SweepRequest
{
    std::string id;       //!< client-chosen id, echoed in every event
    std::string workload; //!< "livermore" | "branchy"; "" = inline asm
    double scale = 1.0;   //!< livermore trip-count multiplier
    std::string programAsm; //!< inline assembly source ("asm" field)

    /** Expected program image hash; when non-empty the daemon
     *  verifies the built program against it before running. */
    std::string programSha256;

    /** Server-side trace path for the trace engine ("trace_file"). */
    std::string traceFile;

    /** The validated grid and per-point parameters.  jobs/storeDir
     *  are daemon-owned and never taken from the request. */
    SweepSpec spec;
};

/**
 * Parse and validate one request line.
 * @throws FatalError describing the first problem found.
 */
SweepRequest parseSweepRequest(const std::string &line);

/** @name Event lines (each returns one newline-terminated string) */
///@{

/** Fatal request/stream failure: `{"event":"error",...}`. */
std::string errorEvent(const std::string &id, const std::string &message);

/**
 * First event of a successful request: the derived identity (program
 * hash, engine, content-key count) and how many points the store
 * already holds.
 */
std::string acceptedEvent(const std::string &id, std::size_t points,
                          std::size_t cached,
                          const std::string &programSha256,
                          const std::string &engine, bool storeAttached);

/** One completed point, in enumeration order. */
std::string resultEvent(const std::string &id, const SweepPointPlan &plan,
                        const SimResult &result, bool cached);

/** One failed point (attempts exhausted), in enumeration order. */
std::string errEvent(const std::string &id, const SweepPointPlan &plan,
                     const std::string &message, unsigned attempts,
                     bool timeout);

/** Throttled heartbeat while points are in flight. */
std::string progressEvent(const std::string &id, std::size_t done,
                          std::size_t total);

/** The assembled sweep table (text and CSV renderings). */
std::string tableEvent(const std::string &id, const Table &table);

/**
 * Final event: request accounting (points/cached/simulated/failed)
 * plus the daemon's host metrics (server.* and process.* gauges).
 */
std::string statsEvent(const std::string &id, std::size_t points,
                       std::size_t cached, std::size_t simulated,
                       std::size_t failed);

///@}

} // namespace pipesim::server

#endif // PIPESIM_SERVER_PROTOCOL_HH
