/**
 * @file
 * A fixed-capacity FIFO, the building block of PIPE's architectural
 * queues (LAQ, LDQ, SAQ, SDQ) and of the instruction queue / queue
 * buffer in the fetch unit.
 */

#ifndef PIPESIM_QUEUE_FIXED_QUEUE_HH
#define PIPESIM_QUEUE_FIXED_QUEUE_HH

#include <cstddef>
#include <deque>

#include "common/log.hh"

namespace pipesim
{

/**
 * Bounded FIFO queue.
 *
 * Overflow and underflow are simulator bugs (the issue logic must
 * check full()/empty() first), so they panic.
 */
template <typename T>
class FixedQueue
{
  public:
    explicit FixedQueue(std::size_t capacity) : _capacity(capacity)
    {
        PIPESIM_ASSERT(capacity > 0, "queue capacity must be positive");
    }

    bool empty() const { return _items.empty(); }
    bool full() const { return _items.size() >= _capacity; }
    std::size_t size() const { return _items.size(); }
    std::size_t capacity() const { return _capacity; }
    std::size_t freeSlots() const { return _capacity - _items.size(); }

    /** Push onto the tail; queue must not be full. */
    void
    push(T item)
    {
        PIPESIM_ASSERT(!full(), "push to full queue");
        _items.push_back(std::move(item));
    }

    /** The head element; queue must not be empty. */
    const T &
    front() const
    {
        PIPESIM_ASSERT(!empty(), "front of empty queue");
        return _items.front();
    }

    /** Pop and return the head element; queue must not be empty. */
    T
    pop()
    {
        PIPESIM_ASSERT(!empty(), "pop from empty queue");
        T item = std::move(_items.front());
        _items.pop_front();
        return item;
    }

    /** Random access from the head (0 == front) for scan logic. */
    const T &
    at(std::size_t idx) const
    {
        PIPESIM_ASSERT(idx < _items.size(), "queue index out of range");
        return _items[idx];
    }

    void clear() { _items.clear(); }

  private:
    std::size_t _capacity;
    std::deque<T> _items;
};

} // namespace pipesim

#endif // PIPESIM_QUEUE_FIXED_QUEUE_HH
