#include "queue/arch_queues.hh"

namespace pipesim
{

ArchQueues::ArchQueues(std::size_t laq_entries, std::size_t ldq_entries,
                       std::size_t saq_entries, std::size_t sdq_entries)
    : _laq(laq_entries), _ldq(ldq_entries), _saq(saq_entries),
      _sdq(sdq_entries)
{
}

void
ArchQueues::sampleOccupancy()
{
    _laqOcc.sample(_laq.size());
    _ldqOcc.sample(_ldq.size());
    _saqOcc.sample(_saq.size());
    _sdqOcc.sample(_sdq.size());
}

void
ArchQueues::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regHistogram(prefix + ".laq_occupancy", &_laqOcc,
                       "LAQ entries in use per cycle");
    stats.regHistogram(prefix + ".ldq_occupancy", &_ldqOcc,
                       "LDQ entries in use per cycle");
    stats.regHistogram(prefix + ".saq_occupancy", &_saqOcc,
                       "SAQ entries in use per cycle");
    stats.regHistogram(prefix + ".sdq_occupancy", &_sdqOcc,
                       "SDQ entries in use per cycle");
}

} // namespace pipesim
