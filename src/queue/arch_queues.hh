/**
 * @file
 * PIPE's architectural data queues.
 *
 * A Load instruction pushes an address onto the Load Address Queue
 * (LAQ); the memory system later fills the Load Data Queue (LDQ),
 * whose head the programmer sees as register r7.  Store addresses go
 * to the Store Address Queue (SAQ); store data is produced by writing
 * r7, which pushes the Store Data Queue (SDQ).  The heads of the SAQ
 * and SDQ are sent to memory as a pair.
 */

#ifndef PIPESIM_QUEUE_ARCH_QUEUES_HH
#define PIPESIM_QUEUE_ARCH_QUEUES_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "queue/fixed_queue.hh"

namespace pipesim
{

/** One pending memory operation in program order. */
struct PendingAccess
{
    std::uint64_t seq;  //!< program-order sequence number of the op
    Addr addr;
};

/**
 * The four architectural queues, with occupancy statistics.
 *
 * The queues are deliberately owned by one object so the pipeline and
 * the memory interface agree on a single instance.
 */
class ArchQueues
{
  public:
    /**
     * @param laq_entries Load Address Queue capacity.
     * @param ldq_entries Load Data Queue capacity.
     * @param saq_entries Store Address Queue capacity.
     * @param sdq_entries Store Data Queue capacity.
     */
    ArchQueues(std::size_t laq_entries, std::size_t ldq_entries,
               std::size_t saq_entries, std::size_t sdq_entries);

    FixedQueue<PendingAccess> &laq() { return _laq; }
    FixedQueue<Word> &ldq() { return _ldq; }
    FixedQueue<PendingAccess> &saq() { return _saq; }
    FixedQueue<Word> &sdq() { return _sdq; }

    const FixedQueue<PendingAccess> &laq() const { return _laq; }
    const FixedQueue<Word> &ldq() const { return _ldq; }
    const FixedQueue<PendingAccess> &saq() const { return _saq; }
    const FixedQueue<Word> &sdq() const { return _sdq; }

    /** Sample per-cycle occupancies (called once per cycle). */
    void sampleOccupancy();

    /** Register occupancy statistics under @p prefix. */
    void regStats(StatGroup &stats, const std::string &prefix);

  private:
    FixedQueue<PendingAccess> _laq;
    FixedQueue<Word> _ldq;
    FixedQueue<PendingAccess> _saq;
    FixedQueue<Word> _sdq;

    Histogram _laqOcc{1, 16};
    Histogram _ldqOcc{1, 16};
    Histogram _saqOcc{1, 16};
    Histogram _sdqOcc{1, 16};
};

} // namespace pipesim

#endif // PIPESIM_QUEUE_ARCH_QUEUES_HH
