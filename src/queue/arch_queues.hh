/**
 * @file
 * PIPE's architectural data queues.
 *
 * A Load instruction pushes an address onto the Load Address Queue
 * (LAQ); the memory system later fills the Load Data Queue (LDQ),
 * whose head the programmer sees as register r7.  Store addresses go
 * to the Store Address Queue (SAQ); store data is produced by writing
 * r7, which pushes the Store Data Queue (SDQ).  The heads of the SAQ
 * and SDQ are sent to memory as a pair.
 */

#ifndef PIPESIM_QUEUE_ARCH_QUEUES_HH
#define PIPESIM_QUEUE_ARCH_QUEUES_HH

#include <cstdint>

#include "common/state_io.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "queue/fixed_queue.hh"

namespace pipesim
{

/** One pending memory operation in program order. */
struct PendingAccess
{
    std::uint64_t seq;  //!< program-order sequence number of the op
    Addr addr;
};

/**
 * The four architectural queues, with occupancy statistics.
 *
 * The queues are deliberately owned by one object so the pipeline and
 * the memory interface agree on a single instance.
 */
class ArchQueues
{
  public:
    /**
     * @param laq_entries Load Address Queue capacity.
     * @param ldq_entries Load Data Queue capacity.
     * @param saq_entries Store Address Queue capacity.
     * @param sdq_entries Store Data Queue capacity.
     */
    ArchQueues(std::size_t laq_entries, std::size_t ldq_entries,
               std::size_t saq_entries, std::size_t sdq_entries);

    FixedQueue<PendingAccess> &laq() { return _laq; }
    FixedQueue<Word> &ldq() { return _ldq; }
    FixedQueue<PendingAccess> &saq() { return _saq; }
    FixedQueue<Word> &sdq() { return _sdq; }

    const FixedQueue<PendingAccess> &laq() const { return _laq; }
    const FixedQueue<Word> &ldq() const { return _ldq; }
    const FixedQueue<PendingAccess> &saq() const { return _saq; }
    const FixedQueue<Word> &sdq() const { return _sdq; }

    /** Sample per-cycle occupancies (called once per cycle). */
    void sampleOccupancy();

    /** Register occupancy statistics under @p prefix. */
    void regStats(StatGroup &stats, const std::string &prefix);

    /**
     * Serialize queue contents for a checkpoint.  The occupancy
     * histograms are deliberately skipped: they never surface in the
     * counter set that sampled replay compares and accumulates
     * (StatGroup::counterNames covers counters only).
     */
    void saveState(StateWriter &w) const
    {
        auto savePending = [&](const FixedQueue<PendingAccess> &q) {
            w.u32(std::uint32_t(q.size()));
            for (std::size_t i = 0; i < q.size(); ++i) {
                w.u64(q.at(i).seq);
                w.u32(q.at(i).addr);
            }
        };
        auto saveWords = [&](const FixedQueue<Word> &q) {
            w.u32(std::uint32_t(q.size()));
            for (std::size_t i = 0; i < q.size(); ++i)
                w.u32(q.at(i));
        };
        savePending(_laq);
        saveWords(_ldq);
        savePending(_saq);
        saveWords(_sdq);
    }

    void restoreState(StateReader &r)
    {
        auto loadPending = [&](FixedQueue<PendingAccess> &q) {
            q.clear();
            const std::uint32_t n = r.u32();
            if (n > q.capacity())
                r.fail("queue holds ", n, " > capacity ", q.capacity());
            for (std::uint32_t i = 0; i < n; ++i) {
                PendingAccess a;
                a.seq = r.u64();
                a.addr = r.u32();
                q.push(a);
            }
        };
        auto loadWords = [&](FixedQueue<Word> &q) {
            q.clear();
            const std::uint32_t n = r.u32();
            if (n > q.capacity())
                r.fail("queue holds ", n, " > capacity ", q.capacity());
            for (std::uint32_t i = 0; i < n; ++i)
                q.push(r.u32());
        };
        loadPending(_laq);
        loadWords(_ldq);
        loadPending(_saq);
        loadWords(_sdq);
    }

  private:
    FixedQueue<PendingAccess> _laq;
    FixedQueue<Word> _ldq;
    FixedQueue<PendingAccess> _saq;
    FixedQueue<Word> _sdq;

    Histogram _laqOcc{1, 16};
    Histogram _ldqOcc{1, 16};
    Histogram _saqOcc{1, 16};
    Histogram _sdqOcc{1, 16};
};

} // namespace pipesim

#endif // PIPESIM_QUEUE_ARCH_QUEUES_HH
