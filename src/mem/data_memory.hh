/**
 * @file
 * Flat backing store holding the program image and all data.
 *
 * This is the *contents* of the simulated address space; all timing
 * lives in ExternalMemory / MemorySystem.  The memory-mapped FPU
 * range is not backed here (see mem/fpu.hh).
 */

#ifndef PIPESIM_MEM_DATA_MEMORY_HH
#define PIPESIM_MEM_DATA_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"

namespace pipesim
{

class Program;

/** Byte-addressable backing store with 32-bit word accessors. */
class DataMemory
{
  public:
    /** @param size_bytes Size of the address space to back. */
    explicit DataMemory(std::size_t size_bytes = defaultSize);

    /** Copy a program's code image and data segments into memory. */
    void loadProgram(const Program &program);

    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    std::size_t size() const { return _bytes.size(); }

    /** Default backing size: 1 MiB, plenty for the workloads. */
    static constexpr std::size_t defaultSize = 1u << 20;

    /** Dirty-page tracking granularity for checkpoints. */
    static constexpr std::size_t pageBytes = 4096;

    /** Pages written since the last loadProgram(). */
    std::size_t dirtyPageCount() const;

    /**
     * Serialize the pages written since loadProgram().  Together with
     * a fresh loadProgram() on the restore side this reproduces the
     * full memory image at a fraction of the 1 MiB footprint (the
     * workloads touch a handful of pages).
     */
    void saveDirtyPages(StateWriter &w) const;

    /**
     * Apply a dirty-page set saved by saveDirtyPages().  The caller
     * must have called loadProgram() with the same program first; the
     * applied pages are marked dirty so a re-save round-trips.
     */
    void restoreDirtyPages(StateReader &r);

  private:
    void checkRange(Addr addr, unsigned bytes) const;
    void markDirty(Addr addr, unsigned bytes);

    std::vector<std::uint8_t> _bytes;
    std::vector<bool> _dirty; //!< one bit per pageBytes page
};

} // namespace pipesim

#endif // PIPESIM_MEM_DATA_MEMORY_HH
