/**
 * @file
 * Flat backing store holding the program image and all data.
 *
 * This is the *contents* of the simulated address space; all timing
 * lives in ExternalMemory / MemorySystem.  The memory-mapped FPU
 * range is not backed here (see mem/fpu.hh).
 */

#ifndef PIPESIM_MEM_DATA_MEMORY_HH
#define PIPESIM_MEM_DATA_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pipesim
{

class Program;

/** Byte-addressable backing store with 32-bit word accessors. */
class DataMemory
{
  public:
    /** @param size_bytes Size of the address space to back. */
    explicit DataMemory(std::size_t size_bytes = defaultSize);

    /** Copy a program's code image and data segments into memory. */
    void loadProgram(const Program &program);

    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    std::size_t size() const { return _bytes.size(); }

    /** Default backing size: 1 MiB, plenty for the workloads. */
    static constexpr std::size_t defaultSize = 1u << 20;

  private:
    void checkRange(Addr addr, unsigned bytes) const;

    std::vector<std::uint8_t> _bytes;
};

} // namespace pipesim

#endif // PIPESIM_MEM_DATA_MEMORY_HH
