/**
 * @file
 * The off-chip memory-mapped floating-point unit.
 *
 * PIPE has no on-chip multiply hardware; the paper attaches an
 * external floating point chip that "is addressed as a memory
 * location, so that a pair of data stores to the appropriate
 * locations will cause a multiply to occur".  The result is read back
 * with an ordinary load and shares the input (return) bus with the
 * external cache.
 *
 * Address map (one 16-byte window per operation kind):
 *
 *     baseAddr + kind*16 + 0   operand A (store)
 *     baseAddr + kind*16 + 4   operand B (store; starts the op)
 *     baseAddr + kind*16 + 8   result    (load; blocks until ready)
 *
 * Operands and results are IEEE-754 single precision bit patterns.
 * The op latency is fixed (4 cycles in the paper); the device is
 * fully pipelined, and results of one kind are consumed in FIFO
 * order.  The A latch persists between operations.
 */

#ifndef PIPESIM_MEM_FPU_HH
#define PIPESIM_MEM_FPU_HH

#include <array>
#include <deque>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace pipesim
{

/** Floating point operation kinds supported by the device. */
enum class FpuOp : unsigned
{
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    NumOps,
};

class FpuDevice
{
  public:
    /**
     * Base of the device's address window.  Kept below 32 KiB so
     * generated code can address the device with a sign-extended
     * 16-bit displacement off the zero register.
     */
    static constexpr Addr baseAddr = 0x00007F00;
    /** Bytes of address window per operation kind. */
    static constexpr Addr kindStride = 16;

    static Addr opA(FpuOp op) { return baseAddr + unsigned(op) * kindStride; }
    static Addr opB(FpuOp op) { return opA(op) + 4; }
    static Addr opResult(FpuOp op) { return opA(op) + 8; }

    /** @return true if @p addr falls in the device window. */
    static bool
    contains(Addr addr)
    {
        return addr >= baseAddr &&
               addr < baseAddr + unsigned(FpuOp::NumOps) * kindStride;
    }

    /** @param latency Cycles from operand-B store to result ready. */
    explicit FpuDevice(Cycle latency = 4);

    /** Handle a store accepted on the output bus. */
    void store(Addr addr, Word data, Cycle now);

    /** Queue a result load accepted on the output bus. */
    void queueRead(const MemRequest &req, Cycle now);

    /**
     * The oldest queued read whose result is available at @p now,
     * if any, together with the result value.
     */
    struct ReadyRead
    {
        MemRequest req;
        Word value;
    };
    std::optional<ReadyRead> peekReady(Cycle now) const;

    /** Consume the response returned by the last peekReady(). */
    void popReady(Cycle now);

    /** @return number of reads waiting for results. */
    std::size_t pendingReads() const;

    void regStats(StatGroup &stats, const std::string &prefix);

    Cycle latency() const { return _latency; }

    void saveState(StateWriter &w) const
    {
        for (Word a : _latchA)
            w.u32(a);
        for (const auto &kind : _results) {
            w.u32(std::uint32_t(kind.size()));
            for (const Result &res : kind) {
                w.u64(res.readyAt);
                w.u32(res.value);
            }
        }
        for (const auto &kind : _reads) {
            w.u32(std::uint32_t(kind.size()));
            for (const PendingRead &pr : kind)
                saveMemRequest(w, pr.req);
        }
        w.u64(_opsStarted.value());
        w.u64(_resultsReturned.value());
    }

    void restoreState(StateReader &r,
                      const std::function<void(MemRequest &)> &rebind)
    {
        for (Word &a : _latchA)
            a = r.u32();
        for (auto &kind : _results) {
            kind.clear();
            const std::uint32_t n = r.u32();
            for (std::uint32_t i = 0; i < n; ++i) {
                Result res;
                res.readyAt = r.u64();
                res.value = r.u32();
                kind.push_back(res);
            }
        }
        for (auto &kind : _reads) {
            kind.clear();
            const std::uint32_t n = r.u32();
            for (std::uint32_t i = 0; i < n; ++i) {
                PendingRead pr;
                pr.req = restoreMemRequest(r);
                rebind(pr.req);
                kind.push_back(std::move(pr));
            }
        }
        _opsStarted.set(r.u64());
        _resultsReturned.set(r.u64());
    }

  private:
    struct Result
    {
        Cycle readyAt;
        Word value;
    };

    struct PendingRead
    {
        MemRequest req;
    };

    static FpuOp kindOf(Addr addr);
    static unsigned offsetOf(Addr addr);

    Cycle _latency;
    std::array<Word, unsigned(FpuOp::NumOps)> _latchA{};
    std::array<std::deque<Result>, unsigned(FpuOp::NumOps)> _results;
    std::array<std::deque<PendingRead>, unsigned(FpuOp::NumOps)> _reads;

    Counter _opsStarted;
    Counter _resultsReturned;
};

} // namespace pipesim

#endif // PIPESIM_MEM_FPU_HH
