#include "mem/memory_system.hh"

#include <array>
#include <ostream>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "fault/fault.hh"

namespace pipesim
{

MemorySystem::MemorySystem(const MemSystemConfig &config,
                           DataMemory &data_memory)
    : _config(config), _dataMem(data_memory),
      _extMem(config.accessTime, config.pipelined), _fpu(config.fpuLatency)
{
    PIPESIM_ASSERT(config.busWidthBytes >= wordBytes,
                   "input bus must be at least one word wide");
    PIPESIM_ASSERT(isPowerOf2(config.busWidthBytes),
                   "bus width must be a power of two");
    if (config.dcacheBytes > 0)
        _dcache.emplace(config.dcacheBytes, config.dcacheLineBytes,
                        wordBytes);
}

void
MemorySystem::tick(Cycle now)
{
    _extMem.tick(now);
    deliverLocalResponse(now);
    deliverInputBus(now);
    serviceDcache(now);
    acceptOutputBus(now);
}

/**
 * Data-cache port: service the data client's head if it is a hit
 * load (at most one per cycle; no bus or external memory involved).
 */
void
MemorySystem::serviceDcache(Cycle now)
{
    if (!_dcache || !_dataClient)
        return;
    auto req = _dataClient->peek();
    if (!req || req->isStore || FpuDevice::contains(req->addr))
        return;
    if (!_dcache->bytesValid(req->addr, req->bytes)) {
        if (_lastDcacheMissSeq != req->dataSeq) {
            _dcache->recordLookup(false);
            ++_dcacheMisses;
            _lastDcacheMissSeq = req->dataSeq;
        }
        return; // falls through to the off-chip path this cycle
    }
    _dcache->recordLookup(true);
    ++_dcacheHits;
    _dataClient->accepted();
    LocalResponse resp;
    resp.req = std::move(*req);
    resp.value = _dataMem.readWord(resp.req.addr);
    resp.readyAt = now + 1;
    _localResponses.push_back(std::move(resp));
}

/** Deliver at most one ready data-cache hit, in LDQ order. */
void
MemorySystem::deliverLocalResponse(Cycle now)
{
    if (_localResponses.empty())
        return;
    LocalResponse &resp = _localResponses.front();
    if (resp.readyAt > now ||
        resp.req.dataSeq != _nextDataDeliverSeq)
        return;
    if (resp.req.onData)
        resp.req.onData(resp.value);
    ++_nextDataDeliverSeq;
    if (resp.req.onComplete)
        resp.req.onComplete();
    _localResponses.pop_front();
}

bool
MemorySystem::deliverable(const MemRequest &req) const
{
    if (req.isStore)
        return false;
    if (req.cls == ReqClass::Data)
        return req.dataSeq == _nextDataDeliverSeq;
    return true;
}

void
MemorySystem::selectTransfer(Cycle now)
{
    // Candidate 1: head of the external memory's response queue.
    std::optional<MemRequest> ext = _extMem.peekReady(now);
    const bool ext_ok = ext && deliverable(*ext);

    // Candidate 2: oldest ready FPU result read.
    auto fpu_ready = _fpu.peekReady(now);
    const bool fpu_ok = fpu_ready && deliverable(fpu_ready->req);

    if (!ext_ok && !fpu_ok)
        return;

    // Priority: demand responses beat FPU results, FPU results beat
    // prefetch responses (paper section 5).
    bool pick_ext;
    if (ext_ok && fpu_ok)
        pick_ext = ext->cls != ReqClass::IPrefetch;
    else
        pick_ext = ext_ok;

    Transfer t;
    if (pick_ext) {
        t.req = _extMem.popReady(now);
        t.fromExtMem = true;
        t.value = t.req.loadData;
        _extMem.setTransferring(true);
        // Fill parity injection: only instruction fills opt in (they
        // set onParityError), and the decision is made here, before
        // the first beat, so corrupt data never propagates.
        if (_faults && t.req.onParityError && !t.req.isStore &&
            t.req.cls != ReqClass::Data && _faults->corruptFill())
            t.corrupted = true;
    } else {
        t.req = fpu_ready->req;
        t.fromExtMem = false;
        t.value = fpu_ready->value;
        _fpu.popReady(now);
    }
    t.nextAddr = t.req.addr;
    t.bytesLeft = t.req.bytes;
    PIPESIM_ASSERT(t.bytesLeft > 0, "zero-length response");
    _transfer = std::move(t);
}

void
MemorySystem::deliverBeat(Cycle now)
{
    (void)now;
    Transfer &t = *_transfer;
    const unsigned beat = std::min(_config.busWidthBytes, t.bytesLeft);
    ++_beatsDelivered;
    ++_inputBusBusyCycles;
    // A corrupted transfer occupies the bus for its full duration but
    // delivers nothing: the parity error is detected per beat.
    if (t.req.onBeat && !t.corrupted)
        t.req.onBeat(t.nextAddr, beat);
    t.nextAddr += beat;
    t.bytesLeft -= beat;
    if (t.bytesLeft == 0) {
        // Retire the transfer before firing the end-of-transfer
        // callback: a callback may throw (parity retry exhaustion
        // raises SimAbort), and the bus must look consistent in the
        // post-mortem snapshot.
        MemRequest req = std::move(t.req);
        const bool from_ext = t.fromExtMem;
        const bool corrupted = t.corrupted;
        const Word value = t.value;
        if (from_ext)
            _extMem.setTransferring(false);
        _transfer.reset();
        if (corrupted) {
            if (req.onParityError)
                req.onParityError();
            return;
        }
        if (!req.isStore && req.cls == ReqClass::Data) {
            if (req.onData)
                req.onData(value);
            ++_nextDataDeliverSeq;
        }
        if (req.onComplete)
            req.onComplete();
    }
}

void
MemorySystem::deliverInputBus(Cycle now)
{
    if (!_transfer)
        selectTransfer(now);
    if (_transfer)
        deliverBeat(now);
}

bool
MemorySystem::tryAccept(MemClient *client, Cycle now)
{
    if (!client)
        return false;
    auto req = client->peek();
    if (!req)
        return false;

    // Injected arbitration fault: withhold the grant this cycle.  The
    // client retries next cycle exactly as it would after losing real
    // arbitration, so this only stretches timing (rate 1.0 starves
    // the bus outright -- a clean way to force a deadlock).
    if (_faults && _faults->delayGrant()) {
        if (_probes && _probes->busContention.active())
            _probes->busContention.notify(
                obs::BusContentionEvent{now, req->cls});
        return false;
    }

    const bool to_fpu = FpuDevice::contains(req->addr);
    if (!to_fpu && !_extMem.canAccept()) {
        if (_probes && _probes->busContention.active())
            _probes->busContention.notify(
                obs::BusContentionEvent{now, req->cls});
        return false;
    }

    client->accepted();
    ++_outputBusBusyCycles;
    if (_probes && _probes->busGrant.active())
        _probes->busGrant.notify(
            obs::BusGrantEvent{now, req->cls, req->addr, req->isStore});
    switch (req->cls) {
      case ReqClass::Data: ++_dataRequests; break;
      case ReqClass::IFetchDemand: ++_demandRequests; break;
      case ReqClass::IPrefetch: ++_prefetchRequests; break;
    }

    if (to_fpu) {
        if (req->isStore) {
            _fpu.store(req->addr, req->storeData, now);
            if (req->onComplete)
                req->onComplete();
        } else {
            _fpu.queueRead(*req, now);
        }
        return true;
    }

    if (req->isStore) {
        // Applied now; later loads are accepted later in program
        // order and capture their values at acceptance, so ordering
        // is preserved.
        _dataMem.writeWord(req->addr, req->storeData);
        // Write-through: update the data cache only if present.
        if (_dcache && _dcache->linePresent(req->addr))
            _dcache->fill(Addr(alignDown(req->addr, wordBytes)),
                          wordBytes);
    } else if (req->cls == ReqClass::Data) {
        req->loadData = _dataMem.readWord(req->addr);
        // Miss fill (word granular, allocating the line frame).
        if (_dcache) {
            if (!_dcache->linePresent(req->addr))
                _dcache->allocate(req->addr);
            _dcache->fill(Addr(alignDown(req->addr, wordBytes)),
                          wordBytes);
        }
    }
    // Injected response jitter (0 when no injector or the roll
    // misses); the external memory adds it to the ready time.
    if (_faults)
        req->extraLatency = _faults->responseJitter();
    _extMem.accept(std::move(*req), now);
    return true;
}

void
MemorySystem::acceptOutputBus(Cycle now)
{
    std::array<MemClient *, 3> order;
    if (_config.instructionPriority)
        order = {_demandClient, _dataClient, _prefetchClient};
    else
        order = {_dataClient, _demandClient, _prefetchClient};

    for (std::size_t i = 0; i < order.size(); ++i) {
        if (!tryAccept(order[i], now))
            continue;
        // Lower-priority clients with a request pending this cycle
        // lost arbitration; report them only when someone listens
        // (the extra peeks cost nothing when the bus is detached).
        if (_probes && _probes->busContention.active()) {
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                if (!order[j])
                    continue;
                if (auto loser = order[j]->peek())
                    _probes->busContention.notify(
                        obs::BusContentionEvent{now, loser->cls});
            }
        }
        return;
    }
}

void
MemorySystem::dumpState(std::ostream &os) const
{
    const auto flags = os.flags();
    if (_transfer) {
        const Transfer &t = *_transfer;
        os << "input bus: " << (t.req.isStore ? "store"
                                              : reqClassName(t.req.cls))
           << " transfer, next addr 0x" << std::hex << t.nextAddr
           << std::dec << ", " << t.bytesLeft << " B left"
           << (t.corrupted ? " [parity corrupted]" : "") << "\n";
    } else {
        os << "input bus: idle\n";
    }
    os << "local (dcache hit) responses queued: "
       << _localResponses.size() << "\n";
    os << "fpu reads pending: " << _fpu.pendingReads() << "\n";
    os << "next data delivery seq: " << _nextDataDeliverSeq << "\n";
    os.flags(flags);
    _extMem.dumpState(os);
}

bool
MemorySystem::quiescent() const
{
    return !_transfer && _extMem.idle() && _fpu.pendingReads() == 0 &&
           _localResponses.empty();
}

void
MemorySystem::saveState(StateWriter &w) const
{
    w.b(_transfer.has_value());
    if (_transfer) {
        const Transfer &t = *_transfer;
        saveMemRequest(w, t.req);
        w.u32(t.nextAddr);
        w.u32(t.bytesLeft);
        w.b(t.fromExtMem);
        w.u32(t.value);
        w.b(t.corrupted);
    }
    w.b(_dcache.has_value());
    if (_dcache)
        _dcache->saveState(w);
    w.u32(std::uint32_t(_localResponses.size()));
    for (const LocalResponse &resp : _localResponses) {
        saveMemRequest(w, resp.req);
        w.u32(resp.value);
        w.u64(resp.readyAt);
    }
    w.u64(_lastDcacheMissSeq);
    w.u64(_nextDataDeliverSeq);
    w.u64(_inputBusBusyCycles.value());
    w.u64(_outputBusBusyCycles.value());
    w.u64(_dataRequests.value());
    w.u64(_dcacheHits.value());
    w.u64(_dcacheMisses.value());
    w.u64(_demandRequests.value());
    w.u64(_prefetchRequests.value());
    w.u64(_beatsDelivered.value());
    _extMem.saveState(w);
    _fpu.saveState(w);
}

void
MemorySystem::restoreState(StateReader &r,
                           const std::function<void(MemRequest &)> &rebind)
{
    _transfer.reset();
    if (r.b()) {
        Transfer t;
        t.req = restoreMemRequest(r);
        rebind(t.req);
        t.nextAddr = r.u32();
        t.bytesLeft = r.u32();
        t.fromExtMem = r.b();
        t.value = r.u32();
        t.corrupted = r.b();
        _transfer = std::move(t);
    }
    if (r.b() != _dcache.has_value())
        r.fail("data cache presence mismatch");
    if (_dcache)
        _dcache->restoreState(r);
    _localResponses.clear();
    const std::uint32_t locals = r.u32();
    for (std::uint32_t i = 0; i < locals; ++i) {
        LocalResponse resp;
        resp.req = restoreMemRequest(r);
        rebind(resp.req);
        resp.value = r.u32();
        resp.readyAt = r.u64();
        _localResponses.push_back(std::move(resp));
    }
    _lastDcacheMissSeq = r.u64();
    _nextDataDeliverSeq = r.u64();
    _inputBusBusyCycles.set(r.u64());
    _outputBusBusyCycles.set(r.u64());
    _dataRequests.set(r.u64());
    _dcacheHits.set(r.u64());
    _dcacheMisses.set(r.u64());
    _demandRequests.set(r.u64());
    _prefetchRequests.set(r.u64());
    _beatsDelivered.set(r.u64());
    _extMem.restoreState(r, rebind);
    _fpu.restoreState(r, rebind);
}

void
MemorySystem::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".input_bus_busy_cycles",
                     &_inputBusBusyCycles,
                     "cycles the input bus carried a beat");
    stats.regCounter(prefix + ".output_bus_busy_cycles",
                     &_outputBusBusyCycles,
                     "cycles the output bus carried a request");
    stats.regCounter(prefix + ".data_requests", &_dataRequests,
                     "data loads/stores accepted");
    stats.regCounter(prefix + ".demand_ifetch_requests", &_demandRequests,
                     "demand instruction fetches accepted");
    stats.regCounter(prefix + ".prefetch_requests", &_prefetchRequests,
                     "instruction prefetches accepted");
    stats.regCounter(prefix + ".beats_delivered", &_beatsDelivered,
                     "input bus beats delivered");
    stats.regCounter(prefix + ".dcache_hits", &_dcacheHits,
                     "on-chip data cache hits (extension)");
    stats.regCounter(prefix + ".dcache_misses", &_dcacheMisses,
                     "on-chip data cache misses (extension)");
    if (_dcache)
        _dcache->regStats(stats, prefix + ".dcache");
    _extMem.regStats(stats, prefix + ".extmem");
    _fpu.regStats(stats, prefix + ".fpu");
}

} // namespace pipesim
