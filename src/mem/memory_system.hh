/**
 * @file
 * The complete off-chip memory interface: output bus (requests),
 * input bus (responses), external memory and memory-mapped FPU, with
 * the paper's priority arbitration.
 *
 * Per-cycle behaviour (in tick order):
 *  1. The external memory retires completed stores.
 *  2. The input bus delivers one beat (busWidthBytes) of the active
 *     response transfer; if the bus is idle a new response is
 *     selected: demand responses first, then FPU results, then
 *     prefetch responses.  Data-load responses are delivered strictly
 *     in program order (the LDQ is a FIFO).
 *  3. The output bus accepts at most one request, chosen by class
 *     priority: demand instruction fetch vs. data order is
 *     configurable (the paper's presented results put instructions
 *     first); prefetches always lose.
 */

#ifndef PIPESIM_MEM_MEMORY_SYSTEM_HH
#define PIPESIM_MEM_MEMORY_SYSTEM_HH

#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>

#include "common/state_io.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/data_memory.hh"
#include "mem/external_memory.hh"
#include "mem/fpu.hh"
#include "cache/subblock_cache.hh"
#include "mem/request.hh"
#include "obs/probe.hh"

namespace pipesim
{

namespace fault
{
class FaultInjector;
} // namespace fault

/** Memory-side configuration (paper simulation parameters 4-6). */
struct MemSystemConfig
{
    unsigned accessTime = 1;         //!< external memory access time
    unsigned busWidthBytes = 4;      //!< input bus width (parameter 5)
    bool pipelined = false;          //!< pipelined memory (parameter 6)
    bool instructionPriority = true; //!< demand I-fetch over data
    unsigned fpuLatency = 4;         //!< FPU op latency (paper: 4)

    /**
     * Extension (paper section 6): an optional on-chip data cache --
     * "the higher densities achieved in the mature technology can be
     * used to expand the on-chip cache to include data".  0 disables
     * it (the paper's machine).  Write-through, no write-allocate,
     * word-granular valid bits, 1-cycle hits that bypass the busses.
     */
    unsigned dcacheBytes = 0;
    unsigned dcacheLineBytes = 16;
};

class MemorySystem
{
  public:
    MemorySystem(const MemSystemConfig &config, DataMemory &data_memory);

    /** Register the CPU's data-queue request source. */
    void setDataClient(MemClient *client) { _dataClient = client; }
    /** Register the fetch unit's demand-miss request source. */
    void setDemandClient(MemClient *client) { _demandClient = client; }
    /** Register the fetch unit's prefetch request source. */
    void setPrefetchClient(MemClient *client) { _prefetchClient = client; }

    /**
     * Attach the probe bus the memory system emits into: busGrant for
     * every request accepted on the output bus, busContention when a
     * presented request loses arbitration or finds the external
     * memory busy.  Pass nullptr to detach.
     */
    void setProbes(obs::ProbeBus *probes) { _probes = probes; }

    /**
     * Attach a fault injector (fault/fault.hh): bus grants may be
     * delayed, responses jittered, and instruction fills corrupted.
     * Pass nullptr (the default) for fault-free operation.
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        _faults = injector;
    }

    /** Advance one cycle. */
    void tick(Cycle now);

    FpuDevice &fpu() { return _fpu; }
    const FpuDevice &fpu() const { return _fpu; }
    ExternalMemory &externalMemory() { return _extMem; }
    DataMemory &dataMemory() { return _dataMem; }

    const MemSystemConfig &config() const { return _config; }

    /** True while a response transfer occupies the input bus. */
    bool inputBusBusy() const { return _transfer.has_value(); }

    /** The on-chip data cache, when configured. */
    bool hasDcache() const { return _dcache.has_value(); }
    const SubblockCache &dcache() const { return *_dcache; }

    /** True if no request is in flight anywhere in the system. */
    bool quiescent() const;

    /** Write the memory-side machine state (forensic snapshots). */
    void dumpState(std::ostream &os) const;

    void regStats(StatGroup &stats, const std::string &prefix);

    /**
     * Serialize the full memory-side state (busses, external memory,
     * FPU, data cache, counters) for a checkpoint.  DataMemory
     * contents are saved separately by the owner (it is shared).
     */
    void saveState(StateWriter &w) const;

    /**
     * Restore state saved by saveState().  @p rebind re-attaches the
     * callbacks of every in-flight request (dispatching on ReqClass
     * to the pipeline or the fetch unit); geometry mismatches fail
     * the reader.
     */
    void restoreState(StateReader &r,
                      const std::function<void(MemRequest &)> &rebind);

  private:
    struct Transfer
    {
        MemRequest req;
        Addr nextAddr;
        unsigned bytesLeft;
        bool fromExtMem;
        Word value; //!< data-load value to hand to onData
        /**
         * Injected fill parity error: the bus stays occupied for the
         * usual beats, but no onBeat fires and onParityError replaces
         * onComplete at the end (decided once, at transfer selection,
         * so not a single corrupt byte is ever delivered).
         */
        bool corrupted = false;
    };

    void deliverInputBus(Cycle now);
    void selectTransfer(Cycle now);
    void deliverBeat(Cycle now);
    void acceptOutputBus(Cycle now);
    bool tryAccept(MemClient *client, Cycle now);
    void serviceDcache(Cycle now);
    void deliverLocalResponse(Cycle now);

    /** True if this response may start transferring now. */
    bool deliverable(const MemRequest &req) const;

    MemSystemConfig _config;
    DataMemory &_dataMem;
    ExternalMemory _extMem;
    FpuDevice _fpu;

    MemClient *_dataClient = nullptr;
    MemClient *_demandClient = nullptr;
    MemClient *_prefetchClient = nullptr;
    obs::ProbeBus *_probes = nullptr;
    fault::FaultInjector *_faults = nullptr;

    std::optional<Transfer> _transfer;

    /** On-chip data cache state (extension; see MemSystemConfig). */
    std::optional<SubblockCache> _dcache;

    /** Data-cache hit responses awaiting in-order LDQ delivery. */
    struct LocalResponse
    {
        MemRequest req;
        Word value;
        Cycle readyAt;
    };
    std::deque<LocalResponse> _localResponses;

    /** Data sequence whose dcache miss was already counted. */
    std::uint64_t _lastDcacheMissSeq = std::uint64_t(-1);

    /** Next data-load sequence number the input bus may deliver. */
    std::uint64_t _nextDataDeliverSeq = 0;

    Counter _inputBusBusyCycles;
    Counter _outputBusBusyCycles;
    Counter _dataRequests;
    Counter _dcacheHits;
    Counter _dcacheMisses;
    Counter _demandRequests;
    Counter _prefetchRequests;
    Counter _beatsDelivered;
};

} // namespace pipesim

#endif // PIPESIM_MEM_MEMORY_SYSTEM_HH
