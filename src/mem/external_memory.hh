/**
 * @file
 * Timing model of the external memory.
 *
 * The paper models memory as "a large external cache that services
 * both instruction and data requests" with a 100% hit rate, a
 * configurable access time (1, 2, 3 or 6 processor cycles) and an
 * optional pipelined mode in which "the memory system can accept a
 * new request each clock cycle".  In non-pipelined mode a new request
 * cannot begin until the previous one finishes, including its data
 * transfer over the input bus.
 *
 * This class models occupancy and latency only; data contents live in
 * DataMemory, and bus transfer is handled by MemorySystem.
 */

#ifndef PIPESIM_MEM_EXTERNAL_MEMORY_HH
#define PIPESIM_MEM_EXTERNAL_MEMORY_HH

#include <deque>
#include <iosfwd>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace pipesim
{

class ExternalMemory
{
  public:
    /**
     * @param access_time Cycles from acceptance until the first beat
     *                    of the response can appear on the input bus.
     * @param pipelined   Accept one new request per cycle when true.
     */
    ExternalMemory(unsigned access_time, bool pipelined);

    /**
     * @return true if a new request may be accepted this cycle.
     *
     * Non-pipelined memory requires the unit to be completely idle:
     * no in-flight request and no response still transferring on the
     * input bus (the caller reports transfer state via
     * setTransferring()).
     */
    bool canAccept() const;

    /** Accept a request; readiness is @p now + access time. */
    void accept(MemRequest req, Cycle now);

    /**
     * Retire completed stores from the head of the in-flight queue
     * (stores need no bus transfer).  Fires their onComplete.
     */
    void tick(Cycle now);

    /**
     * The in-flight load/ifetch at the head of the queue, if its
     * data is ready at @p now.  Responses leave strictly in
     * acceptance order.
     */
    std::optional<MemRequest> peekReady(Cycle now) const;

    /** Remove the head response (it began its bus transfer). */
    MemRequest popReady(Cycle now);

    /** The caller notes whether a response of ours is on the bus. */
    void setTransferring(bool t) { _transferring = t; }

    bool idle() const { return _inflight.empty() && !_transferring; }
    std::size_t inflightCount() const { return _inflight.size(); }

    unsigned accessTime() const { return _accessTime; }
    bool pipelined() const { return _pipelined; }

    /** Write the in-flight queue state (forensic snapshots). */
    void dumpState(std::ostream &os) const;

    void regStats(StatGroup &stats, const std::string &prefix);

    /** Serialize timing state for a checkpoint.  @p rebind re-binds
     *  restored requests' callbacks (see saveMemRequest). */
    void saveState(StateWriter &w) const
    {
        w.b(_transferring);
        w.u32(std::uint32_t(_inflight.size()));
        for (const InFlight &f : _inflight) {
            saveMemRequest(w, f.req);
            w.u64(f.readyAt);
        }
        w.u64(_reads.value());
        w.u64(_writes.value());
        w.u64(_busyCycles.value());
    }

    void restoreState(StateReader &r,
                      const std::function<void(MemRequest &)> &rebind)
    {
        _transferring = r.b();
        _inflight.clear();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            InFlight f;
            f.req = restoreMemRequest(r);
            rebind(f.req);
            f.readyAt = r.u64();
            _inflight.push_back(std::move(f));
        }
        _reads.set(r.u64());
        _writes.set(r.u64());
        _busyCycles.set(r.u64());
    }

  private:
    struct InFlight
    {
        MemRequest req;
        Cycle readyAt;
    };

    unsigned _accessTime;
    bool _pipelined;
    bool _transferring = false;
    std::deque<InFlight> _inflight;

    Counter _reads;
    Counter _writes;
    Counter _busyCycles;
};

} // namespace pipesim

#endif // PIPESIM_MEM_EXTERNAL_MEMORY_HH
