#include "mem/fpu.hh"

#include <bit>

#include "common/log.hh"

namespace pipesim
{

FpuDevice::FpuDevice(Cycle latency) : _latency(latency)
{
    PIPESIM_ASSERT(latency >= 1, "FPU latency must be at least 1 cycle");
}

FpuOp
FpuDevice::kindOf(Addr addr)
{
    PIPESIM_ASSERT(contains(addr), "address ", addr, " not in FPU window");
    return FpuOp((addr - baseAddr) / kindStride);
}

unsigned
FpuDevice::offsetOf(Addr addr)
{
    return (addr - baseAddr) % kindStride;
}

void
FpuDevice::store(Addr addr, Word data, Cycle now)
{
    const FpuOp kind = kindOf(addr);
    const unsigned off = offsetOf(addr);
    const unsigned k = unsigned(kind);
    if (off == 0) {
        _latchA[k] = data;
    } else if (off == 4) {
        const float a = std::bit_cast<float>(_latchA[k]);
        const float b = std::bit_cast<float>(data);
        float r = 0;
        switch (kind) {
          case FpuOp::Add: r = a + b; break;
          case FpuOp::Sub: r = a - b; break;
          case FpuOp::Mul: r = a * b; break;
          case FpuOp::Div: r = a / b; break;
          default: panic("bad FPU op");
        }
        _results[k].push_back(Result{now + _latency, std::bit_cast<Word>(r)});
        ++_opsStarted;
    } else {
        fatal("store to FPU result address ", addr);
    }
}

void
FpuDevice::queueRead(const MemRequest &req, Cycle now)
{
    (void)now;
    const unsigned off = offsetOf(req.addr);
    if (off != 8)
        fatal("load from FPU operand address ", req.addr);
    _reads[unsigned(kindOf(req.addr))].push_back(PendingRead{req});
}

std::optional<FpuDevice::ReadyRead>
FpuDevice::peekReady(Cycle now) const
{
    // Among kinds with both a pending read and a ready result, return
    // the one whose read is oldest in data-sequence order, so the
    // caller can enforce in-order LDQ fill.
    const PendingRead *best = nullptr;
    const Result *best_result = nullptr;
    for (unsigned k = 0; k < unsigned(FpuOp::NumOps); ++k) {
        if (_reads[k].empty() || _results[k].empty())
            continue;
        if (_results[k].front().readyAt > now)
            continue;
        const PendingRead &pr = _reads[k].front();
        if (!best || pr.req.dataSeq < best->req.dataSeq) {
            best = &pr;
            best_result = &_results[k].front();
        }
    }
    if (!best)
        return std::nullopt;
    return ReadyRead{best->req, best_result->value};
}

void
FpuDevice::popReady(Cycle now)
{
    auto ready = peekReady(now);
    PIPESIM_ASSERT(ready, "popReady with no ready FPU response");
    const unsigned k = unsigned(kindOf(ready->req.addr));
    _reads[k].pop_front();
    _results[k].pop_front();
    ++_resultsReturned;
}

std::size_t
FpuDevice::pendingReads() const
{
    std::size_t n = 0;
    for (const auto &q : _reads)
        n += q.size();
    return n;
}

void
FpuDevice::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".ops_started", &_opsStarted,
                     "FPU operations started");
    stats.regCounter(prefix + ".results_returned", &_resultsReturned,
                     "FPU results returned over the input bus");
}

} // namespace pipesim
