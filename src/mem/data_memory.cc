#include "mem/data_memory.hh"

#include <algorithm>

#include "assembler/program.hh"
#include "common/log.hh"

namespace pipesim
{

DataMemory::DataMemory(std::size_t size_bytes)
    : _bytes(size_bytes, 0),
      _dirty((size_bytes + pageBytes - 1) / pageBytes, false)
{
}

void
DataMemory::loadProgram(const Program &program)
{
    const auto &code = program.code();
    checkRange(program.codeBase(), unsigned(code.size()));
    std::copy(code.begin(), code.end(),
              _bytes.begin() + program.codeBase());
    for (const auto &seg : program.dataSegments()) {
        checkRange(seg.base, unsigned(seg.bytes.size()));
        std::copy(seg.bytes.begin(), seg.bytes.end(),
                  _bytes.begin() + seg.base);
    }
    // The image is the checkpoint baseline: everything written after
    // this point is what saveDirtyPages() captures.
    std::fill(_dirty.begin(), _dirty.end(), false);
}

Word
DataMemory::readWord(Addr addr) const
{
    checkRange(addr, wordBytes);
    return Word(_bytes[addr]) | (Word(_bytes[addr + 1]) << 8) |
           (Word(_bytes[addr + 2]) << 16) | (Word(_bytes[addr + 3]) << 24);
}

void
DataMemory::writeWord(Addr addr, Word value)
{
    checkRange(addr, wordBytes);
    markDirty(addr, wordBytes);
    _bytes[addr] = std::uint8_t(value & 0xff);
    _bytes[addr + 1] = std::uint8_t((value >> 8) & 0xff);
    _bytes[addr + 2] = std::uint8_t((value >> 16) & 0xff);
    _bytes[addr + 3] = std::uint8_t((value >> 24) & 0xff);
}

std::uint8_t
DataMemory::readByte(Addr addr) const
{
    checkRange(addr, 1);
    return _bytes[addr];
}

void
DataMemory::writeByte(Addr addr, std::uint8_t value)
{
    checkRange(addr, 1);
    markDirty(addr, 1);
    _bytes[addr] = value;
}

void
DataMemory::markDirty(Addr addr, unsigned bytes)
{
    const std::size_t first = addr / pageBytes;
    const std::size_t last = (addr + bytes - 1) / pageBytes;
    for (std::size_t p = first; p <= last; ++p)
        _dirty[p] = true;
}

std::size_t
DataMemory::dirtyPageCount() const
{
    std::size_t n = 0;
    for (bool d : _dirty)
        n += d ? 1 : 0;
    return n;
}

void
DataMemory::saveDirtyPages(StateWriter &w) const
{
    w.u64(_bytes.size());
    w.u32(std::uint32_t(dirtyPageCount()));
    for (std::size_t p = 0; p < _dirty.size(); ++p) {
        if (!_dirty[p])
            continue;
        w.u32(std::uint32_t(p));
        const std::size_t base = p * pageBytes;
        const std::size_t len =
            std::min(pageBytes, _bytes.size() - base);
        w.bytes(_bytes.data() + base, len);
    }
}

void
DataMemory::restoreDirtyPages(StateReader &r)
{
    if (r.u64() != _bytes.size())
        r.fail("data memory size mismatch");
    const std::uint32_t pages = r.u32();
    for (std::uint32_t i = 0; i < pages; ++i) {
        const std::uint32_t p = r.u32();
        if (p >= _dirty.size())
            r.fail("dirty page index ", p, " out of range");
        const std::size_t base = std::size_t(p) * pageBytes;
        const std::size_t len =
            std::min(pageBytes, _bytes.size() - base);
        r.bytes(_bytes.data() + base, len);
        _dirty[p] = true;
    }
}

void
DataMemory::checkRange(Addr addr, unsigned bytes) const
{
    if (std::size_t(addr) + bytes > _bytes.size())
        panic("memory access [", addr, ", +", bytes, ") out of range (",
              _bytes.size(), " bytes backed)");
}

} // namespace pipesim
