#include "mem/data_memory.hh"

#include "assembler/program.hh"
#include "common/log.hh"

namespace pipesim
{

DataMemory::DataMemory(std::size_t size_bytes) : _bytes(size_bytes, 0)
{
}

void
DataMemory::loadProgram(const Program &program)
{
    const auto &code = program.code();
    checkRange(program.codeBase(), unsigned(code.size()));
    std::copy(code.begin(), code.end(),
              _bytes.begin() + program.codeBase());
    for (const auto &seg : program.dataSegments()) {
        checkRange(seg.base, unsigned(seg.bytes.size()));
        std::copy(seg.bytes.begin(), seg.bytes.end(),
                  _bytes.begin() + seg.base);
    }
}

Word
DataMemory::readWord(Addr addr) const
{
    checkRange(addr, wordBytes);
    return Word(_bytes[addr]) | (Word(_bytes[addr + 1]) << 8) |
           (Word(_bytes[addr + 2]) << 16) | (Word(_bytes[addr + 3]) << 24);
}

void
DataMemory::writeWord(Addr addr, Word value)
{
    checkRange(addr, wordBytes);
    _bytes[addr] = std::uint8_t(value & 0xff);
    _bytes[addr + 1] = std::uint8_t((value >> 8) & 0xff);
    _bytes[addr + 2] = std::uint8_t((value >> 16) & 0xff);
    _bytes[addr + 3] = std::uint8_t((value >> 24) & 0xff);
}

std::uint8_t
DataMemory::readByte(Addr addr) const
{
    checkRange(addr, 1);
    return _bytes[addr];
}

void
DataMemory::writeByte(Addr addr, std::uint8_t value)
{
    checkRange(addr, 1);
    _bytes[addr] = value;
}

void
DataMemory::checkRange(Addr addr, unsigned bytes) const
{
    if (std::size_t(addr) + bytes > _bytes.size())
        panic("memory access [", addr, ", +", bytes, ") out of range (",
              _bytes.size(), " bytes backed)");
}

} // namespace pipesim
