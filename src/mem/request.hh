/**
 * @file
 * Memory request/response types exchanged between the processor-side
 * requesters (the CPU's data queues and the instruction fetch units)
 * and the memory system.
 */

#ifndef PIPESIM_MEM_REQUEST_HH
#define PIPESIM_MEM_REQUEST_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "common/state_io.hh"
#include "common/types.hh"

namespace pipesim
{

/**
 * Arbitration class of a request.  The paper's simulation model
 * "gives precedence to data and instruction loads and stores,
 * followed by multiply results, with instruction prefetches having
 * lowest priority"; additionally the presented results give demand
 * instruction fetches priority over data requests (configurable).
 */
enum class ReqClass : unsigned char
{
    Data,          //!< architectural load/store (LAQ/SAQ drain)
    IFetchDemand,  //!< instruction fetch the decoder is waiting on
    IPrefetch,     //!< speculative instruction prefetch
};

/**
 * One request presented to the memory interface.
 *
 * Loads and instruction fetches produce response beats on the input
 * bus; stores complete silently.  @c onBeat is invoked once per input
 * bus beat with the byte range delivered; @c onComplete fires after
 * the final beat (or, for stores, when the memory finishes the
 * write).
 */
struct MemRequest
{
    Addr addr = 0;
    unsigned bytes = 0;
    bool isStore = false;
    Word storeData = 0;
    ReqClass cls = ReqClass::Data;

    /**
     * Program-order sequence number for Data-class requests.  The
     * memory system delivers data-load responses strictly in this
     * order so the Load Data Queue (a FIFO the programmer reads as
     * r7) fills correctly.
     */
    std::uint64_t dataSeq = 0;

    /** Called for every input-bus beat: (base address, bytes). */
    std::function<void(Addr, unsigned)> onBeat;

    /**
     * For data loads: called with the loaded word when the response
     * is delivered.  The value is captured when the memory services
     * the request, preserving program-order memory semantics.
     */
    std::function<void(Word)> onData;

    /** Called once when the request fully completes. */
    std::function<void()> onComplete;

    /**
     * Instruction fills only: the transfer was corrupted (an injected
     * fill parity error).  Fired at end-of-transfer *instead of*
     * onComplete; no onBeat fires for a corrupted transfer, so no
     * corrupt byte ever reaches a cache or the decoder.  The fetch
     * unit is expected to discard its fill state and retry.
     */
    std::function<void()> onParityError;

    /**
     * Extra response latency added by fault injection (set by the
     * memory system at acceptance; 0 when injection is off).
     */
    unsigned extraLatency = 0;

    /** Load value captured at acceptance (memory system internal). */
    Word loadData = 0;
};

/**
 * Serialize the value fields of a request for a checkpoint.  The
 * callbacks are deliberately not captured: they close over component
 * pointers that are meaningless in another process, so the restore
 * path re-binds them from the owning component (ReplayPipeline for
 * Data requests, the fetch unit for instruction fills) after
 * restoreMemRequest() rebuilds the plain fields.
 */
inline void
saveMemRequest(StateWriter &w, const MemRequest &req)
{
    w.u32(req.addr);
    w.u32(req.bytes);
    w.b(req.isStore);
    w.u32(req.storeData);
    w.u8(std::uint8_t(req.cls));
    w.u64(req.dataSeq);
    w.u32(req.extraLatency);
    w.u32(req.loadData);
}

/** Rebuild the value fields; callbacks stay empty until re-bound. */
inline MemRequest
restoreMemRequest(StateReader &r)
{
    MemRequest req;
    req.addr = r.u32();
    req.bytes = r.u32();
    req.isStore = r.b();
    req.storeData = r.u32();
    const std::uint8_t cls = r.u8();
    if (cls > std::uint8_t(ReqClass::IPrefetch))
        r.fail("request class holds ", unsigned(cls));
    req.cls = ReqClass(cls);
    req.dataSeq = r.u64();
    req.extraLatency = r.u32();
    req.loadData = r.u32();
    return req;
}

/** Stable lower-case name for a request class (reports, traces). */
constexpr const char *
reqClassName(ReqClass cls)
{
    switch (cls) {
      case ReqClass::Data: return "data";
      case ReqClass::IFetchDemand: return "ifetch_demand";
      case ReqClass::IPrefetch: return "iprefetch";
    }
    return "unknown";
}

/**
 * Pull interface the memory system uses to collect requests.
 *
 * Each requester exposes at most one candidate request per cycle;
 * when the output bus accepts it the memory system calls accepted()
 * and the requester pops its internal queue.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** The request this client wants to issue now, if any. */
    virtual std::optional<MemRequest> peek() = 0;

    /** The peeked request was accepted this cycle. */
    virtual void accepted() = 0;
};

} // namespace pipesim

#endif // PIPESIM_MEM_REQUEST_HH
