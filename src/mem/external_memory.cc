#include "mem/external_memory.hh"

#include <ostream>

#include "common/log.hh"

namespace pipesim
{

ExternalMemory::ExternalMemory(unsigned access_time, bool pipelined)
    : _accessTime(access_time), _pipelined(pipelined)
{
    PIPESIM_ASSERT(access_time >= 1, "memory access time must be >= 1");
}

bool
ExternalMemory::canAccept() const
{
    if (_pipelined)
        return true;
    return idle();
}

void
ExternalMemory::accept(MemRequest req, Cycle now)
{
    PIPESIM_ASSERT(canAccept(), "request accepted while memory busy");
    if (req.isStore)
        ++_writes;
    else
        ++_reads;
    // extraLatency is the injected response jitter (0 normally).
    const Cycle ready = now + _accessTime + req.extraLatency;
    _inflight.push_back(InFlight{std::move(req), ready});
}

void
ExternalMemory::tick(Cycle now)
{
    if (!_inflight.empty())
        ++_busyCycles;
    while (!_inflight.empty() && _inflight.front().req.isStore &&
           _inflight.front().readyAt <= now) {
        auto req = std::move(_inflight.front().req);
        _inflight.pop_front();
        if (req.onComplete)
            req.onComplete();
    }
}

std::optional<MemRequest>
ExternalMemory::peekReady(Cycle now) const
{
    if (_inflight.empty())
        return std::nullopt;
    const InFlight &head = _inflight.front();
    if (head.req.isStore || head.readyAt > now)
        return std::nullopt;
    return head.req;
}

MemRequest
ExternalMemory::popReady(Cycle now)
{
    auto ready = peekReady(now);
    PIPESIM_ASSERT(ready, "popReady with no ready response");
    MemRequest req = std::move(_inflight.front().req);
    _inflight.pop_front();
    return req;
}

void
ExternalMemory::dumpState(std::ostream &os) const
{
    os << "external memory: access time " << _accessTime
       << (_pipelined ? ", pipelined" : ", unpipelined")
       << (_transferring ? ", response transferring" : "") << "\n";
    os << "in flight: " << _inflight.size() << "\n";
    const auto flags = os.flags();
    for (const InFlight &f : _inflight) {
        os << "  " << (f.req.isStore ? "store" : reqClassName(f.req.cls))
           << " addr 0x" << std::hex << f.req.addr << std::dec << " ("
           << f.req.bytes << " B) ready at cycle " << f.readyAt << "\n";
    }
    os.flags(flags);
}

void
ExternalMemory::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".reads", &_reads,
                     "read requests accepted");
    stats.regCounter(prefix + ".writes", &_writes,
                     "write requests accepted");
    stats.regCounter(prefix + ".busy_cycles", &_busyCycles,
                     "cycles with at least one request in flight");
}

} // namespace pipesim
