/**
 * @file
 * The observability probe bus: typed probe points the core simulation
 * components (pipeline, fetch unit, caches, memory system) emit into,
 * and that consumers (CPI-stack accountant, trace exporters, the
 * pipeline viewer) attach listeners to.
 *
 * The design follows the gem5 probe idiom: emission is effectively
 * free when nothing is listening.  notify() is inlined and reduces to
 * a single empty-vector test on the fast path, so the core model can
 * emit unconditionally without measurable slowdown (guarded by the
 * micro_simspeed benchmark).  Call sites that would pay to *build* an
 * event should additionally guard on active().
 *
 * Listeners are synchronous: they run inside the emitting component's
 * tick, in connection order.  They must not mutate simulation state.
 * A listener handle from connect() can be disconnect()ed; listeners
 * must be disconnected before the bus (i.e. the Simulator) dies.
 */

#ifndef PIPESIM_OBS_PROBE_HH
#define PIPESIM_OBS_PROBE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/request.hh"

namespace pipesim::obs
{

/**
 * One typed probe point.  Components own emission; any number of
 * listeners may connect.
 */
template <typename Event>
class ProbePoint
{
  public:
    using Listener = std::function<void(const Event &)>;
    using ListenerId = std::size_t;

    /** Attach @p fn; @return a handle for disconnect(). */
    ListenerId
    connect(Listener fn)
    {
        const ListenerId id = _nextId++;
        _listeners.push_back(Entry{id, std::move(fn)});
        return id;
    }

    /** Detach a listener previously attached with connect(). */
    void
    disconnect(ListenerId id)
    {
        for (auto it = _listeners.begin(); it != _listeners.end(); ++it) {
            if (it->id == id) {
                _listeners.erase(it);
                return;
            }
        }
    }

    /** @return true if at least one listener is attached. */
    bool active() const { return !_listeners.empty(); }

    /** Emit @p ev to every listener (no-op when none is attached). */
    void
    notify(const Event &ev)
    {
        if (_listeners.empty())
            return;
        for (const Entry &e : _listeners)
            e.fn(ev);
    }

  private:
    struct Entry
    {
        ListenerId id;
        Listener fn;
    };

    std::vector<Entry> _listeners;
    ListenerId _nextId = 0;
};

/**
 * Where one pipeline cycle went.  The pipeline classifies every tick
 * into exactly one of these, so the classes partition simulated time;
 * the CPI-stack accountant turns the partition into a breakdown.
 *
 * The tick on which HALT issues is classified Drain (it marks the
 * start of the post-halt drain phase), so the non-Drain classes sum
 * exactly to SimResult::totalCycles and all classes together sum to
 * the total number of simulated ticks.
 */
enum class CycleClass : std::uint8_t
{
    Issue,        //!< an instruction issued (base CPI component)
    FetchStarve,  //!< the frontend had nothing to issue
    LoadDataWait, //!< issue read r7 while the LDQ was empty
    QueueFull,    //!< issue blocked on a full LAQ/SAQ/SDQ/LDQ window
    RegBusy,      //!< issue blocked on an in-flight ALU result
    BusContention,//!< fetch starve caused by a blocked demand fetch
                  //!< (assigned by the accountant, never the pipeline)
    Drain,        //!< at/after HALT issue: queues draining
};

inline constexpr unsigned numCycleClasses = 7;

/** Stable lower-case name for a cycle class (stat/trace keys). */
const char *cycleClassName(CycleClass cls);

/** Pipeline: one per tick, the class this cycle was attributed to. */
struct CycleClassEvent
{
    Cycle cycle;
    CycleClass cls;
};

/**
 * Pipeline: one per issued (retired) instruction.
 *
 * The annotation fields carry the outcomes that cannot be re-derived
 * from the program image alone — the effective address of a
 * load/store and the resolved direction/target of a PBR.  They are
 * what the trace capture layer (replay/capture.hh) records so a
 * trace-driven replay can reproduce the run without executing values.
 */
struct RetireEvent
{
    Cycle cycle;
    isa::FetchedInst inst;

    bool hasMemAddr = false;   //!< inst is a load/store; memAddr valid
    bool memIsStore = false;   //!< the memory op pushes the SAQ
    Addr memAddr = 0;          //!< effective address (loads/stores)
    bool hasBranch = false;    //!< inst is a PBR; taken/target valid
    bool branchTaken = false;  //!< resolved direction
    Addr branchTarget = 0;     //!< resolved target (branch register)
};

/** Fetch unit: an off-chip line request or a completed line fill. */
struct FetchEvent
{
    Cycle cycle;
    Addr addr;
    unsigned bytes;
    bool demand; //!< demand-class (vs. prefetch-class) request
};

/** Fetch unit: an instruction-supply storage lookup. */
struct CacheEvent
{
    Cycle cycle;
    Addr addr;
    bool hit;
};

/** Memory system: a request won the output bus this cycle. */
struct BusGrantEvent
{
    Cycle cycle;
    ReqClass cls;
    Addr addr;
    bool store;
};

/** Memory system: a request was presented but the memory was busy. */
struct BusContentionEvent
{
    Cycle cycle;
    ReqClass cls;
};

/** Pipeline: per-cycle architectural queue occupancies. */
struct QueueSampleEvent
{
    Cycle cycle;
    std::uint8_t laq;
    std::uint8_t ldq;
    std::uint8_t saq;
    std::uint8_t sdq;
};

/**
 * The full set of probe points one simulated machine exposes.  Owned
 * by the Simulator; components receive a pointer at construction
 * time and emit into it for the lifetime of the run.
 */
struct ProbeBus
{
    ProbePoint<CycleClassEvent> cycleClass;
    ProbePoint<RetireEvent> retire;
    ProbePoint<FetchEvent> fetchRequest;
    ProbePoint<FetchEvent> fetchFill;
    ProbePoint<CacheEvent> icacheAccess;
    ProbePoint<BusGrantEvent> busGrant;
    ProbePoint<BusContentionEvent> busContention;
    ProbePoint<QueueSampleEvent> queueSample;
};

} // namespace pipesim::obs

#endif // PIPESIM_OBS_PROBE_HH
