/**
 * @file
 * Command-line wiring for the observability layer, shared by every
 * CliParser-based tool (examples and benchmark binaries):
 *
 *     --cpi-stack           print the CPI-stack cycle breakdown
 *     --trace-json <file>   write a Chrome trace-event JSON file
 *     --stats-json <file>   write SimResult + counters as JSON
 *
 * An ObsSession binds the requested consumers to one Simulator run:
 * construct it after the Simulator (listeners attach to the probe
 * bus), run, then finish() to write files and print the breakdown.
 */

#ifndef PIPESIM_OBS_OBS_CLI_HH
#define PIPESIM_OBS_OBS_CLI_HH

#include <iostream>
#include <optional>
#include <string>

#include "obs/trace_export.hh"
#include "sim/cli.hh"
#include "sim/simulator.hh"

namespace pipesim::obs
{

/** Parsed observability options. */
struct ObsOptions
{
    bool cpiStack = false;
    std::string traceJson; //!< output path; empty = no trace
    std::string statsJson; //!< output path; empty = no stats dump

    /** @return true if any output was requested. */
    bool
    any() const
    {
        return cpiStack || !traceJson.empty() || !statsJson.empty();
    }

    /** Register the three options on @p cli. */
    static void addOptions(CliParser &cli);

    /** Read the options back after cli.parse(). */
    static ObsOptions fromCli(const CliParser &cli);
};

/** One observed simulator run. */
class ObsSession
{
  public:
    ObsSession(const ObsOptions &opts, Simulator &sim);

    /**
     * Write the requested outputs for the finished run.
     *
     * @param result The run's result (for the stats dump).
     * @param label  Run identification included in the stats JSON and
     *               printed headers.
     * @param out    Stream for the --cpi-stack breakdown.
     */
    void finish(const SimResult &result, const std::string &label = "",
                std::ostream &out = std::cout);

  private:
    ObsOptions _opts;
    Simulator &_sim;
    std::optional<ChromeTraceWriter> _trace;
};

} // namespace pipesim::obs

#endif // PIPESIM_OBS_OBS_CLI_HH
