#include "obs/cpi_stack.hh"

#include <sstream>

#include "common/strutil.hh"

namespace pipesim::obs
{

CpiStack::~CpiStack()
{
    detach();
}

void
CpiStack::attach(ProbeBus &bus)
{
    detach();
    _bus = &bus;
    _contentionId =
        bus.busContention.connect([this](const BusContentionEvent &ev) {
            if (ev.cls == ReqClass::IFetchDemand)
                _fetchContended = true;
        });
    // The memory system ticks before the pipeline, so the contention
    // flag for cycle N is always set before cycle N is classified.
    _cycleId = bus.cycleClass.connect([this](const CycleClassEvent &ev) {
        CycleClass cls = ev.cls;
        if (cls == CycleClass::FetchStarve && _fetchContended)
            cls = CycleClass::BusContention;
        ++_components[unsigned(cls)];
        _fetchContended = false;
    });
}

void
CpiStack::detach()
{
    if (!_bus)
        return;
    _bus->cycleClass.disconnect(_cycleId);
    _bus->busContention.disconnect(_contentionId);
    _bus = nullptr;
}

std::uint64_t
CpiStack::component(CycleClass cls) const
{
    return _components[unsigned(cls)].value();
}

std::uint64_t
CpiStack::accountedCycles() const
{
    return totalTicks() - component(CycleClass::Drain);
}

std::uint64_t
CpiStack::totalTicks() const
{
    std::uint64_t sum = 0;
    for (const Counter &c : _components)
        sum += c.value();
    return sum;
}

void
CpiStack::regStats(StatGroup &stats, const std::string &prefix)
{
    static const char *descs[numCycleClasses] = {
        "cycles an instruction issued",
        "cycles the frontend had nothing to issue",
        "cycles issue waited for load data (r7)",
        "cycles issue blocked on a full architectural queue",
        "cycles issue blocked on a busy register",
        "fetch-starve cycles caused by memory-bus contention",
        "cycles draining queues at/after HALT",
    };
    for (unsigned i = 0; i < numCycleClasses; ++i)
        stats.regCounter(prefix + "." + cycleClassName(CycleClass(i)),
                         &_components[i], descs[i]);
}

std::string
CpiStack::table() const
{
    const std::uint64_t total = totalTicks();
    const double denom = total ? double(total) : 1.0;
    std::ostringstream os;
    os << "CPI stack (cycles, % of all simulated ticks):\n";
    for (unsigned i = 0; i < numCycleClasses; ++i) {
        const std::uint64_t v = _components[i].value();
        os << format("  %-16s %12llu  %5.1f%%\n",
                     cycleClassName(CycleClass(i)),
                     static_cast<unsigned long long>(v),
                     100.0 * double(v) / denom);
    }
    os << format("  %-16s %12llu\n", "total",
                 static_cast<unsigned long long>(total));
    return os.str();
}

} // namespace pipesim::obs
