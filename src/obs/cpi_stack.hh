/**
 * @file
 * CPI-stack cycle accountant: a ProbeBus listener that attributes
 * every simulated cycle to exactly one cause, so a run's cycle count
 * decomposes into an additive stack (the presentation style of
 * fetch-bottleneck studies: base issue work at the bottom, then each
 * loss category on top).
 *
 * Invariants (asserted by the observability tests):
 *  - issue + fetch_starve + load_data_wait + queue_full + reg_busy +
 *    bus_contention == SimResult::totalCycles (the halt cycle), and
 *  - adding drain gives the total number of simulated ticks.
 *
 * The pipeline classifies each tick (see obs::CycleClass); the
 * accountant refines FetchStarve into BusContention when the memory
 * system reported a blocked demand instruction fetch in the same
 * cycle, attributing starvation to output-bus/memory contention
 * rather than to cache misses alone.
 */

#ifndef PIPESIM_OBS_CPI_STACK_HH
#define PIPESIM_OBS_CPI_STACK_HH

#include <array>
#include <string>

#include "common/stats.hh"
#include "obs/probe.hh"

namespace pipesim::obs
{

class CpiStack
{
  public:
    CpiStack() = default;
    ~CpiStack();

    CpiStack(const CpiStack &) = delete;
    CpiStack &operator=(const CpiStack &) = delete;

    /** Connect to @p bus; the bus must outlive this object. */
    void attach(ProbeBus &bus);

    /** Disconnect from the bus (idempotent). */
    void detach();

    /** Cycles attributed to @p cls so far. */
    std::uint64_t component(CycleClass cls) const;

    /** Sum of every component except Drain (== totalCycles). */
    std::uint64_t accountedCycles() const;

    /** Sum of every component including Drain (== ticks simulated). */
    std::uint64_t totalTicks() const;

    /**
     * Register one counter per component under @p prefix
     * ("<prefix>.issue", "<prefix>.fetch_starve", ...), so every
     * binary that dumps a StatGroup or a SimResult reports the stack
     * for free.
     */
    void regStats(StatGroup &stats, const std::string &prefix);

    /** Render the breakdown as an aligned table with percentages. */
    std::string table() const;

  private:
    std::array<Counter, numCycleClasses> _components;
    bool _fetchContended = false;

    ProbeBus *_bus = nullptr;
    ProbePoint<CycleClassEvent>::ListenerId _cycleId = 0;
    ProbePoint<BusContentionEvent>::ListenerId _contentionId = 0;
};

} // namespace pipesim::obs

#endif // PIPESIM_OBS_CPI_STACK_HH
