/**
 * @file
 * Minimal JSON support for the observability exporters: an escaping
 * stream writer with automatic comma/nesting management, and a small
 * recursive-descent parser used by tests (and tools) to validate
 * exported documents.  Deliberately tiny — no external dependency,
 * just what machine-readable stats and Chrome trace files need.
 */

#ifndef PIPESIM_OBS_JSON_HH
#define PIPESIM_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pipesim::obs
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON writer.  Handles commas and nesting; the caller
 * supplies structure:
 *
 *     JsonWriter w(os);
 *     w.beginObject();
 *     w.key("cycles").value(std::uint64_t(42));
 *     w.key("events").beginArray();
 *     w.value("a").value(1.5);
 *     w.endArray();
 *     w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : _os(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(bool v);

  private:
    void separate();

    std::ostream &_os;
    /** One entry per open container: true = object, false = array. */
    std::vector<bool> _stack;
    /** Whether the current container already holds an element. */
    std::vector<bool> _nonEmpty;
    bool _afterKey = false;
};

/** A parsed JSON value (validation-oriented; numbers are doubles). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &k) const;
};

/**
 * Parse a complete JSON document.  @return nullopt on any syntax
 * error or trailing garbage.
 */
std::optional<JsonValue> parseJson(std::string_view text);

} // namespace pipesim::obs

#endif // PIPESIM_OBS_JSON_HH
