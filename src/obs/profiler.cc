#include "obs/profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/log.hh"
#include "obs/bench_json.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "sim/cli.hh"

namespace pipesim::obs
{

std::atomic<bool> Profiler::_on{false};

std::uint64_t
profileNowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One phase in one thread's tree.  ns/count are relaxed atomics so
 *  a snapshot can read while the owner thread keeps accumulating;
 *  the child list only ever grows, under the owning ThreadState's
 *  mutex (the owner is the only writer, snapshots are the only other
 *  readers). */
struct Profiler::Node
{
    const char *name;
    Node *parent;
    std::vector<std::unique_ptr<Node>> children;
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> count{0};

    Node(const char *n, Node *p) : name(n), parent(p) {}
};

struct Profiler::ThreadState
{
    /** Bounded so a runaway coarse phase cannot eat the heap. */
    static constexpr std::size_t maxSpans = 1 << 16;

    struct RawSpan
    {
        const char *name;
        std::string label;
        std::uint64_t startNs;
        std::uint64_t durNs;
    };

    std::uint64_t tid = 0;
    Node root{"", nullptr};
    Node *current = &root; //!< owner thread only
    mutable std::mutex mutex; //!< guards children growth + spans
    std::vector<RawSpan> spans;
    std::atomic<std::uint64_t> droppedSpans{0};

    Node *
    child(Node *parent, const char *name)
    {
        // Owner-thread lookup needs no lock: only the owner appends,
        // and appends happen under the mutex so concurrent snapshot
        // walks never see a reallocating vector.
        for (const auto &c : parent->children)
            if (c->name == name || std::strcmp(c->name, name) == 0)
                return c.get();
        std::lock_guard<std::mutex> lock(mutex);
        parent->children.push_back(
            std::make_unique<Node>(name, parent));
        return parent->children.back().get();
    }

    void
    addSpan(const char *name, std::string label, std::uint64_t start,
            std::uint64_t dur)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (spans.size() >= maxSpans) {
            droppedSpans.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        spans.push_back(RawSpan{name, std::move(label), start, dur});
    }
};

namespace
{

/** Registry of every thread that ever profiled.  States are kept for
 *  the process lifetime so reports can still read trees of joined
 *  worker threads. */
struct ThreadRegistry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<Profiler::ThreadState>> states;
    std::atomic<std::uint64_t> t0Ns{0}; //!< enable() timestamp
};

ThreadRegistry &
registry()
{
    static ThreadRegistry *r = new ThreadRegistry; // never destroyed:
    return *r; // worker threads may outlive static teardown
}

/** Where the --profile/--profile-json outputs go (set at activate). */
struct PendingReport
{
    bool active = false;
    ProfileOptions opts;
};

PendingReport &
pendingReport()
{
    static PendingReport p;
    return p;
}

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler *p = new Profiler; // never destroyed (see registry)
    return *p;
}

Profiler::ThreadState &
Profiler::threadState()
{
    thread_local ThreadState *tls = nullptr;
    if (!tls) {
        auto state = std::make_unique<ThreadState>();
        ThreadRegistry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        state->tid = reg.states.size();
        tls = state.get();
        reg.states.push_back(std::move(state));
    }
    return *tls;
}

Profiler::Node *
Profiler::resolve(const char *name, Scope scope)
{
    ThreadState &ts = threadState();
    Node *parent = scope == Scope::Root ? &ts.root : ts.current;
    return ts.child(parent, name);
}

void
Profiler::enable()
{
    ThreadRegistry &reg = registry();
    std::uint64_t expected = 0;
    reg.t0Ns.compare_exchange_strong(expected, profileNowNs());
    _on.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    _on.store(false, std::memory_order_relaxed);
}

void
Profiler::reset()
{
    // Requires no phase to be in flight on any thread (tests call
    // this between cases, after every pool has drained).
    ThreadRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &ts : reg.states) {
        std::lock_guard<std::mutex> tlock(ts->mutex);
        ts->root.children.clear();
        ts->current = &ts->root;
        ts->spans.clear();
        ts->droppedSpans.store(0, std::memory_order_relaxed);
    }
    reg.t0Ns.store(enabled() ? profileNowNs() : 0,
                   std::memory_order_relaxed);
}

std::uint64_t
Profiler::wallNs() const
{
    const std::uint64_t t0 =
        registry().t0Ns.load(std::memory_order_relaxed);
    return t0 ? profileNowNs() - t0 : 0;
}

namespace
{

void
mergeTree(const Profiler::Node &node, const std::string &prefix,
          unsigned depth,
          std::map<std::string, Profiler::Phase> &merged)
{
    for (const auto &childPtr : node.children) {
        const Profiler::Node &c = *childPtr;
        const std::string path =
            prefix.empty() ? c.name : prefix + "/" + c.name;
        Profiler::Phase &p = merged[path];
        p.path = path;
        p.depth = depth;
        p.ns += c.ns.load(std::memory_order_relaxed);
        p.count += c.count.load(std::memory_order_relaxed);
        mergeTree(c, path, depth + 1, merged);
    }
}

} // namespace

std::vector<Profiler::Phase>
Profiler::snapshot() const
{
    std::map<std::string, Phase> merged;
    ThreadRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ts : reg.states) {
        std::lock_guard<std::mutex> tlock(ts->mutex);
        mergeTree(ts->root, "", 0, merged);
    }
    // Depth-first order with children under their parent: sorting by
    // path does exactly that ("sweep" < "sweep/point" < "sweep2").
    std::vector<Phase> out;
    out.reserve(merged.size());
    for (auto &[path, p] : merged)
        out.push_back(std::move(p));
    return out;
}

std::vector<Profiler::Span>
Profiler::spans() const
{
    std::vector<Span> out;
    ThreadRegistry &reg = registry();
    const std::uint64_t t0 = reg.t0Ns.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ts : reg.states) {
        std::lock_guard<std::mutex> tlock(ts->mutex);
        for (const auto &s : ts->spans)
            out.push_back(Span{s.label.empty() ? s.name : s.label,
                               ts->tid,
                               s.startNs > t0 ? s.startNs - t0 : 0,
                               s.durNs});
    }
    std::sort(out.begin(), out.end(),
              [](const Span &a, const Span &b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.startNs < b.startNs;
              });
    return out;
}

std::uint64_t
Profiler::droppedSpans() const
{
    std::uint64_t n = 0;
    ThreadRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ts : reg.states)
        n += ts->droppedSpans.load(std::memory_order_relaxed);
    return n;
}

double
Profiler::coverage() const
{
    const std::uint64_t wall = wallNs();
    if (wall == 0)
        return 0.0;
    std::uint64_t top = 0;
    for (const Phase &p : snapshot())
        if (p.depth == 0)
            top += p.ns;
    const double c = double(top) / double(wall);
    return c > 1.0 ? 1.0 : c;
}

namespace
{

std::string
formatNs(std::uint64_t ns)
{
    std::ostringstream os;
    os.precision(3);
    if (ns >= 1000000000ull)
        os << double(ns) / 1e9 << "s";
    else if (ns >= 1000000ull)
        os << double(ns) / 1e6 << "ms";
    else if (ns >= 1000ull)
        os << double(ns) / 1e3 << "us";
    else
        os << ns << "ns";
    return os.str();
}

} // namespace

std::string
Profiler::report() const
{
    const std::vector<Phase> phases = snapshot();
    if (phases.empty())
        return "";
    const std::uint64_t wall = wallNs();
    std::ostringstream os;
    os << "== host profile (wall " << formatNs(wall) << ", coverage ";
    os.precision(3);
    os << coverage() * 100.0 << "%) ==\n";

    const auto leafOf = [](const std::string &path) {
        const std::size_t pos = path.rfind('/');
        return pos == std::string::npos ? path : path.substr(pos + 1);
    };
    std::size_t nameWidth = 5;
    for (const Phase &p : phases)
        nameWidth =
            std::max(nameWidth, 2 * p.depth + leafOf(p.path).size());
    for (const Phase &p : phases) {
        const std::string leaf = leafOf(p.path);
        std::string line(2 * p.depth, ' ');
        line += leaf;
        line.resize(std::max(line.size(), nameWidth), ' ');
        os << line << "  ";
        std::ostringstream cells;
        cells.precision(3);
        cells << formatNs(p.ns) << " total, " << p.count << " call"
              << (p.count == 1 ? "" : "s");
        if (p.count > 0)
            cells << ", " << formatNs(p.ns / p.count) << " avg";
        if (wall > 0)
            cells << ", " << double(p.ns) * 100.0 / double(wall)
                  << "% of wall";
        os << cells.str() << "\n";
    }
    const std::uint64_t dropped = droppedSpans();
    if (dropped)
        os << "(" << dropped << " span events dropped)\n";
    return os.str();
}

void
Profiler::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("enabled").value(enabled());
    w.key("wall_ns").value(wallNs());
    w.key("coverage").value(coverage());
    w.key("dropped_spans").value(droppedSpans());
    w.key("phases").beginArray();
    for (const Phase &p : snapshot()) {
        w.beginObject();
        w.key("path").value(p.path);
        w.key("ns").value(p.ns);
        w.key("count").value(p.count);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

ScopedPhase::ScopedPhase(const char *name, Scope scope,
                         std::string label)
{
    if (!Profiler::enabled())
        return;
    Profiler::ThreadState &ts = Profiler::threadState();
    _node = Profiler::resolve(name, scope);
    _prev = ts.current;
    ts.current = _node;
    _span = scope != Scope::Nested;
    _label = std::move(label);
    _start = profileNowNs();
}

ScopedPhase::~ScopedPhase()
{
    if (!_node)
        return;
    const std::uint64_t end = profileNowNs();
    const std::uint64_t dur = end > _start ? end - _start : 0;
    _node->ns.fetch_add(dur, std::memory_order_relaxed);
    _node->count.fetch_add(1, std::memory_order_relaxed);
    Profiler::ThreadState &ts = Profiler::threadState();
    ts.current = _prev;
    if (_span)
        ts.addSpan(_node->name, std::move(_label), _start, dur);
}

CachedPhase::CachedPhase(const char *name)
{
    if (!Profiler::enabled())
        return;
    _node = Profiler::resolve(name, Scope::Nested);
}

void
CachedPhase::add(std::uint64_t ns, std::uint64_t count)
{
    if (!_node)
        return;
    _node->ns.fetch_add(ns, std::memory_order_relaxed);
    _node->count.fetch_add(count, std::memory_order_relaxed);
}

void
ProfileOptions::addOptions(CliParser &cli)
{
    cli.addFlag("profile",
                "profile the host (phase timers) and print the "
                "breakdown to stderr on exit");
    cli.addOption("profile-json", "",
                  "write the host profile (phases, metrics, host "
                  "info) as JSON to this file on exit");
}

ProfileOptions
ProfileOptions::fromCli(const CliParser &cli)
{
    ProfileOptions o;
    o.report = cli.getFlag("profile");
    o.jsonPath = cli.get("profile-json");
    return o;
}

void
activateProfiling(const ProfileOptions &opts)
{
    if (!opts.any())
        return;
    PendingReport &p = pendingReport();
    p.active = true;
    p.opts = opts;
    Profiler::instance().enable();
}

void
flushProfileReport()
{
    PendingReport &p = pendingReport();
    if (!p.active)
        return;
    p.active = false;
    if (p.opts.report)
        std::cerr << Profiler::instance().report();
    if (!p.opts.jsonPath.empty()) {
        std::ofstream f(p.opts.jsonPath);
        if (!f) {
            warn("cannot open profile output file '" + p.opts.jsonPath +
                 "'");
        } else {
            writeProfileJson(f);
            std::cerr << "wrote host profile to " << p.opts.jsonPath
                      << "\n";
        }
    }
    Profiler::instance().disable();
}

void
writeProfileJson(std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("pipesim-profile");
    w.key("schema_version").value(std::int64_t(1));
    w.key("git_rev").value(gitRevision());
    w.key("host").beginObject();
    for (const auto &[k, v] : hostInfo())
        w.key(k).value(v);
    w.endObject();
    w.key("profile");
    Profiler::instance().writeJson(w);
    MetricsRegistry::instance().writeJson(w);
    w.endObject();
    os << "\n";
}

} // namespace pipesim::obs
