#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>
#include <sys/resource.h>

#include "common/log.hh"
#include "obs/json.hh"

namespace pipesim::obs
{

unsigned
LogHistogram::bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    unsigned i = 0;
    while (value >>= 1)
        ++i;
    return i < numBuckets ? i : numBuckets - 1;
}

void
LogHistogram::sample(std::uint64_t value)
{
    _buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = _min.load(std::memory_order_relaxed);
    while (value < seen &&
           !_min.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = _max.load(std::memory_order_relaxed);
    while (value > seen &&
           !_max.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
LogHistogram::min() const
{
    const std::uint64_t m = _min.load(std::memory_order_relaxed);
    return m == ~std::uint64_t(0) ? 0 : m;
}

double
LogHistogram::mean() const
{
    const std::uint64_t n = count();
    return n ? double(sum()) / double(n) : 0.0;
}

std::uint64_t
LogHistogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        seen += bucketCount(i);
        if (seen > 0 && double(seen) >= q * double(n)) {
            // Upper bound of the bucket, clamped to the observed max.
            const std::uint64_t hi =
                i + 1 >= 64 ? ~std::uint64_t(0)
                            : (std::uint64_t(1) << (i + 1)) - 1;
            return hi < max() ? hi : max();
        }
    }
    return max();
}

void
LogHistogram::reset()
{
    for (auto &b : _buckets)
        b.store(0, std::memory_order_relaxed);
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0, std::memory_order_relaxed);
    _min.store(~std::uint64_t(0), std::memory_order_relaxed);
    _max.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry r;
    return r;
}

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    PIPESIM_ASSERT(!_gauges.count(name) && !_histograms.count(name),
                   "metric '", name, "' already registered as another "
                   "kind");
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    PIPESIM_ASSERT(!_counters.count(name) && !_histograms.count(name),
                   "metric '", name, "' already registered as another "
                   "kind");
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    PIPESIM_ASSERT(!_counters.count(name) && !_gauges.count(name),
                   "metric '", name, "' already registered as another "
                   "kind");
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<LogHistogram>();
    return *slot;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _counters.empty() && _gauges.empty() && _histograms.empty();
}

std::vector<MetricsRegistry::Entry>
MetricsRegistry::entries() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<Entry> out;
    for (const auto &[name, c] : _counters)
        out.push_back({name, Entry::Kind::Counter});
    for (const auto &[name, g] : _gauges)
        out.push_back({name, Entry::Kind::Gauge});
    for (const auto &[name, h] : _histograms)
        out.push_back({name, Entry::Kind::Histogram});
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    w.key("metrics").beginObject();
    {
        // One sorted view over counters and gauges.
        std::map<std::string, std::uint64_t> flat;
        for (const auto &[name, c] : _counters)
            flat.emplace(name, c->value());
        for (const auto &[name, g] : _gauges) {
            flat.emplace(name, std::uint64_t(g->value()));
            flat.emplace(name + "_peak", std::uint64_t(g->max()));
        }
        for (const auto &[name, v] : flat)
            w.key(name).value(v);
    }
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : _histograms) {
        w.key(name).beginObject();
        w.key("count").value(h->count());
        w.key("min").value(h->min());
        w.key("max").value(h->max());
        w.key("mean").value(h->mean());
        w.key("p50").value(h->quantile(0.50));
        w.key("p90").value(h->quantile(0.90));
        w.key("p99").value(h->quantile(0.99));
        w.endObject();
    }
    w.endObject();
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[name, c] : _counters)
        c->reset();
    for (auto &[name, g] : _gauges)
        g->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
}

namespace
{

// Anchored once at static init so uptime measures the whole process
// lifetime, not the time since the first export.
const std::chrono::steady_clock::time_point processStart =
    std::chrono::steady_clock::now();

} // namespace

void
updateProcessGauges()
{
    auto &reg = MetricsRegistry::instance();
    const auto up = std::chrono::steady_clock::now() - processStart;
    reg.gauge("process.uptime_seconds")
        .set(std::chrono::duration_cast<std::chrono::seconds>(up)
                 .count());
    struct rusage ru = {};
    if (::getrusage(RUSAGE_SELF, &ru) == 0) {
        // Linux reports ru_maxrss in KiB.
        reg.gauge("process.max_rss_bytes")
            .set(std::int64_t(ru.ru_maxrss) * 1024);
    }
}

} // namespace pipesim::obs
