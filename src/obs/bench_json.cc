#include "obs/bench_json.hh"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "common/log.hh"
#include "common/strutil.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

#if __has_include(<sys/utsname.h>)
#include <sys/utsname.h>
#define PIPESIM_HAVE_UTSNAME 1
#endif
#if __has_include(<unistd.h>)
#include <unistd.h>
#define PIPESIM_HAVE_UNISTD 1
#endif

namespace pipesim::obs
{

std::map<std::string, std::string>
hostInfo()
{
    std::map<std::string, std::string> h;
#ifdef PIPESIM_HAVE_UNISTD
    char name[256] = {};
    if (gethostname(name, sizeof(name) - 1) == 0 && name[0])
        h["hostname"] = name;
#endif
    if (!h.count("hostname"))
        h["hostname"] = "unknown";
    h["hardware_concurrency"] =
        std::to_string(std::thread::hardware_concurrency());
#ifdef PIPESIM_HAVE_UTSNAME
    struct utsname u = {};
    if (uname(&u) == 0)
        h["os"] = std::string(u.sysname) + " " + u.release + " " +
                  u.machine;
#endif
    if (!h.count("os"))
        h["os"] = "unknown";
#if defined(__VERSION__)
    h["compiler"] = __VERSION__;
#else
    h["compiler"] = "unknown";
#endif
#ifdef NDEBUG
    h["build"] = "release";
#else
    h["build"] = "debug";
#endif
    return h;
}

std::string
gitRevision()
{
    if (const char *env = std::getenv("PIPESIM_GIT_REV"))
        if (*env)
            return env;
#ifdef PIPESIM_HAVE_UNISTD
    if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[128] = {};
        const bool got = fgets(buf, sizeof(buf), p) != nullptr;
        pclose(p);
        if (got) {
            const std::string rev{trim(buf)};
            if (!rev.empty())
                return rev;
        }
    }
#endif
    return "unknown";
}

BenchRecord &
BenchReport::add(const std::string &name)
{
    records.push_back(BenchRecord{name, {}, {}});
    return records.back();
}

void
BenchReport::write(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("pipesim-bench");
    w.key("schema_version").value(std::int64_t(schemaVersion));
    w.key("tool").value(tool);
    w.key("generated_unix").value(std::uint64_t(std::time(nullptr)));
    w.key("git_rev").value(gitRevision());

    w.key("host").beginObject();
    for (const auto &[k, v] : hostInfo())
        w.key(k).value(v);
    w.endObject();

    w.key("config").beginObject();
    for (const auto &[k, v] : config)
        w.key(k).value(v);
    w.endObject();

    w.key("results").beginArray();
    for (const BenchRecord &r : records) {
        w.beginObject();
        w.key("name").value(r.name);
        w.key("metrics").beginObject();
        for (const auto &[k, v] : r.metrics)
            w.key(k).value(v);
        w.endObject();
        if (!r.config.empty()) {
            w.key("config").beginObject();
            for (const auto &[k, v] : r.config)
                w.key(k).value(v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    w.key("profile");
    Profiler::instance().writeJson(w);
    MetricsRegistry::instance().writeJson(w);

    w.endObject();
    os << "\n";
}

void
BenchReport::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open bench-json output file '", path, "'");
    write(f);
    f << std::flush;
    if (!f)
        fatal("failed writing bench-json output file '", path, "'");
}

} // namespace pipesim::obs
