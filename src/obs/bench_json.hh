/**
 * @file
 * The machine-readable benchmark-result schema ("pipesim-bench" v1)
 * that turns the perf trajectory into data instead of prose: every
 * throughput bench can emit one JSON document carrying host info, the
 * git revision, its configuration, a list of named results with
 * numeric metrics, plus the host profile and metrics-registry
 * snapshots.  scripts/perf_report.py validates (--check), renders and
 * diffs these documents, and CI's perf-smoke job archives them — the
 * baseline every ROADMAP item-4 optimisation must beat.
 *
 * Document shape:
 *
 *     {
 *       "schema": "pipesim-bench", "schema_version": 1,
 *       "tool": "micro_simspeed",
 *       "generated_unix": 1790000000,
 *       "git_rev": "ad2d25a",
 *       "host": { "hostname":, "hardware_concurrency":,
 *                 "os":, "compiler":, "build": },
 *       "config": { ...free-form strings... },
 *       "results": [
 *         { "name": "BM_SimulatePipe/1",
 *           "metrics": { "sim_cycles_per_s": 3.9e6, ... },
 *           "config": { ...optional per-result strings... } }
 *       ],
 *       "profile": { ...Profiler::writeJson()... },
 *       "metrics": { ... }, "histograms": { ... }
 *     }
 */

#ifndef PIPESIM_OBS_BENCH_JSON_HH
#define PIPESIM_OBS_BENCH_JSON_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pipesim::obs
{

/** One named measurement with its numeric metrics. */
struct BenchRecord
{
    std::string name;
    std::map<std::string, double> metrics;
    std::map<std::string, std::string> config;
};

/** One complete pipesim-bench document. */
struct BenchReport
{
    static constexpr int schemaVersion = 1;

    std::string tool;
    std::map<std::string, std::string> config;
    std::vector<BenchRecord> records;

    /** Append one record and return it for metric filling. */
    BenchRecord &add(const std::string &name);

    /** Serialise the complete document (profiler + metrics snapshots
     *  are taken here). */
    void write(std::ostream &os) const;

    /** write() to @p path, creating/truncating the file.
     *  @throws FatalError when the file cannot be opened. */
    void writeFile(const std::string &path) const;
};

/** Host identification: hostname, hardware_concurrency, os,
 *  compiler, build flavour. */
std::map<std::string, std::string> hostInfo();

/**
 * The source revision: $PIPESIM_GIT_REV when set (CI), else
 * `git rev-parse --short HEAD`, else "unknown".
 */
std::string gitRevision();

} // namespace pipesim::obs

#endif // PIPESIM_OBS_BENCH_JSON_HH
