#include "obs/trace_export.hh"

#include <map>

#include "isa/opcodes.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"

namespace pipesim::obs
{

namespace
{

constexpr std::uint8_t tidPipeline = 1;
constexpr std::uint8_t tidFetch = 2;
constexpr std::uint8_t tidMembus = 3;
constexpr std::uint8_t tidQueues = 4;

} // namespace

ChromeTraceWriter::ChromeTraceWriter(bool record_retires)
    : _recordRetires(record_retires)
{
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    detach();
}

void
ChromeTraceWriter::flushSpan(Cycle end)
{
    if (!_runOpen)
        return;
    _runOpen = false;
    Event e;
    e.kind = Kind::Span;
    e.tid = tidPipeline;
    e.ts = _runStart;
    e.dur = end - _runStart;
    e.name = cycleClassName(_runClass);
    _events.push_back(std::move(e));
}

void
ChromeTraceWriter::attach(ProbeBus &bus)
{
    detach();
    _bus = &bus;

    _cycleId = bus.cycleClass.connect([this](const CycleClassEvent &ev) {
        if (_runOpen && ev.cls == _runClass) {
            _lastCycle = ev.cycle;
            return;
        }
        flushSpan(ev.cycle);
        _runOpen = true;
        _runClass = ev.cls;
        _runStart = ev.cycle;
        _lastCycle = ev.cycle;
    });

    if (_recordRetires) {
        _retireId = bus.retire.connect([this](const RetireEvent &ev) {
            Event e;
            e.kind = Kind::Instant;
            e.tid = tidPipeline;
            e.ts = ev.cycle;
            e.name = nullptr;
            e.label = std::string(isa::mnemonic(ev.inst.inst.op));
            e.arg0 = ev.inst.pc;
            _events.push_back(std::move(e));
        });
    }

    _icacheId = bus.icacheAccess.connect([this](const CacheEvent &ev) {
        Event e;
        e.kind = Kind::Instant;
        e.tid = tidFetch;
        e.ts = ev.cycle;
        e.name = ev.hit ? "icache_hit" : "icache_miss";
        e.arg0 = ev.addr;
        _events.push_back(std::move(e));
    });

    _reqId = bus.fetchRequest.connect([this](const FetchEvent &ev) {
        Event e;
        e.kind = Kind::Instant;
        e.tid = tidFetch;
        e.ts = ev.cycle;
        e.name = ev.demand ? "line_req_demand" : "line_req_prefetch";
        e.arg0 = ev.addr;
        _events.push_back(std::move(e));
    });

    _fillId = bus.fetchFill.connect([this](const FetchEvent &ev) {
        Event e;
        e.kind = Kind::Instant;
        e.tid = tidFetch;
        e.ts = ev.cycle;
        e.name = "line_fill";
        e.arg0 = ev.addr;
        _events.push_back(std::move(e));
    });

    _grantId = bus.busGrant.connect([this](const BusGrantEvent &ev) {
        Event e;
        e.kind = Kind::Instant;
        e.tid = tidMembus;
        e.ts = ev.cycle;
        e.name = reqClassName(ev.cls);
        e.arg0 = ev.addr;
        _events.push_back(std::move(e));
    });

    _contentionId =
        bus.busContention.connect([this](const BusContentionEvent &ev) {
            Event e;
            e.kind = Kind::Instant;
            e.tid = tidMembus;
            e.ts = ev.cycle;
            e.name = "contention";
            e.arg0 = std::uint64_t(ev.cls);
            _events.push_back(std::move(e));
        });

    _queueId = bus.queueSample.connect([this](const QueueSampleEvent &ev) {
        if (ev.ldq == _lastLdq && ev.sdq == _lastSdq)
            return;
        _lastLdq = ev.ldq;
        _lastSdq = ev.sdq;
        Event e;
        e.kind = Kind::Counter;
        e.tid = tidQueues;
        e.ts = ev.cycle;
        e.name = "queue_occupancy";
        e.arg0 = ev.ldq;
        e.arg1 = ev.sdq;
        _events.push_back(std::move(e));
    });
}

void
ChromeTraceWriter::detach()
{
    if (!_bus)
        return;
    _bus->cycleClass.disconnect(_cycleId);
    if (_recordRetires)
        _bus->retire.disconnect(_retireId);
    _bus->icacheAccess.disconnect(_icacheId);
    _bus->fetchRequest.disconnect(_reqId);
    _bus->fetchFill.disconnect(_fillId);
    _bus->busGrant.disconnect(_grantId);
    _bus->busContention.disconnect(_contentionId);
    _bus->queueSample.disconnect(_queueId);
    _bus = nullptr;
}

void
ChromeTraceWriter::write(std::ostream &os) const
{
    // Close the open cycle-class run without mutating state, so
    // write() can be called on a finished (or in-progress) trace.
    std::vector<Event> tail;
    if (_runOpen) {
        Event e;
        e.kind = Kind::Span;
        e.tid = tidPipeline;
        e.ts = _runStart;
        e.dur = _lastCycle - _runStart + 1;
        e.name = cycleClassName(_runClass);
        tail.push_back(std::move(e));
    }

    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").beginArray();

    const auto meta = [&w](std::uint8_t tid, const char *name) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("ts").value(std::uint64_t(0));
        w.key("pid").value(std::uint64_t(0));
        w.key("tid").value(std::uint64_t(tid));
        w.key("args").beginObject().key("name").value(name).endObject();
        w.endObject();
    };
    w.beginObject();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("ts").value(std::uint64_t(0));
    w.key("pid").value(std::uint64_t(0));
    w.key("args").beginObject().key("name").value("pipesim").endObject();
    w.endObject();
    meta(tidPipeline, "pipeline");
    meta(tidFetch, "fetch");
    meta(tidMembus, "membus");
    meta(tidQueues, "queues");

    const auto emit = [&w](const Event &e) {
        w.beginObject();
        w.key("name").value(e.label.empty() ? std::string_view(e.name)
                                            : std::string_view(e.label));
        w.key("ts").value(std::uint64_t(e.ts));
        w.key("pid").value(std::uint64_t(0));
        w.key("tid").value(std::uint64_t(e.tid));
        switch (e.kind) {
          case Kind::Span:
            w.key("ph").value("X");
            w.key("dur").value(std::uint64_t(e.dur));
            break;
          case Kind::Instant:
            w.key("ph").value("i");
            w.key("s").value("t");
            w.key("args").beginObject().key("addr").value(e.arg0)
                .endObject();
            break;
          case Kind::Counter:
            w.key("ph").value("C");
            w.key("args").beginObject().key("ldq").value(e.arg0)
                .key("sdq").value(e.arg1).endObject();
            break;
        }
        w.endObject();
    };
    for (const Event &e : _events)
        emit(e);
    for (const Event &e : tail)
        emit(e);

    // Host lane: when the wall-clock profiler is attached, its coarse
    // spans land in a second process (pid 1, ts in microseconds since
    // profiling activation) beside the simulated-time lanes, so a
    // trace viewer shows where the host spent real time producing the
    // simulated activity above.
    if (Profiler::enabled()) {
        w.beginObject();
        w.key("name").value("process_name");
        w.key("ph").value("M");
        w.key("ts").value(std::uint64_t(0));
        w.key("pid").value(std::uint64_t(1));
        w.key("args").beginObject().key("name").value("host").endObject();
        w.endObject();
        std::map<std::uint64_t, bool> named;
        for (const Profiler::Span &s : Profiler::instance().spans()) {
            if (!named[s.tid]) {
                named[s.tid] = true;
                w.beginObject();
                w.key("name").value("thread_name");
                w.key("ph").value("M");
                w.key("ts").value(std::uint64_t(0));
                w.key("pid").value(std::uint64_t(1));
                w.key("tid").value(s.tid);
                w.key("args").beginObject().key("name")
                    .value("host-thread-" + std::to_string(s.tid))
                    .endObject();
                w.endObject();
            }
            w.beginObject();
            w.key("name").value(s.name);
            w.key("ph").value("X");
            w.key("ts").value(s.startNs / 1000);
            w.key("dur").value(s.durNs / 1000);
            w.key("pid").value(std::uint64_t(1));
            w.key("tid").value(s.tid);
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace pipesim::obs
