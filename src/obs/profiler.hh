/**
 * @file
 * Host-side hierarchical wall-clock profiler.
 *
 * Where the probe bus (obs/probe.hh) watches the *simulated* machine,
 * the profiler watches the *host*: where the process spends its
 * wall-clock while simulating.  It is the measurement substrate for
 * ROADMAP item 4 ("10x the hot loop") — every optimisation claim is
 * made against a phase breakdown recorded here.
 *
 * Design points:
 *
 *  - **Zero cost when detached.**  The profiler is off by default;
 *    a ScopedPhase on a disabled profiler is one relaxed atomic load
 *    and nothing else.  Hot loops (the cycle engine) go further and
 *    check Profiler::enabled() once per run, so the per-tick path is
 *    completely untouched when detached — guarded by the
 *    probe-overhead benchmark (bench/micro_simspeed).
 *
 *  - **Hierarchical, merged by path.**  Each thread keeps its own
 *    phase tree (no cross-thread contention on the hot path); a
 *    snapshot merges all trees by slash-joined path ("sweep/point/
 *    sim.run/fetch").  A phase opened with Scope::Root always starts
 *    at the thread root, so sweep points produce the same paths
 *    whether they run inline (--jobs 1) or on a worker thread.
 *
 *  - **Aggregate counters, optional coarse span events.**  Every
 *    phase accumulates {total ns, count}; phases opened as Coarse
 *    (or Root) additionally record begin/end span events (bounded
 *    per-thread buffer) for the Chrome-trace host lane that
 *    ChromeTraceWriter emits beside the simulated-time lanes.
 *
 * Typical wiring: obs::ProfileOptions parses --profile /
 * --profile-json, activateProfiling() turns the global profiler on,
 * and runGuardedMain() flushes the report on exit (stderr tree and/or
 * JSON document) — so every bench, example and pipesim-trace supports
 * host profiling for free.
 */

#ifndef PIPESIM_OBS_PROFILER_HH
#define PIPESIM_OBS_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pipesim
{
class CliParser;
} // namespace pipesim

namespace pipesim::obs
{

class JsonWriter;

/** How a ScopedPhase nests and whether it records span events. */
enum class Scope : std::uint8_t
{
    Nested, //!< child of the thread's current phase; aggregate only
    Coarse, //!< child of current phase; also records a span event
    Root,   //!< always a child of the thread root; records a span
};

class Profiler
{
  public:
    /** One merged phase in a snapshot. */
    struct Phase
    {
        std::string path; //!< slash-joined ("sweep/point/sim.run")
        unsigned depth = 0;
        std::uint64_t ns = 0;
        std::uint64_t count = 0;
    };

    /** One recorded coarse span (for the Chrome-trace host lane). */
    struct Span
    {
        std::string name;     //!< phase name, or its label override
        std::uint64_t tid;    //!< stable per-profiled-thread ordinal
        std::uint64_t startNs; //!< relative to profiling activation
        std::uint64_t durNs;
    };

    // Implementation types, public so the merging/registry helpers in
    // profiler.cc can name them; not part of the consumer API.
    struct Node;
    struct ThreadState;

    /** The process-wide profiler. */
    static Profiler &instance();

    /** @return true when profiling is on (one relaxed load). */
    static bool
    enabled()
    {
        return _on.load(std::memory_order_relaxed);
    }

    /** Turn profiling on (idempotent); stamps the activation time. */
    void enable();

    /** Turn profiling off.  Recorded data stays until reset(). */
    void disable();

    /** Drop every phase, span and thread registration. */
    void reset();

    /** Wall-clock ns since enable() (0 when never enabled). */
    std::uint64_t wallNs() const;

    /**
     * Merge every thread's tree by path.  Deterministic order:
     * depth-first, children sorted by path.  Safe to call while other
     * threads are still timing (their in-flight phase is simply not
     * yet included).
     */
    std::vector<Phase> snapshot() const;

    /** Recorded coarse spans, in (tid, start) order. */
    std::vector<Span> spans() const;

    /** Span events dropped because a thread's buffer filled up. */
    std::uint64_t droppedSpans() const;

    /**
     * Fraction of wallNs() covered by the calling process's top-level
     * phases, summed across threads and clamped to 1.0.  The
     * acceptance guard for "the breakdown explains the run": a
     * serial (--jobs 1) profiled sweep must report >= 0.95.
     */
    double coverage() const;

    /** Human-readable indented tree with %-of-wall, for stderr. */
    std::string report() const;

    /**
     * Emit the profile as one JSON object on @p w (the "profile"
     * section of the pipesim-bench / pipesim-profile schemas):
     * {"enabled":, "wall_ns":, "coverage":, "dropped_spans":,
     *  "phases":[{"path":,"ns":,"count":}...]}.
     */
    void writeJson(JsonWriter &w) const;

  private:
    friend class ScopedPhase;
    friend class CachedPhase;

    static ThreadState &threadState();
    static Node *resolve(const char *name, Scope scope);

    static std::atomic<bool> _on;
};

/**
 * RAII phase timer.  On a disabled profiler, construction and
 * destruction are no-ops (one relaxed load each).
 *
 *     { obs::ScopedPhase p("sweep.enumerate"); ... }
 *     { obs::ScopedPhase p("point", obs::Scope::Root, "16-16:128"); }
 *
 * @p name must be a string literal (stored by pointer).  The optional
 * label overrides the span-event name (aggregation still merges under
 * @p name, keeping the phase key set independent of sweep contents).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name, Scope scope = Scope::Nested,
                         std::string label = "");
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Profiler::Node *_node = nullptr; //!< null when profiler disabled
    Profiler::Node *_prev = nullptr;
    std::uint64_t _start = 0;
    std::string _label;
    bool _span = false;
};

/**
 * A pre-resolved phase for hot loops: resolve once under the current
 * phase, then add() measured intervals without any lookup.  add() on
 * a default-constructed (or disabled-profiler) handle is a no-op.
 *
 *     obs::CachedPhase fetch("fetch"), mem("mem");
 *     ... fetch.add(t1 - t0); mem.add(t2 - t1); ...
 */
class CachedPhase
{
  public:
    CachedPhase() = default;

    /** Resolve @p name as a child of the calling thread's current
     *  phase (null handle when the profiler is disabled). */
    explicit CachedPhase(const char *name);

    /** Accumulate @p ns (and one count) onto the phase. */
    void add(std::uint64_t ns, std::uint64_t count = 1);

  private:
    Profiler::Node *_node = nullptr;
};

/** steady_clock::now() as a raw ns count (for interval chaining). */
std::uint64_t profileNowNs();

/** Parsed --profile / --profile-json options. */
struct ProfileOptions
{
    bool report = false;    //!< --profile: stderr tree at exit
    std::string jsonPath;   //!< --profile-json: write document here

    bool any() const { return report || !jsonPath.empty(); }

    static void addOptions(CliParser &cli);
    static ProfileOptions fromCli(const CliParser &cli);
};

/**
 * Enable the global profiler when @p opts asks for any output, and
 * remember where the report goes.  Call right after CLI parsing so
 * workload construction is covered too.
 */
void activateProfiling(const ProfileOptions &opts);

/**
 * Write the pending profile outputs (stderr tree for --profile, a
 * pipesim-profile JSON document for --profile-json) and deactivate.
 * No-op when profiling was never activated.  runGuardedMain() calls
 * this on every exit path, so tools need no explicit teardown.
 */
void flushProfileReport();

/**
 * Serialise a complete pipesim-profile document (schema
 * "pipesim-profile" v1: host info, git rev, profile, metrics).
 */
void writeProfileJson(std::ostream &os);

} // namespace pipesim::obs

#endif // PIPESIM_OBS_PROFILER_HH
