/**
 * @file
 * Process-wide host-metrics registry: counters, gauges and log-scale
 * histograms describing the *host's* behaviour (thread-pool worker
 * utilization, queue depths, per-point sweep wall times) as opposed
 * to the per-run simulated statistics in common/stats.hh.
 *
 * Metrics are get-or-created by name and live for the process, so
 * emitters in different layers (the thread pool, the sweep engine,
 * benches) can update the same metric without plumbing.  Every value
 * is atomic — emitting from worker threads is safe and cheap.  The
 * registry exports into --stats-json ("host" section), --profile-json
 * and the pipesim-bench result documents.
 *
 * The key-set contract: code paths must *touch* (get-or-create) the
 * metrics they may emit before diverging on worker count, so the
 * exported key set is identical for --jobs 1 and --jobs 8 even when
 * the values differ (tests/test_experiment.cc relies on this).  The
 * sweep's robustness metrics honour it too: store.hits/store.misses/
 * store.recovered (the crash-safe result store, src/store/) and
 * point.timeouts (--point-deadline-ms cancellations) are pre-created
 * for every sweep, store-backed or not.
 */

#ifndef PIPESIM_OBS_METRICS_HH
#define PIPESIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pipesim::obs
{

class JsonWriter;

/** A monotonically increasing process-wide counter. */
class MetricCounter
{
  public:
    void add(std::uint64_t n = 1)
    {
        _v.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return _v.load(std::memory_order_relaxed);
    }
    void reset() { _v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _v{0};
};

/** A last-value-wins gauge (also tracks the maximum ever set). */
class MetricGauge
{
  public:
    void
    set(std::int64_t v)
    {
        _v.store(v, std::memory_order_relaxed);
        std::int64_t seen = _max.load(std::memory_order_relaxed);
        while (v > seen &&
               !_max.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed)) {
        }
    }
    std::int64_t value() const
    {
        return _v.load(std::memory_order_relaxed);
    }
    std::int64_t max() const
    {
        return _max.load(std::memory_order_relaxed);
    }
    void
    reset()
    {
        _v.store(0, std::memory_order_relaxed);
        _max.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> _v{0};
    std::atomic<std::int64_t> _max{0};
};

/**
 * A log2-bucketed histogram for latency-like values spanning many
 * orders of magnitude.  Bucket i holds samples in [2^i, 2^(i+1));
 * bucket 0 additionally holds zero.  Boundaries are fixed by
 * construction — independent of the samples — so exported summaries
 * are comparable across runs (tests assert the boundaries).
 */
class LogHistogram
{
  public:
    static constexpr unsigned numBuckets = 64;

    /** Lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    static std::uint64_t
    bucketLowerBound(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t(1) << i;
    }

    /** Index of the bucket @p value falls into. */
    static unsigned bucketIndex(std::uint64_t value);

    void sample(std::uint64_t value);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }
    std::uint64_t min() const;
    std::uint64_t max() const
    {
        return _max.load(std::memory_order_relaxed);
    }
    double mean() const;

    /** Smallest value v such that >= @p q of samples are <= v's
     *  bucket upper bound (bucket-resolution quantile). */
    std::uint64_t quantile(double q) const;

    std::uint64_t bucketCount(unsigned i) const
    {
        return _buckets[i].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, numBuckets> _buckets{};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::uint64_t> _sum{0};
    std::atomic<std::uint64_t> _min{~std::uint64_t(0)};
    std::atomic<std::uint64_t> _max{0};
};

/**
 * The process-wide registry.  counter()/gauge()/histogram() return a
 * reference valid for the process lifetime; creating and updating are
 * thread-safe.  A name is bound to one kind on first use (reusing it
 * as another kind is a programming error and panics).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    LogHistogram &histogram(const std::string &name);

    /** @return true when any metric has been registered. */
    bool empty() const;

    /** All registered names, sorted, with a kind tag. */
    struct Entry
    {
        std::string name;
        enum class Kind { Counter, Gauge, Histogram } kind;
    };
    std::vector<Entry> entries() const;

    /**
     * Emit the registry on @p w as two objects:
     *   "metrics": {"pool.tasks": 42, "pool.queue_depth_peak": 3, ...}
     *   "histograms": {"sweep.point_ns": {"count":,"min":,"max":,
     *                  "mean":,"p50":,"p90":,"p99":}, ...}
     * Keys are sorted; gauges export value and "<name>_peak".
     */
    void writeJson(JsonWriter &w) const;

    /** Zero every metric (keys survive; tests use this). */
    void resetAll();

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<MetricCounter>> _counters;
    std::map<std::string, std::unique_ptr<MetricGauge>> _gauges;
    std::map<std::string, std::unique_ptr<LogHistogram>> _histograms;
};

/**
 * Refresh the process-liveness gauges a long-running server is
 * watched by:
 *
 *   process.uptime_seconds  wall seconds since the process started
 *                           (steady clock, anchored at static init)
 *   process.max_rss_bytes   peak resident set size (getrusage)
 *
 * Cheap enough to call right before every export; the stats-json
 * "host" section and the pipesim-serve daemon's `stats` event both
 * do, so the keys are part of every host export's key set.
 */
void updateProcessGauges();

} // namespace pipesim::obs

#endif // PIPESIM_OBS_METRICS_HH
