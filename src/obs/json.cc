#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace pipesim::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (_stack.empty())
        return;
    if (_nonEmpty.back())
        _os << ',';
    _nonEmpty.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    _os << '{';
    _stack.push_back(true);
    _nonEmpty.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PIPESIM_ASSERT(!_stack.empty() && _stack.back(),
                   "endObject outside an object");
    _os << '}';
    _stack.pop_back();
    _nonEmpty.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    _os << '[';
    _stack.push_back(false);
    _nonEmpty.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PIPESIM_ASSERT(!_stack.empty() && !_stack.back(),
                   "endArray outside an array");
    _os << ']';
    _stack.pop_back();
    _nonEmpty.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    PIPESIM_ASSERT(!_stack.empty() && _stack.back(),
                   "key() outside an object");
    separate();
    _os << '"' << jsonEscape(k) << "\":";
    _afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    _os << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    _os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    _os << (v ? "true" : "false");
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : _text(text) {}

    std::optional<JsonValue>
    document()
    {
        auto v = value();
        if (!v)
            return std::nullopt;
        skipWs();
        if (_pos != _text.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    std::optional<std::string>
    string()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _text.size())
                    return std::nullopt;
                const char esc = _text[_pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        return std::nullopt;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = _text[_pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return std::nullopt;
                    }
                    // Validation-oriented: keep BMP escapes as a
                    // replacement byte sequence (UTF-8, unpaired
                    // surrogates not handled).
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xc0 | (code >> 6));
                        out += char(0x80 | (code & 0x3f));
                    } else {
                        out += char(0xe0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3f));
                        out += char(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return std::nullopt;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return std::nullopt; // raw control character
            } else {
                out += c;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    number()
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        auto digits = [this]() {
            std::size_t n = 0;
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
                ++n;
            }
            return n;
        };
        const std::size_t int_start = _pos;
        if (digits() == 0)
            return std::nullopt;
        // RFC 8259: the integer part is "0" or starts with 1-9.
        if (_text[int_start] == '0' && _pos - int_start > 1)
            return std::nullopt;
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            if (digits() == 0)
                return std::nullopt;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            if (digits() == 0)
                return std::nullopt;
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(
            std::string(_text.substr(start, _pos - start)).c_str(),
            nullptr);
        return v;
    }

    std::optional<JsonValue>
    value()
    {
        skipWs();
        if (_pos >= _text.size())
            return std::nullopt;
        const char c = _text[_pos];
        if (c == '{') {
            ++_pos;
            JsonValue v;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return v;
            while (true) {
                skipWs();
                auto k = string();
                if (!k || !consume(':'))
                    return std::nullopt;
                auto member = value();
                if (!member)
                    return std::nullopt;
                v.object.emplace(std::move(*k), std::move(*member));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++_pos;
            JsonValue v;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return v;
            while (true) {
                auto element = value();
                if (!element)
                    return std::nullopt;
                v.array.push_back(std::move(*element));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = string();
            if (!s)
                return std::nullopt;
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.string = std::move(*s);
            return v;
        }
        if (c == 't') {
            if (!literal("true"))
                return std::nullopt;
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (c == 'f') {
            if (!literal("false"))
                return std::nullopt;
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
        }
        if (c == 'n') {
            if (!literal("null"))
                return std::nullopt;
            return JsonValue{};
        }
        return number();
    }

    std::string_view _text;
    std::size_t _pos = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text)
{
    return Parser(text).document();
}

} // namespace pipesim::obs
