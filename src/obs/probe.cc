#include "obs/probe.hh"

namespace pipesim::obs
{

const char *
cycleClassName(CycleClass cls)
{
    switch (cls) {
      case CycleClass::Issue: return "issue";
      case CycleClass::FetchStarve: return "fetch_starve";
      case CycleClass::LoadDataWait: return "load_data_wait";
      case CycleClass::QueueFull: return "queue_full";
      case CycleClass::RegBusy: return "reg_busy";
      case CycleClass::BusContention: return "bus_contention";
      case CycleClass::Drain: return "drain";
    }
    return "unknown";
}

} // namespace pipesim::obs
