/**
 * @file
 * Chrome trace-event exporter: a ProbeBus listener that records the
 * run as Trace Event Format JSON, loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Track layout (one trace "thread" per unit):
 *   tid 1  pipeline  — one span per run of identically-classified
 *                      cycles (issue / fetch_starve / ...), plus one
 *                      instant per retired instruction (mnemonic)
 *   tid 2  fetch     — icache hit/miss instants, line request/fill
 *   tid 3  membus    — output-bus grants and contention instants
 *   tid 4  queues    — LDQ/SDQ occupancy counter track
 *
 * Timestamps are simulated cycles, exported as microseconds (1 cycle
 * = 1 us) so viewers render a sensible time axis.
 */

#ifndef PIPESIM_OBS_TRACE_EXPORT_HH
#define PIPESIM_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/probe.hh"

namespace pipesim::obs
{

class ChromeTraceWriter
{
  public:
    /** @param record_retires Emit one instant per retired
     *         instruction (disable for very long runs). */
    explicit ChromeTraceWriter(bool record_retires = true);
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Connect to @p bus; the bus must outlive this object. */
    void attach(ProbeBus &bus);

    /** Disconnect from the bus (idempotent). */
    void detach();

    /** Number of events recorded so far (excluding metadata). */
    std::size_t eventCount() const { return _events.size(); }

    /** Serialise the complete trace document. */
    void write(std::ostream &os) const;

  private:
    enum class Kind : std::uint8_t
    {
        Span,    //!< "X": name + ts + dur
        Instant, //!< "i": name + ts
        Counter, //!< "C": queue occupancies at ts
    };

    struct Event
    {
        Kind kind = Kind::Instant;
        std::uint8_t tid = 0;
        Cycle ts = 0;
        Cycle dur = 0;           //!< spans only
        const char *name = nullptr; //!< static (class/track names)
        std::string label;       //!< overrides name when non-empty
        std::uint64_t arg0 = 0;  //!< pc / addr / ldq occupancy
        std::uint64_t arg1 = 0;  //!< sdq occupancy (counters)
    };

    void flushSpan(Cycle end);

    bool _recordRetires;
    std::vector<Event> _events;

    // Current pipeline cycle-class run, coalesced into one span.
    bool _runOpen = false;
    CycleClass _runClass = CycleClass::Issue;
    Cycle _runStart = 0;
    Cycle _lastCycle = 0;

    // Last queue occupancies, to emit counter samples only on change.
    std::uint64_t _lastLdq = ~0ull;
    std::uint64_t _lastSdq = ~0ull;

    ProbeBus *_bus = nullptr;
    ProbePoint<CycleClassEvent>::ListenerId _cycleId = 0;
    ProbePoint<RetireEvent>::ListenerId _retireId = 0;
    ProbePoint<CacheEvent>::ListenerId _icacheId = 0;
    ProbePoint<FetchEvent>::ListenerId _reqId = 0;
    ProbePoint<FetchEvent>::ListenerId _fillId = 0;
    ProbePoint<BusGrantEvent>::ListenerId _grantId = 0;
    ProbePoint<BusContentionEvent>::ListenerId _contentionId = 0;
    ProbePoint<QueueSampleEvent>::ListenerId _queueId = 0;
};

} // namespace pipesim::obs

#endif // PIPESIM_OBS_TRACE_EXPORT_HH
