/**
 * @file
 * Machine-readable statistics export: serialises a finished run
 * (SimResult + the simulator's StatGroup) as one JSON document, so
 * figures and regression checks can consume results without scraping
 * text tables.  Every registered counter is emitted — a misspelled
 * counter name in downstream tooling shows up as a missing key
 * instead of a silent zero.
 */

#ifndef PIPESIM_OBS_STATS_EXPORT_HH
#define PIPESIM_OBS_STATS_EXPORT_HH

#include <ostream>
#include <string>

#include "common/stats.hh"
#include "sim/simulator.hh"

namespace pipesim::obs
{

/**
 * Write @p result as JSON:
 *
 *     {
 *       "label": "...",
 *       "totalCycles": N, "instructions": N, "cpi": x,
 *       "meta": { "engine": "trace-exact", "trace_sha256": ... },
 *       "counters": { "cpu.retired": N, ... },
 *       "formulas": { "fetch.icache.miss_ratio": x, ... }
 *     }
 *
 * The "meta" section appears when the run carries provenance
 * attributes (SimResult::meta) — e.g. a trace replay records the
 * engine, the trace's sha256, and the traced program's sha256.
 *
 * @param stats Optional; adds the "formulas" section when given (the
 *        counters all live in @p result already).
 * @param label Free-form run identification (tool/config name).
 */
void writeStatsJson(std::ostream &os, const SimResult &result,
                    const StatGroup *stats = nullptr,
                    const std::string &label = "");

} // namespace pipesim::obs

#endif // PIPESIM_OBS_STATS_EXPORT_HH
