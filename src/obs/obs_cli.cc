#include "obs/obs_cli.hh"

#include <fstream>

#include "common/log.hh"
#include "obs/stats_export.hh"

namespace pipesim::obs
{

void
ObsOptions::addOptions(CliParser &cli)
{
    cli.addFlag("cpi-stack", "print the CPI-stack cycle breakdown");
    cli.addOption("trace-json", "",
                  "write a Chrome trace-event JSON file (Perfetto)");
    cli.addOption("stats-json", "",
                  "write run result + all counters as JSON");
}

ObsOptions
ObsOptions::fromCli(const CliParser &cli)
{
    ObsOptions o;
    o.cpiStack = cli.getFlag("cpi-stack");
    o.traceJson = cli.get("trace-json");
    o.statsJson = cli.get("stats-json");
    return o;
}

ObsSession::ObsSession(const ObsOptions &opts, Simulator &sim)
    : _opts(opts), _sim(sim)
{
    if (!_opts.traceJson.empty()) {
        _trace.emplace();
        _trace->attach(sim.probes());
    }
}

void
ObsSession::finish(const SimResult &result, const std::string &label,
                   std::ostream &out)
{
    if (_trace) {
        std::ofstream f(_opts.traceJson);
        if (!f)
            fatal("cannot open trace output file '", _opts.traceJson, "'");
        _trace->write(f);
        out << "wrote " << _trace->eventCount() << " trace events to "
            << _opts.traceJson << "\n";
        _trace->detach();
    }
    if (!_opts.statsJson.empty()) {
        std::ofstream f(_opts.statsJson);
        if (!f)
            fatal("cannot open stats output file '", _opts.statsJson, "'");
        writeStatsJson(f, result, &_sim.stats(), label);
        out << "wrote stats JSON to " << _opts.statsJson << "\n";
    }
    if (_opts.cpiStack) {
        if (!label.empty())
            out << "[" << label << "] ";
        if (const CpiStack *stack = _sim.cpiStack())
            out << "\n" << stack->table();
        else
            out << "CPI stack disabled in this configuration\n";
    }
}

} // namespace pipesim::obs
