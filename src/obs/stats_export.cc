#include "obs/stats_export.hh"

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

namespace pipesim::obs
{

void
writeStatsJson(std::ostream &os, const SimResult &result,
               const StatGroup *stats, const std::string &label)
{
    JsonWriter w(os);
    w.beginObject();
    if (!label.empty())
        w.key("label").value(label);
    w.key("totalCycles").value(std::uint64_t(result.totalCycles));
    w.key("instructions").value(result.instructions);
    w.key("cpi").value(result.cpi());

    if (!result.meta.empty()) {
        w.key("meta").beginObject();
        for (const auto &[name, value] : result.meta)
            w.key(name).value(value);
        w.endObject();
    }

    w.key("counters").beginObject();
    for (const auto &[name, value] : result.counters)
        w.key(name).value(value);
    w.endObject();

    if (stats) {
        w.key("formulas").beginObject();
        for (const auto &name : stats->formulaNames())
            w.key(name).value(stats->formulaValue(name));
        w.endObject();
    }

    // Host-side observability rides along only when the profiler is
    // attached (--profile / --profile-json): detached runs emit
    // byte-identical stats documents to the pre-profiler ones.
    if (Profiler::enabled()) {
        updateProcessGauges();
        w.key("host").beginObject();
        w.key("profile");
        Profiler::instance().writeJson(w);
        MetricsRegistry::instance().writeJson(w);
        w.endObject();
    }

    w.endObject();
    os << "\n";
}

} // namespace pipesim::obs
