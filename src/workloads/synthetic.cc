#include "workloads/synthetic.hh"

#include <algorithm>

#include "codegen/codegen.hh" // Layout constants
#include "common/log.hh"
#include "isa/build.hh"
#include "isa/fields.hh"

namespace pipesim::workloads
{

using namespace isa;
using namespace isa::build;

namespace
{

// Register conventions (see header).
constexpr unsigned regState = 1;
constexpr unsigned regCounter = 2;
constexpr unsigned regAcc = 3;
constexpr unsigned regTmp = 4;
constexpr unsigned regResult = 5;

constexpr unsigned outerBr = 0;
constexpr unsigned skipBr = 1;

/** One xorshift32 step; mirrored exactly by the host model. */
constexpr unsigned shiftA = 13;
constexpr unsigned shiftB = 17;
constexpr unsigned shiftC = 5;

/** The i-th skippable filler operation, applied to the accumulator. */
std::uint32_t
applyFiller(std::uint32_t acc, unsigned i)
{
    switch (i % 4) {
      case 0: return acc ^ 0x5au;
      case 1: return acc + 7u;
      case 2: return acc - 3u;
      default: return acc | 1u;
    }
}

Instruction
fillerInst(unsigned i)
{
    switch (i % 4) {
      case 0: return rri(Opcode::Xori, regAcc, regAcc, 0x5a);
      case 1: return rri(Opcode::Addi, regAcc, regAcc, 7);
      case 2: return rri(Opcode::Subi, regAcc, regAcc, 3);
      default: return rri(Opcode::Ori, regAcc, regAcc, 1);
    }
}

std::uint32_t
xorshift(std::uint32_t x)
{
    x ^= x << shiftA;
    x ^= x >> shiftB;
    x ^= x << shiftC;
    return x;
}

void
validate(const BranchySpec &spec)
{
    if (spec.blocks == 0 || spec.iterations == 0)
        fatal("branchy spec needs at least one block and iteration");
    if (spec.delaySlots > 7)
        fatal("PBR delay-slot count is 3 bits (0..7)");
    if (spec.maskBits > 15)
        fatal("maskBits must fit the 16-bit immediate");
    if (spec.seed == 0)
        fatal("xorshift seed must be non-zero");
}

} // namespace

BranchyProgram
buildBranchyProgram(const BranchySpec &spec)
{
    validate(spec);

    BranchyProgram out;
    Program &p = out.program;
    out.accSlot = codegen::Layout::scalarBase;
    out.stateSlot = codegen::Layout::scalarBase + wordBytes;

    const std::uint32_t mask = (1u << spec.maskBits) - 1;

    // Preamble.
    Instruction lui_seed;
    lui_seed.op = Opcode::Lui;
    lui_seed.rd = regState;
    lui_seed.imm = std::int32_t(spec.seed >> 16);
    p.append(lui_seed);
    p.append(rri(Opcode::Ori, regState, regState,
                 std::int32_t(spec.seed & 0xffff)));
    p.append(li(regCounter, std::int32_t(spec.iterations)));
    p.append(li(regAcc, 0));
    p.append(li(regResult, std::int32_t(out.accSlot)));
    const Addr lbr_at = p.nextCodeAddr();
    const unsigned lbr_size = unsigned(encode(
        build::lbr(outerBr, 0), p.mode()).size()) * parcelBytes;
    p.append(build::lbr(outerBr, lbr_at + lbr_size));
    p.defineSymbol("loop_head", p.nextCodeAddr());

    for (unsigned b = 0; b < spec.blocks; ++b) {
        // xorshift32 step.
        p.append(rri(Opcode::Slli, regTmp, regState, int(shiftA)));
        p.append(rrr(Opcode::Xor, regState, regState, regTmp));
        p.append(rri(Opcode::Srli, regTmp, regState, int(shiftB)));
        p.append(rrr(Opcode::Xor, regState, regState, regTmp));
        p.append(rri(Opcode::Slli, regTmp, regState, int(shiftC)));
        p.append(rrr(Opcode::Xor, regState, regState, regTmp));
        p.append(rrr(Opcode::Add, regAcc, regAcc, regState));

        // Conditional forward branch over the filler ops.
        const Addr lbr_addr = p.append(build::lbr(skipBr, 0));
        p.append(rri(Opcode::Andi, regTmp, regState,
                     std::int32_t(mask)));
        p.append(build::pbr(skipBr, spec.delaySlots, Cond::Eqz,
                            regTmp));
        // Delay slots: executed on both paths.
        for (unsigned d = 0; d < spec.delaySlots; ++d)
            p.append(rri(Opcode::Addi, regAcc, regAcc, 1));
        // Filler: executed only when the branch falls through.
        for (unsigned f = 0; f < spec.fillerOps; ++f)
            p.append(fillerInst(f));
        // Patch the skip target (the immediate parcel of the lbr).
        p.patchParcel(lbr_addr + parcelBytes,
                      Parcel(p.nextCodeAddr() & 0xffff));
    }

    // Outer loop close.
    p.append(rri(Opcode::Subi, regCounter, regCounter, 1));
    p.append(build::pbr(outerBr, 0, Cond::Nez, regCounter));

    // Epilogue: store the checksum and final PRNG state.
    p.append(st(regResult, 0));
    p.append(mov(isa::queueReg, regAcc));
    p.append(st(regResult, wordBytes));
    p.append(mov(isa::queueReg, regState));
    p.append(build::halt());

    p.addDataWords(out.accSlot, {0, 0});
    return out;
}

namespace
{

/** One synthetic-stream loop trip applied to the accumulator: the 12
 *  body ops plus the two PBR delay-slot ops, in program order. */
std::uint32_t
streamStep(std::uint32_t acc)
{
    std::uint32_t tmp = acc << 7;
    acc ^= tmp;
    acc += 13u;
    tmp = acc >> 3;
    acc ^= tmp;
    acc -= 5u;
    acc |= 1u;
    tmp = acc << 2;
    acc += tmp;
    acc ^= 0x2du;
    tmp = acc & 0xffu;
    acc += tmp;
    // Delay slots (run on both branch paths, so on every trip).
    acc += 1u;
    acc ^= 3u;
    return acc;
}

/** Committed instructions per synthetic-stream loop trip: 12 body
 *  ops, the counter decrement, the PBR and its 2 delay slots. */
constexpr unsigned streamPerIteration = 16;
/** Preamble (5) + epilogue (3) committed instructions. */
constexpr unsigned streamFixedInsts = 8;

} // namespace

SyntheticStream
buildSyntheticStream(std::uint64_t targetInstructions)
{
    if (targetInstructions == 0)
        fatal("synthetic stream needs a nonzero instruction target");

    SyntheticStream out;
    out.perIteration = streamPerIteration;
    out.iterations =
        targetInstructions <= streamFixedInsts
            ? 1
            : (targetInstructions - streamFixedInsts +
               streamPerIteration - 1) /
                  streamPerIteration;
    // The trip counter is one 32-bit register.
    out.iterations = std::min<std::uint64_t>(out.iterations, 0xffffffffu);
    out.instructions =
        streamFixedInsts + out.iterations * streamPerIteration;
    out.accSlot = codegen::Layout::scalarBase;

    Program &p = out.program;
    const auto iters = std::uint32_t(out.iterations);

    // Preamble: counter, accumulator, result pointer, loop branch.
    Instruction lui_iter;
    lui_iter.op = Opcode::Lui;
    lui_iter.rd = regCounter;
    lui_iter.imm = std::int32_t(iters >> 16);
    p.append(lui_iter);
    p.append(rri(Opcode::Ori, regCounter, regCounter,
                 std::int32_t(iters & 0xffff)));
    p.append(li(regAcc, 0));
    p.append(li(regResult, std::int32_t(out.accSlot)));
    const Addr lbr_at = p.nextCodeAddr();
    const unsigned lbr_size = unsigned(encode(
        build::lbr(outerBr, 0), p.mode()).size()) * parcelBytes;
    p.append(build::lbr(outerBr, lbr_at + lbr_size));
    p.defineSymbol("loop_head", p.nextCodeAddr());

    // 12-op body; keep in lockstep with streamStep().
    p.append(rri(Opcode::Slli, regTmp, regAcc, 7));
    p.append(rrr(Opcode::Xor, regAcc, regAcc, regTmp));
    p.append(rri(Opcode::Addi, regAcc, regAcc, 13));
    p.append(rri(Opcode::Srli, regTmp, regAcc, 3));
    p.append(rrr(Opcode::Xor, regAcc, regAcc, regTmp));
    p.append(rri(Opcode::Subi, regAcc, regAcc, 5));
    p.append(rri(Opcode::Ori, regAcc, regAcc, 1));
    p.append(rri(Opcode::Slli, regTmp, regAcc, 2));
    p.append(rrr(Opcode::Add, regAcc, regAcc, regTmp));
    p.append(rri(Opcode::Xori, regAcc, regAcc, 0x2d));
    p.append(rri(Opcode::Andi, regTmp, regAcc, 0xff));
    p.append(rrr(Opcode::Add, regAcc, regAcc, regTmp));

    // Loop close with two delay slots.
    p.append(rri(Opcode::Subi, regCounter, regCounter, 1));
    p.append(build::pbr(outerBr, 2, Cond::Nez, regCounter));
    p.append(rri(Opcode::Addi, regAcc, regAcc, 1));
    p.append(rri(Opcode::Xori, regAcc, regAcc, 3));

    // Epilogue: store the checksum.
    p.append(st(regResult, 0));
    p.append(mov(isa::queueReg, regAcc));
    p.append(build::halt());

    p.addDataWords(out.accSlot, {0});
    return out;
}

std::uint32_t
syntheticStreamReference(std::uint64_t iterations)
{
    std::uint32_t acc = 0;
    for (std::uint64_t i = 0; i < iterations; ++i)
        acc = streamStep(acc);
    return acc;
}

BranchyReference
runBranchyReference(const BranchySpec &spec)
{
    validate(spec);
    const std::uint32_t mask = (1u << spec.maskBits) - 1;

    BranchyReference ref;
    ref.state = spec.seed;
    for (unsigned iter = 0; iter < spec.iterations; ++iter) {
        for (unsigned b = 0; b < spec.blocks; ++b) {
            ref.state = xorshift(ref.state);
            ref.acc += ref.state;
            const bool taken = (ref.state & mask) == 0;
            ref.acc += spec.delaySlots; // slots run on both paths
            if (taken) {
                ++ref.takenBranches;
            } else {
                ++ref.notTakenBranches;
                for (unsigned f = 0; f < spec.fillerOps; ++f)
                    ref.acc = applyFiller(ref.acc, f);
            }
        }
    }
    return ref;
}

} // namespace pipesim::workloads
