/**
 * @file
 * Builder for the paper's benchmark program: the first 14 Livermore
 * loops compiled as one program, each kernel running to completion
 * and falling through to the next (which cold-starts the cache every
 * few thousand cycles, as the paper notes), ending in HALT.
 */

#ifndef PIPESIM_WORKLOADS_BENCHMARK_PROGRAM_HH
#define PIPESIM_WORKLOADS_BENCHMARK_PROGRAM_HH

#include <vector>

#include "assembler/program.hh"
#include "codegen/codegen.hh"
#include "codegen/ir.hh"

namespace pipesim::workloads
{

/** A built benchmark: the program plus per-kernel metadata. */
struct Benchmark
{
    Program program;
    std::vector<codegen::Kernel> kernels;
    std::vector<codegen::KernelCodeInfo> codeInfo;
};

/**
 * Build the full 14-loop benchmark.
 *
 * @param scale Trip-count multiplier; 1.0 is paper scale (~150k
 *              dynamic instructions).
 * @param mode  Instruction format (the paper's presented results use
 *              Fixed32).
 */
Benchmark buildLivermoreBenchmark(
    double scale = 1.0, isa::FormatMode mode = isa::FormatMode::Fixed32);

/** Build the 14-loop benchmark with full code generator control. */
Benchmark buildLivermoreBenchmark(double scale,
                                  const codegen::CodeGenOptions &options);

/** Build a benchmark from an arbitrary kernel list. */
Benchmark buildBenchmark(
    const std::vector<codegen::Kernel> &kernels,
    isa::FormatMode mode = isa::FormatMode::Fixed32);

/** Build a benchmark with full code generator control. */
Benchmark buildBenchmark(const std::vector<codegen::Kernel> &kernels,
                         const codegen::CodeGenOptions &options);

} // namespace pipesim::workloads

#endif // PIPESIM_WORKLOADS_BENCHMARK_PROGRAM_HH
