/**
 * @file
 * The first 14 Lawrence Livermore Loops, expressed in the codegen IR.
 *
 * These are faithful-shape renditions of the kernels of [McMa84]: the
 * same array access patterns, operation mixes and (for the
 * recurrences) loop-carried dependences, adapted where necessary to
 * the IR's strided 1-D model:
 *
 *  - kernel 2 (ICCG) keeps one stride-2 halving pass instead of the
 *    log-depth outer loop;
 *  - kernel 4 unrolls a 3-wide band instead of the inner band loop;
 *  - kernel 6 keeps a first-order linear recurrence with a
 *    coefficient array instead of the triangular 2-D access;
 *  - kernel 8 flattens the 3-plane ADI update to 1-D arrays (same
 *    statement count and term structure);
 *  - kernels 13/14 replace the gather/scatter particle indexing with
 *    strided passes of the same operation mix.
 *
 * Indices are shifted so that all element offsets are non-negative
 * (k runs from 0), which changes nothing dynamically.  Trip counts
 * are scaled so the whole 14-kernel program executes on the order of
 * the paper's 150,575 dynamic instructions at scale 1.0.
 */

#ifndef PIPESIM_WORKLOADS_LIVERMORE_HH
#define PIPESIM_WORKLOADS_LIVERMORE_HH

#include <vector>

#include "codegen/ir.hh"

namespace pipesim::workloads
{

/** Number of kernels in the suite. */
inline constexpr int numLivermoreKernels = 14;

/**
 * Build kernel @p id (1-based, 1..14).
 *
 * @param scale Trip-count multiplier (1.0 reproduces the paper-scale
 *              run; tests use smaller values).
 */
codegen::Kernel livermoreKernel(int id, double scale = 1.0);

/** All 14 kernels in order. */
std::vector<codegen::Kernel> livermoreKernels(double scale = 1.0);

} // namespace pipesim::workloads

#endif // PIPESIM_WORKLOADS_LIVERMORE_HH
