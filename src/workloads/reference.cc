#include "workloads/reference.hh"

#include <bit>

#include "common/log.hh"
#include "common/strutil.hh"

namespace pipesim::workloads
{

using namespace codegen;

namespace
{

struct InterpState
{
    std::map<std::string, std::vector<float>> arrays;
    std::map<std::string, float> scalars;
    unsigned k = 0;
};

float
evalExpr(const InterpState &st, const FExpr &e)
{
    switch (e.kind) {
      case FExpr::Kind::Array: {
        const auto &arr = st.arrays.at(e.ref.array);
        const long idx = long(e.ref.stride) * st.k + e.ref.offset;
        PIPESIM_ASSERT(idx >= 0 && std::size_t(idx) < arr.size(),
                       "reference: '", e.ref.array, "' index ", idx,
                       " out of bounds (", arr.size(), ")");
        return arr[std::size_t(idx)];
      }
      case FExpr::Kind::Scalar:
        return st.scalars.at(e.scalar);
      case FExpr::Kind::Const:
        return e.value;
      case FExpr::Kind::Bin: {
        const float a = evalExpr(st, *e.lhs);
        const float b = evalExpr(st, *e.rhs);
        switch (e.op) {
          case FpuOp::Add: return a + b;
          case FpuOp::Sub: return a - b;
          case FpuOp::Mul: return a * b;
          case FpuOp::Div: return a / b;
          default: panic("bad FPU op");
        }
      }
    }
    panic("bad expression kind");
}

} // namespace

ReferenceResult
runReference(const Kernel &kernel)
{
    InterpState st;
    for (const ArrayDecl &decl : kernel.arrays) {
        auto &arr = st.arrays[decl.name];
        arr.resize(decl.elems);
        for (unsigned i = 0; i < decl.elems; ++i)
            arr[i] = ArrayDecl::initValue(decl.name, i);
    }
    for (const ScalarDecl &decl : kernel.scalars)
        st.scalars[decl.name] = decl.init;

    for (unsigned rep = 0; rep < kernel.outerReps; ++rep) {
        for (st.k = 0; st.k < kernel.tripCount; ++st.k) {
            for (const Statement &stmt : kernel.body) {
                const float v = evalExpr(st, *stmt.value);
                if (stmt.targetKind == Statement::TargetKind::Array) {
                    auto &arr = st.arrays.at(stmt.arrayTarget.array);
                    const long idx =
                        long(stmt.arrayTarget.stride) * st.k +
                        stmt.arrayTarget.offset;
                    PIPESIM_ASSERT(idx >= 0 &&
                                       std::size_t(idx) < arr.size(),
                                   "reference: target index out of "
                                   "bounds");
                    arr[std::size_t(idx)] = v;
                } else {
                    st.scalars.at(stmt.scalarTarget) = v;
                }
            }
        }
    }

    ReferenceResult result;
    result.arrays = std::move(st.arrays);
    result.scalars = std::move(st.scalars);
    return result;
}

bool
verifyAgainstReference(const DataMemory &mem, const Kernel &kernel,
                       const KernelCodeInfo &info, std::string *diag)
{
    const ReferenceResult ref = runReference(kernel);

    for (const ArrayDecl &decl : kernel.arrays) {
        const Addr base = info.arrayAddrs.at(decl.name);
        const auto &expect = ref.arrays.at(decl.name);
        for (unsigned i = 0; i < decl.elems; ++i) {
            const Word got = mem.readWord(base + i * wordBytes);
            const Word want = std::bit_cast<Word>(expect[i]);
            if (got != want) {
                if (diag) {
                    *diag = format(
                        "kernel %d (%s): %s[%u] = 0x%08x (%g), "
                        "expected 0x%08x (%g)",
                        kernel.id, kernel.name.c_str(),
                        decl.name.c_str(), i, got,
                        double(std::bit_cast<float>(got)), want,
                        double(expect[i]));
                }
                return false;
            }
        }
    }

    for (const ScalarDecl &decl : kernel.scalars) {
        const Addr slot = info.scalarSlots.at(decl.name);
        const Word got = mem.readWord(slot);
        const Word want = std::bit_cast<Word>(ref.scalars.at(decl.name));
        if (got != want) {
            if (diag) {
                *diag = format(
                    "kernel %d (%s): scalar %s = 0x%08x (%g), expected "
                    "0x%08x (%g)",
                    kernel.id, kernel.name.c_str(), decl.name.c_str(),
                    got, double(std::bit_cast<float>(got)), want,
                    double(ref.scalars.at(decl.name)));
            }
            return false;
        }
    }
    return true;
}

} // namespace pipesim::workloads
