#include "workloads/livermore.hh"

#include <algorithm>

#include "common/log.hh"

namespace pipesim::workloads
{

using namespace codegen;

namespace
{

/** Scale a base trip count, keeping at least two iterations. */
unsigned
trips(unsigned base, double scale)
{
    const auto t = unsigned(double(base) * scale);
    return std::max(2u, t);
}

Kernel
kernel1(double s)
{
    // Hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
    Kernel k;
    k.id = 1;
    k.name = "hydro";
    const unsigned n = trips(400, s);
    k.tripCount = n;
    k.arrays = {{"x", n}, {"y", n}, {"z", n + 11}};
    k.scalars = {{"q", 1.0031f, false},
                 {"r", 0.9813f, true},
                 {"t", 0.0422f, true}};
    k.body = {assign(
        {"x", 1, 0},
        add(scalar("q"),
            mul(ref("y"), add(mul(scalar("r"), ref("z", 10)),
                              mul(scalar("t"), ref("z", 11))))))};
    return k;
}

Kernel
kernel2(double s)
{
    // ICCG excerpt (one halving pass, stride-2 gathers):
    //   xh[k] = x[2k+1] - v[2k+1]*x[2k] - v[2k+2]*x[2k+2]
    Kernel k;
    k.id = 2;
    k.name = "iccg";
    const unsigned n = trips(150, s);
    k.tripCount = n;
    k.arrays = {{"xh", n}, {"x", 2 * n + 3}, {"v", 2 * n + 3}};
    k.body = {assign(
        {"xh", 1, 0},
        sub(sub(ref("x", 2, 1), mul(ref("v", 2, 1), ref("x", 2, 0))),
            mul(ref("v", 2, 2), ref("x", 2, 2))))};
    return k;
}

Kernel
kernel3(double s)
{
    // Inner product: q += z[k]*x[k]
    Kernel k;
    k.id = 3;
    k.name = "innerprod";
    const unsigned n = trips(1000, s);
    k.tripCount = n;
    k.arrays = {{"z", n}, {"x", n}};
    k.scalars = {{"q", 0.0f, true}};
    k.body = {
        assignScalar("q", add(scalar("q"), mul(ref("z"), ref("x"))))};
    return k;
}

Kernel
kernel4(double s)
{
    // Banded linear equations (3-wide band unrolled):
    //   x[k] -= y[k]*z[k+10] + y[k+1]*z[k+11] + y[k+2]*z[k+12]
    Kernel k;
    k.id = 4;
    k.name = "banded";
    const unsigned n = trips(300, s);
    k.tripCount = n;
    k.arrays = {{"x", n}, {"y", n + 3}, {"z", n + 13}};
    k.body = {assign(
        {"x", 1, 0},
        sub(sub(sub(ref("x"), mul(ref("y", 0), ref("z", 10))),
                mul(ref("y", 1), ref("z", 11))),
            mul(ref("y", 2), ref("z", 12))))};
    return k;
}

Kernel
kernel5(double s)
{
    // Tri-diagonal elimination: x[k+1] = z[k+1]*(y[k+1] - x[k])
    Kernel k;
    k.id = 5;
    k.name = "tridiag";
    const unsigned n = trips(1000, s);
    k.tripCount = n;
    k.arrays = {{"x", n + 1}, {"y", n + 1}, {"z", n + 1}};
    k.body = {assign({"x", 1, 1},
                     mul(ref("z", 1), sub(ref("y", 1), ref("x", 0))))};
    return k;
}

Kernel
kernel6(double s)
{
    // General linear recurrence (first order, coefficient array):
    //   w[k+1] = w[k+1] + b[k+1]*w[k]
    Kernel k;
    k.id = 6;
    k.name = "linrec";
    const unsigned n = trips(300, s);
    k.tripCount = n;
    k.arrays = {{"w", n + 1}, {"b", n + 1}};
    k.body = {assign({"w", 1, 1},
                     add(ref("w", 1), mul(ref("b", 1), ref("w", 0))))};
    return k;
}

Kernel
kernel7(double s)
{
    // Equation of state fragment.
    Kernel k;
    k.id = 7;
    k.name = "eos";
    const unsigned n = trips(120, s);
    k.tripCount = n;
    k.arrays = {{"x", n}, {"y", n}, {"z", n}, {"u", n + 6}};
    k.scalars = {{"q", 0.5021f, false},
                 {"r", 0.9909f, true},
                 {"t", 0.1278f, true}};
    k.body = {assign(
        {"x", 1, 0},
        add(add(ref("u"),
                mul(scalar("r"),
                    add(ref("z"), mul(scalar("r"), ref("y"))))),
            mul(scalar("t"),
                add(add(ref("u", 3),
                        mul(scalar("r"),
                            add(ref("u", 2),
                                mul(scalar("r"), ref("u", 1))))),
                    mul(scalar("t"),
                        add(ref("u", 6),
                            mul(scalar("q"),
                                add(ref("u", 5),
                                    mul(scalar("q"),
                                        ref("u", 4))))))))))};
    return k;
}

Kernel
kernel8(double s)
{
    // ADI integration, flattened to 1-D planes (the biggest body).
    Kernel k;
    k.id = 8;
    k.name = "adi";
    const unsigned n = trips(60, s);
    k.tripCount = n;
    k.arrays = {{"u1", n + 2}, {"u2", n + 2}, {"u3", n + 2},
                {"du1", n + 1}, {"du2", n + 1}, {"du3", n + 1},
                {"u1n", n + 2}, {"u2n", n + 2}, {"u3n", n + 2}};
    k.scalars = {{"sig", 0.2071f, true}, {"a11", 0.1953f, true},
                 {"a12", 0.0317f, false}, {"a13", 0.0742f, false},
                 {"a21", 0.0537f, false}, {"a22", 0.1871f, false},
                 {"a23", 0.0198f, false}, {"a31", 0.0289f, false},
                 {"a32", 0.0611f, false}, {"a33", 0.1622f, false}};
    auto two = cnst(2.0f);
    auto stencil = [&](const char *u) {
        return add(sub(ref(u, 2), mul(two, ref(u, 1))), ref(u, 0));
    };
    k.body = {
        assign({"du1", 1, 0}, sub(ref("u1", 2), ref("u1", 0))),
        assign({"du2", 1, 0}, sub(ref("u2", 2), ref("u2", 0))),
        assign({"du3", 1, 0}, sub(ref("u3", 2), ref("u3", 0))),
        assign({"u1n", 1, 1},
               add(add(add(add(ref("u1", 1),
                               mul(scalar("a11"), ref("du1", 0))),
                           mul(scalar("a12"), ref("du2", 0))),
                       mul(scalar("a13"), ref("du3", 0))),
                   mul(scalar("sig"), stencil("u1")))),
        assign({"u2n", 1, 1},
               add(add(add(add(ref("u2", 1),
                               mul(scalar("a21"), ref("du1", 0))),
                           mul(scalar("a22"), ref("du2", 0))),
                       mul(scalar("a23"), ref("du3", 0))),
                   mul(scalar("sig"), stencil("u2")))),
        assign({"u3n", 1, 1},
               add(add(add(add(ref("u3", 1),
                               mul(scalar("a31"), ref("du1", 0))),
                           mul(scalar("a32"), ref("du2", 0))),
                       mul(scalar("a33"), ref("du3", 0))),
                   mul(scalar("sig"), stencil("u3")))),
    };
    return k;
}

Kernel
kernel9(double s)
{
    // Integrate predictors.
    Kernel k;
    k.id = 9;
    k.name = "integrate";
    const unsigned n = trips(120, s);
    k.tripCount = n;
    k.arrays = {{"px", n + 13}};
    k.scalars = {{"c0", 4.5674f, true},   {"dm22", 0.0421f, false},
                 {"dm23", 0.0632f, false}, {"dm24", 0.0187f, false},
                 {"dm25", 0.0954f, false}, {"dm26", 0.0276f, false},
                 {"dm27", 0.0811f, false}, {"dm28", 0.0049f, false}};
    k.body = {assign(
        {"px", 1, 0},
        add(add(add(add(add(add(add(mul(scalar("dm28"), ref("px", 12)),
                                    mul(scalar("dm27"), ref("px", 11))),
                                mul(scalar("dm26"), ref("px", 10))),
                            mul(scalar("dm25"), ref("px", 9))),
                        mul(scalar("dm24"), ref("px", 8))),
                    mul(scalar("dm23"), ref("px", 7))),
                mul(scalar("c0"), add(ref("px", 4), ref("px", 5)))),
            ref("px", 2)))};
    return k;
}

Kernel
kernel10(double s)
{
    // Difference predictors (chained scalar temporaries).
    Kernel k;
    k.id = 10;
    k.name = "diffpred";
    const unsigned n = trips(120, s);
    k.tripCount = n;
    k.arrays = {{"cx", n}, {"pa", n}, {"pb", n},
                {"pc", n}, {"pd", n}, {"pe", n}};
    k.scalars = {{"ar", 0.0f, false}, {"br", 0.0f, false},
                 {"cr", 0.0f, false}, {"dr", 0.0f, false},
                 {"er", 0.0f, false}};
    k.body = {
        assignScalar("ar", ref("cx")),
        assignScalar("br", sub(scalar("ar"), ref("pa"))),
        assign({"pa", 1, 0}, scalar("ar")),
        assignScalar("cr", sub(scalar("br"), ref("pb"))),
        assign({"pb", 1, 0}, scalar("br")),
        assignScalar("dr", sub(scalar("cr"), ref("pc"))),
        assign({"pc", 1, 0}, scalar("cr")),
        assignScalar("er", sub(scalar("dr"), ref("pd"))),
        assign({"pd", 1, 0}, scalar("dr")),
        assign({"pe", 1, 0}, scalar("er")),
    };
    return k;
}

Kernel
kernel11(double s)
{
    // First sum: x[k+1] = x[k] + y[k+1]
    Kernel k;
    k.id = 11;
    k.name = "firstsum";
    const unsigned n = trips(1000, s);
    k.tripCount = n;
    k.arrays = {{"x", n + 1}, {"y", n + 1}};
    k.body = {assign({"x", 1, 1}, add(ref("x", 0), ref("y", 1)))};
    return k;
}

Kernel
kernel12(double s)
{
    // First difference: x[k] = y[k+1] - y[k]
    Kernel k;
    k.id = 12;
    k.name = "firstdiff";
    const unsigned n = trips(1000, s);
    k.tripCount = n;
    k.arrays = {{"x", n}, {"y", n + 1}};
    k.body = {assign({"x", 1, 0}, sub(ref("y", 1), ref("y", 0)))};
    return k;
}

Kernel
kernel13(double s)
{
    // 2-D particle in cell (strided passes over the particle arrays).
    Kernel k;
    k.id = 13;
    k.name = "pic2d";
    const unsigned n = trips(150, s);
    k.tripCount = n;
    k.arrays = {{"p1", n + 1}, {"p2", n + 1}, {"p3", n + 1},
                {"p4", n + 1}, {"y", n + 1}, {"z", n + 1},
                {"e", n + 1}, {"f", n + 1}};
    k.body = {
        assign({"p1", 1, 0},
               add(ref("p1"), mul(ref("e"), add(ref("y"), ref("p2"))))),
        assign({"p2", 1, 0},
               add(ref("p2"), mul(ref("f"), add(ref("z"), ref("p1"))))),
        assign({"p3", 1, 0}, add(ref("p3"), ref("p1"))),
        assign({"p4", 1, 0}, add(ref("p4"), ref("p2"))),
    };
    return k;
}

Kernel
kernel14(double s)
{
    // 1-D particle in cell (strided rendition).
    Kernel k;
    k.id = 14;
    k.name = "pic1d";
    const unsigned n = trips(150, s);
    k.tripCount = n;
    k.arrays = {{"vx", n}, {"xx", n}, {"ex", n}, {"grd", n},
                {"xi", n}};
    k.scalars = {{"qc", 0.3217f, true}, {"dt", 0.0125f, true},
                 {"flx", 0.0017f, false}};
    k.body = {
        assign({"vx", 1, 0},
               add(ref("vx"), mul(ref("ex"), scalar("qc")))),
        assign({"xx", 1, 0},
               add(ref("xx"), mul(ref("vx"), scalar("dt")))),
        assign({"xi", 1, 0},
               sub(ref("xx"), mul(scalar("flx"), ref("grd")))),
    };
    return k;
}

} // namespace

codegen::Kernel
livermoreKernel(int id, double scale)
{
    switch (id) {
      case 1: return kernel1(scale);
      case 2: return kernel2(scale);
      case 3: return kernel3(scale);
      case 4: return kernel4(scale);
      case 5: return kernel5(scale);
      case 6: return kernel6(scale);
      case 7: return kernel7(scale);
      case 8: return kernel8(scale);
      case 9: return kernel9(scale);
      case 10: return kernel10(scale);
      case 11: return kernel11(scale);
      case 12: return kernel12(scale);
      case 13: return kernel13(scale);
      case 14: return kernel14(scale);
      default:
        fatal("no Livermore kernel ", id, " (valid: 1..14)");
    }
}

std::vector<codegen::Kernel>
livermoreKernels(double scale)
{
    std::vector<codegen::Kernel> kernels;
    kernels.reserve(numLivermoreKernels);
    for (int id = 1; id <= numLivermoreKernels; ++id)
        kernels.push_back(livermoreKernel(id, scale));
    return kernels;
}

} // namespace pipesim::workloads
