/**
 * @file
 * Synthetic branch-heavy workload generator.
 *
 * The paper's Livermore benchmark is loop-dominated: long, highly
 * predictable inner loops with one backward PBR each.  This
 * generator produces the opposite — chains of short basic blocks
 * separated by *data-dependent* conditional forward branches (an
 * xorshift PRNG computed in the integer pipeline drives the
 * directions) — to study how the fetch strategies behave when
 * redirects are frequent and irregular.
 *
 * The program is fully deterministic and computes a 32-bit
 * accumulator checksum that a host-side model reproduces exactly, so
 * every simulated run is verifiable, just like the Livermore suite.
 *
 * Register use: r1 PRNG state, r2 outer counter, r3 accumulator,
 * r4 scratch, r5 result pointer.
 */

#ifndef PIPESIM_WORKLOADS_SYNTHETIC_HH
#define PIPESIM_WORKLOADS_SYNTHETIC_HH

#include <cstdint>

#include "assembler/program.hh"

namespace pipesim::workloads
{

/** Parameters of a branchy synthetic program. */
struct BranchySpec
{
    unsigned blocks = 8;        //!< basic blocks per outer iteration
    unsigned fillerOps = 4;     //!< skippable ALU ops after each branch
    unsigned delaySlots = 2;    //!< PBR delay slots per branch (0..7)
    unsigned iterations = 64;   //!< outer loop trips
    std::uint32_t seed = 0x2545f491u;
    /**
     * Branch-taken selectivity: the branch is taken when the low
     * @p maskBits bits of the PRNG state are zero (1 => ~50% taken,
     * 2 => ~25%, 0 => always taken).
     */
    unsigned maskBits = 1;
};

/** A built branchy program plus the addresses of its result slots. */
struct BranchyProgram
{
    Program program;
    Addr accSlot = 0;   //!< final accumulator is stored here
    Addr stateSlot = 0; //!< final PRNG state is stored here
};

/** Generate the program for @p spec. */
BranchyProgram buildBranchyProgram(const BranchySpec &spec);

/** Host-model results for @p spec. */
struct BranchyReference
{
    std::uint32_t acc = 0;
    std::uint32_t state = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t notTakenBranches = 0;
};

/** Execute the same computation on the host. */
BranchyReference runBranchyReference(const BranchySpec &spec);

/**
 * A deterministic ALU-loop program sized to approximately a target
 * dynamic instruction count — built for trace-replay scale testing
 * (docs/trace_replay.md): the paper-size Livermore run is ~150k
 * instructions, but replay throughput and sampling error only become
 * interesting at millions, which the cycle simulator is too slow to
 * sweep.  The loop body is pure integer arithmetic on an accumulator
 * whose final value the host model reproduces exactly.
 */
struct SyntheticStream
{
    Program program;
    std::uint64_t iterations = 0;    //!< loop trips emitted
    unsigned perIteration = 0;       //!< dynamic insts per trip
    std::uint64_t instructions = 0;  //!< exact dynamic count
    Addr accSlot = 0;                //!< final accumulator address
};

/** Build a stream of at least @p targetInstructions (>= 1) dynamic
 *  instructions; the exact count is in the result. */
SyntheticStream buildSyntheticStream(std::uint64_t targetInstructions);

/** Host-model accumulator value for @p iterations loop trips. */
std::uint32_t syntheticStreamReference(std::uint64_t iterations);

} // namespace pipesim::workloads

#endif // PIPESIM_WORKLOADS_SYNTHETIC_HH
