/**
 * @file
 * Host-side reference interpreter for the kernel IR, used to verify
 * that the simulated machine computes the right answers.
 *
 * The interpreter performs the same single-precision operations in
 * the same order as the generated code (all arithmetic rounds to
 * float at every step, matching the memory-mapped FPU), so results
 * are expected to be bit-exact.
 */

#ifndef PIPESIM_WORKLOADS_REFERENCE_HH
#define PIPESIM_WORKLOADS_REFERENCE_HH

#include <map>
#include <string>
#include <vector>

#include "codegen/codegen.hh"
#include "codegen/ir.hh"
#include "mem/data_memory.hh"

namespace pipesim::workloads
{

/** Final architectural state of one kernel, per the reference. */
struct ReferenceResult
{
    std::map<std::string, std::vector<float>> arrays;
    std::map<std::string, float> scalars;
};

/** Execute @p kernel on the host. */
ReferenceResult runReference(const codegen::Kernel &kernel);

/**
 * Compare simulated memory against the reference for one kernel.
 *
 * @param mem    Data memory after the simulation finished.
 * @param kernel The kernel IR.
 * @param info   Placement info from the code generator.
 * @param diag   When non-null, receives a description of the first
 *               mismatch.
 * @return true if every array element and scalar slot matches the
 *         reference bit-for-bit.
 */
bool verifyAgainstReference(const DataMemory &mem,
                            const codegen::Kernel &kernel,
                            const codegen::KernelCodeInfo &info,
                            std::string *diag = nullptr);

} // namespace pipesim::workloads

#endif // PIPESIM_WORKLOADS_REFERENCE_HH
