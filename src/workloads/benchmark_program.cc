#include "workloads/benchmark_program.hh"

#include "workloads/livermore.hh"

namespace pipesim::workloads
{

Benchmark
buildBenchmark(const std::vector<codegen::Kernel> &kernels,
               const codegen::CodeGenOptions &options)
{
    codegen::CodeGenerator gen(options);

    Benchmark bench;
    bench.kernels = kernels;
    for (const codegen::Kernel &kernel : kernels)
        bench.codeInfo.push_back(gen.emitKernel(kernel));
    bench.program = gen.finish();
    return bench;
}

Benchmark
buildBenchmark(const std::vector<codegen::Kernel> &kernels,
               isa::FormatMode mode)
{
    codegen::CodeGenOptions opts;
    opts.mode = mode;
    return buildBenchmark(kernels, opts);
}

Benchmark
buildLivermoreBenchmark(double scale, isa::FormatMode mode)
{
    return buildBenchmark(livermoreKernels(scale), mode);
}

Benchmark
buildLivermoreBenchmark(double scale,
                        const codegen::CodeGenOptions &options)
{
    return buildBenchmark(livermoreKernels(scale), options);
}

} // namespace pipesim::workloads
