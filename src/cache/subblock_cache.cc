#include "cache/subblock_cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pipesim
{

SubblockCache::SubblockCache(unsigned size_bytes, unsigned line_bytes,
                             unsigned subblock_bytes)
    : _sizeBytes(size_bytes), _lineBytes(line_bytes),
      _subblockBytes(subblock_bytes)
{
    if (!isPowerOf2(size_bytes) || !isPowerOf2(line_bytes) ||
        !isPowerOf2(subblock_bytes))
        fatal("cache, line and sub-block sizes must be powers of two");
    if (line_bytes > size_bytes)
        fatal("line size exceeds cache size");
    if (subblock_bytes > line_bytes)
        fatal("sub-block size exceeds line size");
    _lines.resize(size_bytes / line_bytes);
    for (Line &line : _lines)
        line.valid.assign(subblocksPerLine(), false);
}

const SubblockCache::Line &
SubblockCache::lineFor(Addr addr) const
{
    return _lines[(addr / _lineBytes) % _lines.size()];
}

SubblockCache::Line &
SubblockCache::lineFor(Addr addr)
{
    return _lines[(addr / _lineBytes) % _lines.size()];
}

bool
SubblockCache::linePresent(Addr addr) const
{
    const Line &line = lineFor(addr);
    return line.tagValid && line.base == lineBase(addr);
}

bool
SubblockCache::subblockValid(Addr addr) const
{
    const Line &line = lineFor(addr);
    if (!line.tagValid || line.base != lineBase(addr))
        return false;
    return line.valid[(addr - line.base) / _subblockBytes];
}

bool
SubblockCache::bytesValid(Addr addr, unsigned bytes) const
{
    for (Addr a = subblockBase(addr); a < addr + bytes;
         a += _subblockBytes) {
        if (!subblockValid(a))
            return false;
    }
    return true;
}

void
SubblockCache::allocate(Addr addr)
{
    Line &line = lineFor(addr);
    line.tagValid = true;
    line.base = lineBase(addr);
    line.valid.assign(subblocksPerLine(), false);
}

void
SubblockCache::fill(Addr addr, unsigned bytes)
{
    PIPESIM_ASSERT(addr % _subblockBytes == 0,
                   "fill address not sub-block aligned");
    Line &line = lineFor(addr);
    PIPESIM_ASSERT(line.tagValid && line.base == lineBase(addr),
                   "fill of unallocated line at ", addr);
    for (Addr a = addr; a < addr + bytes; a += _subblockBytes) {
        PIPESIM_ASSERT(a >= line.base && a < line.base + _lineBytes,
                       "fill crosses line boundary");
        line.valid[(a - line.base) / _subblockBytes] = true;
    }
    ++_fills;
}

void
SubblockCache::invalidateAll()
{
    for (Line &line : _lines) {
        line.tagValid = false;
        line.valid.assign(subblocksPerLine(), false);
    }
}

void
SubblockCache::recordLookup(bool hit)
{
    if (hit)
        ++_hits;
    else
        ++_misses;
}

void
SubblockCache::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".hits", &_hits, "lookups that hit");
    stats.regCounter(prefix + ".misses", &_misses, "lookups that missed");
    stats.regCounter(prefix + ".fills", &_fills, "fill operations");
    stats.regFormula(prefix + ".miss_rate",
                     [this]() {
                         const double total =
                             double(_hits.value() + _misses.value());
                         return total > 0 ? _misses.value() / total : 0.0;
                     },
                     "miss ratio of recorded lookups");
}

} // namespace pipesim
