#include "cache/icache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pipesim
{

InstructionCache::InstructionCache(unsigned size_bytes, unsigned line_bytes)
    : _sizeBytes(size_bytes), _lineBytes(line_bytes)
{
    if (!isPowerOf2(size_bytes) || !isPowerOf2(line_bytes))
        fatal("cache size and line size must be powers of two");
    if (line_bytes > size_bytes)
        fatal("line size ", line_bytes, " exceeds cache size ", size_bytes);
    _lines.resize(size_bytes / line_bytes);
}

const InstructionCache::Line &
InstructionCache::lineFor(Addr addr) const
{
    return _lines[(addr / _lineBytes) % _lines.size()];
}

InstructionCache::Line &
InstructionCache::lineFor(Addr addr)
{
    return _lines[(addr / _lineBytes) % _lines.size()];
}

bool
InstructionCache::linePresent(Addr addr) const
{
    const Line &line = lineFor(addr);
    return line.tagValid && line.base == lineBase(addr);
}

bool
InstructionCache::bytesValid(Addr addr, unsigned bytes) const
{
    const Line &line = lineFor(addr);
    if (!line.tagValid || line.base != lineBase(addr))
        return false;
    const unsigned offset = addr - line.base;
    return offset + bytes <= line.validBytes;
}

bool
InstructionCache::lineValid(Addr addr) const
{
    const Line &line = lineFor(addr);
    return line.tagValid && line.base == lineBase(addr) &&
           line.validBytes == _lineBytes;
}

void
InstructionCache::allocate(Addr addr)
{
    Line &line = lineFor(addr);
    line.tagValid = true;
    line.base = lineBase(addr);
    line.validBytes = 0;
}

void
InstructionCache::fill(Addr addr, unsigned bytes)
{
    Line &line = lineFor(addr);
    PIPESIM_ASSERT(line.tagValid && line.base == lineBase(addr),
                   "fill of unallocated line at ", addr);
    const unsigned offset = addr - line.base;
    PIPESIM_ASSERT(offset == line.validBytes,
                   "non-streaming fill: offset ", offset, " valid ",
                   line.validBytes);
    line.validBytes += bytes;
    PIPESIM_ASSERT(line.validBytes <= _lineBytes, "line overfilled");
    ++_fills;
}

void
InstructionCache::invalidateAll()
{
    for (Line &line : _lines)
        line = Line{};
}

void
InstructionCache::recordLookup(bool hit)
{
    if (hit)
        ++_hits;
    else
        ++_misses;
}

void
InstructionCache::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".hits", &_hits, "lookups that hit");
    stats.regCounter(prefix + ".misses", &_misses, "lookups that missed");
    stats.regCounter(prefix + ".fills", &_fills, "fill beats applied");
    stats.regFormula(prefix + ".miss_rate",
                     [this]() {
                         const double total =
                             double(_hits.value() + _misses.value());
                         return total > 0 ? _misses.value() / total : 0.0;
                     },
                     "miss ratio of recorded lookups");
}

} // namespace pipesim
