/**
 * @file
 * The conventional cache of Hill's always-prefetch model: direct
 * mapped with sub-blocked lines.
 *
 * "A cache line is composed of a number of sub-blocks, each block
 * with its own individual valid bit."  A sub-block is one instruction
 * slot; memory requests fetch individual sub-blocks (or a bus-width
 * group of them), so a line may be partially valid in any pattern --
 * unlike the PIPE cache, whose lines stream in from the base.
 */

#ifndef PIPESIM_CACHE_SUBBLOCK_CACHE_HH
#define PIPESIM_CACHE_SUBBLOCK_CACHE_HH

#include <vector>

#include "common/state_io.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipesim
{

class SubblockCache
{
  public:
    /**
     * @param size_bytes     Total capacity (power of two).
     * @param line_bytes     Line size (power of two, <= size).
     * @param subblock_bytes Sub-block size (power of two, <= line).
     */
    SubblockCache(unsigned size_bytes, unsigned line_bytes,
                  unsigned subblock_bytes);

    unsigned sizeBytes() const { return _sizeBytes; }
    unsigned lineBytes() const { return _lineBytes; }
    unsigned subblockBytes() const { return _subblockBytes; }
    unsigned subblocksPerLine() const { return _lineBytes / _subblockBytes; }

    Addr lineBase(Addr addr) const { return addr & ~Addr(_lineBytes - 1); }
    Addr
    subblockBase(Addr addr) const
    {
        return addr & ~Addr(_subblockBytes - 1);
    }

    /** @return true if the line containing @p addr has a tag match. */
    bool linePresent(Addr addr) const;

    /** @return true if the sub-block containing @p addr is valid. */
    bool subblockValid(Addr addr) const;

    /** @return true if @p bytes bytes from @p addr are all valid. */
    bool bytesValid(Addr addr, unsigned bytes) const;

    /**
     * Install a tag for the line containing @p addr, clearing every
     * valid bit (evicting any previous occupant of the frame).
     */
    void allocate(Addr addr);

    /**
     * Mark sub-blocks covering [addr, addr+bytes) valid.  The line
     * must be present; @p addr must be sub-block aligned.
     */
    void fill(Addr addr, unsigned bytes);

    void invalidateAll();

    void recordLookup(bool hit);

    void regStats(StatGroup &stats, const std::string &prefix);

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }

    void saveState(StateWriter &w) const
    {
        w.u32(unsigned(_lines.size()));
        w.u32(subblocksPerLine());
        for (const Line &l : _lines) {
            w.b(l.tagValid);
            w.u32(l.base);
            for (bool v : l.valid)
                w.b(v);
        }
        w.u64(_hits.value());
        w.u64(_misses.value());
        w.u64(_fills.value());
    }

    void restoreState(StateReader &r)
    {
        if (r.u32() != _lines.size() || r.u32() != subblocksPerLine())
            r.fail("subblock cache geometry mismatch");
        for (Line &l : _lines) {
            l.tagValid = r.b();
            l.base = r.u32();
            for (std::size_t i = 0; i < l.valid.size(); ++i)
                l.valid[i] = r.b();
        }
        _hits.set(r.u64());
        _misses.set(r.u64());
        _fills.set(r.u64());
    }

  private:
    struct Line
    {
        bool tagValid = false;
        Addr base = 0;
        std::vector<bool> valid; //!< per sub-block
    };

    const Line &lineFor(Addr addr) const;
    Line &lineFor(Addr addr);

    unsigned _sizeBytes;
    unsigned _lineBytes;
    unsigned _subblockBytes;
    std::vector<Line> _lines;

    Counter _hits;
    Counter _misses;
    Counter _fills;
};

} // namespace pipesim

#endif // PIPESIM_CACHE_SUBBLOCK_CACHE_HH
