/**
 * @file
 * The PIPE on-chip instruction cache: direct mapped, line oriented.
 *
 * The real PIPE cache is sixteen 4-word lines (128 bytes); here both
 * the total size and the line size are configurable (paper simulation
 * parameters 2 and 3).  Lines fill from off-chip a bus-beat at a
 * time, so a line tracks how many of its bytes have arrived; fills
 * always stream from the line base.
 *
 * Only presence/validity is modelled -- instruction bytes are read
 * from the program image, which is sound because code is read-only.
 */

#ifndef PIPESIM_CACHE_ICACHE_HH
#define PIPESIM_CACHE_ICACHE_HH

#include <vector>

#include "common/state_io.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipesim
{

class InstructionCache
{
  public:
    /**
     * @param size_bytes Total capacity; must be a power of two and a
     *                   multiple of @p line_bytes.
     * @param line_bytes Line size; power of two.
     */
    InstructionCache(unsigned size_bytes, unsigned line_bytes);

    unsigned sizeBytes() const { return _sizeBytes; }
    unsigned lineBytes() const { return _lineBytes; }
    unsigned numLines() const { return unsigned(_lines.size()); }

    /** The line-aligned base of @p addr. */
    Addr lineBase(Addr addr) const { return addr & ~Addr(_lineBytes - 1); }

    /** @return true if the line containing @p addr has a tag match. */
    bool linePresent(Addr addr) const;

    /**
     * @return true if the @p bytes bytes starting at @p addr are all
     *         resident (tag match and arrived).
     */
    bool bytesValid(Addr addr, unsigned bytes) const;

    /** @return true if the full line containing @p addr is resident. */
    bool lineValid(Addr addr) const;

    /**
     * Install a tag for the line containing @p addr with no bytes
     * valid yet (a fill is about to stream in).  Evicts the previous
     * occupant of the frame.
     */
    void allocate(Addr addr);

    /**
     * Mark @p bytes bytes at @p addr as arrived.  The line must be
     * allocated and fills must stream in order from the line base.
     */
    void fill(Addr addr, unsigned bytes);

    /** Drop every line (the paper's per-loop cold starts). */
    void invalidateAll();

    /** Record a lookup outcome (for the miss-rate statistics). */
    void recordLookup(bool hit);

    void regStats(StatGroup &stats, const std::string &prefix);

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }

    void saveState(StateWriter &w) const
    {
        w.u32(unsigned(_lines.size()));
        for (const Line &l : _lines) {
            w.b(l.tagValid);
            w.u32(l.base);
            w.u32(l.validBytes);
        }
        w.u64(_hits.value());
        w.u64(_misses.value());
        w.u64(_fills.value());
    }

    void restoreState(StateReader &r)
    {
        if (r.u32() != _lines.size())
            r.fail("icache geometry mismatch");
        for (Line &l : _lines) {
            l.tagValid = r.b();
            l.base = r.u32();
            l.validBytes = r.u32();
        }
        _hits.set(r.u64());
        _misses.set(r.u64());
        _fills.set(r.u64());
    }

  private:
    struct Line
    {
        bool tagValid = false;
        Addr base = 0;       //!< line-aligned address of the occupant
        unsigned validBytes = 0;
    };

    const Line &lineFor(Addr addr) const;
    Line &lineFor(Addr addr);

    unsigned _sizeBytes;
    unsigned _lineBytes;
    std::vector<Line> _lines;

    Counter _hits;
    Counter _misses;
    Counter _fills;
};

} // namespace pipesim

#endif // PIPESIM_CACHE_ICACHE_HH
