#include "assembler/lexer.hh"

#include <cctype>

#include "common/log.hh"
#include "common/strutil.hh"

namespace pipesim::assembler
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
tokenizeLine(const std::string &line_text, unsigned line_no)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    const std::size_t n = line_text.size();

    auto push = [&](TokenKind kind, std::string text, std::int64_t value,
                    std::size_t col) {
        tokens.push_back(Token{kind, std::move(text), value, line_no,
                               unsigned(col + 1)});
    };

    while (i < n) {
        const char c = line_text[i];
        if (c == ';' || c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        const std::size_t start = i;
        switch (c) {
          case ',': push(TokenKind::Comma, ",", 0, start); ++i; continue;
          case ':': push(TokenKind::Colon, ":", 0, start); ++i; continue;
          case '[': push(TokenKind::LBracket, "[", 0, start); ++i; continue;
          case ']': push(TokenKind::RBracket, "]", 0, start); ++i; continue;
          case '+': push(TokenKind::Plus, "+", 0, start); ++i; continue;
          case '-': {
            // Either a negative literal or a standalone minus.
            if (i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(line_text[i + 1]))) {
                std::size_t j = i + 1;
                while (j < n && isIdentChar(line_text[j]))
                    ++j;
                const std::string text = line_text.substr(i, j - i);
                const auto v = parseInt(text);
                if (!v)
                    fatal("line ", line_no, ", col ", start + 1,
                          ": bad integer literal '", text, "'");
                push(TokenKind::Int, text, *v, start);
                i = j;
            } else {
                push(TokenKind::Minus, "-", 0, start);
                ++i;
            }
            continue;
          }
          default:
            break;
        }

        if (c == '.') {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(line_text[j]))
                ++j;
            if (j == i + 1)
                fatal("line ", line_no, ", col ", start + 1,
                      ": stray '.'");
            push(TokenKind::Directive,
                 toLower(line_text.substr(i, j - i)), 0, start);
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n && isIdentChar(line_text[j]))
                ++j;
            const std::string text = line_text.substr(i, j - i);
            const auto v = parseInt(text);
            if (!v)
                fatal("line ", line_no, ", col ", start + 1,
                      ": bad integer literal '", text, "'");
            push(TokenKind::Int, text, *v, start);
            i = j;
            continue;
        }

        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(line_text[j]))
                ++j;
            const std::string text = line_text.substr(i, j - i);
            // Register names: r0..r7 / b0..b7 (case-insensitive).
            if (text.size() == 2 && (text[0] == 'r' || text[0] == 'R') &&
                text[1] >= '0' && text[1] <= '7') {
                push(TokenKind::Reg, text, text[1] - '0', start);
            } else if (text.size() == 2 &&
                       (text[0] == 'b' || text[0] == 'B') &&
                       text[1] >= '0' && text[1] <= '7') {
                push(TokenKind::BReg, text, text[1] - '0', start);
            } else {
                push(TokenKind::Ident, text, 0, start);
            }
            i = j;
            continue;
        }

        fatal("line ", line_no, ", col ", i + 1,
              ": unexpected character '", c, "'");
    }

    push(TokenKind::EndOfLine, "", 0, i);
    return tokens;
}

} // namespace pipesim::assembler
