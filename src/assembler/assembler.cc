#include "assembler/assembler.hh"

#include <bit>
#include <fstream>
#include <sstream>

#include "assembler/lexer.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "isa/fields.hh"

namespace pipesim::assembler
{

namespace
{

/** A parsed operand, prior to symbol resolution. */
struct Operand
{
    enum class Kind { Reg, BReg, Imm, Sym, MemImm, MemReg } kind;
    int reg = 0;           //!< Reg/BReg index; Mem base register
    std::int64_t imm = 0;  //!< Imm value; Mem displacement
    std::string sym;       //!< Sym name; Mem symbolic displacement
    int index = 0;         //!< MemReg index register
};

/** A parsed instruction line awaiting encoding. */
struct PendingInst
{
    unsigned line;
    Addr addr;
    std::string mnemonic;
    std::vector<Operand> operands;
};

/** A pending data word whose value is a symbol. */
struct PendingDataSym
{
    unsigned line;
    std::size_t segment;
    std::size_t offset;
    std::string sym;
};

class AssemblerImpl
{
  public:
    AssemblerImpl(isa::FormatMode mode, Addr code_base)
        : _program(mode, code_base), _mode(mode), _loc(code_base)
    {
    }

    Program run(const std::string &source);

  private:
    // --- pass 1 -------------------------------------------------------
    void processLine(const std::string &text, unsigned line_no);
    void processDirective(const std::vector<Token> &toks, std::size_t &i,
                          unsigned line_no);
    void processInstruction(const std::vector<Token> &toks, std::size_t &i,
                            unsigned line_no);
    std::vector<Operand> parseOperands(const std::vector<Token> &toks,
                                       std::size_t &i, unsigned line_no);
    Operand parseOperand(const std::vector<Token> &toks, std::size_t &i,
                         unsigned line_no);

    /** Encoded size in bytes of a parsed instruction. */
    unsigned instSize(const PendingInst &pi) const;

    // --- pass 2 -------------------------------------------------------
    void encodeAll();
    isa::Instruction buildInstruction(const PendingInst &pi);
    std::int64_t resolveImm(const Operand &op, unsigned line);

    // --- helpers ------------------------------------------------------
    template <typename... Args>
    void
    error(unsigned line, Args &&...args)
    {
        std::ostringstream os;
        os << "line " << line << ": ";
        (os << ... << std::forward<Args>(args));
        _errors.push_back(os.str());
    }

    /** Like error(), but pinpoints the offending token's column. */
    template <typename... Args>
    void
    errorAt(const Token &t, Args &&...args)
    {
        std::ostringstream os;
        os << "line " << t.line << ", col " << t.column << ": ";
        (os << ... << std::forward<Args>(args));
        _errors.push_back(os.str());
    }

    void
    defineSymbolChecked(const std::string &name, Addr value, unsigned line)
    {
        if (_program.symbol(name)) {
            error(line, "symbol '", name, "' redefined");
            return;
        }
        _program.defineSymbol(name, value);
    }

    bool inData() const { return _dataSegment.has_value(); }

    void
    appendDataBytes(const std::vector<std::uint8_t> &bytes)
    {
        auto &seg = _dataSegs[*_dataSegment];
        seg.bytes.insert(seg.bytes.end(), bytes.begin(), bytes.end());
    }

    Program _program;
    isa::FormatMode _mode;
    Addr _loc;
    std::vector<std::string> _errors;
    std::vector<PendingInst> _pending;

    struct DataSeg
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };
    std::vector<DataSeg> _dataSegs;
    std::optional<std::size_t> _dataSegment;
    std::vector<PendingDataSym> _dataSyms;
    std::optional<std::string> _entrySym;
    std::optional<Addr> _entryAddr;
    std::size_t _codePad = 0; //!< zero padding owed before next inst
};

Program
AssemblerImpl::run(const std::string &source)
{
    std::istringstream in(source);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        try {
            processLine(line, line_no);
        } catch (const FatalError &e) {
            _errors.push_back(e.what());
        }
    }

    encodeAll();

    for (const auto &seg : _dataSegs)
        _program.addDataSegment(seg.base, seg.bytes);

    if (_entrySym) {
        if (auto v = _program.symbol(*_entrySym))
            _program.setEntry(*v);
        else
            _errors.push_back("undefined entry symbol '" + *_entrySym +
                              "'");
    } else if (_entryAddr) {
        _program.setEntry(*_entryAddr);
    }

    if (!_errors.empty()) {
        std::ostringstream os;
        os << "assembly failed with " << _errors.size() << " error(s):";
        for (const auto &e : _errors)
            os << "\n  " << e;
        fatal(os.str());
    }
    return std::move(_program);
}

void
AssemblerImpl::processLine(const std::string &text, unsigned line_no)
{
    auto toks = tokenizeLine(text, line_no);
    std::size_t i = 0;

    // Labels (possibly several per line).
    while (toks[i].kind == TokenKind::Ident && i + 1 < toks.size() &&
           toks[i + 1].kind == TokenKind::Colon) {
        const Addr label_addr = inData()
            ? _dataSegs[*_dataSegment].base +
                  Addr(_dataSegs[*_dataSegment].bytes.size())
            : _loc;
        defineSymbolChecked(toks[i].text, label_addr, line_no);
        i += 2;
    }

    if (toks[i].kind == TokenKind::EndOfLine)
        return;

    if (toks[i].kind == TokenKind::Directive) {
        processDirective(toks, i, line_no);
        return;
    }

    if (toks[i].kind != TokenKind::Ident) {
        errorAt(toks[i], "expected mnemonic, got '", toks[i].text, "'");
        return;
    }
    processInstruction(toks, i, line_no);
}

void
AssemblerImpl::processDirective(const std::vector<Token> &toks,
                                std::size_t &i, unsigned line_no)
{
    const std::string dir = toks[i].text;
    ++i;

    auto expectInt = [&]() -> std::optional<std::int64_t> {
        if (toks[i].kind != TokenKind::Int) {
            error(line_no, dir, " expects an integer operand");
            return std::nullopt;
        }
        return toks[i++].value;
    };

    if (dir == ".org") {
        if (auto v = expectInt()) {
            if (inData()) {
                error(line_no, ".org not allowed inside .data");
                return;
            }
            if (Addr(*v) < _loc) {
                error(line_no, ".org may not move backwards");
                return;
            }
            _codePad += Addr(*v) - _loc;
            _loc = Addr(*v);
        }
    } else if (dir == ".align") {
        if (auto v = expectInt()) {
            if (!isPowerOf2(std::uint64_t(*v))) {
                error(line_no, ".align expects a power of two");
                return;
            }
            if (inData()) {
                auto &seg = _dataSegs[*_dataSegment];
                const Addr cur = seg.base + Addr(seg.bytes.size());
                const Addr target = Addr(alignUp(cur, std::uint64_t(*v)));
                seg.bytes.resize(seg.bytes.size() + (target - cur), 0);
            } else {
                const Addr target = Addr(alignUp(_loc, std::uint64_t(*v)));
                _codePad += target - _loc;
                _loc = target;
            }
        }
    } else if (dir == ".equ") {
        if (toks[i].kind != TokenKind::Ident) {
            error(line_no, ".equ expects a name");
            return;
        }
        const std::string name = toks[i++].text;
        if (toks[i].kind == TokenKind::Comma)
            ++i;
        if (auto v = expectInt())
            defineSymbolChecked(name, Addr(*v), line_no);
    } else if (dir == ".entry") {
        if (toks[i].kind == TokenKind::Ident) {
            _entrySym = toks[i++].text;
        } else if (auto v = expectInt()) {
            _entryAddr = Addr(*v);
        }
    } else if (dir == ".data") {
        if (auto v = expectInt()) {
            _dataSegs.push_back(DataSeg{Addr(*v), {}});
            _dataSegment = _dataSegs.size() - 1;
        }
    } else if (dir == ".text") {
        _dataSegment.reset();
    } else if (dir == ".word") {
        if (!inData()) {
            error(line_no, ".word only allowed inside .data");
            return;
        }
        while (true) {
            if (toks[i].kind == TokenKind::Int) {
                const auto w = Word(std::uint64_t(toks[i++].value));
                appendDataBytes({std::uint8_t(w & 0xff),
                                 std::uint8_t((w >> 8) & 0xff),
                                 std::uint8_t((w >> 16) & 0xff),
                                 std::uint8_t((w >> 24) & 0xff)});
            } else if (toks[i].kind == TokenKind::Ident) {
                _dataSyms.push_back(PendingDataSym{
                    line_no, *_dataSegment,
                    _dataSegs[*_dataSegment].bytes.size(), toks[i].text});
                ++i;
                appendDataBytes({0, 0, 0, 0});
            } else {
                error(line_no, ".word expects integers or symbols");
                return;
            }
            if (toks[i].kind != TokenKind::Comma)
                break;
            ++i;
        }
    } else if (dir == ".float") {
        if (!inData()) {
            error(line_no, ".float only allowed inside .data");
            return;
        }
        while (true) {
            double v = 0;
            bool neg = false;
            if (toks[i].kind == TokenKind::Minus) {
                neg = true;
                ++i;
            }
            // Accept "int" or "int . int" token sequences.
            if (toks[i].kind != TokenKind::Int) {
                error(line_no, ".float expects numeric literals");
                return;
            }
            // "-0.25" lexes as Int("-0"), whose value loses the
            // sign; recover it from the token text.
            if (!toks[i].text.empty() && toks[i].text[0] == '-')
                neg = true;
            v = double(toks[i].value < 0 ? -toks[i].value
                                         : toks[i].value);
            ++i;
            if (toks[i].kind == TokenKind::Directive) {
                // ".5" style fraction lexed as a directive token.
                const std::string frac = toks[i].text.substr(1);
                const auto fv = parseInt(frac);
                if (!fv) {
                    error(line_no, "bad fraction in .float literal");
                    return;
                }
                double scale = 1;
                for (std::size_t k = 0; k < frac.size(); ++k)
                    scale *= 10;
                v += double(*fv) / scale;
                ++i;
            }
            if (neg)
                v = -v;
            const auto w = std::bit_cast<Word>(float(v));
            appendDataBytes({std::uint8_t(w & 0xff),
                             std::uint8_t((w >> 8) & 0xff),
                             std::uint8_t((w >> 16) & 0xff),
                             std::uint8_t((w >> 24) & 0xff)});
            if (toks[i].kind != TokenKind::Comma)
                break;
            ++i;
        }
    } else if (dir == ".space") {
        if (!inData()) {
            error(line_no, ".space only allowed inside .data");
            return;
        }
        if (auto v = expectInt()) {
            auto &seg = _dataSegs[*_dataSegment];
            seg.bytes.resize(seg.bytes.size() + std::size_t(*v), 0);
        }
    } else {
        error(line_no, "unknown directive '", dir, "'");
    }
}

void
AssemblerImpl::processInstruction(const std::vector<Token> &toks,
                                  std::size_t &i, unsigned line_no)
{
    if (inData()) {
        error(line_no, "instruction inside .data segment");
        return;
    }
    PendingInst pi;
    pi.line = line_no;
    pi.mnemonic = toLower(toks[i].text);
    ++i;
    pi.operands = parseOperands(toks, i, line_no);
    pi.addr = _loc;
    const unsigned size = instSize(pi);
    if (size == 0)
        return; // diagnostics already recorded
    _loc += size;
    _pending.push_back(std::move(pi));
}

std::vector<Operand>
AssemblerImpl::parseOperands(const std::vector<Token> &toks, std::size_t &i,
                             unsigned line_no)
{
    std::vector<Operand> ops;
    if (toks[i].kind == TokenKind::EndOfLine)
        return ops;
    while (true) {
        ops.push_back(parseOperand(toks, i, line_no));
        if (toks[i].kind != TokenKind::Comma)
            break;
        ++i;
    }
    if (toks[i].kind != TokenKind::EndOfLine)
        errorAt(toks[i], "trailing tokens after operands");
    return ops;
}

Operand
AssemblerImpl::parseOperand(const std::vector<Token> &toks, std::size_t &i,
                            unsigned line_no)
{
    Operand op{};
    const Token &t = toks[i];
    switch (t.kind) {
      case TokenKind::Reg:
        op.kind = Operand::Kind::Reg;
        op.reg = int(t.value);
        ++i;
        return op;
      case TokenKind::BReg:
        op.kind = Operand::Kind::BReg;
        op.reg = int(t.value);
        ++i;
        return op;
      case TokenKind::Int:
        op.kind = Operand::Kind::Imm;
        op.imm = t.value;
        ++i;
        return op;
      case TokenKind::Ident:
        op.kind = Operand::Kind::Sym;
        op.sym = t.text;
        ++i;
        return op;
      case TokenKind::LBracket: {
        ++i;
        if (toks[i].kind != TokenKind::Reg) {
            error(line_no, "memory operand must start with a register");
            op.kind = Operand::Kind::MemImm;
            while (toks[i].kind != TokenKind::RBracket &&
                   toks[i].kind != TokenKind::EndOfLine)
                ++i;
            if (toks[i].kind == TokenKind::RBracket)
                ++i;
            return op;
        }
        op.reg = int(toks[i].value);
        ++i;
        if (toks[i].kind == TokenKind::RBracket) {
            ++i;
            op.kind = Operand::Kind::MemImm;
            op.imm = 0;
            return op;
        }
        bool negative = false;
        if (toks[i].kind == TokenKind::Plus) {
            ++i;
        } else if (toks[i].kind == TokenKind::Minus) {
            negative = true;
            ++i;
        } else {
            error(line_no, "expected '+', '-' or ']' in memory operand");
        }
        if (toks[i].kind == TokenKind::Reg) {
            if (negative)
                error(line_no, "indexed addressing cannot be negative");
            op.kind = Operand::Kind::MemReg;
            op.index = int(toks[i].value);
            ++i;
        } else if (toks[i].kind == TokenKind::Int) {
            op.kind = Operand::Kind::MemImm;
            op.imm = negative ? -toks[i].value : toks[i].value;
            ++i;
        } else if (toks[i].kind == TokenKind::Ident) {
            op.kind = Operand::Kind::MemImm;
            op.sym = toks[i].text;
            if (negative)
                error(line_no, "symbolic displacement cannot be negated");
            ++i;
        } else {
            error(line_no, "bad memory operand");
            op.kind = Operand::Kind::MemImm;
        }
        if (toks[i].kind == TokenKind::RBracket)
            ++i;
        else
            error(line_no, "missing ']' in memory operand");
        return op;
      }
      default:
        errorAt(t, t.kind == TokenKind::EndOfLine
                       ? "missing operand"
                       : "unexpected token '" + t.text + "' in operand");
        // Never step past the end-of-line sentinel (a trailing comma
        // lands here with t already the last token).
        if (t.kind != TokenKind::EndOfLine)
            ++i;
        op.kind = Operand::Kind::Imm;
        return op;
    }
}

unsigned
AssemblerImpl::instSize(const PendingInst &pi) const
{
    if (_mode == isa::FormatMode::Fixed32)
        return 2 * parcelBytes;
    // Compact mode: memory forms pick their size from the operand.
    if (pi.mnemonic == "ld" || pi.mnemonic == "st") {
        if (!pi.operands.empty() &&
            pi.operands[0].kind == Operand::Kind::MemReg)
            return parcelBytes;
        return 2 * parcelBytes;
    }
    const auto op = isa::opcodeFromMnemonic(pi.mnemonic);
    if (!op)
        return 2 * parcelBytes; // error reported during encode
    return isa::opcodeInfo(*op).parcels * parcelBytes;
}

void
AssemblerImpl::encodeAll()
{
    // Resolve pending .word symbol references.
    for (const auto &ps : _dataSyms) {
        const auto v = _program.symbol(ps.sym);
        if (!v) {
            error(ps.line, "undefined symbol '", ps.sym, "'");
            continue;
        }
        auto &bytes = _dataSegs[ps.segment].bytes;
        const Word w = *v;
        bytes[ps.offset] = std::uint8_t(w & 0xff);
        bytes[ps.offset + 1] = std::uint8_t((w >> 8) & 0xff);
        bytes[ps.offset + 2] = std::uint8_t((w >> 16) & 0xff);
        bytes[ps.offset + 3] = std::uint8_t((w >> 24) & 0xff);
    }

    std::size_t pad_remaining = _codePad;
    for (const auto &pi : _pending) {
        // Emit any .org/.align padding owed before this instruction.
        while (_program.nextCodeAddr() < pi.addr && pad_remaining >= 2) {
            _program.appendParcels({0});
            pad_remaining -= 2;
        }
        if (_program.nextCodeAddr() != pi.addr) {
            error(pi.line, "internal layout mismatch");
            continue;
        }
        try {
            const isa::Instruction inst = buildInstruction(pi);
            _program.append(inst);
        } catch (const FatalError &e) {
            // Encoder-level errors (e.g. immediate range checks) know
            // nothing about source positions; attach the line here.
            std::string msg = e.what();
            if (msg.find("line ") == std::string::npos)
                msg = "line " + std::to_string(pi.line) + ": " + msg;
            _errors.push_back(std::move(msg));
        }
    }
}

isa::Instruction
AssemblerImpl::buildInstruction(const PendingInst &pi)
{
    using isa::Opcode;
    isa::Instruction inst;

    auto expect = [&](std::size_t n) {
        if (pi.operands.size() != n)
            fatal("line ", pi.line, ": '", pi.mnemonic, "' expects ", n,
                  " operand(s), got ", pi.operands.size());
    };
    auto reg = [&](std::size_t idx) -> std::uint8_t {
        const auto &op = pi.operands.at(idx);
        if (op.kind != Operand::Kind::Reg)
            fatal("line ", pi.line, ": operand ", idx + 1,
                  " must be a data register");
        return std::uint8_t(op.reg);
    };
    auto breg = [&](std::size_t idx) -> std::uint8_t {
        const auto &op = pi.operands.at(idx);
        if (op.kind != Operand::Kind::BReg)
            fatal("line ", pi.line, ": operand ", idx + 1,
                  " must be a branch register");
        return std::uint8_t(op.reg);
    };
    auto imm = [&](std::size_t idx) -> std::int32_t {
        return std::int32_t(resolveImm(pi.operands.at(idx), pi.line));
    };

    const auto opcode = isa::opcodeFromMnemonic(pi.mnemonic);
    if (!opcode)
        fatal("line ", pi.line, ": unknown mnemonic '", pi.mnemonic, "'");

    switch (*opcode) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra:
        expect(3);
        inst.op = *opcode;
        inst.rd = reg(0);
        inst.rs1 = reg(1);
        inst.rs2 = reg(2);
        break;
      case Opcode::Addi: case Opcode::Subi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Slli:
      case Opcode::Srli: case Opcode::Srai:
        expect(3);
        inst.op = *opcode;
        inst.rd = reg(0);
        inst.rs1 = reg(1);
        inst.imm = imm(2);
        break;
      case Opcode::Li:
      case Opcode::Lui:
        expect(2);
        inst.op = *opcode;
        inst.rd = reg(0);
        inst.imm = imm(1);
        break;
      case Opcode::Ld:
      case Opcode::LdX:
      case Opcode::St:
      case Opcode::StX: {
        expect(1);
        const auto &mop = pi.operands[0];
        const bool is_load = *opcode == Opcode::Ld || *opcode == Opcode::LdX;
        if (mop.kind == Operand::Kind::MemReg) {
            inst.op = is_load ? Opcode::LdX : Opcode::StX;
            inst.rs1 = std::uint8_t(mop.reg);
            inst.rs2 = std::uint8_t(mop.index);
        } else if (mop.kind == Operand::Kind::MemImm) {
            inst.op = is_load ? Opcode::Ld : Opcode::St;
            inst.rs1 = std::uint8_t(mop.reg);
            inst.imm = std::int32_t(resolveImm(mop, pi.line));
        } else {
            fatal("line ", pi.line, ": '", pi.mnemonic,
                  "' expects a memory operand");
        }
        break;
      }
      case Opcode::Mov: case Opcode::Not: case Opcode::Neg:
        expect(2);
        inst.op = *opcode;
        inst.rd = reg(0);
        inst.rs1 = reg(1);
        break;
      case Opcode::Lbr:
        expect(2);
        inst.op = Opcode::Lbr;
        inst.br = breg(0);
        inst.imm = imm(1);
        break;
      case Opcode::Pbr: {
        if (pi.operands.size() != 3 && pi.operands.size() != 4)
            fatal("line ", pi.line,
                  ": pbr expects 'bN, count, cond[, reg]'");
        inst.op = Opcode::Pbr;
        inst.br = breg(0);
        const auto count = resolveImm(pi.operands[1], pi.line);
        if (count < 0 || count > 7)
            fatal("line ", pi.line, ": pbr delay count must be 0..7");
        inst.count = std::uint8_t(count);
        const auto &cond_op = pi.operands[2];
        if (cond_op.kind != Operand::Kind::Sym)
            fatal("line ", pi.line, ": pbr condition must be a name");
        const auto cond = isa::condFromName(cond_op.sym);
        if (!cond)
            fatal("line ", pi.line, ": unknown condition '", cond_op.sym,
                  "'");
        inst.cond = *cond;
        if (inst.cond != isa::Cond::Always) {
            if (pi.operands.size() != 4)
                fatal("line ", pi.line,
                      ": conditional pbr needs a register operand");
            inst.rs1 = reg(3);
        } else if (pi.operands.size() == 4) {
            inst.rs1 = reg(3);
        }
        break;
      }
      case Opcode::Nop:
      case Opcode::Rsw:
      case Opcode::Halt:
        expect(0);
        inst.op = *opcode;
        break;
      default:
        fatal("line ", pi.line, ": unsupported mnemonic '", pi.mnemonic,
              "'");
    }
    return inst;
}

std::int64_t
AssemblerImpl::resolveImm(const Operand &op, unsigned line)
{
    switch (op.kind) {
      case Operand::Kind::Imm:
        return op.imm;
      case Operand::Kind::MemImm:
        if (op.sym.empty())
            return op.imm;
        [[fallthrough]];
      case Operand::Kind::Sym: {
        const std::string &name = op.sym;
        if (auto v = _program.symbol(name))
            return std::int64_t(*v);
        fatal("line ", line, ": undefined symbol '", name, "'");
      }
      default:
        fatal("line ", line, ": expected an immediate operand");
    }
}

} // namespace

Program
assemble(const std::string &source, isa::FormatMode mode, Addr code_base)
{
    AssemblerImpl impl(mode, code_base);
    return impl.run(source);
}

Program
assembleFile(const std::string &path, isa::FormatMode mode, Addr code_base)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return assemble(buf.str(), mode, code_base);
}

} // namespace pipesim::assembler
