/**
 * @file
 * Two-pass assembler for PIPE assembly source.
 *
 * Syntax overview:
 *
 *     ; comment                # comment
 *     .equ    N, 100           ; define a constant
 *     .entry  start             ; set the entry point
 *     start:                    ; label
 *         li   r1, table        ; symbols usable as immediates
 *         ld   [r1 + 4]         ; load  (LAQ push)
 *         ldx  [r1 + r2]        ; indexed load (or plain 'ld')
 *         st   [r1 + 0]         ; store (SAQ push)
 *         mov  r7, r2           ; SDQ push (store data)
 *         lbr  b0, loop         ; load branch register
 *         pbr  b0, 4, nez, r3   ; prepare-to-branch, 4 delay slots
 *         halt
 *     .data  0x4000             ; open a data segment
 *     table: .word 1, 2, 3
 *         .float 1.5, 2.5
 *         .space 16
 *     .text                     ; back to code
 *
 * All diagnostics carry line numbers; every error in the source is
 * reported in a single FatalError.
 */

#ifndef PIPESIM_ASSEMBLER_ASSEMBLER_HH
#define PIPESIM_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "assembler/program.hh"
#include "isa/encode.hh"

namespace pipesim::assembler
{

/**
 * Assemble PIPE assembly source text into a Program.
 *
 * @param source    Full assembly source.
 * @param mode      Instruction format to encode with.
 * @param code_base Address of the first instruction.
 * @throws FatalError listing every diagnostic if the source is
 *         malformed.
 */
Program assemble(const std::string &source,
                 isa::FormatMode mode = isa::FormatMode::Fixed32,
                 Addr code_base = 0);

/** Assemble the contents of the file at @p path. */
Program assembleFile(const std::string &path,
                     isa::FormatMode mode = isa::FormatMode::Fixed32,
                     Addr code_base = 0);

} // namespace pipesim::assembler

#endif // PIPESIM_ASSEMBLER_ASSEMBLER_HH
