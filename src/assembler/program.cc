#include "assembler/program.hh"

#include "common/log.hh"

namespace pipesim
{

Program::Program(isa::FormatMode mode, Addr code_base)
    : _mode(mode), _codeBase(code_base), _entry(code_base)
{
    PIPESIM_ASSERT(code_base % parcelBytes == 0,
                   "code base must be parcel aligned");
}

Addr
Program::append(const isa::Instruction &inst)
{
    return appendParcels(isa::encode(inst, _mode));
}

Addr
Program::appendParcels(const std::vector<Parcel> &parcels)
{
    const Addr at = nextCodeAddr();
    for (Parcel p : parcels) {
        _code.push_back(std::uint8_t(p & 0xff));
        _code.push_back(std::uint8_t(p >> 8));
    }
    return at;
}

void
Program::patchParcel(Addr addr, Parcel value)
{
    PIPESIM_ASSERT(inCode(addr) && addr % parcelBytes == 0,
                   "patch address out of range");
    const std::size_t off = addr - _codeBase;
    _code[off] = std::uint8_t(value & 0xff);
    _code[off + 1] = std::uint8_t(value >> 8);
}

Parcel
Program::parcelAt(Addr addr) const
{
    PIPESIM_ASSERT(addr % parcelBytes == 0,
                   "unaligned parcel address ", addr);
    if (!inCode(addr))
        return 0;
    const std::size_t off = addr - _codeBase;
    return Parcel(_code[off] | (Parcel(_code[off + 1]) << 8));
}

std::optional<isa::Instruction>
Program::decodeAt(Addr addr) const
{
    if (!inCode(addr))
        return std::nullopt;
    const Parcel p1 = parcelAt(addr);
    const unsigned parcels = isa::instParcels(p1, _mode);
    const Parcel p2 = parcels > 1 ? parcelAt(addr + parcelBytes) : Parcel(0);
    return isa::decode(p1, p2, _mode);
}

void
Program::defineSymbol(const std::string &name, Addr value)
{
    if (_symbols.count(name))
        fatal("symbol '", name, "' redefined");
    _symbols.emplace(name, value);
}

std::optional<Addr>
Program::symbol(const std::string &name) const
{
    auto it = _symbols.find(name);
    if (it == _symbols.end())
        return std::nullopt;
    return it->second;
}

void
Program::addDataSegment(Addr base, std::vector<std::uint8_t> bytes)
{
    _data.push_back(DataSegment{base, std::move(bytes)});
}

void
Program::addDataWords(Addr base, const std::vector<Word> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * wordBytes);
    for (Word w : words) {
        bytes.push_back(std::uint8_t(w & 0xff));
        bytes.push_back(std::uint8_t((w >> 8) & 0xff));
        bytes.push_back(std::uint8_t((w >> 16) & 0xff));
        bytes.push_back(std::uint8_t((w >> 24) & 0xff));
    }
    addDataSegment(base, std::move(bytes));
}

} // namespace pipesim
