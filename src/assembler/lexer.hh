/**
 * @file
 * Line-oriented tokenizer for PIPE assembly source.
 *
 * Comments start with ';' or '#' and run to end of line.
 */

#ifndef PIPESIM_ASSEMBLER_LEXER_HH
#define PIPESIM_ASSEMBLER_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pipesim::assembler
{

/** Token categories produced by the lexer. */
enum class TokenKind
{
    Ident,     //!< mnemonic, label or symbol name
    Reg,       //!< data register r0..r7
    BReg,      //!< branch register b0..b7
    Int,       //!< integer literal (dec/hex/bin)
    Comma,
    Colon,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Directive, //!< ".word", ".org", ...
    EndOfLine,
};

/** One lexical token with its source position. */
struct Token
{
    TokenKind kind;
    std::string text;        //!< raw text (idents, directives)
    std::int64_t value = 0;  //!< integer value (Int, Reg, BReg)
    unsigned line = 0;
    unsigned column = 0;
};

/**
 * Tokenize one line of assembly.
 *
 * @param line_text  Source text without the trailing newline.
 * @param line_no    1-based line number (recorded into tokens).
 * @return tokens, terminated by an EndOfLine token.
 * @throws FatalError on characters that cannot start any token.
 */
std::vector<Token> tokenizeLine(const std::string &line_text,
                                unsigned line_no);

} // namespace pipesim::assembler

#endif // PIPESIM_ASSEMBLER_LEXER_HH
