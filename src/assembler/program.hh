/**
 * @file
 * The assembled program image: encoded instruction bytes, initialised
 * data segments and a symbol table.
 *
 * The simulated machine has a single byte-addressed address space
 * served by the external cache.  By convention code sits at low
 * addresses, data above it, and the memory-mapped FPU at the top
 * (see mem/fpu.hh).
 */

#ifndef PIPESIM_ASSEMBLER_PROGRAM_HH
#define PIPESIM_ASSEMBLER_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"
#include "isa/instruction.hh"

namespace pipesim
{

/**
 * An assembled (or generated) PIPE program.
 */
class Program
{
  public:
    explicit Program(isa::FormatMode mode = isa::FormatMode::Fixed32,
                     Addr code_base = 0);

    isa::FormatMode mode() const { return _mode; }
    Addr codeBase() const { return _codeBase; }

    /** Address of the next instruction to be appended. */
    Addr nextCodeAddr() const
    {
        return _codeBase + Addr(_code.size());
    }

    /** Total code size in bytes. */
    std::size_t codeSize() const { return _code.size(); }

    /** Append one instruction; @return its address. */
    Addr append(const isa::Instruction &inst);

    /** Append raw parcels (used by the assembler back end). */
    Addr appendParcels(const std::vector<Parcel> &parcels);

    /** Overwrite the already-appended parcel at byte address @p addr. */
    void patchParcel(Addr addr, Parcel value);

    /** The parcel at byte address @p addr (must be parcel aligned). */
    Parcel parcelAt(Addr addr) const;

    /** True if @p addr lies inside the code image. */
    bool inCode(Addr addr) const
    {
        return addr >= _codeBase && addr < _codeBase + _code.size();
    }

    /**
     * Decode the instruction at @p addr.
     * @return nullopt when @p addr is outside the code image.
     */
    std::optional<isa::Instruction> decodeAt(Addr addr) const;

    /** Raw code bytes (little-endian parcels). */
    const std::vector<std::uint8_t> &code() const { return _code; }

    /** Define symbol @p name = @p value. Redefinition is fatal. */
    void defineSymbol(const std::string &name, Addr value);

    /** Look up a symbol. */
    std::optional<Addr> symbol(const std::string &name) const;

    const std::map<std::string, Addr> &symbols() const { return _symbols; }

    /**
     * Add an initialised data segment (copied into simulated memory
     * before the run starts).
     */
    void addDataSegment(Addr base, std::vector<std::uint8_t> bytes);

    /** Convenience: add a segment of 32-bit words. */
    void addDataWords(Addr base, const std::vector<Word> &words);

    struct DataSegment
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };

    const std::vector<DataSegment> &dataSegments() const { return _data; }

    Addr entry() const { return _entry; }
    void setEntry(Addr entry) { _entry = entry; }

  private:
    isa::FormatMode _mode;
    Addr _codeBase;
    Addr _entry;
    std::vector<std::uint8_t> _code;
    std::map<std::string, Addr> _symbols;
    std::vector<DataSegment> _data;
};

} // namespace pipesim

#endif // PIPESIM_ASSEMBLER_PROGRAM_HH
