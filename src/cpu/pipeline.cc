#include "cpu/pipeline.hh"

#include <ostream>

#include "common/log.hh"
#include "isa/opcodes.hh"

namespace pipesim
{

using isa::Cond;
using isa::Opcode;

Pipeline::Pipeline(const PipelineConfig &config, FetchUnit &fetch,
                   MemorySystem &mem)
    : _cfg(config), _fetch(fetch), _mem(mem), _dataPort(*this),
      _queues(config.laqEntries, config.ldqEntries, config.saqEntries,
              config.sdqEntries)
{
    _mem.setDataClient(&_dataPort);
}

Pipeline::~Pipeline()
{
    _mem.setDataClient(nullptr);
}

bool
Pipeline::drained() const
{
    return _queues.laq().empty() && _queues.saq().empty() &&
           _queues.sdq().empty() && _loadsIssued == _loadsDelivered;
}

std::optional<MemRequest>
Pipeline::peekDataOp()
{
    const auto &laq = _queues.laq();
    const auto &saq = _queues.saq();
    const bool have_load = !laq.empty();
    const bool have_store = !saq.empty();
    if (!have_load && !have_store)
        return std::nullopt;

    bool pick_load;
    if (have_load && have_store)
        pick_load = laq.front().seq < saq.front().seq;
    else
        pick_load = have_load;

    MemRequest req;
    req.cls = ReqClass::Data;
    req.bytes = wordBytes;
    if (pick_load) {
        req.addr = laq.front().addr;
        req.isStore = false;
        req.dataSeq = _loadsAccepted;
        req.onData = [this](Word value) {
            PIPESIM_ASSERT(!_queues.ldq().full(),
                           "LDQ overflow: reservation logic broken");
            _queues.ldq().push(value);
            ++_loadsDelivered;
        };
    } else {
        // A store needs its data; program order blocks behind it
        // until the SDQ entry is produced.
        if (_queues.sdq().empty())
            return std::nullopt;
        req.addr = saq.front().addr;
        req.isStore = true;
        req.storeData = _queues.sdq().front();
    }
    return req;
}

void
Pipeline::dataOpAccepted()
{
    auto &laq = _queues.laq();
    auto &saq = _queues.saq();
    const bool have_load = !laq.empty();
    const bool have_store = !saq.empty();
    PIPESIM_ASSERT(have_load || have_store, "acceptance with empty queues");
    bool pick_load;
    if (have_load && have_store)
        pick_load = laq.front().seq < saq.front().seq;
    else
        pick_load = have_load;

    if (pick_load) {
        laq.pop();
        ++_loadsAccepted;
    } else {
        saq.pop();
        _queues.sdq().pop();
    }
}

std::optional<MemRequest>
Pipeline::DataPort::peek()
{
    return _owner.peekDataOp();
}

void
Pipeline::DataPort::accepted()
{
    _owner.dataOpAccepted();
}

Pipeline::StallReason
Pipeline::issueHazard(const isa::Instruction &inst, Cycle now) const
{
    unsigned ldq_pops = 0;
    for (std::uint8_t r : inst.srcRegs()) {
        if (r == isa::queueReg) {
            ++ldq_pops;
        } else if (_regs.busyUntil(r) > now) {
            return StallReason::RegBusy;
        }
    }
    if (ldq_pops > _queues.ldq().size())
        return StallReason::LdqEmpty;
    if (inst.pushesSdq() && _queues.sdq().full())
        return StallReason::SdqFull;
    if (inst.isLoad()) {
        if (_queues.laq().full())
            return StallReason::LaqFull;
        // Reserve an LDQ slot: entries present, minus the ones this
        // instruction pops, plus loads still in flight, plus this one.
        const std::size_t in_flight = _loadsIssued - _loadsDelivered;
        if (_queues.ldq().size() - ldq_pops + in_flight + 1 >
            _queues.ldq().capacity())
            return StallReason::LdqReserved;
    }
    if (inst.isStore() && _queues.saq().full())
        return StallReason::SaqFull;
    return StallReason::None;
}

Word
Pipeline::readSource(unsigned r)
{
    if (r == isa::queueReg)
        return _queues.ldq().pop();
    return _regs.read(r);
}

void
Pipeline::execute(const isa::FetchedInst &fi, Cycle now)
{
    const isa::Instruction &inst = fi.inst;
    const auto &info = isa::opcodeInfo(inst.op);

    Word a = 0;
    Word b = 0;
    if (info.hasRs1 || (inst.op == Opcode::Pbr && inst.cond != Cond::Always))
        a = readSource(inst.rs1);
    if (info.hasRs2)
        b = readSource(inst.rs2);

    const Word imm = Word(inst.imm);
    // Logical immediates are zero-extended (so lui+ori can build full
    // 32-bit constants); arithmetic immediates are sign-extended.
    const Word uimm = imm & 0xffff;
    std::optional<Word> result;

    switch (inst.op) {
      case Opcode::Add: result = a + b; break;
      case Opcode::Sub: result = a - b; break;
      case Opcode::And: result = a & b; break;
      case Opcode::Or: result = a | b; break;
      case Opcode::Xor: result = a ^ b; break;
      case Opcode::Sll: result = a << (b & 31); break;
      case Opcode::Srl: result = a >> (b & 31); break;
      case Opcode::Sra: result = Word(SWord(a) >> (b & 31)); break;
      case Opcode::Addi: result = a + imm; break;
      case Opcode::Subi: result = a - imm; break;
      case Opcode::Andi: result = a & uimm; break;
      case Opcode::Ori: result = a | uimm; break;
      case Opcode::Xori: result = a ^ uimm; break;
      case Opcode::Slli: result = a << (imm & 31); break;
      case Opcode::Srli: result = a >> (imm & 31); break;
      case Opcode::Srai: result = Word(SWord(a) >> (imm & 31)); break;
      case Opcode::Li: result = imm; break;
      case Opcode::Lui: result = imm << 16; break;
      case Opcode::Mov: result = a; break;
      case Opcode::Not: result = ~a; break;
      case Opcode::Neg: result = Word(-SWord(a)); break;
      case Opcode::Ld:
      case Opcode::LdX: {
        const Addr addr = a + (inst.op == Opcode::Ld ? imm : b);
        _queues.laq().push(PendingAccess{_memOpSeq++, addr});
        ++_loadsIssued;
        ++_loads;
        break;
      }
      case Opcode::St:
      case Opcode::StX: {
        const Addr addr = a + (inst.op == Opcode::St ? imm : b);
        _queues.saq().push(PendingAccess{_memOpSeq++, addr});
        ++_stores;
        break;
      }
      case Opcode::Lbr:
        _regs.writeBranch(inst.br, Addr(inst.imm) & 0xffff);
        break;
      case Opcode::Pbr: {
        bool taken = false;
        const SWord v = SWord(a);
        switch (inst.cond) {
          case Cond::Always: taken = true; break;
          case Cond::Eqz: taken = v == 0; break;
          case Cond::Nez: taken = v != 0; break;
          case Cond::Ltz: taken = v < 0; break;
          case Cond::Gez: taken = v >= 0; break;
          case Cond::Gtz: taken = v > 0; break;
          case Cond::Lez: taken = v <= 0; break;
        }
        if (taken)
            ++_pbrTaken;
        else
            ++_pbrNotTaken;
        _pendingResolve = Resolve{taken, _regs.readBranch(inst.br)};
        break;
      }
      case Opcode::Rsw:
        _regs.switchBanks();
        break;
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        _halted = true;
        _haltCycle = now;
        break;
      default:
        panic("unexecutable opcode ", unsigned(inst.op));
    }

    if (result && info.hasRd) {
        if (inst.rd == isa::queueReg) {
            _queues.sdq().push(*result);
        } else {
            _regs.write(inst.rd, *result);
            _regs.setBusyUntil(inst.rd, now + _cfg.aluLatency);
        }
    }
}

void
Pipeline::tick(Cycle now)
{
    // 1. PBR direction returns from ALU1 (one cycle after issue).
    if (_pendingResolve) {
        _fetch.branchResolved(_pendingResolve->taken,
                              _pendingResolve->target);
        _pendingResolve.reset();
    }

    _queues.sampleOccupancy();
    if (_probes && _probes->queueSample.active()) {
        _probes->queueSample.notify(obs::QueueSampleEvent{
            now, std::uint8_t(_queues.laq().size()),
            std::uint8_t(_queues.ldq().size()),
            std::uint8_t(_queues.saq().size()),
            std::uint8_t(_queues.sdq().size())});
    }

    // Cycle accounting: every tick is attributed to exactly one
    // class.  The tick on which HALT issues starts the drain phase,
    // so the non-Drain classes sum exactly to haltCycle().
    obs::CycleClass cls = obs::CycleClass::FetchStarve;

    // 2. Issue at most one instruction.
    if (_halted) {
        cls = obs::CycleClass::Drain;
    } else if (_issueLatch) {
        const StallReason hazard = issueHazard(_issueLatch->inst, now);
        switch (hazard) {
          case StallReason::None:
            execute(*_issueLatch, now);
            ++_retired;
            cls = _halted ? obs::CycleClass::Drain
                          : obs::CycleClass::Issue;
            if (_probes && _probes->retire.active())
                _probes->retire.notify(obs::RetireEvent{now, *_issueLatch});
            _issueLatch.reset();
            break;
          case StallReason::RegBusy:
            ++_issueStallRegBusy;
            cls = obs::CycleClass::RegBusy;
            break;
          case StallReason::LdqEmpty:
            ++_issueStallLdqEmpty;
            cls = obs::CycleClass::LoadDataWait;
            break;
          case StallReason::SdqFull:
            ++_issueStallSdqFull;
            cls = obs::CycleClass::QueueFull;
            break;
          case StallReason::LaqFull:
            ++_issueStallLaqFull;
            cls = obs::CycleClass::QueueFull;
            break;
          case StallReason::LdqReserved:
            ++_issueStallLdqReserved;
            cls = obs::CycleClass::QueueFull;
            break;
          case StallReason::SaqFull:
            ++_issueStallSaqFull;
            cls = obs::CycleClass::QueueFull;
            break;
        }
    }

    // 3. Advance the decode latch into the issue latch.
    if (!_issueLatch && _idLatch) {
        _issueLatch = _idLatch;
        _idLatch.reset();
    }

    // 4. Fetch into the decode latch.
    if (!_halted && !_idLatch) {
        if (_fetch.instructionReady())
            _idLatch = _fetch.take();
        else
            ++_fetchStarveCycles;
    }

    if (_probes)
        _probes->cycleClass.notify(obs::CycleClassEvent{now, cls});
}

void
Pipeline::dumpState(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "pipeline: " << (_halted ? "halted" : "running")
       << ", retired " << _retired.value() << " instruction(s)";
    if (_halted)
        os << " (HALT issued at cycle " << _haltCycle << ")";
    os << "\n";
    const auto latch = [&os](const char *name,
                             const std::optional<isa::FetchedInst> &l) {
        os << "  " << name << ": ";
        if (l)
            os << isa::mnemonic(l->inst.op) << " @ 0x" << std::hex
               << l->pc << std::dec;
        else
            os << "empty";
        os << "\n";
    };
    latch("decode latch", _idLatch);
    latch("issue latch", _issueLatch);
    if (_pendingResolve)
        os << "  pending branch resolution: "
           << (_pendingResolve->taken ? "taken" : "not taken") << "\n";
    os << "  queues: laq " << _queues.laq().size() << "/"
       << _queues.laq().capacity() << ", ldq " << _queues.ldq().size()
       << "/" << _queues.ldq().capacity() << ", saq "
       << _queues.saq().size() << "/" << _queues.saq().capacity()
       << ", sdq " << _queues.sdq().size() << "/"
       << _queues.sdq().capacity() << "\n";
    os << "  loads issued/accepted/delivered: " << _loadsIssued << "/"
       << _loadsAccepted << "/" << _loadsDelivered << "\n";
    os.flags(flags);
}

void
Pipeline::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".retired", &_retired,
                     "instructions issued/retired");
    stats.regCounter(prefix + ".stall_reg_busy", &_issueStallRegBusy,
                     "issue stalls on a busy register");
    stats.regCounter(prefix + ".stall_ldq_empty", &_issueStallLdqEmpty,
                     "issue stalls waiting for load data (r7)");
    stats.regCounter(prefix + ".stall_sdq_full", &_issueStallSdqFull,
                     "issue stalls on a full store data queue");
    stats.regCounter(prefix + ".stall_laq_full", &_issueStallLaqFull,
                     "issue stalls on a full load address queue");
    stats.regCounter(prefix + ".stall_ldq_reserved",
                     &_issueStallLdqReserved,
                     "issue stalls with no LDQ slot to reserve");
    stats.regCounter(prefix + ".stall_saq_full", &_issueStallSaqFull,
                     "issue stalls on a full store address queue");
    stats.regCounter(prefix + ".fetch_starve_cycles", &_fetchStarveCycles,
                     "cycles the decoder had no instruction available");
    stats.regCounter(prefix + ".loads", &_loads, "load instructions");
    stats.regCounter(prefix + ".stores", &_stores, "store instructions");
    stats.regCounter(prefix + ".pbr_taken", &_pbrTaken,
                     "prepare-to-branch instructions taken");
    stats.regCounter(prefix + ".pbr_not_taken", &_pbrNotTaken,
                     "prepare-to-branch instructions not taken");
    _queues.regStats(stats, prefix + ".queues");
}

} // namespace pipesim
