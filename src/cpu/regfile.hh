/**
 * @file
 * The PIPE register file: sixteen 32-bit data registers arranged as
 * 8 foreground + 8 background (switched by RSW to speed subroutine
 * calls), plus the 8 branch registers used by LBR/PBR.
 *
 * Register r7 of the visible bank is the architectural queue
 * register; the pipeline intercepts reads/writes of it (LDQ/SDQ), so
 * its storage here is never used.
 */

#ifndef PIPESIM_CPU_REGFILE_HH
#define PIPESIM_CPU_REGFILE_HH

#include <array>

#include "common/state_io.hh"
#include "common/types.hh"
#include "isa/fields.hh"

namespace pipesim
{

class RegFile
{
  public:
    RegFile() { reset(); }

    void reset();

    /** Read data register @p r of the visible bank. */
    Word read(unsigned r) const;

    /** Write data register @p r of the visible bank. */
    void write(unsigned r, Word value);

    /** Cycle until which register @p r is busy (result latency). */
    Cycle busyUntil(unsigned r) const;
    void setBusyUntil(unsigned r, Cycle cycle);

    /** Toggle foreground/background banks (the RSW instruction). */
    void switchBanks() { _bank ^= 1; }
    unsigned currentBank() const { return _bank; }

    Addr readBranch(unsigned br) const;
    void writeBranch(unsigned br, Addr value);

    void saveState(StateWriter &w) const
    {
        for (Word v : _regs)
            w.u32(v);
        for (Cycle c : _busy)
            w.u64(c);
        for (Addr a : _branch)
            w.u32(a);
        w.u32(_bank);
    }

    void restoreState(StateReader &r)
    {
        for (Word &v : _regs)
            v = r.u32();
        for (Cycle &c : _busy)
            c = r.u64();
        for (Addr &a : _branch)
            a = r.u32();
        _bank = r.u32();
        if (_bank > 1)
            r.fail("register bank holds ", _bank);
    }

  private:
    unsigned index(unsigned r) const;

    std::array<Word, 2 * isa::numDataRegs> _regs;
    std::array<Cycle, 2 * isa::numDataRegs> _busy;
    std::array<Addr, isa::numBranchRegs> _branch;
    unsigned _bank = 0;
};

} // namespace pipesim

#endif // PIPESIM_CPU_REGFILE_HH
