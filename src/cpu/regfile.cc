#include "cpu/regfile.hh"

#include "common/log.hh"

namespace pipesim
{

void
RegFile::reset()
{
    _regs.fill(0);
    _busy.fill(0);
    _branch.fill(0);
    _bank = 0;
}

unsigned
RegFile::index(unsigned r) const
{
    PIPESIM_ASSERT(r < isa::numDataRegs, "bad register number ", r);
    return _bank * isa::numDataRegs + r;
}

Word
RegFile::read(unsigned r) const
{
    return _regs[index(r)];
}

void
RegFile::write(unsigned r, Word value)
{
    _regs[index(r)] = value;
}

Cycle
RegFile::busyUntil(unsigned r) const
{
    return _busy[index(r)];
}

void
RegFile::setBusyUntil(unsigned r, Cycle cycle)
{
    _busy[index(r)] = cycle;
}

Addr
RegFile::readBranch(unsigned br) const
{
    PIPESIM_ASSERT(br < isa::numBranchRegs, "bad branch register ", br);
    return _branch[br];
}

void
RegFile::writeBranch(unsigned br, Addr value)
{
    PIPESIM_ASSERT(br < isa::numBranchRegs, "bad branch register ", br);
    _branch[br] = value;
}

} // namespace pipesim
