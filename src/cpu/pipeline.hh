/**
 * @file
 * The PIPE processor pipeline: Instruction Fetch, Instruction Decode,
 * Instruction Issue, ALU1, ALU2 (paper section 3).
 *
 * The model is execution driven: instructions really execute (ALU
 * results, loads/stores against the backing store, IEEE-754 floating
 * point through the memory-mapped FPU), so kernel outputs can be
 * validated against host references while cycle counts are measured.
 *
 * Issue semantics (the timing-relevant part):
 *  - one instruction issues per cycle, in order;
 *  - reading r7 pops the Load Data Queue and stalls while it is
 *    empty; writing r7 pushes the Store Data Queue and stalls while
 *    it is full;
 *  - loads push the Load Address Queue (stalling when it, or the LDQ
 *    reservation window, is full); stores push the Store Address
 *    Queue;
 *  - ALU results are fully bypassed (a dependent instruction may
 *    issue the next cycle); the latency is configurable;
 *  - a PBR evaluates its condition in ALU1, i.e. the fetch unit
 *    learns the direction one cycle after the PBR issues.
 *
 * The Load/Store address queues drain to the memory system through a
 * MemClient in program order (conservative memory-conflict handling,
 * which the Livermore recurrences rely on); data returns fill the
 * LDQ strictly in load order.
 */

#ifndef PIPESIM_CPU_PIPELINE_HH
#define PIPESIM_CPU_PIPELINE_HH

#include <iosfwd>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/fetch_unit.hh"
#include "cpu/regfile.hh"
#include "isa/instruction.hh"
#include "mem/memory_system.hh"
#include "obs/probe.hh"
#include "queue/arch_queues.hh"

namespace pipesim
{

/** Processor-side configuration. */
struct PipelineConfig
{
    std::size_t laqEntries = 8;
    std::size_t ldqEntries = 8;
    std::size_t saqEntries = 8;
    std::size_t sdqEntries = 8;
    unsigned aluLatency = 1; //!< cycles until a result is readable
};

class Pipeline
{
  public:
    Pipeline(const PipelineConfig &config, FetchUnit &fetch,
             MemorySystem &mem);
    ~Pipeline();

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    /** Advance one cycle (called after the memory and fetch ticks). */
    void tick(Cycle now);

    /** @return true once HALT has issued. */
    bool halted() const { return _halted; }

    /** @return true if all queues have drained after HALT. */
    bool drained() const;

    std::uint64_t instructionsRetired() const { return _retired.value(); }

    /** Cycle at which HALT issued (valid once halted()). */
    Cycle haltCycle() const { return _haltCycle; }

    RegFile &regs() { return _regs; }
    const RegFile &regs() const { return _regs; }
    ArchQueues &queues() { return _queues; }

    /**
     * Attach the probe bus the pipeline emits into: one CycleClass
     * per tick, one RetireEvent per issued instruction, and per-cycle
     * queue occupancy samples.  Pass nullptr to detach.
     */
    void setProbes(obs::ProbeBus *probes) { _probes = probes; }

    /** Write the pipeline state (forensic snapshots). */
    void dumpState(std::ostream &os) const;

    void regStats(StatGroup &stats, const std::string &prefix);

  private:
    /** MemClient presenting LAQ/SAQ traffic in program order. */
    class DataPort : public MemClient
    {
      public:
        explicit DataPort(Pipeline &owner) : _owner(owner) {}
        std::optional<MemRequest> peek() override;
        void accepted() override;

      private:
        Pipeline &_owner;
    };

    /** Why issue stalled this cycle (for statistics). */
    enum class StallReason
    {
        None,
        RegBusy,
        LdqEmpty,
        SdqFull,
        LaqFull,
        LdqReserved,
        SaqFull,
    };

    StallReason issueHazard(const isa::Instruction &inst, Cycle now) const;
    void execute(const isa::FetchedInst &fi, Cycle now);
    Word readSource(unsigned r);

    std::optional<MemRequest> peekDataOp();
    void dataOpAccepted();

    PipelineConfig _cfg;
    FetchUnit &_fetch;
    MemorySystem &_mem;
    DataPort _dataPort;

    RegFile _regs;
    ArchQueues _queues;

    std::optional<isa::FetchedInst> _idLatch;
    std::optional<isa::FetchedInst> _issueLatch;

    struct Resolve
    {
        bool taken;
        Addr target;
    };
    std::optional<Resolve> _pendingResolve;

    /**
     * Trace-relevant outcomes of the most recent execute(), copied
     * into the RetireEvent emitted for that instruction (the effective
     * address and branch resolution are computed inside execute() and
     * are otherwise invisible to listeners).
     */
    struct ExecAnnotation
    {
        bool hasMemAddr = false;
        bool memIsStore = false;
        Addr memAddr = 0;
        bool hasBranch = false;
        bool branchTaken = false;
        Addr branchTarget = 0;
    };
    ExecAnnotation _execNote;

    bool _halted = false;
    Cycle _haltCycle = 0;
    obs::ProbeBus *_probes = nullptr;

    std::uint64_t _memOpSeq = 0;     //!< program order of ld/st ops
    std::uint64_t _loadsAccepted = 0; //!< loads sent to memory
    std::uint64_t _loadsIssued = 0;
    std::uint64_t _loadsDelivered = 0;

    Counter _retired;
    Counter _issueStallRegBusy;
    Counter _issueStallLdqEmpty;
    Counter _issueStallSdqFull;
    Counter _issueStallLaqFull;
    Counter _issueStallLdqReserved;
    Counter _issueStallSaqFull;
    Counter _fetchStarveCycles;
    Counter _branchBlockCycles;
    Counter _loads;
    Counter _stores;
    Counter _pbrTaken;
    Counter _pbrNotTaken;
};

} // namespace pipesim

#endif // PIPESIM_CPU_PIPELINE_HH
