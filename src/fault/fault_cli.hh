/**
 * @file
 * Shared --fi-* command-line options for the examples and benches,
 * mirroring the obs/obs_cli.hh pattern: addFaultOptions() registers
 * the options, faultConfigFromCli() builds the FaultConfig.
 */

#ifndef PIPESIM_FAULT_FAULT_CLI_HH
#define PIPESIM_FAULT_FAULT_CLI_HH

#include "common/log.hh"
#include "fault/fault.hh"
#include "sim/cli.hh"

namespace pipesim::fault
{

/** Register --fi-kind / --fi-seed / --fi-rate on @p cli. */
inline void
addFaultOptions(CliParser &cli)
{
    cli.addOption("fi-kind", "none",
                  "fault kinds to inject: none, all, or a comma list "
                  "of latency, grant, parity");
    cli.addOption("fi-seed", "1", "deterministic fault-injection seed");
    cli.addOption("fi-rate", "0.01",
                  "per-opportunity fault probability in [0,1]");
}

/** Build the FaultConfig the parsed --fi-* options describe. */
inline FaultConfig
faultConfigFromCli(const CliParser &cli)
{
    FaultConfig cfg;
    cfg.kinds = faultKindsFromString(cli.get("fi-kind"));
    const std::int64_t seed = cli.getInt("fi-seed");
    if (seed < 0)
        fatal("--fi-seed must be >= 0, got ", seed);
    cfg.seed = std::uint64_t(seed);
    cfg.rate = cli.getDouble("fi-rate");
    if (cfg.rate < 0.0 || cfg.rate > 1.0)
        fatal("--fi-rate must be in [0,1], got ", cfg.rate);
    return cfg;
}

} // namespace pipesim::fault

#endif // PIPESIM_FAULT_FAULT_CLI_HH
