/**
 * @file
 * Deterministic fault injection for the memory system and bus
 * arbiter.
 *
 * The injector is a seeded pseudo-random decision source the memory
 * system consults at three points:
 *
 *  - responseJitter(): extra cycles added to an external-memory
 *    response (latency jitter);
 *  - delayGrant():     refuse an output-bus grant for one cycle
 *    (delayed grants; at rate 1.0 nothing is ever granted, which
 *    forces a clean deadlock for the forensics tests);
 *  - corruptFill():    corrupt an instruction-fill transfer (a fill
 *    parity error).  The corrupted beats never reach the cache or
 *    the decoder; the fetch unit is told via
 *    MemRequest::onParityError and retries the fill up to
 *    FetchConfig::parityRetryLimit times before raising SimAbort.
 *
 * Decisions are a pure function of (seed, call sequence), and the
 * call sequence is a pure function of the simulated machine, so a
 * faulty run is exactly reproducible.  Sweeps derive one seed per
 * point from (base seed, strategy, cache size) -- see
 * derivePointSeed() -- so results are independent of worker count
 * and sweep composition.
 *
 * Besides proving the recovery paths under test, the injector opens
 * a degraded-memory resilience study: how do the IQ/IQB strategies
 * and the conventional cache compare when memory timing is noisy?
 */

#ifndef PIPESIM_FAULT_FAULT_HH
#define PIPESIM_FAULT_FAULT_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"

namespace pipesim::fault
{

/** Individually selectable fault kinds (combine as a bitmask). */
enum FaultKind : unsigned
{
    None = 0,
    Latency = 1u << 0, //!< response-latency jitter on external memory
    Grant = 1u << 1,   //!< delayed output-bus grants
    Parity = 1u << 2,  //!< corrupted instruction-fill transfers
    All = Latency | Grant | Parity,
};

/**
 * Parse a --fi-kind value: "none", "all", or a comma-separated list
 * of "latency", "grant", "parity".
 * @throws FatalError for an unknown kind name.
 */
unsigned faultKindsFromString(const std::string &s);

/** Render a kind mask back to its canonical comma list. */
std::string faultKindsToString(unsigned kinds);

/** Fault-injection configuration (--fi-seed / --fi-rate / --fi-kind). */
struct FaultConfig
{
    unsigned kinds = None;  //!< FaultKind bitmask
    std::uint64_t seed = 1; //!< deterministic stream seed
    double rate = 0.01;     //!< per-opportunity injection probability

    /** Upper bound on the extra cycles one response may gain. */
    unsigned maxLatencyJitter = 8;

    /** @return true if any fault can actually fire. */
    bool enabled() const { return kinds != None && rate > 0.0; }
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Extra response cycles for a request entering external memory. */
    unsigned responseJitter();

    /** @return true to refuse this cycle's output-bus grant. */
    bool delayGrant();

    /** @return true to corrupt this instruction-fill transfer. */
    bool corruptFill();

    const FaultConfig &config() const { return _cfg; }

    void regStats(StatGroup &stats, const std::string &prefix);

    std::uint64_t latencyFaults() const { return _latencyFaults.value(); }
    std::uint64_t grantDelays() const { return _grantDelays.value(); }
    std::uint64_t parityFaults() const { return _parityFaults.value(); }

    /**
     * Derive the injection seed for one sweep point from the sweep's
     * base seed.  Each point gets an independent, reproducible fault
     * stream that depends only on its identity -- never on worker
     * count, completion order, or which other points are swept.
     */
    static std::uint64_t derivePointSeed(std::uint64_t base,
                                         const std::string &strategy,
                                         unsigned cache_bytes);

  private:
    /** Advance the splitmix64 stream. */
    std::uint64_t next();

    /** One Bernoulli(rate) draw. */
    bool roll();

    FaultConfig _cfg;
    std::uint64_t _state;

    Counter _latencyFaults;
    Counter _jitterCycles;
    Counter _grantDelays;
    Counter _parityFaults;
};

} // namespace pipesim::fault

#endif // PIPESIM_FAULT_FAULT_HH
