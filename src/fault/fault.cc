#include "fault/fault.hh"

#include <sstream>

#include "common/log.hh"

namespace pipesim::fault
{

unsigned
faultKindsFromString(const std::string &s)
{
    if (s.empty() || s == "none")
        return None;
    if (s == "all")
        return All;
    unsigned kinds = None;
    std::istringstream in(s);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        if (tok == "latency")
            kinds |= Latency;
        else if (tok == "grant")
            kinds |= Grant;
        else if (tok == "parity")
            kinds |= Parity;
        else
            fatal("unknown fault kind '", tok,
                  "' (expected none, all, or a comma list of "
                  "latency, grant, parity)");
    }
    return kinds;
}

std::string
faultKindsToString(unsigned kinds)
{
    if (kinds == None)
        return "none";
    std::string out;
    auto add = [&out](const char *name) {
        if (!out.empty())
            out += ",";
        out += name;
    };
    if (kinds & Latency)
        add("latency");
    if (kinds & Grant)
        add("grant");
    if (kinds & Parity)
        add("parity");
    return out;
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : _cfg(config),
      _state(config.seed ? config.seed : 0x9e3779b97f4a7c15ULL)
{
}

std::uint64_t
FaultInjector::next()
{
    // splitmix64: tiny, fast, and good enough for injection decisions.
    std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
FaultInjector::roll()
{
    return double(next() >> 11) * 0x1.0p-53 < _cfg.rate;
}

unsigned
FaultInjector::responseJitter()
{
    if (!(_cfg.kinds & Latency) || !roll())
        return 0;
    ++_latencyFaults;
    const unsigned extra =
        1 + unsigned(next() % std::uint64_t(
                                  _cfg.maxLatencyJitter ? _cfg.maxLatencyJitter
                                                        : 1));
    _jitterCycles += extra;
    return extra;
}

bool
FaultInjector::delayGrant()
{
    if (!(_cfg.kinds & Grant) || !roll())
        return false;
    ++_grantDelays;
    return true;
}

bool
FaultInjector::corruptFill()
{
    if (!(_cfg.kinds & Parity) || !roll())
        return false;
    ++_parityFaults;
    return true;
}

void
FaultInjector::regStats(StatGroup &stats, const std::string &prefix)
{
    stats.regCounter(prefix + ".latency_faults", &_latencyFaults,
                     "responses given extra latency");
    stats.regCounter(prefix + ".jitter_cycles", &_jitterCycles,
                     "total extra response cycles injected");
    stats.regCounter(prefix + ".grant_delays", &_grantDelays,
                     "output-bus grants refused");
    stats.regCounter(prefix + ".parity_faults", &_parityFaults,
                     "instruction-fill transfers corrupted");
}

std::uint64_t
FaultInjector::derivePointSeed(std::uint64_t base,
                               const std::string &strategy,
                               unsigned cache_bytes)
{
    // FNV-1a over the point identity, folded into the base seed, then
    // avalanched so nearby points get unrelated streams.
    std::uint64_t h = 0xcbf29ce484222325ULL ^ base;
    for (char c : strategy) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    h ^= cache_bytes;
    h *= 0x100000001b3ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h ? h : 1;
}

} // namespace pipesim::fault
