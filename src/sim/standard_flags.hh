/**
 * @file
 * The standard command-line surface shared by every bench and
 * example binary, registered in one place instead of per tool:
 *
 *   observability   --cpi-stack, --trace-json, --stats-json
 *   host profiling  --profile, --profile-json
 *   fault injection --fi-kind, --fi-seed, --fi-rate
 *   sweep control   --jobs, --obs-point, --fi-point, --fail-fast,
 *                   --point-retries, --retry-backoff-ms, --progress,
 *                   --store-dir, --point-deadline-ms, --progress-window
 *   engine          --engine cycle|trace, --trace-file,
 *                   --sample-period, --sample-warmup, --sample-measure,
 *                   --ckpt-dir, --ckpt-create
 *
 * registerStandardFlags() registers the groups, standardFlagsFromCli()
 * reads them back, applyStandardFlags() pushes them onto a SweepSpec
 * (including the observability preRun/postRun hooks), and
 * prepareSweepTrace() captures or loads the trace a --engine=trace
 * sweep replays.  Single-run tools (no sweep) register only the
 * groups that apply via StandardFlagGroups.
 */

#ifndef PIPESIM_SIM_STANDARD_FLAGS_HH
#define PIPESIM_SIM_STANDARD_FLAGS_HH

#include <memory>
#include <string>

#include "fault/fault.hh"
#include "obs/obs_cli.hh"
#include "obs/profiler.hh"
#include "sim/cli.hh"
#include "sim/experiment.hh"

namespace pipesim
{

namespace replay
{
struct Trace;
} // namespace replay

/** Which optional flag groups a tool registers. */
struct StandardFlagGroups
{
    bool sweep = true;  //!< --jobs/--obs-point/--fi-point/... group
    bool engine = true; //!< --engine/--trace-file/--sample-* group
};

/** Parsed values of the standard flags (defaults when unregistered). */
struct StandardFlags
{
    obs::ObsOptions obs;
    obs::ProfileOptions profile; //!< host profiler (--profile[-json])
    fault::FaultConfig fault;

    // Sweep group.
    unsigned jobs = 0;      //!< workers (0 = env/hardware default)
    std::string obsPoint;   //!< "strategy:cachebytes" the obs observe
    std::string faultPoint; //!< restrict injection to this point
    bool failFast = false;  //!< rethrow instead of collecting failures
    unsigned pointRetries = 0;
    unsigned retryBackoffMs = 10; //!< base retry delay (0 = immediate)
    bool progress = false;  //!< --progress: stderr sweep heartbeat
    std::string storeDir;   //!< crash-safe result store (empty = none)
    unsigned pointDeadlineMs = 0;  //!< per-point wall clock (0 = none)
    unsigned progressWindow = 0;   //!< watchdog override (0 = default)

    // Engine group.
    SweepEngine engine = SweepEngine::Cycle;
    std::string traceFile;        //!< load (or save) the capture here
    unsigned samplePeriod = 0;    //!< replay sampling (0 = exact)
    unsigned sampleWarmup = 300;  //!< warm-up insts per window
    unsigned sampleMeasure = 700; //!< measured insts per window
    std::string ckptDir;          //!< live-points checkpoint directory
    bool ckptCreate = false;      //!< create/refresh the checkpoints
};

/** Register the standard groups on @p cli. */
void registerStandardFlags(CliParser &cli,
                           const StandardFlagGroups &groups = {});

/**
 * Read the standard flags back after cli.parse().  Pass the same
 * @p groups as registration; unregistered groups keep their defaults.
 *
 * Side effect: when --profile / --profile-json was given, the global
 * host profiler is activated here (obs::activateProfiling), so
 * everything after CLI parsing — workload build, capture, sweep — is
 * covered; runGuardedMain() flushes the report on exit.
 */
StandardFlags standardFlagsFromCli(const CliParser &cli,
                                   const StandardFlagGroups &groups = {});

/**
 * Attach the per-point observability hooks to @p spec: when the sweep
 * reaches the point named by flags.obsPoint, the requested outputs
 * are produced for that run; if the point never runs, a warning is
 * emitted after the sweep.  No-op when nothing was requested.
 */
void installObs(SweepSpec &spec, const StandardFlags &flags);

/**
 * Apply the standard flags to @p spec: worker count, fault options,
 * failure policy (benches default to collect-and-continue), engine
 * selection and the observability hooks.
 *
 * @throws FatalError for contradictory combinations: the trace engine
 *         with fault injection, or with per-point observability
 *         outputs (replay has no Simulator to attach probes to).
 */
void applyStandardFlags(SweepSpec &spec, const StandardFlags &flags);

/**
 * Make the trace a --engine=trace sweep replays and point
 * spec.trace at it.  When flags.traceFile names an existing file it
 * is loaded (and checked against @p program); otherwise the trace is
 * captured here with the default cycle-accurate machine and, when
 * flags.traceFile is non-empty, saved there for reuse.
 *
 * @return the owning handle (keep it alive for the sweep); nullptr
 *         when the engine is Cycle.
 */
std::shared_ptr<const replay::Trace>
prepareSweepTrace(SweepSpec &spec, const StandardFlags &flags,
                  const Program &program);

} // namespace pipesim

#endif // PIPESIM_SIM_STANDARD_FLAGS_HH
