/**
 * @file
 * Top-level simulator: wires a program, a fetch strategy, the
 * pipeline and the memory system together and runs to completion.
 *
 * Tick order within a cycle: fetch unit (buffer management, request
 * generation) -> memory system (output-bus acceptance, input-bus
 * delivery) -> pipeline (issue, branch resolution, fetch
 * consumption).
 */

#ifndef PIPESIM_SIM_SIMULATOR_HH
#define PIPESIM_SIM_SIMULATOR_HH

#include <array>
#include <map>
#include <memory>
#include <string>

#include "assembler/program.hh"
#include "common/abort.hh"
#include "common/stats.hh"
#include "fault/fault.hh"
#include "core/fetch_unit.hh"
#include "cpu/pipeline.hh"
#include "mem/data_memory.hh"
#include "mem/memory_system.hh"
#include "obs/cpi_stack.hh"
#include "obs/probe.hh"
#include "sim/config.hh"

namespace pipesim
{

/** Everything a caller typically wants from one finished run. */
struct SimResult
{
    Cycle totalCycles = 0;          //!< cycle at which HALT issued
    std::uint64_t instructions = 0; //!< dynamic instruction count
    std::map<std::string, std::uint64_t> counters;

    /**
     * Free-form provenance attached to the run and emitted in the
     * --stats-json "meta" object: the replay engine records the
     * trace's SHA-256 and the program hash here ("trace_sha256",
     * "program_sha256", "engine", sampling parameters), so every
     * replayed result is attributable to an exact capture.
     */
    std::map<std::string, std::string> meta;

    /** Cycles per instruction. */
    double
    cpi() const
    {
        return instructions ? double(totalCycles) / double(instructions)
                            : 0.0;
    }

    /** A counter by name, or 0 when absent. */
    std::uint64_t counter(const std::string &name) const;

    /** @return true if a counter named @p name was recorded. */
    bool hasCounter(const std::string &name) const;
};

class Simulator
{
  public:
    Simulator(const SimConfig &config, const Program &program);

    /** Run until HALT issues and all queues drain. */
    SimResult run();

    /** Advance a single cycle (for fine-grained tests). */
    void step();

    /** @return true when the machine has halted and drained. */
    bool done() const;

    Cycle now() const { return _now; }

    Pipeline &pipeline() { return *_pipeline; }
    FetchUnit &fetchUnit() { return *_fetch; }
    MemorySystem &memorySystem() { return *_mem; }
    DataMemory &dataMemory() { return _dataMem; }
    StatGroup &stats() { return _stats; }
    const SimConfig &config() const { return _config; }
    const Program &program() const { return _program; }

    /** The machine's probe bus (attach observability listeners here). */
    obs::ProbeBus &probes() { return _probes; }

    /** The CPI-stack accountant, or nullptr when disabled. */
    const obs::CpiStack *cpiStack() const { return _cpiStack.get(); }

    /** The fault injector, or nullptr when fault injection is off. */
    const fault::FaultInjector *faultInjector() const
    {
        return _faultInjector.get();
    }

    /** Snapshot the result of a finished (or in-progress) run. */
    SimResult result() const;

    /**
     * Capture a forensic machine snapshot (any time; run() uses this
     * to decorate a SimAbort that escapes without one).
     */
    MachineSnapshot snapshot() const;

  private:
    /** The plain run loop: zero host-profiling cost. */
    void runLoop();

    /**
     * The same loop with per-cycle phase attribution (fetch/mem/
     * pipeline/other) under the host profiler.  Selected by run()
     * with a single obs::Profiler::enabled() check, so the detached
     * hot path carries no probe cost at all.
     */
    void runLoopProfiled();

    /** Watchdog checks shared by both loops. */
    void checkWatchdogs();

    SimConfig _config;
    const Program &_program;
    DataMemory _dataMem;
    obs::ProbeBus _probes;
    std::unique_ptr<MemorySystem> _mem;
    std::unique_ptr<FetchUnit> _fetch;
    std::unique_ptr<Pipeline> _pipeline;
    std::unique_ptr<obs::CpiStack> _cpiStack;
    std::unique_ptr<fault::FaultInjector> _faultInjector;
    StatGroup _stats;

    Cycle _now = 0;
    Cycle _lastProgressCycle = 0;
    std::uint64_t _lastRetired = 0;

    /** Ring of recently retired PCs (fed from the retire probe). */
    std::array<Addr, 16> _retiredPcs{};
    std::uint64_t _retiredRingCount = 0;
};

/** Convenience: build, run and tear down a simulator in one call. */
SimResult runSimulation(const SimConfig &config, const Program &program);

} // namespace pipesim

#endif // PIPESIM_SIM_SIMULATOR_HH
