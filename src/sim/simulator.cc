#include "sim/simulator.hh"

#include <algorithm>
#include <sstream>

#include "common/abort.hh"
#include "core/fetch_factory.hh"
#include "obs/profiler.hh"
#include "sim/guard.hh"

namespace pipesim
{

std::uint64_t
SimResult::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
SimResult::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

Simulator::Simulator(const SimConfig &config, const Program &program)
    : _config(config), _program(program)
{
    _dataMem.loadProgram(program);
    _mem = std::make_unique<MemorySystem>(config.mem, _dataMem);

    _fetch = makeFetchUnit(config.fetch, program, *_mem);

    _pipeline = std::make_unique<Pipeline>(config.cpu, *_fetch, *_mem);

    _pipeline->setProbes(&_probes);
    _fetch->setProbes(&_probes);
    _mem->setProbes(&_probes);

    if (config.fault.enabled()) {
        _faultInjector =
            std::make_unique<fault::FaultInjector>(config.fault);
        _mem->setFaultInjector(_faultInjector.get());
        _faultInjector->regStats(_stats, "fault");
    }

    // Forensics: remember the last few retired PCs for snapshots.
    // The listener lives exactly as long as the bus, so it is never
    // disconnected.
    _probes.retire.connect([this](const obs::RetireEvent &ev) {
        _retiredPcs[_retiredRingCount % _retiredPcs.size()] = ev.inst.pc;
        ++_retiredRingCount;
    });

    _pipeline->regStats(_stats, "cpu");
    _fetch->regStats(_stats, "fetch");
    _mem->regStats(_stats, "mem");

    if (config.cpiStack) {
        _cpiStack = std::make_unique<obs::CpiStack>();
        _cpiStack->attach(_probes);
        _cpiStack->regStats(_stats, "cpi_stack");
    }
}

void
Simulator::step()
{
    _fetch->tick(_now);
    _mem->tick(_now);
    _pipeline->tick(_now);

    if (_pipeline->instructionsRetired() != _lastRetired) {
        _lastRetired = _pipeline->instructionsRetired();
        _lastProgressCycle = _now;
    }
    ++_now;
}

bool
Simulator::done() const
{
    return _pipeline->halted() && _pipeline->drained() &&
           _mem->quiescent();
}

void
Simulator::checkWatchdogs()
{
    if (_now > _config.maxCycles)
        simAbort("simulation exceeded ", _config.maxCycles, " cycles");
    if (!_pipeline->halted() &&
        _now - _lastProgressCycle > _config.progressWindow)
        simAbort("no instruction retired for ", _config.progressWindow,
                 " cycles: machine deadlocked at cycle ", _now);
    // Host-side watchdogs: the sweep's per-point wall-clock deadline
    // (snapshot attached here so TimeoutAbort keeps its type through
    // run()'s decoration) and the guard's SIGINT/SIGTERM flag.
    if (_config.cancelFlag &&
        _config.cancelFlag->load(std::memory_order_relaxed))
        throw TimeoutAbort("abort: point exceeded its wall-clock "
                           "deadline (timeout): cancelled at cycle " +
                               std::to_string(_now),
                           snapshot());
    checkInterrupt();
}

void
Simulator::runLoop()
{
    while (!done()) {
        step();
        checkWatchdogs();
    }
}

void
Simulator::runLoopProfiled()
{
    obs::ScopedPhase runPhase("sim.run", obs::Scope::Coarse);
    obs::CachedPhase fetchPhase("fetch"), memPhase("mem"),
        pipePhase("pipeline"), otherPhase("other");

    // Chained timestamps: four clock reads per cycle, every interval
    // attributed to some phase ("other" absorbs done()/watchdog/loop
    // bookkeeping), so the phase sum equals the loop's wall-clock.
    // Accumulated in locals and flushed once, to keep the profiled
    // loop's own overhead out of the attribution.
    std::uint64_t fetchNs = 0, memNs = 0, pipeNs = 0, otherNs = 0;
    std::uint64_t cycles = 0;
    auto flush = [&] {
        fetchPhase.add(fetchNs, cycles);
        memPhase.add(memNs, cycles);
        pipePhase.add(pipeNs, cycles);
        otherPhase.add(otherNs, cycles);
    };
    std::uint64_t t3 = obs::profileNowNs();
    try {
        while (!done()) {
            const std::uint64_t t0 = obs::profileNowNs();
            otherNs += t0 - t3;
            _fetch->tick(_now);
            const std::uint64_t t1 = obs::profileNowNs();
            _mem->tick(_now);
            const std::uint64_t t2 = obs::profileNowNs();
            _pipeline->tick(_now);
            t3 = obs::profileNowNs();
            fetchNs += t1 - t0;
            memNs += t2 - t1;
            pipeNs += t3 - t2;
            ++cycles;
            if (_pipeline->instructionsRetired() != _lastRetired) {
                _lastRetired = _pipeline->instructionsRetired();
                _lastProgressCycle = _now;
            }
            ++_now;
            checkWatchdogs();
        }
    } catch (...) {
        flush();
        throw;
    }
    flush();
}

SimResult
Simulator::run()
{
    try {
        // One enabled() check per run: the detached hot path is the
        // exact pre-profiler loop, untouched (see obs/profiler.hh).
        if (obs::Profiler::enabled())
            runLoopProfiled();
        else
            runLoop();
    } catch (const SimAbort &e) {
        // Components raise SimAbort without forensic context (they
        // cannot see the whole machine); decorate it here, once.
        if (e.hasSnapshot())
            throw;
        throw SimAbort(e.what(), snapshot());
    }
    return result();
}

MachineSnapshot
Simulator::snapshot() const
{
    MachineSnapshot s;
    s.cycle = _now;
    s.lastProgressCycle = _lastProgressCycle;
    s.instructionsRetired = _pipeline->instructionsRetired();
    const std::uint64_t n =
        std::min<std::uint64_t>(_retiredRingCount, _retiredPcs.size());
    for (std::uint64_t i = _retiredRingCount - n; i < _retiredRingCount;
         ++i)
        s.lastRetiredPcs.push_back(_retiredPcs[i % _retiredPcs.size()]);
    std::ostringstream pipe, fetch, mem;
    _pipeline->dumpState(pipe);
    _fetch->dumpState(fetch);
    _mem->dumpState(mem);
    s.pipelineState = pipe.str();
    s.fetchState = fetch.str();
    s.memoryState = mem.str();
    return s;
}

SimResult
Simulator::result() const
{
    SimResult r;
    r.totalCycles = _pipeline->haltCycle();
    r.instructions = _pipeline->instructionsRetired();
    for (const auto &name : _stats.counterNames())
        r.counters.emplace(name, _stats.counterValue(name));
    return r;
}

SimResult
runSimulation(const SimConfig &config, const Program &program)
{
    Simulator sim(config, program);
    return sim.run();
}

} // namespace pipesim
