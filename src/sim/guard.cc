#include "sim/guard.hh"

#include <exception>
#include <iostream>

#include "common/abort.hh"
#include "common/log.hh"

namespace pipesim
{

int
runGuardedMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const SimAbort &e) {
        e.report(std::cerr);
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what()
                  << "\n(internal simulator bug -- please report)\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "unhandled exception: " << e.what() << "\n";
        return 2;
    }
}

} // namespace pipesim
