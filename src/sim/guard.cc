#include "sim/guard.hh"

#include <exception>
#include <iostream>

#include "common/abort.hh"
#include "common/log.hh"
#include "obs/profiler.hh"

namespace pipesim
{

namespace
{

/**
 * Flush pending --profile/--profile-json output on every exit path
 * (success and all the error taxonomies below) so tools never need
 * explicit profiler teardown.
 */
struct ProfileFlusher
{
    ~ProfileFlusher() { obs::flushProfileReport(); }
};

} // namespace

int
runGuardedMain(const std::function<int()> &body)
{
    ProfileFlusher flusher;
    try {
        return body();
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const SimAbort &e) {
        e.report(std::cerr);
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what()
                  << "\n(internal simulator bug -- please report)\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "unhandled exception: " << e.what() << "\n";
        return 2;
    }
}

} // namespace pipesim
