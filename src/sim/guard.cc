#include "sim/guard.hh"

#include <csignal>
#include <exception>
#include <iostream>

#include "common/abort.hh"
#include "common/log.hh"
#include "obs/profiler.hh"

namespace pipesim
{

namespace detail
{
std::atomic<int> pendingSignalFlag{0};
} // namespace detail

namespace
{

/**
 * Flush pending --profile/--profile-json output on every exit path
 * (success and all the error taxonomies below) so tools never need
 * explicit profiler teardown.
 */
struct ProfileFlusher
{
    ~ProfileFlusher() { obs::flushProfileReport(); }
};

std::string
signalName(int sig)
{
    switch (sig) {
    case SIGINT:
        return "SIGINT";
    case SIGTERM:
        return "SIGTERM";
    default:
        return "signal " + std::to_string(sig);
    }
}

// Async-signal-safe: a single relaxed store, nothing else.  All
// reporting happens later, at a polling site (checkInterrupt()).
extern "C" void
onShutdownSignal(int sig)
{
    detail::pendingSignalFlag.store(sig, std::memory_order_relaxed);
}

} // namespace

InterruptedError::InterruptedError(int sig)
    : std::runtime_error("interrupted by " + signalName(sig)),
      _signal(sig)
{
}

void
requestShutdown(int sig)
{
    detail::pendingSignalFlag.store(sig, std::memory_order_relaxed);
}

void
clearPendingSignal()
{
    detail::pendingSignalFlag.store(0, std::memory_order_relaxed);
}

void
installSignalGuard()
{
    static const bool installed = [] {
        struct sigaction sa = {};
        sa.sa_handler = &onShutdownSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);
        return true;
    }();
    (void)installed;
}

int
runGuardedMain(const std::function<int()> &body)
{
    installSignalGuard();
    ProfileFlusher flusher;
    try {
        return body();
    } catch (const InterruptedError &e) {
        std::cerr << e.what()
                  << " -- shutting down cleanly; results journaled so "
                     "far are safe (rerun with the same --store-dir "
                     "to resume)\n";
        return 128 + e.signalNumber();
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const SimAbort &e) {
        e.report(std::cerr);
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what()
                  << "\n(internal simulator bug -- please report)\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "unhandled exception: " << e.what() << "\n";
        return 2;
    }
}

} // namespace pipesim
