#include "sim/cli.hh"

#include <iostream>
#include <sstream>

#include "common/log.hh"
#include "common/strutil.hh"

namespace pipesim
{

CliParser::CliParser(std::string description)
    : _description(std::move(description))
{
}

void
CliParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    PIPESIM_ASSERT(!_options.count(name), "duplicate option --", name);
    _options.emplace(name, Option{def, help, false, def});
    _order.push_back(name);
}

void
CliParser::addFlag(const std::string &name, const std::string &help)
{
    PIPESIM_ASSERT(!_options.count(name), "duplicate option --", name);
    _options.emplace(name, Option{"", help, true, ""});
    _order.push_back(name);
}

bool
CliParser::parse(int argc, const char *const *argv)
{
    _program = argc > 0 ? argv[0] : "tool";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = _options.find(name);
        if (it == _options.end())
            fatal("unknown option --", name, "\n", usage());
        Option &opt = it->second;
        opt.seen = true;
        if (opt.isFlag) {
            if (has_value)
                fatal("flag --", name, " takes no value");
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                fatal("option --", name, " needs a value");
            value = argv[++i];
        }
        opt.value = value;
    }
    return true;
}

std::string
CliParser::get(const std::string &name) const
{
    auto it = _options.find(name);
    PIPESIM_ASSERT(it != _options.end(), "undefined option --", name);
    return it->second.value;
}

std::int64_t
CliParser::getInt(const std::string &name) const
{
    const auto v = parseInt(get(name));
    if (!v)
        fatal("option --", name, ": '", get(name), "' is not an integer");
    return *v;
}

double
CliParser::getDouble(const std::string &name) const
{
    // std::stod alone accepts trailing garbage ("1.5x" -> 1.5); check
    // that the whole value was consumed.
    const std::string v = get(name);
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos != v.size())
            fatal("option --", name, ": '", v, "' is not a number");
        return d;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("option --", name, ": '", v, "' is not a number");
    }
}

bool
CliParser::getFlag(const std::string &name) const
{
    auto it = _options.find(name);
    PIPESIM_ASSERT(it != _options.end(), "undefined option --", name);
    return it->second.seen;
}

std::string
CliParser::usage() const
{
    std::ostringstream os;
    os << _description << "\n\nusage: " << _program << " [options]\n\n";
    for (const auto &name : _order) {
        const Option &opt = _options.at(name);
        std::string left = "  --" + name;
        if (!opt.isFlag)
            left += " <" + (opt.def.empty() ? "value" : opt.def) + ">";
        os << left;
        if (left.size() < 28)
            os << std::string(28 - left.size(), ' ');
        else
            os << "  ";
        os << opt.help << "\n";
    }
    return os.str();
}

} // namespace pipesim
