#include "sim/config.hh"

#include "common/log.hh"
#include "common/strutil.hh"

namespace pipesim
{

std::string
SimConfig::fetchName() const
{
    if (fetch.strategy == FetchStrategy::Conventional)
        return "conv";
    if (fetch.strategy == FetchStrategy::Tib)
        return "tib";
    return format("%u-%u", fetch.iqBytes, fetch.iqbBytes);
}

FetchConfig
pipeConfigFor(const std::string &name, unsigned cache_bytes)
{
    FetchConfig cfg;
    cfg.strategy = FetchStrategy::Pipe;
    cfg.cacheBytes = cache_bytes;
    if (name == "8-8") {
        cfg.lineBytes = 8;
        cfg.iqBytes = 8;
        cfg.iqbBytes = 8;
    } else if (name == "16-16") {
        cfg.lineBytes = 16;
        cfg.iqBytes = 16;
        cfg.iqbBytes = 16;
    } else if (name == "16-32") {
        cfg.lineBytes = 32;
        cfg.iqBytes = 16;
        cfg.iqbBytes = 32;
    } else if (name == "32-32") {
        cfg.lineBytes = 32;
        cfg.iqBytes = 32;
        cfg.iqbBytes = 32;
    } else {
        fatal("unknown PIPE configuration '", name,
              "' (expected 8-8, 16-16, 16-32 or 32-32)");
    }
    return cfg;
}

FetchConfig
conventionalConfigFor(unsigned cache_bytes, unsigned line_bytes)
{
    FetchConfig cfg;
    cfg.strategy = FetchStrategy::Conventional;
    cfg.cacheBytes = cache_bytes;
    cfg.lineBytes = std::min(line_bytes, cache_bytes);
    return cfg;
}

FetchConfig
tibConfigFor(unsigned tib_bytes, unsigned entry_bytes)
{
    FetchConfig cfg;
    cfg.strategy = FetchStrategy::Tib;
    cfg.cacheBytes = tib_bytes;
    cfg.lineBytes = std::min(entry_bytes, tib_bytes);
    // Stream buffer: two entries of lookahead, like the IQ + IQB.
    cfg.iqBytes = cfg.lineBytes;
    cfg.iqbBytes = cfg.lineBytes;
    return cfg;
}

const std::vector<std::string> &
tableIIConfigNames()
{
    static const std::vector<std::string> names = {
        "8-8", "16-16", "16-32", "32-32",
    };
    return names;
}

} // namespace pipesim
