/**
 * @file
 * Top-level simulation configuration, aggregating all of the paper's
 * simulation parameters, plus the Table II configuration presets.
 */

#ifndef PIPESIM_SIM_CONFIG_HH
#define PIPESIM_SIM_CONFIG_HH

#include <atomic>
#include <string>
#include <vector>

#include "core/fetch_unit.hh"
#include "cpu/pipeline.hh"
#include "fault/fault.hh"
#include "isa/encode.hh"
#include "mem/memory_system.hh"

namespace pipesim
{

/** Everything needed to instantiate one simulated machine. */
struct SimConfig
{
    FetchConfig fetch;
    MemSystemConfig mem;
    PipelineConfig cpu;

    /**
     * Deterministic fault injection (fault/fault.hh).  Disabled by
     * default; when enabled the Simulator builds a FaultInjector and
     * hands it to the memory system.
     */
    fault::FaultConfig fault;

    /**
     * Attach the CPI-stack cycle accountant (obs::CpiStack) to the
     * run, registering the per-cause cycle breakdown as "cpi_stack.*"
     * counters.  On by default so every tool reports it; turn off to
     * measure the raw, listener-free simulation rate.
     */
    bool cpiStack = true;

    /** Hard cycle limit (a run exceeding it is a simulator error). */
    Cycle maxCycles = 1'000'000'000;

    /** Cycles without an instruction retiring => deadlock report. */
    Cycle progressWindow = 2'000'000;

    /**
     * Host-side cooperative cancellation.  When non-null, the tick
     * loops (Simulator::checkWatchdogs, ReplayMachine::watchdogs)
     * poll it and raise TimeoutAbort once it reads true — how the
     * sweep engine's --point-deadline-ms watchdog stops a point that
     * overran its wall-clock budget without killing the worker.  Not
     * part of the machine's identity: replay::configSha256 (and with
     * it every checkpoint and result-store cache key) ignores it.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /** Human-readable description of the fetch side. */
    std::string fetchName() const;
};

/**
 * The paper's Table II IQ/IQB configurations, named "IQ-IQB":
 *
 *     name   line  IQ  IQB
 *     8-8      8    8    8
 *     16-16   16   16   16
 *     16-32   32   16   32
 *     32-32   32   32   32
 *
 * @param name        One of "8-8", "16-16", "16-32", "32-32".
 * @param cache_bytes Instruction cache size (parameter 2).
 * @throws FatalError for an unknown name.
 */
FetchConfig pipeConfigFor(const std::string &name, unsigned cache_bytes);

/** Conventional (always-prefetch) configuration with a given cache. */
FetchConfig conventionalConfigFor(unsigned cache_bytes,
                                  unsigned line_bytes = 16);

/**
 * Target-instruction-buffer configuration (paper section 2.1): the
 * TIB replaces the cache; @p tib_bytes is the total buffer capacity
 * and @p entry_bytes the per-target entry size.
 */
FetchConfig tibConfigFor(unsigned tib_bytes, unsigned entry_bytes = 16);

/** Names of the four Table II configurations, in paper order. */
const std::vector<std::string> &tableIIConfigNames();

} // namespace pipesim

#endif // PIPESIM_SIM_CONFIG_HH
