/**
 * @file
 * Minimal command-line option parser shared by the examples and the
 * benchmark binaries, so every tool has uniform --help output.
 */

#ifndef PIPESIM_SIM_CLI_HH
#define PIPESIM_SIM_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pipesim
{

class CliParser
{
  public:
    /** @param description One-line tool description for --help. */
    explicit CliParser(std::string description);

    /** Define --name <value> with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Define a boolean --name flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.  Unknown options or a --help request print usage;
     * --help returns false (caller should exit 0), unknown options
     * throw FatalError.
     */
    bool parse(int argc, const char *const *argv);

    std::string get(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Positional arguments left after option parsing. */
    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

    std::string usage() const;

  private:
    struct Option
    {
        std::string def;
        std::string help;
        bool isFlag;
        std::string value;
        bool seen = false;
    };

    std::string _description;
    std::string _program;
    std::map<std::string, Option> _options;
    std::vector<std::string> _order;
    std::vector<std::string> _positional;
};

} // namespace pipesim

#endif // PIPESIM_SIM_CLI_HH
