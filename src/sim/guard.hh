/**
 * @file
 * The top-level error guard shared by every example and bench main.
 *
 * Maps the error taxonomy (common/log.hh, common/abort.hh,
 * docs/robustness.md) onto process exits:
 *
 *  - FatalError (user error): the message alone, exit 1;
 *  - SimAbort (simulated machine wedged): the message plus the
 *    machine snapshot when one is attached, exit 2;
 *  - PanicError (simulator bug): the message plus a please-report
 *    banner, exit 2;
 *  - any other exception: reported as unhandled, exit 2.
 */

#ifndef PIPESIM_SIM_GUARD_HH
#define PIPESIM_SIM_GUARD_HH

#include <functional>

namespace pipesim
{

/**
 * Run @p body (a main function's work) under the standard guard.
 * @return body's own return value, or the taxonomy's exit code when
 *         an exception escapes it.
 */
int runGuardedMain(const std::function<int()> &body);

} // namespace pipesim

#endif // PIPESIM_SIM_GUARD_HH
