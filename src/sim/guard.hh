/**
 * @file
 * The top-level error guard shared by every example and bench main.
 *
 * Maps the error taxonomy (common/log.hh, common/abort.hh,
 * docs/robustness.md) onto process exits:
 *
 *  - FatalError (user error): the message alone, exit 1;
 *  - SimAbort (simulated machine wedged): the message plus the
 *    machine snapshot when one is attached, exit 2;
 *  - PanicError (simulator bug): the message plus a please-report
 *    banner, exit 2;
 *  - InterruptedError (SIGINT/SIGTERM): a resume hint, exit 128+sig
 *    (the shell convention);
 *  - any other exception: reported as unhandled, exit 2.
 *
 * Signal handling: runGuardedMain() installs SIGINT/SIGTERM handlers
 * that do nothing but record the signal in an atomic flag.  The
 * long-running loops (Simulator::checkWatchdogs, the replay engine's
 * per-cycle watchdogs, the sweep engine between points and retry
 * back-offs) poll the flag via checkInterrupt() and unwind with
 * InterruptedError, so teardown is always orderly: destructors run,
 * the profiler report flushes, and — crucially for crash-safe sweeps
 * (docs/robustness.md, "Crash safety and resume") — the result-store
 * journal is left clean, containing exactly the points that
 * completed.  Nothing is ever written from the handler itself.
 */

#ifndef PIPESIM_SIM_GUARD_HH
#define PIPESIM_SIM_GUARD_HH

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>

namespace pipesim
{

/**
 * Thrown (never from the signal handler — always from a polling
 * site via checkInterrupt()) once SIGINT/SIGTERM was observed.
 * The sweep engine lets it unwind past the failure policy: an
 * interruption aborts the whole sweep rather than rendering ERR
 * cells.
 */
class InterruptedError : public std::runtime_error
{
  public:
    explicit InterruptedError(int sig);

    /** The signal that caused the interruption. */
    int signalNumber() const { return _signal; }

  private:
    int _signal;
};

namespace detail
{
extern std::atomic<int> pendingSignalFlag;
} // namespace detail

/**
 * The signal recorded by the guard's handler (or requestShutdown()),
 * 0 when none is pending.  A single relaxed load — cheap enough for
 * per-cycle polling in the simulation hot loops.
 */
inline int
pendingSignal()
{
    return detail::pendingSignalFlag.load(std::memory_order_relaxed);
}

/**
 * Record @p sig as if the handler had caught it — for embedders that
 * manage signals themselves, and for tests that exercise the
 * cooperative-shutdown path without raising a real signal.
 */
void requestShutdown(int sig);

/** Clear a pending signal (tests; a resumed embedder). */
void clearPendingSignal();

/** Throw InterruptedError if a shutdown signal is pending. */
inline void
checkInterrupt()
{
    if (const int sig = pendingSignal())
        throw InterruptedError(sig);
}

/**
 * Install the flag-setting SIGINT/SIGTERM handlers (idempotent).
 * Called by runGuardedMain(); exposed for tools with hand-rolled
 * mains.
 */
void installSignalGuard();

/**
 * Run @p body (a main function's work) under the standard guard.
 * @return body's own return value, or the taxonomy's exit code when
 *         an exception escapes it.
 */
int runGuardedMain(const std::function<int()> &body);

} // namespace pipesim

#endif // PIPESIM_SIM_GUARD_HH
