#include "sim/experiment.hh"

#include <exception>
#include <mutex>
#include <sstream>

#include "common/abort.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "replay/replay_engine.hh"

namespace pipesim
{

std::string
SweepResult::failureReport() const
{
    if (failures.empty())
        return "";
    std::ostringstream os;
    os << failures.size() << " sweep point(s) failed:\n";
    for (const PointFailure &f : failures) {
        os << "  " << f.strategy << ":" << f.cacheBytes << " after "
           << f.attempts << " attempt(s): " << f.message << "\n";
        std::istringstream lines(f.snapshot);
        std::string line;
        while (std::getline(lines, line))
            os << "    " << line << "\n";
    }
    return os.str();
}

SimConfig
makeSweepConfig(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    SimConfig cfg;
    cfg.mem = spec.mem;
    cfg.cpu = spec.cpu;
    if (strategy == "conv") {
        cfg.fetch = conventionalConfigFor(cache_bytes, spec.convLineBytes);
    } else if (strategy == "tib") {
        cfg.fetch = tibConfigFor(cache_bytes, spec.tibEntryBytes);
    } else {
        cfg.fetch = pipeConfigFor(strategy, cache_bytes);
        cfg.fetch.offchipPolicy = spec.policy;
    }
    if (spec.maxCycles)
        cfg.maxCycles = spec.maxCycles;
    if (spec.progressWindow)
        cfg.progressWindow = spec.progressWindow;
    cfg.fault = spec.fault;
    if (cfg.fault.kinds != fault::None) {
        const std::string name =
            strategy + ":" + std::to_string(cache_bytes);
        if (!spec.faultPoint.empty() && spec.faultPoint != name) {
            cfg.fault.kinds = fault::None;
        } else {
            // Give the point its own reproducible fault stream.
            cfg.fault.seed = fault::FaultInjector::derivePointSeed(
                spec.fault.seed, strategy, cache_bytes);
        }
    }
    return cfg;
}

std::optional<SimConfig>
makeValidSweepConfig(const SweepSpec &spec, const std::string &strategy,
                     unsigned cache_bytes)
{
    // Validity gates that need no config: a conventional cache must
    // hold at least one line, a TIB at least two entries' worth of
    // parcels.
    if (strategy == "conv" && cache_bytes < spec.convLineBytes)
        return std::nullopt;
    if (strategy == "tib" && cache_bytes < 2 * parcelBytes)
        return std::nullopt;

    SimConfig cfg = makeSweepConfig(spec, strategy, cache_bytes);
    // PIPE configurations name a line size; the cache must fit it.
    if (cfg.fetch.strategy == FetchStrategy::Pipe &&
        cfg.fetch.lineBytes > cache_bytes)
        return std::nullopt;
    return cfg;
}

bool
sweepPointValid(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    return makeValidSweepConfig(spec, strategy, cache_bytes).has_value();
}

namespace
{

/** One enumerated (size, strategy) cell of the sweep grid. */
struct SweepPoint
{
    std::size_t row;      //!< index into spec.cacheSizes
    std::size_t col;      //!< index into spec.strategies
    unsigned cacheBytes;
    const std::string *strategy;
    SimConfig cfg; //!< built exactly once, at enumeration

    /** Set when the point exhausted its attempts (written by the
     *  point's own worker; read only after all workers joined). */
    std::optional<PointFailure> failure;
    std::exception_ptr error;
};

/** Turn the exception behind @p error into a structured record. */
PointFailure
describeFailure(const SweepPoint &p, unsigned attempts)
{
    PointFailure f;
    f.strategy = *p.strategy;
    f.cacheBytes = p.cacheBytes;
    f.attempts = attempts;
    try {
        std::rethrow_exception(p.error);
    } catch (const SimAbort &e) {
        f.message = e.what();
        if (e.hasSnapshot())
            f.snapshot = e.snapshot().toString();
    } catch (const std::exception &e) {
        f.message = e.what();
    } catch (...) {
        f.message = "unknown error";
    }
    return f;
}

} // namespace

SweepResult
runCacheSweep(const SweepSpec &spec, const Program &program,
              const std::function<void(const std::string &, unsigned,
                                       const SimResult &)> &on_point)
{
    if (spec.engine == SweepEngine::Trace) {
        if (!spec.trace)
            fatal("trace-engine sweep requested without a trace "
                  "(SweepSpec::trace is null)");
        if (spec.fault.kinds != fault::None)
            fatal("trace-engine sweep cannot inject faults; use the "
                  "cycle engine for fault experiments");
        if (spec.preRun || spec.postRun)
            warn("trace-engine sweep: preRun/postRun callbacks do not "
                 "fire (no Simulator exists under replay)");
    }

    std::vector<std::string> headers = {"cache_bytes"};
    for (const auto &s : spec.strategies)
        headers.push_back(s);
    Table table(std::move(headers));

    // Enumerate every valid point up front, building each SimConfig
    // exactly once.  Invalid points render "-" in the assembled table.
    const std::size_t rows = spec.cacheSizes.size();
    const std::size_t cols = spec.strategies.size();
    std::vector<std::vector<std::string>> cells(
        rows, std::vector<std::string>(cols, "-"));
    std::vector<SweepPoint> points;
    points.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            auto cfg = makeValidSweepConfig(spec, spec.strategies[c],
                                            spec.cacheSizes[r]);
            if (!cfg)
                continue;
            points.push_back({r, c, spec.cacheSizes[r],
                              &spec.strategies[c], std::move(*cfg),
                              std::nullopt, nullptr});
        }
    }

    // Per-run state (Simulator, StatGroup, probe bus) is thread-local
    // to the point's worker; only the user callbacks share state, so
    // they are serialized under this mutex (see SweepSpec::preRun).
    std::mutex callbacks;
    auto attemptTracePoint = [&](SweepPoint &p) {
        const replay::ReplayOptions opts{spec.samplePeriod,
                                         spec.sampleWarmup,
                                         spec.sampleMeasure};
        const SimResult result =
            replay::replayTrace(p.cfg, program, *spec.trace, opts);
        cells[p.row][p.col] = std::to_string(result.totalCycles);
        if (on_point) {
            std::lock_guard<std::mutex> lock(callbacks);
            on_point(*p.strategy, p.cacheBytes, result);
        }
    };
    auto attemptPoint = [&](SweepPoint &p) {
        if (spec.engine == SweepEngine::Trace) {
            attemptTracePoint(p);
            return;
        }
        Simulator sim(p.cfg, program);
        if (spec.preRun) {
            std::lock_guard<std::mutex> lock(callbacks);
            spec.preRun(sim, *p.strategy, p.cacheBytes);
        }
        const SimResult result = sim.run();
        // Each point owns a distinct cell; no lock needed for it.
        cells[p.row][p.col] = std::to_string(result.totalCycles);
        if (spec.postRun || on_point) {
            std::lock_guard<std::mutex> lock(callbacks);
            if (spec.postRun)
                spec.postRun(sim, *p.strategy, p.cacheBytes, result);
            if (on_point)
                on_point(*p.strategy, p.cacheBytes, result);
        }
    };
    // Never lets an exception escape: a failure is captured on the
    // point itself and dispositioned after every worker has joined,
    // so one bad point cannot take the sweep down mid-flight.
    auto runPoint = [&](SweepPoint &p) {
        const unsigned attempts = 1 + spec.pointRetries;
        for (unsigned a = 1; a <= attempts; ++a) {
            try {
                attemptPoint(p);
                return;
            } catch (...) {
                if (a == attempts) {
                    p.error = std::current_exception();
                    p.failure = describeFailure(p, a);
                    cells[p.row][p.col] = "ERR";
                }
            }
        }
    };

    const unsigned jobs = resolveJobCount(spec.jobs);
    if (jobs <= 1 || points.size() <= 1) {
        // Serial: run in deterministic (size, strategy) order on the
        // calling thread.
        for (auto &p : points)
            runPoint(p);
    } else {
        ThreadPool pool(std::min<std::size_t>(jobs, points.size()));
        std::vector<std::future<void>> futures;
        futures.reserve(points.size());
        for (auto &p : points)
            futures.push_back(pool.submit([&runPoint, &p] {
                runPoint(p);
            }));
        // runPoint captures failures instead of throwing; waiting on
        // every future is a pure join.
        for (auto &f : futures)
            f.get();
    }

    // Disposition failures in enumeration order, so the report (and
    // the FailFast choice of exception) is identical for any --jobs.
    std::vector<PointFailure> failures;
    std::exception_ptr first;
    for (auto &p : points) {
        if (!p.failure)
            continue;
        failures.push_back(*p.failure);
        if (!first)
            first = p.error;
    }
    if (spec.failurePolicy == SweepFailurePolicy::FailFast && first)
        std::rethrow_exception(first);

    for (std::size_t r = 0; r < rows; ++r) {
        table.beginRow();
        table.cell(spec.cacheSizes[r]);
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r][c]);
    }

    if (spec.onSweepEnd)
        spec.onSweepEnd();
    return SweepResult{std::move(table), std::move(failures)};
}

} // namespace pipesim
