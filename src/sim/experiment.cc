#include "sim/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/abort.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "replay/replay_engine.hh"
#include "replay/trace_format.hh"
#include "sim/guard.hh"
#include "store/result_store.hh"

namespace pipesim
{

std::string
SweepResult::failureReport() const
{
    if (failures.empty())
        return "";
    std::ostringstream os;
    os << failures.size() << " sweep point(s) failed:\n";
    for (const PointFailure &f : failures) {
        os << "  " << f.strategy << ":" << f.cacheBytes << " after "
           << f.attempts << " attempt(s)";
        if (f.backoffNs)
            os << " (retry backoff " << f.backoffNs / 1'000'000
               << " ms)";
        os << ": " << f.message << "\n";
        std::istringstream lines(f.snapshot);
        std::string line;
        while (std::getline(lines, line))
            os << "    " << line << "\n";
    }
    return os.str();
}

SimConfig
makeSweepConfig(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    SimConfig cfg;
    cfg.mem = spec.mem;
    cfg.cpu = spec.cpu;
    if (strategy == "conv") {
        cfg.fetch = conventionalConfigFor(cache_bytes, spec.convLineBytes);
    } else if (strategy == "tib") {
        cfg.fetch = tibConfigFor(cache_bytes, spec.tibEntryBytes);
    } else {
        cfg.fetch = pipeConfigFor(strategy, cache_bytes);
        cfg.fetch.offchipPolicy = spec.policy;
    }
    if (spec.maxCycles)
        cfg.maxCycles = spec.maxCycles;
    if (spec.progressWindow)
        cfg.progressWindow = spec.progressWindow;
    cfg.fault = spec.fault;
    if (cfg.fault.kinds != fault::None) {
        const std::string name =
            strategy + ":" + std::to_string(cache_bytes);
        if (!spec.faultPoint.empty() && spec.faultPoint != name) {
            cfg.fault.kinds = fault::None;
        } else {
            // Give the point its own reproducible fault stream.
            cfg.fault.seed = fault::FaultInjector::derivePointSeed(
                spec.fault.seed, strategy, cache_bytes);
        }
    }
    return cfg;
}

std::optional<SimConfig>
makeValidSweepConfig(const SweepSpec &spec, const std::string &strategy,
                     unsigned cache_bytes)
{
    // Validity gates that need no config: a conventional cache must
    // hold at least one line, a TIB at least two entries' worth of
    // parcels.
    if (strategy == "conv" && cache_bytes < spec.convLineBytes)
        return std::nullopt;
    if (strategy == "tib" && cache_bytes < 2 * parcelBytes)
        return std::nullopt;

    SimConfig cfg = makeSweepConfig(spec, strategy, cache_bytes);
    // PIPE configurations name a line size; the cache must fit it.
    if (cfg.fetch.strategy == FetchStrategy::Pipe &&
        cfg.fetch.lineBytes > cache_bytes)
        return std::nullopt;
    return cfg;
}

bool
sweepPointValid(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    return makeValidSweepConfig(spec, strategy, cache_bytes).has_value();
}

std::uint64_t
retryBackoffNs(const std::string &strategy, unsigned cache_bytes,
               unsigned attempt, unsigned base_ms)
{
    if (base_ms == 0 || attempt <= 1)
        return 0;
    const std::uint64_t baseNs = std::uint64_t(base_ms) * 1'000'000;
    const unsigned exponent = std::min(attempt - 2, 5u);
    // Reuse the per-point fault-seed derivation for the jitter: its
    // stream is already a pure function of the point identity, so the
    // schedule never depends on which worker retries the point.
    const std::uint64_t jitter = fault::FaultInjector::derivePointSeed(
                                     0x524554525900ull + attempt,
                                     strategy, cache_bytes) %
                                 baseNs;
    return (baseNs << exponent) + jitter;
}

DeadlineEnforcer::DeadlineEnforcer(std::vector<PointControl> &controls,
                                   bool enabled)
{
    if (enabled)
        _thread = std::thread([this, &controls] { watch(controls); });
}

DeadlineEnforcer::~DeadlineEnforcer()
{
    if (_thread.joinable()) {
        _stop.store(true, std::memory_order_relaxed);
        _thread.join();
    }
}

void
DeadlineEnforcer::watch(std::vector<PointControl> &controls)
{
    while (!_stop.load(std::memory_order_relaxed)) {
        const std::uint64_t now = obs::profileNowNs();
        for (PointControl &c : controls) {
            const std::uint64_t deadline =
                c.deadlineNs.load(std::memory_order_relaxed);
            if (deadline && now >= deadline)
                c.cancel.store(true, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

store::ResultKeyParams
sweepKeyParams(const SweepSpec &spec, const Program &program)
{
    store::ResultKeyParams keyParams;
    keyParams.programSha256 = replay::programSha256(program);
    if (spec.engine == SweepEngine::Trace) {
        if (!spec.trace)
            fatal("trace-engine sweep key requested without a trace "
                  "(SweepSpec::trace is null)");
        keyParams.engine =
            spec.samplePeriod ? "trace-sampled" : "trace-exact";
        // An auto-captured trace has no encoded-stream hash yet; its
        // program hash still pins the capture (the committed stream
        // is a pure function of the program).
        keyParams.traceSha256 = !spec.trace->sha256.empty()
                                    ? spec.trace->sha256
                                    : spec.trace->meta.programSha256;
        keyParams.samplePeriod = spec.samplePeriod;
        if (spec.samplePeriod) {
            keyParams.sampleWarmup = spec.sampleWarmup;
            keyParams.sampleMeasure = spec.sampleMeasure;
        }
    } else {
        keyParams.engine = "cycle";
    }
    return keyParams;
}

std::vector<SweepPointPlan>
planSweepPoints(const SweepSpec &spec, const store::ResultKeyParams *keys)
{
    std::vector<SweepPointPlan> points;
    points.reserve(spec.cacheSizes.size() * spec.strategies.size());
    for (std::size_t r = 0; r < spec.cacheSizes.size(); ++r) {
        for (std::size_t c = 0; c < spec.strategies.size(); ++c) {
            auto cfg = makeValidSweepConfig(spec, spec.strategies[c],
                                            spec.cacheSizes[r]);
            if (!cfg)
                continue;
            SweepPointPlan p;
            p.row = r;
            p.col = c;
            p.cacheBytes = spec.cacheSizes[r];
            p.strategy = spec.strategies[c];
            p.cfg = std::move(*cfg);
            if (keys)
                p.storeKey = store::resultKeyHex(p.cfg, *keys);
            points.push_back(std::move(p));
        }
    }
    return points;
}

SimResult
runSweepPointOnce(
    const SweepSpec &spec, const Program &program, const SimConfig &cfg,
    const std::function<void(Simulator &)> &pre_run,
    const std::function<void(Simulator &, const SimResult &)> &post_run)
{
    if (spec.engine == SweepEngine::Trace) {
        replay::ReplayOptions opts;
        opts.samplePeriod = spec.samplePeriod;
        opts.sampleWarmup = spec.sampleWarmup;
        opts.sampleMeasure = spec.sampleMeasure;
        // Windows stay serial inside a point (jobs = 1): the caller
        // already parallelizes across points, and nesting pools would
        // oversubscribe the host.
        opts.ckptDir = spec.ckptDir;
        opts.ckptCreate = spec.ckptCreate;
        return replay::replayTrace(cfg, program, *spec.trace, opts);
    }
    Simulator sim(cfg, program);
    if (pre_run)
        pre_run(sim);
    const SimResult result = sim.run();
    if (post_run)
        post_run(sim, result);
    return result;
}

namespace
{

/**
 * One planned point plus the runtime state runCacheSweep tracks for
 * it.  Runtime fields are written by the point's own worker and read
 * only after all workers joined.
 */
struct SweepPoint
{
    SweepPointPlan plan;

    /** Set when the point exhausted its attempts. */
    std::optional<PointFailure> failure;
    std::exception_ptr error;

    /** Host telemetry (same publication rule). */
    std::uint64_t wallNs = 0;
    unsigned attemptsUsed = 0;

    /** Back-off slept across this point's re-attempts. */
    std::uint64_t backoffNs = 0;

    /** True when the store served this point (it never runs). */
    bool served = false;
};

/** Sleep @p ns, waking early if a shutdown signal arrives. */
void
interruptibleSleepNs(std::uint64_t ns)
{
    constexpr std::uint64_t kChunkNs = 5'000'000;
    while (ns > 0 && !pendingSignal()) {
        const std::uint64_t slice = std::min(ns, kChunkNs);
        std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
        ns -= slice;
    }
}

/** Turn the exception behind @p error into a structured record. */
PointFailure
describeFailure(const SweepPoint &p, unsigned attempts)
{
    PointFailure f;
    f.strategy = p.plan.strategy;
    f.cacheBytes = p.plan.cacheBytes;
    f.attempts = attempts;
    try {
        std::rethrow_exception(p.error);
    } catch (const TimeoutAbort &e) {
        f.message = e.what();
        f.timeout = true;
        if (e.hasSnapshot())
            f.snapshot = e.snapshot().toString();
    } catch (const SimAbort &e) {
        f.message = e.what();
        if (e.hasSnapshot())
            f.snapshot = e.snapshot().toString();
    } catch (const std::exception &e) {
        f.message = e.what();
    } catch (...) {
        f.message = "unknown error";
    }
    return f;
}

/**
 * Throttled progress heartbeat for a running sweep.  Writes only to
 * stderr, so the rendered table on stdout stays byte-identical
 * whether or not --progress is on and for any worker count.
 */
class ProgressReporter
{
  public:
    ProgressReporter(bool enabled, std::size_t total)
        : _enabled(enabled && total > 0), _total(total),
          _startNs(obs::profileNowNs())
    {
    }

    /** Record one finished point; prints at most every ~200 ms, but
     *  always prints the final point. */
    void pointDone()
    {
        if (!_enabled)
            return;
        const std::size_t done = ++_completed;
        std::lock_guard<std::mutex> lock(_mutex);
        const std::uint64_t now = obs::profileNowNs();
        if (done < _total && now - _lastPrintNs < kThrottleNs)
            return;
        _lastPrintNs = now;
        const double elapsed = double(now - _startNs) * 1e-9;
        const double eta =
            elapsed / double(done) * double(_total - done);
        std::fprintf(
            stderr, "[sweep] %zu/%zu points (%d%%) elapsed %.1fs eta %.1fs\n",
            done, _total, int(100.0 * double(done) / double(_total)),
            elapsed, eta);
    }

  private:
    static constexpr std::uint64_t kThrottleNs = 200'000'000;

    const bool _enabled;
    const std::size_t _total;
    const std::uint64_t _startNs;
    std::mutex _mutex; //!< guards _lastPrintNs and stderr interleaving
    std::atomic<std::size_t> _completed{0};
    std::uint64_t _lastPrintNs = 0;
};

/**
 * Pre-create every host metric a sweep can emit, so the exported key
 * set is identical for any worker count (the key-set contract in
 * obs/metrics.hh: a jobs=1 sweep never constructs a ThreadPool, so
 * the pool would otherwise only register its metrics when jobs>1).
 */
void
touchSweepMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("pool.tasks");
    reg.counter("pool.busy_ns");
    reg.counter("pool.idle_ns");
    reg.counter("pool.empty_wakeups");
    reg.gauge("pool.workers");
    reg.histogram("pool.queue_depth");
    reg.histogram("sweep.point_ns");
    // Result-store and deadline metrics stay in the key set even for
    // store-less sweeps, so exports compare cleanly across runs.
    reg.counter("store.hits");
    reg.counter("store.misses");
    reg.counter("store.recovered");
    reg.counter("point.timeouts");
}

} // namespace

SweepResult
runCacheSweep(const SweepSpec &spec, const Program &program,
              const std::function<void(const std::string &, unsigned,
                                       const SimResult &)> &on_point)
{
    obs::ScopedPhase sweepPhase("sweep", obs::Scope::Coarse);
    touchSweepMetrics();

    if (spec.engine == SweepEngine::Trace) {
        if (!spec.trace)
            fatal("trace-engine sweep requested without a trace "
                  "(SweepSpec::trace is null)");
        if (spec.fault.kinds != fault::None)
            fatal("trace-engine sweep cannot inject faults; use the "
                  "cycle engine for fault experiments");
        if (spec.preRun || spec.postRun)
            warn("trace-engine sweep: preRun/postRun callbacks do not "
                 "fire (no Simulator exists under replay)");
    }

    std::vector<std::string> headers = {"cache_bytes"};
    for (const auto &s : spec.strategies)
        headers.push_back(s);
    Table table(std::move(headers));

    auto &reg = obs::MetricsRegistry::instance();

    // Open (and recover) the crash-safe result store before anything
    // is scheduled: completed points will be served from it, missing
    // ones journaled into it as they finish.
    std::unique_ptr<store::ResultStore> resultStore;
    store::ResultKeyParams keyParams;
    if (!spec.storeDir.empty()) {
        resultStore = std::make_unique<store::ResultStore>(spec.storeDir);
        if (resultStore->recoveredBytes())
            reg.counter("store.recovered").add(1);
        keyParams = sweepKeyParams(spec, program);
    }

    // Enumerate every valid point up front, building each SimConfig
    // exactly once.  Invalid points render "-" in the assembled table.
    const std::size_t rows = spec.cacheSizes.size();
    const std::size_t cols = spec.strategies.size();
    std::vector<std::vector<std::string>> cells(
        rows, std::vector<std::string>(cols, "-"));
    std::vector<SweepPoint> points;
    {
        obs::ScopedPhase phase("enumerate");
        std::vector<SweepPointPlan> plans = planSweepPoints(
            spec, resultStore ? &keyParams : nullptr);
        points.reserve(plans.size());
        for (SweepPointPlan &plan : plans) {
            SweepPoint p;
            p.plan = std::move(plan);
            points.push_back(std::move(p));
        }
    }

    // Consult the store before scheduling, in enumeration order, so
    // a resumed or repeated sweep only simulates the missing points
    // and the table stays byte-identical for any --jobs.  Hits fire
    // on_point (the stored result carries the full counters + meta)
    // but not preRun/postRun — no Simulator exists, as with the
    // trace engine.
    std::size_t storeHits = 0, storeMisses = 0;
    if (resultStore) {
        obs::ScopedPhase phase("store_lookup");
        for (auto &p : points) {
            const auto hit = resultStore->lookup(p.plan.storeKey);
            if (!hit) {
                ++storeMisses;
                continue;
            }
            ++storeHits;
            p.served = true;
            cells[p.plan.row][p.plan.col] =
                std::to_string(hit->totalCycles);
            if (on_point)
                on_point(p.plan.strategy, p.plan.cacheBytes, *hit);
        }
        reg.counter("store.hits").add(storeHits);
        reg.counter("store.misses").add(storeMisses);
    }

    std::size_t pendingPoints = 0;
    for (const auto &p : points)
        pendingPoints += p.served ? 0 : 1;
    ProgressReporter progress(spec.progress, pendingPoints);

    // Per-run state (Simulator, StatGroup, probe bus) is thread-local
    // to the point's worker; only the user callbacks share state, so
    // they are serialized under this mutex (see SweepSpec::preRun).
    std::mutex callbacks;
    // Journal a completed point (appends serialize inside the store;
    // a crash right after the flush still resumes losslessly).
    auto journal = [&](const SweepPoint &p, const SimResult &result) {
        if (resultStore)
            resultStore->put(p.plan.storeKey,
                             p.plan.strategy + ":" +
                                 std::to_string(p.plan.cacheBytes),
                             result);
    };
    auto attemptPoint = [&](SweepPoint &p) {
        if (spec.engine == SweepEngine::Trace) {
            const SimResult result =
                runSweepPointOnce(spec, program, p.plan.cfg);
            cells[p.plan.row][p.plan.col] =
                std::to_string(result.totalCycles);
            journal(p, result);
            if (on_point) {
                std::lock_guard<std::mutex> lock(callbacks);
                on_point(p.plan.strategy, p.plan.cacheBytes, result);
            }
            return;
        }
        Simulator sim(p.plan.cfg, program);
        if (spec.preRun) {
            std::lock_guard<std::mutex> lock(callbacks);
            spec.preRun(sim, p.plan.strategy, p.plan.cacheBytes);
        }
        const SimResult result = sim.run();
        // Each point owns a distinct cell; no lock needed for it.
        cells[p.plan.row][p.plan.col] =
            std::to_string(result.totalCycles);
        journal(p, result);
        if (spec.postRun || on_point) {
            std::lock_guard<std::mutex> lock(callbacks);
            if (spec.postRun)
                spec.postRun(sim, p.plan.strategy, p.plan.cacheBytes,
                             result);
            if (on_point)
                on_point(p.plan.strategy, p.plan.cacheBytes, result);
        }
    };
    // Never lets a point failure escape: it is captured on the point
    // itself and dispositioned after every worker has joined, so one
    // bad point cannot take the sweep down mid-flight.  The only
    // early exit is a termination signal, which sets `interrupted`
    // and lets the remaining workers drain their current points.
    const bool deadlines = spec.pointDeadlineMs > 0;
    std::atomic<bool> interrupted{false};
    auto runPoint = [&](SweepPoint &p, PointControl &ctl) {
        // Scope::Root: the phase attaches at the executing thread's
        // root, so the aggregated "point" path is identical whether
        // the point ran inline (jobs=1) or on a pool worker.
        obs::ScopedPhase phase("point", obs::Scope::Root,
                               p.plan.strategy + ":" +
                                   std::to_string(p.plan.cacheBytes));
        const std::uint64_t start = obs::profileNowNs();
        const unsigned attempts = 1 + spec.pointRetries;
        if (deadlines)
            p.plan.cfg.cancelFlag = &ctl.cancel;
        for (unsigned a = 1; a <= attempts; ++a) {
            if (pendingSignal()) {
                interrupted.store(true, std::memory_order_relaxed);
                break;
            }
            if (a > 1) {
                // Deterministic, seeded back-off: a function of the
                // point identity and attempt number only, so the
                // failure report is identical for any --jobs.
                const std::uint64_t backoff = retryBackoffNs(
                    p.plan.strategy, p.plan.cacheBytes, a,
                    spec.retryBackoffMs);
                p.backoffNs += backoff;
                interruptibleSleepNs(backoff);
                if (pendingSignal()) {
                    interrupted.store(true, std::memory_order_relaxed);
                    break;
                }
            }
            ctl.cancel.store(false, std::memory_order_relaxed);
            if (deadlines)
                ctl.deadlineNs.store(
                    obs::profileNowNs() +
                        std::uint64_t(spec.pointDeadlineMs) * 1'000'000,
                    std::memory_order_relaxed);
            try {
                attemptPoint(p);
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                p.attemptsUsed = a;
                break;
            } catch (const InterruptedError &) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                // Not a point failure: the whole sweep is shutting
                // down and will rethrow after the workers join.
                interrupted.store(true, std::memory_order_relaxed);
                break;
            } catch (...) {
                ctl.deadlineNs.store(0, std::memory_order_relaxed);
                p.error = std::current_exception();
                PointFailure f = describeFailure(p, a);
                if (f.timeout)
                    reg.counter("point.timeouts").add(1);
                if (a == attempts) {
                    p.attemptsUsed = a;
                    f.backoffNs = p.backoffNs;
                    cells[p.plan.row][p.plan.col] =
                        f.timeout ? "ERR(timeout)" : "ERR";
                    p.failure = std::move(f);
                } else {
                    p.error = nullptr;
                }
            }
        }
        p.wallNs = obs::profileNowNs() - start;
        obs::MetricsRegistry::instance()
            .histogram("sweep.point_ns")
            .sample(p.wallNs);
        progress.pointDone();
    };

    // Deadline control blocks live outside the (movable) points so
    // the watcher thread and the workers share stable atomics.
    std::vector<PointControl> controls(points.size());
    const unsigned jobs = resolveJobCount(spec.jobs);
    {
        // Same phase name for both execution shapes, so profiler key
        // sets match across worker counts.
        obs::ScopedPhase phase("run_points");
        DeadlineEnforcer enforcer(controls,
                                  deadlines && pendingPoints > 0);
        if (jobs <= 1 || pendingPoints <= 1) {
            // Serial: run in deterministic (size, strategy) order on
            // the calling thread.
            for (std::size_t i = 0; i < points.size(); ++i)
                if (!points[i].served)
                    runPoint(points[i], controls[i]);
        } else if (pendingPoints > 0) {
            ThreadPool pool(std::min<std::size_t>(jobs, pendingPoints));
            std::vector<std::future<void>> futures;
            futures.reserve(pendingPoints);
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (points[i].served)
                    continue;
                futures.push_back(pool.submit(
                    [&runPoint, &points, &controls, i] {
                        runPoint(points[i], controls[i]);
                    }));
            }
            // runPoint captures failures instead of throwing; waiting
            // on every future is a pure join.
            for (auto &f : futures)
                f.get();
        }
    }

    // A termination signal aborts the whole sweep (after the join, so
    // in-flight points finished journaling): no table, no ERR cells —
    // the guard reports the clean shutdown and the exit code.
    if (interrupted.load(std::memory_order_relaxed) || pendingSignal()) {
        const int sig = pendingSignal();
        throw InterruptedError(sig ? sig : SIGINT);
    }

    obs::ScopedPhase assemblePhase("assemble");

    // Disposition failures in enumeration order, so the report (and
    // the FailFast choice of exception) is identical for any --jobs.
    std::vector<PointFailure> failures;
    std::exception_ptr first;
    for (auto &p : points) {
        if (!p.failure)
            continue;
        failures.push_back(*p.failure);
        if (!first)
            first = p.error;
    }
    if (spec.failurePolicy == SweepFailurePolicy::FailFast && first)
        std::rethrow_exception(first);

    // Timings mirror enumeration order: deterministic key sequence
    // (strategy, cacheBytes, attempts) for any worker count, with
    // only wallNs carrying host timing.
    std::vector<PointTiming> timings;
    timings.reserve(points.size());
    for (const auto &p : points)
        timings.push_back({p.plan.strategy, p.plan.cacheBytes,
                           p.attemptsUsed, p.wallNs});

    for (std::size_t r = 0; r < rows; ++r) {
        table.beginRow();
        table.cell(spec.cacheSizes[r]);
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r][c]);
    }

    if (spec.onSweepEnd)
        spec.onSweepEnd();
    return SweepResult{std::move(table), std::move(failures),
                       std::move(timings), storeHits, storeMisses};
}

} // namespace pipesim
