#include "sim/experiment.hh"

namespace pipesim
{

SimConfig
makeSweepConfig(const SweepSpec &spec [[maybe_unused]], const std::string &strategy,
                unsigned cache_bytes)
{
    SimConfig cfg;
    cfg.mem = spec.mem;
    cfg.cpu = spec.cpu;
    if (strategy == "conv") {
        cfg.fetch = conventionalConfigFor(cache_bytes, spec.convLineBytes);
    } else if (strategy == "tib") {
        cfg.fetch = tibConfigFor(cache_bytes, spec.tibEntryBytes);
    } else {
        cfg.fetch = pipeConfigFor(strategy, cache_bytes);
        cfg.fetch.offchipPolicy = spec.policy;
    }
    return cfg;
}

bool
sweepPointValid([[maybe_unused]] const SweepSpec &spec,
                const std::string &strategy, unsigned cache_bytes)
{
    if (strategy == "conv")
        return true;
    if (strategy == "tib")
        return cache_bytes >= 2 * parcelBytes;
    return pipeConfigFor(strategy, cache_bytes).lineBytes <= cache_bytes;
}

Table
runCacheSweep(const SweepSpec &spec, const Program &program,
              const std::function<void(const std::string &, unsigned,
                                       const SimResult &)> &on_point)
{
    std::vector<std::string> headers = {"cache_bytes"};
    for (const auto &s : spec.strategies)
        headers.push_back(s);
    Table table(std::move(headers));

    for (unsigned size : spec.cacheSizes) {
        table.beginRow();
        table.cell(size);
        for (const auto &strategy : spec.strategies) {
            if (!sweepPointValid(spec, strategy, size)) {
                table.cell("-");
                continue;
            }
            const SimConfig cfg = makeSweepConfig(spec, strategy, size);
            Simulator sim(cfg, program);
            if (spec.preRun)
                spec.preRun(sim, strategy, size);
            const SimResult result = sim.run();
            if (spec.postRun)
                spec.postRun(sim, strategy, size, result);
            table.cell(std::uint64_t(result.totalCycles));
            if (on_point)
                on_point(strategy, size, result);
        }
    }
    return table;
}

} // namespace pipesim
