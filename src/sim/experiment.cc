#include "sim/experiment.hh"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <sstream>

#include "common/abort.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "replay/replay_engine.hh"

namespace pipesim
{

std::string
SweepResult::failureReport() const
{
    if (failures.empty())
        return "";
    std::ostringstream os;
    os << failures.size() << " sweep point(s) failed:\n";
    for (const PointFailure &f : failures) {
        os << "  " << f.strategy << ":" << f.cacheBytes << " after "
           << f.attempts << " attempt(s): " << f.message << "\n";
        std::istringstream lines(f.snapshot);
        std::string line;
        while (std::getline(lines, line))
            os << "    " << line << "\n";
    }
    return os.str();
}

SimConfig
makeSweepConfig(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    SimConfig cfg;
    cfg.mem = spec.mem;
    cfg.cpu = spec.cpu;
    if (strategy == "conv") {
        cfg.fetch = conventionalConfigFor(cache_bytes, spec.convLineBytes);
    } else if (strategy == "tib") {
        cfg.fetch = tibConfigFor(cache_bytes, spec.tibEntryBytes);
    } else {
        cfg.fetch = pipeConfigFor(strategy, cache_bytes);
        cfg.fetch.offchipPolicy = spec.policy;
    }
    if (spec.maxCycles)
        cfg.maxCycles = spec.maxCycles;
    if (spec.progressWindow)
        cfg.progressWindow = spec.progressWindow;
    cfg.fault = spec.fault;
    if (cfg.fault.kinds != fault::None) {
        const std::string name =
            strategy + ":" + std::to_string(cache_bytes);
        if (!spec.faultPoint.empty() && spec.faultPoint != name) {
            cfg.fault.kinds = fault::None;
        } else {
            // Give the point its own reproducible fault stream.
            cfg.fault.seed = fault::FaultInjector::derivePointSeed(
                spec.fault.seed, strategy, cache_bytes);
        }
    }
    return cfg;
}

std::optional<SimConfig>
makeValidSweepConfig(const SweepSpec &spec, const std::string &strategy,
                     unsigned cache_bytes)
{
    // Validity gates that need no config: a conventional cache must
    // hold at least one line, a TIB at least two entries' worth of
    // parcels.
    if (strategy == "conv" && cache_bytes < spec.convLineBytes)
        return std::nullopt;
    if (strategy == "tib" && cache_bytes < 2 * parcelBytes)
        return std::nullopt;

    SimConfig cfg = makeSweepConfig(spec, strategy, cache_bytes);
    // PIPE configurations name a line size; the cache must fit it.
    if (cfg.fetch.strategy == FetchStrategy::Pipe &&
        cfg.fetch.lineBytes > cache_bytes)
        return std::nullopt;
    return cfg;
}

bool
sweepPointValid(const SweepSpec &spec, const std::string &strategy,
                unsigned cache_bytes)
{
    return makeValidSweepConfig(spec, strategy, cache_bytes).has_value();
}

namespace
{

/** One enumerated (size, strategy) cell of the sweep grid. */
struct SweepPoint
{
    std::size_t row;      //!< index into spec.cacheSizes
    std::size_t col;      //!< index into spec.strategies
    unsigned cacheBytes;
    const std::string *strategy;
    SimConfig cfg; //!< built exactly once, at enumeration

    /** Set when the point exhausted its attempts (written by the
     *  point's own worker; read only after all workers joined). */
    std::optional<PointFailure> failure;
    std::exception_ptr error;

    /** Host telemetry, written by the point's own worker and read
     *  only after all workers joined (same publication rule). */
    std::uint64_t wallNs = 0;
    unsigned attemptsUsed = 0;
};

/** Turn the exception behind @p error into a structured record. */
PointFailure
describeFailure(const SweepPoint &p, unsigned attempts)
{
    PointFailure f;
    f.strategy = *p.strategy;
    f.cacheBytes = p.cacheBytes;
    f.attempts = attempts;
    try {
        std::rethrow_exception(p.error);
    } catch (const SimAbort &e) {
        f.message = e.what();
        if (e.hasSnapshot())
            f.snapshot = e.snapshot().toString();
    } catch (const std::exception &e) {
        f.message = e.what();
    } catch (...) {
        f.message = "unknown error";
    }
    return f;
}

/**
 * Throttled progress heartbeat for a running sweep.  Writes only to
 * stderr, so the rendered table on stdout stays byte-identical
 * whether or not --progress is on and for any worker count.
 */
class ProgressReporter
{
  public:
    ProgressReporter(bool enabled, std::size_t total)
        : _enabled(enabled && total > 0), _total(total),
          _startNs(obs::profileNowNs())
    {
    }

    /** Record one finished point; prints at most every ~200 ms, but
     *  always prints the final point. */
    void pointDone()
    {
        if (!_enabled)
            return;
        const std::size_t done = ++_completed;
        std::lock_guard<std::mutex> lock(_mutex);
        const std::uint64_t now = obs::profileNowNs();
        if (done < _total && now - _lastPrintNs < kThrottleNs)
            return;
        _lastPrintNs = now;
        const double elapsed = double(now - _startNs) * 1e-9;
        const double eta =
            elapsed / double(done) * double(_total - done);
        std::fprintf(
            stderr, "[sweep] %zu/%zu points (%d%%) elapsed %.1fs eta %.1fs\n",
            done, _total, int(100.0 * double(done) / double(_total)),
            elapsed, eta);
    }

  private:
    static constexpr std::uint64_t kThrottleNs = 200'000'000;

    const bool _enabled;
    const std::size_t _total;
    const std::uint64_t _startNs;
    std::mutex _mutex; //!< guards _lastPrintNs and stderr interleaving
    std::atomic<std::size_t> _completed{0};
    std::uint64_t _lastPrintNs = 0;
};

/**
 * Pre-create every host metric a sweep can emit, so the exported key
 * set is identical for any worker count (the key-set contract in
 * obs/metrics.hh: a jobs=1 sweep never constructs a ThreadPool, so
 * the pool would otherwise only register its metrics when jobs>1).
 */
void
touchSweepMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("pool.tasks");
    reg.counter("pool.busy_ns");
    reg.counter("pool.idle_ns");
    reg.counter("pool.empty_wakeups");
    reg.gauge("pool.workers");
    reg.histogram("pool.queue_depth");
    reg.histogram("sweep.point_ns");
}

} // namespace

SweepResult
runCacheSweep(const SweepSpec &spec, const Program &program,
              const std::function<void(const std::string &, unsigned,
                                       const SimResult &)> &on_point)
{
    obs::ScopedPhase sweepPhase("sweep", obs::Scope::Coarse);
    touchSweepMetrics();

    if (spec.engine == SweepEngine::Trace) {
        if (!spec.trace)
            fatal("trace-engine sweep requested without a trace "
                  "(SweepSpec::trace is null)");
        if (spec.fault.kinds != fault::None)
            fatal("trace-engine sweep cannot inject faults; use the "
                  "cycle engine for fault experiments");
        if (spec.preRun || spec.postRun)
            warn("trace-engine sweep: preRun/postRun callbacks do not "
                 "fire (no Simulator exists under replay)");
    }

    std::vector<std::string> headers = {"cache_bytes"};
    for (const auto &s : spec.strategies)
        headers.push_back(s);
    Table table(std::move(headers));

    // Enumerate every valid point up front, building each SimConfig
    // exactly once.  Invalid points render "-" in the assembled table.
    const std::size_t rows = spec.cacheSizes.size();
    const std::size_t cols = spec.strategies.size();
    std::vector<std::vector<std::string>> cells(
        rows, std::vector<std::string>(cols, "-"));
    std::vector<SweepPoint> points;
    points.reserve(rows * cols);
    {
        obs::ScopedPhase phase("enumerate");
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                auto cfg = makeValidSweepConfig(
                    spec, spec.strategies[c], spec.cacheSizes[r]);
                if (!cfg)
                    continue;
                points.push_back({r, c, spec.cacheSizes[r],
                                  &spec.strategies[c], std::move(*cfg),
                                  std::nullopt, nullptr});
            }
        }
    }
    ProgressReporter progress(spec.progress, points.size());

    // Per-run state (Simulator, StatGroup, probe bus) is thread-local
    // to the point's worker; only the user callbacks share state, so
    // they are serialized under this mutex (see SweepSpec::preRun).
    std::mutex callbacks;
    auto attemptTracePoint = [&](SweepPoint &p) {
        replay::ReplayOptions opts;
        opts.samplePeriod = spec.samplePeriod;
        opts.sampleWarmup = spec.sampleWarmup;
        opts.sampleMeasure = spec.sampleMeasure;
        // Windows stay serial inside a point (jobs = 1): the sweep
        // already parallelizes across points, and nesting pools would
        // oversubscribe the host.
        opts.ckptDir = spec.ckptDir;
        opts.ckptCreate = spec.ckptCreate;
        const SimResult result =
            replay::replayTrace(p.cfg, program, *spec.trace, opts);
        cells[p.row][p.col] = std::to_string(result.totalCycles);
        if (on_point) {
            std::lock_guard<std::mutex> lock(callbacks);
            on_point(*p.strategy, p.cacheBytes, result);
        }
    };
    auto attemptPoint = [&](SweepPoint &p) {
        if (spec.engine == SweepEngine::Trace) {
            attemptTracePoint(p);
            return;
        }
        Simulator sim(p.cfg, program);
        if (spec.preRun) {
            std::lock_guard<std::mutex> lock(callbacks);
            spec.preRun(sim, *p.strategy, p.cacheBytes);
        }
        const SimResult result = sim.run();
        // Each point owns a distinct cell; no lock needed for it.
        cells[p.row][p.col] = std::to_string(result.totalCycles);
        if (spec.postRun || on_point) {
            std::lock_guard<std::mutex> lock(callbacks);
            if (spec.postRun)
                spec.postRun(sim, *p.strategy, p.cacheBytes, result);
            if (on_point)
                on_point(*p.strategy, p.cacheBytes, result);
        }
    };
    // Never lets an exception escape: a failure is captured on the
    // point itself and dispositioned after every worker has joined,
    // so one bad point cannot take the sweep down mid-flight.
    auto runPoint = [&](SweepPoint &p) {
        // Scope::Root: the phase attaches at the executing thread's
        // root, so the aggregated "point" path is identical whether
        // the point ran inline (jobs=1) or on a pool worker.
        obs::ScopedPhase phase("point", obs::Scope::Root,
                               *p.strategy + ":" +
                                   std::to_string(p.cacheBytes));
        const std::uint64_t start = obs::profileNowNs();
        const unsigned attempts = 1 + spec.pointRetries;
        for (unsigned a = 1; a <= attempts; ++a) {
            try {
                attemptPoint(p);
                p.attemptsUsed = a;
                break;
            } catch (...) {
                if (a == attempts) {
                    p.attemptsUsed = a;
                    p.error = std::current_exception();
                    p.failure = describeFailure(p, a);
                    cells[p.row][p.col] = "ERR";
                }
            }
        }
        p.wallNs = obs::profileNowNs() - start;
        obs::MetricsRegistry::instance()
            .histogram("sweep.point_ns")
            .sample(p.wallNs);
        progress.pointDone();
    };

    const unsigned jobs = resolveJobCount(spec.jobs);
    {
        // Same phase name for both execution shapes, so profiler key
        // sets match across worker counts.
        obs::ScopedPhase phase("run_points");
        if (jobs <= 1 || points.size() <= 1) {
            // Serial: run in deterministic (size, strategy) order on
            // the calling thread.
            for (auto &p : points)
                runPoint(p);
        } else {
            ThreadPool pool(std::min<std::size_t>(jobs, points.size()));
            std::vector<std::future<void>> futures;
            futures.reserve(points.size());
            for (auto &p : points)
                futures.push_back(pool.submit([&runPoint, &p] {
                    runPoint(p);
                }));
            // runPoint captures failures instead of throwing; waiting
            // on every future is a pure join.
            for (auto &f : futures)
                f.get();
        }
    }

    obs::ScopedPhase assemblePhase("assemble");

    // Disposition failures in enumeration order, so the report (and
    // the FailFast choice of exception) is identical for any --jobs.
    std::vector<PointFailure> failures;
    std::exception_ptr first;
    for (auto &p : points) {
        if (!p.failure)
            continue;
        failures.push_back(*p.failure);
        if (!first)
            first = p.error;
    }
    if (spec.failurePolicy == SweepFailurePolicy::FailFast && first)
        std::rethrow_exception(first);

    // Timings mirror enumeration order: deterministic key sequence
    // (strategy, cacheBytes, attempts) for any worker count, with
    // only wallNs carrying host timing.
    std::vector<PointTiming> timings;
    timings.reserve(points.size());
    for (const auto &p : points)
        timings.push_back(
            {*p.strategy, p.cacheBytes, p.attemptsUsed, p.wallNs});

    for (std::size_t r = 0; r < rows; ++r) {
        table.beginRow();
        table.cell(spec.cacheSizes[r]);
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r][c]);
    }

    if (spec.onSweepEnd)
        spec.onSweepEnd();
    return SweepResult{std::move(table), std::move(failures),
                       std::move(timings)};
}

} // namespace pipesim
