#include "sim/standard_flags.hh"

#include <fstream>
#include <optional>

#include "common/log.hh"
#include "fault/fault_cli.hh"
#include "replay/capture.hh"
#include "replay/replay_engine.hh"
#include "replay/trace_format.hh"

namespace pipesim
{

void
registerStandardFlags(CliParser &cli, const StandardFlagGroups &groups)
{
    obs::ObsOptions::addOptions(cli);
    obs::ProfileOptions::addOptions(cli);
    fault::addFaultOptions(cli);
    if (groups.sweep) {
        cli.addOption("jobs", "0",
                      "parallel sweep workers (0 = PIPESIM_JOBS env or "
                      "hardware concurrency, 1 = serial)");
        cli.addOption("obs-point", "16-16:128",
                      "sweep point (strategy:cachebytes) the "
                      "observability outputs apply to");
        cli.addOption("fi-point", "",
                      "restrict fault injection to one sweep point "
                      "(strategy:cachebytes); empty = every point");
        cli.addFlag("fail-fast",
                    "abort the sweep on the first point failure instead "
                    "of rendering ERR cells and reporting at the end");
        cli.addOption("point-retries", "0",
                      "extra attempts granted to a failing sweep point");
        cli.addOption("retry-backoff-ms", "10",
                      "base delay before a point's re-attempt, doubling "
                      "per retry with a deterministic per-point jitter "
                      "(0 = retry immediately)");
        cli.addFlag("progress",
                    "emit a throttled sweep heartbeat with ETA on "
                    "stderr (stdout tables are unaffected)");
        cli.addOption("store-dir", "",
                      "journal each completed point into this result "
                      "store and serve already-completed points from "
                      "it, so an interrupted sweep resumes losslessly "
                      "(empty = no store)");
        cli.addOption("point-deadline-ms", "0",
                      "wall-clock budget per sweep point attempt; an "
                      "overrunning point is cancelled and dispositioned "
                      "as ERR(timeout) (0 = no deadline)");
        cli.addOption("progress-window", "0",
                      "override the engine's no-forward-progress "
                      "watchdog window, in cycles (0 = engine default)");
    }
    if (groups.engine) {
        cli.addOption("engine", "cycle",
                      "simulation engine: cycle (full detail) or trace "
                      "(replay a captured instruction stream)");
        cli.addOption("trace-file", "",
                      "trace engine: load the capture from this file "
                      "(or save a fresh capture to it)");
        cli.addOption("sample-period", "0",
                      "trace engine: sampling period in instructions "
                      "(0 = exact replay)");
        cli.addOption("sample-warmup", "300",
                      "trace engine: detailed warm-up instructions per "
                      "sampling window");
        cli.addOption("sample-measure", "700",
                      "trace engine: measured instructions per sampling "
                      "window");
        cli.addOption("ckpt-dir", "",
                      "sampled replay: live-points checkpoint directory "
                      "(restore windows from warm snapshots; empty = "
                      "no checkpoints)");
        cli.addFlag("ckpt-create",
                    "sampled replay: create/refresh the checkpoint "
                    "files under --ckpt-dir instead of requiring them");
    }
}

namespace
{

unsigned
nonNegative(const CliParser &cli, const std::string &name)
{
    const std::int64_t v = cli.getInt(name);
    if (v < 0)
        fatal("--", name, " must be >= 0, got ", v);
    return unsigned(v);
}

} // namespace

StandardFlags
standardFlagsFromCli(const CliParser &cli, const StandardFlagGroups &groups)
{
    StandardFlags f;
    f.obs = obs::ObsOptions::fromCli(cli);
    f.profile = obs::ProfileOptions::fromCli(cli);
    // Activate now so workload construction and capture are covered
    // too; runGuardedMain() flushes the report on every exit path.
    obs::activateProfiling(f.profile);
    f.fault = fault::faultConfigFromCli(cli);
    if (groups.sweep) {
        f.jobs = nonNegative(cli, "jobs");
        f.obsPoint = cli.get("obs-point");
        f.faultPoint = cli.get("fi-point");
        f.failFast = cli.getFlag("fail-fast");
        f.pointRetries = nonNegative(cli, "point-retries");
        f.retryBackoffMs = nonNegative(cli, "retry-backoff-ms");
        f.progress = cli.getFlag("progress");
        f.storeDir = cli.get("store-dir");
        f.pointDeadlineMs = nonNegative(cli, "point-deadline-ms");
        f.progressWindow = nonNegative(cli, "progress-window");
    }
    if (groups.engine) {
        const std::string engine = cli.get("engine");
        if (engine == "cycle") {
            f.engine = SweepEngine::Cycle;
        } else if (engine == "trace") {
            f.engine = SweepEngine::Trace;
        } else {
            fatal("--engine must be 'cycle' or 'trace', got '", engine,
                  "'");
        }
        f.traceFile = cli.get("trace-file");
        f.samplePeriod = nonNegative(cli, "sample-period");
        f.sampleWarmup = nonNegative(cli, "sample-warmup");
        f.sampleMeasure = nonNegative(cli, "sample-measure");
        f.ckptDir = cli.get("ckpt-dir");
        f.ckptCreate = cli.getFlag("ckpt-create");
    }
    return f;
}

void
installObs(SweepSpec &spec, const StandardFlags &flags)
{
    if (!flags.obs.any())
        return;
    const obs::ObsOptions opts = flags.obs;
    const std::string point = flags.obsPoint;
    auto session = std::make_shared<std::optional<obs::ObsSession>>();
    auto produced = std::make_shared<bool>(false);
    auto matches = [point](const std::string &strategy, unsigned cache) {
        return strategy + ":" + std::to_string(cache) == point;
    };
    spec.preRun = [session, opts, matches](Simulator &sim,
                                           const std::string &strategy,
                                           unsigned cache) {
        if (matches(strategy, cache))
            session->emplace(opts, sim);
    };
    spec.postRun = [session, matches, produced](
                       Simulator &sim [[maybe_unused]],
                       const std::string &strategy, unsigned cache,
                       const SimResult &result) {
        if (!matches(strategy, cache) || !session->has_value())
            return;
        (*session)->finish(result,
                           strategy + ":" + std::to_string(cache));
        session->reset();
        *produced = true;
    };
    spec.onSweepEnd = [produced, point, prev = spec.onSweepEnd]() {
        if (prev)
            prev();
        if (!*produced)
            warn("--obs-point " + point +
                 " matched no sweep point that ran; the requested "
                 "observability outputs were not produced (check the "
                 "strategy name and cache size against the sweep)");
    };
}

void
applyStandardFlags(SweepSpec &spec, const StandardFlags &flags)
{
    spec.jobs = flags.jobs;
    spec.progress = flags.progress;
    spec.fault = flags.fault;
    spec.faultPoint = flags.faultPoint;
    spec.pointRetries = flags.pointRetries;
    spec.retryBackoffMs = flags.retryBackoffMs;
    spec.storeDir = flags.storeDir;
    spec.pointDeadlineMs = flags.pointDeadlineMs;
    if (flags.progressWindow)
        spec.progressWindow = flags.progressWindow;
    spec.failurePolicy = flags.failFast
                             ? SweepFailurePolicy::FailFast
                             : SweepFailurePolicy::CollectAndContinue;
    spec.engine = flags.engine;
    spec.samplePeriod = flags.samplePeriod;
    spec.sampleWarmup = flags.sampleWarmup;
    spec.sampleMeasure = flags.sampleMeasure;
    spec.ckptDir = flags.ckptDir;
    spec.ckptCreate = flags.ckptCreate;
    if (!flags.ckptDir.empty()) {
        if (flags.engine != SweepEngine::Trace ||
            flags.samplePeriod == 0)
            fatal("--ckpt-dir requires sampled trace replay "
                  "(--engine trace with --sample-period > 0): "
                  "checkpoints snapshot sampling windows");
    } else if (flags.ckptCreate) {
        fatal("--ckpt-create requires --ckpt-dir to name the "
              "checkpoint directory");
    }
    if (flags.engine == SweepEngine::Trace) {
        if (flags.fault.enabled())
            fatal("--engine trace cannot be combined with fault "
                  "injection (--fi-kind): replay has no fault "
                  "injector; use --engine cycle");
        if (flags.obs.any())
            fatal("--engine trace cannot produce the per-point "
                  "observability outputs (--cpi-stack/--trace-json/"
                  "--stats-json): replay has no probe bus to attach "
                  "to; use --engine cycle");
    }
    installObs(spec, flags);
}

std::shared_ptr<const replay::Trace>
prepareSweepTrace(SweepSpec &spec, const StandardFlags &flags,
                  const Program &program)
{
    if (flags.engine != SweepEngine::Trace)
        return nullptr;

    std::shared_ptr<const replay::Trace> trace;
    const bool haveFile =
        !flags.traceFile.empty() &&
        std::ifstream(flags.traceFile, std::ios::binary).good();
    if (haveFile) {
        auto loaded = std::make_shared<replay::Trace>(
            replay::readTrace(flags.traceFile));
        const std::string hash = replay::programSha256(program);
        if (loaded->meta.programSha256 != hash)
            fatal("--trace-file ", flags.traceFile,
                  " was captured from a different program (trace "
                  "program sha256 ", loaded->meta.programSha256,
                  ", this program ", hash, ")");
        trace = loaded;
    } else {
        SimConfig captureCfg;
        auto captured = std::make_shared<replay::Trace>(
            replay::captureTrace(captureCfg, program,
                                 "auto-capture (" +
                                     captureCfg.fetchName() + ")"));
        if (!flags.traceFile.empty())
            replay::writeTrace(*captured, flags.traceFile);
        trace = captured;
    }
    spec.trace = trace.get();
    return trace;
}

} // namespace pipesim
