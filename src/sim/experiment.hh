/**
 * @file
 * Experiment harness: the cache-size sweeps behind every figure in
 * the paper's evaluation, parameterised the same way (strategy set,
 * memory access time, bus width, pipelining).
 */

#ifndef PIPESIM_SIM_EXPERIMENT_HH
#define PIPESIM_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "common/table.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace pipesim
{

/** One figure-style sweep: strategies x cache sizes. */
struct SweepSpec
{
    /** Cache sizes on the x axis (bytes). */
    std::vector<unsigned> cacheSizes = {16, 32, 64, 128, 256, 512, 1024};

    /**
     * Strategy names: "conv" or a Table II PIPE configuration name.
     * Order defines the table columns.
     */
    std::vector<std::string> strategies = {"conv", "8-8", "16-16",
                                           "16-32", "32-32"};

    /** Memory-side parameters shared by every point. */
    MemSystemConfig mem;

    /** Off-chip policy for the PIPE strategies (paper: TruePrefetch). */
    OffchipPolicy policy = OffchipPolicy::TruePrefetch;

    /** Line size for the conventional cache. */
    unsigned convLineBytes = 16;

    /** Entry size for the "tib" strategy. */
    unsigned tibEntryBytes = 16;

    /** Processor-side parameters. */
    PipelineConfig cpu;

    /**
     * Called with the freshly built Simulator before a point runs --
     * the place to attach probe-bus listeners (trace exporters, extra
     * accounting) for that point.
     */
    std::function<void(Simulator &sim, const std::string &strategy,
                       unsigned cache_bytes)>
        preRun;

    /**
     * Called after a point finishes, while its Simulator is still
     * alive -- the place to detach listeners and write outputs.
     */
    std::function<void(Simulator &sim, const std::string &strategy,
                       unsigned cache_bytes, const SimResult &result)>
        postRun;
};

/** Build the SimConfig for one (strategy, cache size) point. */
SimConfig makeSweepConfig(const SweepSpec &spec,
                          const std::string &strategy,
                          unsigned cache_bytes);

/**
 * @return true if the point is simulable (a PIPE configuration needs
 *         a cache at least one line large).
 */
bool sweepPointValid(const SweepSpec &spec, const std::string &strategy,
                     unsigned cache_bytes);

/**
 * Run the sweep over @p program.
 *
 * @param on_point Optional observer called after each run (e.g. for
 *                 progress output or extra stat collection).
 * @return a table: one row per cache size, one column per strategy,
 *         cells are total execution cycles ("-" for invalid points).
 */
Table runCacheSweep(
    const SweepSpec &spec, const Program &program,
    const std::function<void(const std::string &strategy,
                             unsigned cache_bytes,
                             const SimResult &result)> &on_point = {});

} // namespace pipesim

#endif // PIPESIM_SIM_EXPERIMENT_HH
