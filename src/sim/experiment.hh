/**
 * @file
 * Experiment harness: the cache-size sweeps behind every figure in
 * the paper's evaluation, parameterised the same way (strategy set,
 * memory access time, bus width, pipelining).
 *
 * Sweep points are independent (one Simulator per point against a
 * shared immutable Program), so runCacheSweep can execute them on a
 * thread pool; see docs/parallel_sweeps.md for the threading model
 * and the callback serialization contract.
 */

#ifndef PIPESIM_SIM_EXPERIMENT_HH
#define PIPESIM_SIM_EXPERIMENT_HH

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "assembler/program.hh"
#include "common/table.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "store/result_store.hh"

namespace pipesim
{

namespace replay
{
struct Trace;
} // namespace replay

/** Which engine executes each sweep point. */
enum class SweepEngine
{
    /** Full cycle-accurate simulation (Simulator). */
    Cycle,
    /**
     * Trace-driven replay (replay::replayTrace) of SweepSpec::trace.
     * Exact by default; SweepSpec::samplePeriod selects sampling.
     * preRun/postRun do not fire (there is no Simulator to attach
     * probes to); on_point still fires for every completed point.
     */
    Trace,
};

/** How runCacheSweep treats a failing point. */
enum class SweepFailurePolicy
{
    /**
     * Rethrow the first failure in enumeration order after every
     * point has finished (no table is produced).  The default, and
     * the pre-existing behaviour.
     */
    FailFast,
    /**
     * Record the failure, render "ERR" in that point's cell, and
     * finish the sweep; the failures come back in
     * SweepResult::failures, in enumeration order regardless of the
     * worker count.
     */
    CollectAndContinue,
};

/** Structured record of one failed sweep point. */
struct PointFailure
{
    std::string strategy;
    unsigned cacheBytes = 0;
    unsigned attempts = 0; //!< runs tried (1 + spec.pointRetries)
    std::string message;   //!< the exception's what()
    std::string snapshot;  //!< machine snapshot (SimAbort only)

    /** True when the final attempt died on the --point-deadline-ms
     *  wall-clock watchdog (the cell renders "ERR(timeout)"). */
    bool timeout = false;

    /** Total deterministic retry back-off slept across the attempts
     *  (see retryBackoffNs()); part of the failure report. */
    std::uint64_t backoffNs = 0;
};

/**
 * Host-side timing record for one completed (or failed) sweep point.
 * Records come back in enumeration order for every worker count, so
 * the (strategy, cacheBytes, attempts) key sequence is deterministic;
 * only wallNs carries nondeterministic host timing.
 */
struct PointTiming
{
    std::string strategy;
    unsigned cacheBytes = 0;
    unsigned attempts = 0;   //!< runs tried (failed attempts included);
                             //!< 0 = served from the result store
    std::uint64_t wallNs = 0; //!< host wall-clock across all attempts
};

/** What a sweep produced: the table plus any per-point failures. */
struct SweepResult
{
    Table table;
    std::vector<PointFailure> failures;

    /** Per-point host timings, in enumeration order (valid points
     *  only — one entry per non-"-" cell). */
    std::vector<PointTiming> timings;

    /** Points served from SweepSpec::storeDir without simulating /
     *  points that had to run (0/0 when no store was attached). */
    std::size_t storeHits = 0;
    std::size_t storeMisses = 0;

    /** @return true if every valid point completed. */
    bool ok() const { return failures.empty(); }

    /**
     * Human-readable report of every failure (message plus indented
     * machine snapshot); empty when ok().
     */
    std::string failureReport() const;
};

/** One figure-style sweep: strategies x cache sizes. */
struct SweepSpec
{
    /** Cache sizes on the x axis (bytes). */
    std::vector<unsigned> cacheSizes = {16, 32, 64, 128, 256, 512, 1024};

    /**
     * Strategy names: "conv" or a Table II PIPE configuration name.
     * Order defines the table columns.
     */
    std::vector<std::string> strategies = {"conv", "8-8", "16-16",
                                           "16-32", "32-32"};

    /** Memory-side parameters shared by every point. */
    MemSystemConfig mem;

    /** Off-chip policy for the PIPE strategies (paper: TruePrefetch). */
    OffchipPolicy policy = OffchipPolicy::TruePrefetch;

    /** Line size for the conventional cache. */
    unsigned convLineBytes = 16;

    /** Entry size for the "tib" strategy. */
    unsigned tibEntryBytes = 16;

    /** Processor-side parameters. */
    PipelineConfig cpu;

    /**
     * Worker threads for the sweep: 0 resolves through --jobs /
     * PIPESIM_JOBS / hardware concurrency (resolveJobCount()); 1
     * forces fully serial in-order execution on the calling thread.
     */
    unsigned jobs = 0;

    /** What to do when a point's Simulator throws. */
    SweepFailurePolicy failurePolicy = SweepFailurePolicy::FailFast;

    /**
     * Emit a throttled progress heartbeat with ETA on stderr while
     * the sweep runs ("[sweep] 12/31 points (38%) elapsed 1.2s eta
     * 1.9s").  Heartbeats never touch stdout, so the rendered table
     * stays byte-identical for any worker count (--progress on every
     * bench; see docs/observability.md).
     */
    bool progress = false;

    /** Which engine runs each point. */
    SweepEngine engine = SweepEngine::Cycle;

    /**
     * The captured trace replayed by the Trace engine (must outlive
     * the sweep; one capture drives every point because the committed
     * instruction stream is config-independent).  Required when
     * engine == SweepEngine::Trace; fault injection is rejected there.
     */
    const replay::Trace *trace = nullptr;

    /** Trace engine: sampling period in instructions (0 = exact). */
    unsigned samplePeriod = 0;
    unsigned sampleWarmup = 300;  //!< warm-up instructions per window
    unsigned sampleMeasure = 700; //!< measured instructions per window

    /**
     * Trace engine, sampled mode: live-points checkpoint directory
     * (replay/checkpoint.hh).  Empty disables checkpoints.  With
     * ckptCreate each point's serial sampled pass also snapshots its
     * windows there; without it each point restores its windows from
     * a matching checkpoint file, skipping every warm-up.  Points
     * keep their windows serial either way — the sweep already
     * parallelizes across points.
     */
    std::string ckptDir;
    bool ckptCreate = false;

    /**
     * Extra attempts granted to a failing point before its failure
     * is recorded (each attempt rebuilds the Simulator from the same
     * config, so a deterministic fault fails every attempt).
     */
    unsigned pointRetries = 0;

    /**
     * Base of the deterministic retry back-off slept before each
     * re-attempt (retryBackoffNs(): exponential in the attempt
     * number, jittered from the point's identity — never from the
     * worker or wall-clock, so the schedule is byte-identical for
     * any --jobs).  0 disables the back-off (retries fire
     * immediately, the pre-PR behaviour).
     */
    unsigned retryBackoffMs = 10;

    /**
     * Crash-safe result store directory (src/store/result_store.hh).
     * Empty disables the store.  When set, every enumerated point is
     * looked up by content key before scheduling — hits fill their
     * cells (and fire on_point) without simulating, misses run and
     * are journaled on completion — so a killed or repeated sweep
     * resumes losslessly with a byte-identical table for any --jobs.
     * Failed (ERR) points are never journaled: a resumed sweep
     * re-attempts them.  preRun/postRun do not fire for served
     * points (there is no Simulator), mirroring the trace engine's
     * contract.
     */
    std::string storeDir;

    /**
     * Per-attempt wall-clock deadline in milliseconds (0 = none).
     * A watchdog thread arms each running point's cooperative
     * cancellation flag (SimConfig::cancelFlag) when its budget
     * expires; the tick loops observe it and unwind with
     * TimeoutAbort, dispositioned through the normal failure policy
     * as "ERR(timeout)" — the pool keeps draining the other points.
     */
    unsigned pointDeadlineMs = 0;

    /**
     * Fault injection applied to the swept machines (fault/fault.hh).
     * Each point derives its own seed from (fault.seed, strategy,
     * cache size), so its fault stream is independent of the worker
     * count and of which other points are swept.
     */
    fault::FaultConfig fault;

    /**
     * When non-empty, restrict fault injection to the single point
     * named "strategy:cachebytes" (e.g. "16-16:64"); every other
     * point runs fault-free.  Ignored when fault.kinds is None.
     */
    std::string faultPoint;

    /** Override SimConfig::maxCycles for every point (0 = keep the
     *  default). */
    Cycle maxCycles = 0;

    /** Override SimConfig::progressWindow for every point (0 = keep
     *  the default) -- lets tests detect an injected deadlock fast. */
    Cycle progressWindow = 0;

    /**
     * Called with the freshly built Simulator before a point runs --
     * the place to attach probe-bus listeners (trace exporters, extra
     * accounting) for that point.
     *
     * Callback contract under parallel sweeps: preRun, postRun and
     * on_point are always invoked under one shared mutex, never
     * concurrently.  With jobs == 1 they fire in deterministic
     * (size, strategy) order; with jobs > 1 the order across points
     * follows completion, but postRun and on_point for a given point
     * are still consecutive under a single lock hold.
     */
    std::function<void(Simulator &sim, const std::string &strategy,
                       unsigned cache_bytes)>
        preRun;

    /**
     * Called after a point finishes, while its Simulator is still
     * alive -- the place to detach listeners and write outputs.
     * Serialized; see preRun.
     */
    std::function<void(Simulator &sim, const std::string &strategy,
                       unsigned cache_bytes, const SimResult &result)>
        postRun;

    /**
     * Called once on the sweeping thread after every point has
     * finished (and after the last postRun/on_point), regardless of
     * worker count -- the place to validate that an expected point
     * actually ran and flush any aggregate output.
     */
    std::function<void()> onSweepEnd;
};

/**
 * One enumerated (cache size, strategy) cell of a sweep grid — the
 * point-level scheduling unit.  runCacheSweep plans its grid through
 * planSweepPoints(); external schedulers (the pipesim-serve daemon,
 * src/server/) plan the same points and run them one at a time with
 * runSweepPointOnce(), so a served sweep is point-for-point identical
 * to a local one.
 */
struct SweepPointPlan
{
    std::size_t row = 0; //!< index into spec.cacheSizes
    std::size_t col = 0; //!< index into spec.strategies
    unsigned cacheBytes = 0;
    std::string strategy;
    SimConfig cfg; //!< built exactly once, at planning

    /** Result-store content key; "" when planned without keys. */
    std::string storeKey;
};

/**
 * The result-store key parameters a sweep's points share: program
 * hash, engine name, trace hash and sampling parameters (the
 * per-point config/fault identity is folded in by resultKeyHex).
 * Requires spec.trace when the engine is Trace.
 */
store::ResultKeyParams sweepKeyParams(const SweepSpec &spec,
                                      const Program &program);

/**
 * Enumerate every valid point of the sweep grid in deterministic
 * (size, strategy) order, building each SimConfig exactly once.
 * When @p keys is non-null each point also gets its result-store
 * content key (store::resultKeyHex).  Invalid (degenerate) points are
 * omitted — they render "-" in an assembled table.
 */
std::vector<SweepPointPlan>
planSweepPoints(const SweepSpec &spec,
                const store::ResultKeyParams *keys = nullptr);

/**
 * Run one attempt of one sweep point — the engine dispatch shared by
 * runCacheSweep and the serving scheduler.  Cycle engine: builds a
 * Simulator on @p cfg and runs it, calling @p pre_run right before
 * and @p post_run right after (both optional; never serialized here —
 * that is the caller's contract).  Trace engine: replays spec.trace
 * (pre_run/post_run do not fire; there is no Simulator).  Failures
 * (SimAbort, TimeoutAbort via cfg.cancelFlag, FatalError) propagate
 * to the caller, which owns retry and disposition policy.
 */
SimResult runSweepPointOnce(
    const SweepSpec &spec, const Program &program, const SimConfig &cfg,
    const std::function<void(Simulator &)> &pre_run = {},
    const std::function<void(Simulator &, const SimResult &)> &post_run =
        {});

/**
 * Host-side control block for one scheduled point.  deadlineNs is
 * armed by the point's worker right before an attempt and observed by
 * the DeadlineEnforcer watchdog, which answers by setting cancel —
 * the flag the simulated machine's tick loop polls through
 * SimConfig::cancelFlag.  Cancel doubles as the cooperative
 * client-disconnect path in the serving layer.
 */
struct PointControl
{
    std::atomic<std::uint64_t> deadlineNs{0}; //!< 0 = not running
    std::atomic<bool> cancel{false};
};

/**
 * The --point-deadline-ms watchdog: one thread scanning every
 * in-flight point's armed deadline a few hundred times a second.
 * Purely host-side — it never touches simulated state, only the
 * cooperative cancel flags — so it cannot perturb results.  The
 * controls vector must outlive the enforcer.
 */
class DeadlineEnforcer
{
  public:
    DeadlineEnforcer(std::vector<PointControl> &controls, bool enabled);
    ~DeadlineEnforcer();

    DeadlineEnforcer(const DeadlineEnforcer &) = delete;
    DeadlineEnforcer &operator=(const DeadlineEnforcer &) = delete;

  private:
    void watch(std::vector<PointControl> &controls);

    std::atomic<bool> _stop{false};
    std::thread _thread;
};

/**
 * Build the SimConfig for one (strategy, cache size) point when the
 * point is simulable; std::nullopt for a degenerate point (cache
 * smaller than one conventional line / PIPE line / TIB entry pair).
 * Builds each configuration exactly once -- this is the function the
 * sweep uses to enumerate points.
 */
std::optional<SimConfig> makeValidSweepConfig(const SweepSpec &spec,
                                              const std::string &strategy,
                                              unsigned cache_bytes);

/**
 * Build the SimConfig for one (strategy, cache size) point without a
 * validity check (kept for callers that know the point is valid).
 */
SimConfig makeSweepConfig(const SweepSpec &spec,
                          const std::string &strategy,
                          unsigned cache_bytes);

/**
 * @return true if the point is simulable (the cache must fit at
 *         least one conventional line, PIPE line, or TIB entry pair).
 */
bool sweepPointValid(const SweepSpec &spec, const std::string &strategy,
                     unsigned cache_bytes);

/**
 * Deterministic retry back-off before attempt @p attempt (2-based:
 * the first attempt never waits) of the point
 * (@p strategy, @p cache_bytes): exponential in the attempt number
 * (capped at 32x) on a base of @p base_ms milliseconds, plus a
 * jitter below one base derived from the point's identity with the
 * same splitmix64 machinery as the per-point fault seeds.  A pure
 * function of its arguments — independent of worker count, wall
 * clock and sweep composition — so retry schedules are reproducible.
 * @return the back-off in nanoseconds (0 when base_ms is 0).
 */
std::uint64_t retryBackoffNs(const std::string &strategy,
                             unsigned cache_bytes, unsigned attempt,
                             unsigned base_ms);

/**
 * Run the sweep over @p program, using spec.jobs worker threads.
 *
 * The result is deterministic and independent of the worker count:
 * each point runs on a private Simulator (own StatGroup and probe
 * bus) and the table is assembled in (size, strategy) order
 * regardless of completion order.  A failing point is retried
 * spec.pointRetries times; under FailFast the first failure in
 * enumeration order is rethrown after all workers finish, under
 * CollectAndContinue it renders "ERR" in that cell and is returned
 * in SweepResult::failures (postRun/on_point do not fire for failed
 * points).
 *
 * @param on_point Optional observer called after each run (e.g. for
 *                 progress output or extra stat collection);
 *                 serialized with preRun/postRun (see SweepSpec).
 * @return the assembled table (one row per cache size, one column
 *         per strategy, cells are total execution cycles, "-" for
 *         invalid points, "ERR" for failed ones) plus the structured
 *         failure records.
 */
SweepResult runCacheSweep(
    const SweepSpec &spec, const Program &program,
    const std::function<void(const std::string &strategy,
                             unsigned cache_bytes,
                             const SimResult &result)> &on_point = {});

} // namespace pipesim

#endif // PIPESIM_SIM_EXPERIMENT_HH
