#include "isa/opcodes.hh"

#include <array>

#include "common/log.hh"
#include "common/strutil.hh"

namespace pipesim::isa
{

namespace
{

constexpr std::array<OpcodeInfo, unsigned(Opcode::NumOpcodes)> infoTable = {{
    // mnemonic  parcels rd    rs1    rs2    imm    load   store  branch
    {"add",      1,      true,  true,  true,  false, false, false, false},
    {"sub",      1,      true,  true,  true,  false, false, false, false},
    {"and",      1,      true,  true,  true,  false, false, false, false},
    {"or",       1,      true,  true,  true,  false, false, false, false},
    {"xor",      1,      true,  true,  true,  false, false, false, false},
    {"sll",      1,      true,  true,  true,  false, false, false, false},
    {"srl",      1,      true,  true,  true,  false, false, false, false},
    {"sra",      1,      true,  true,  true,  false, false, false, false},
    {"addi",     2,      true,  true,  false, true,  false, false, false},
    {"subi",     2,      true,  true,  false, true,  false, false, false},
    {"andi",     2,      true,  true,  false, true,  false, false, false},
    {"ori",      2,      true,  true,  false, true,  false, false, false},
    {"xori",     2,      true,  true,  false, true,  false, false, false},
    {"slli",     2,      true,  true,  false, true,  false, false, false},
    {"srli",     2,      true,  true,  false, true,  false, false, false},
    {"srai",     2,      true,  true,  false, true,  false, false, false},
    {"li",       2,      true,  false, false, true,  false, false, false},
    {"lui",      2,      true,  false, false, true,  false, false, false},
    {"ld",       2,      false, true,  false, true,  true,  false, false},
    {"ldx",      1,      false, true,  true,  false, true,  false, false},
    {"st",       2,      false, true,  false, true,  false, true,  false},
    {"stx",      1,      false, true,  true,  false, false, true,  false},
    {"pbr",      1,      false, false, false, false, false, false, true},
    {"lbr",      2,      false, false, false, true,  false, false, false},
    {"mov",      1,      true,  true,  false, false, false, false, false},
    {"not",      1,      true,  true,  false, false, false, false, false},
    {"neg",      1,      true,  true,  false, false, false, false, false},
    {"nop",      1,      false, false, false, false, false, false, false},
    {"rsw",      1,      false, false, false, false, false, false, false},
    {"halt",     1,      false, false, false, false, false, false, false},
}};

constexpr std::array<std::string_view, 7> condNames = {
    "always", "eqz", "nez", "ltz", "gez", "gtz", "lez",
};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = unsigned(op);
    PIPESIM_ASSERT(idx < infoTable.size(), "bad opcode ", idx);
    return infoTable[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

std::optional<Opcode>
opcodeFromMnemonic(std::string_view name)
{
    for (unsigned i = 0; i < infoTable.size(); ++i)
        if (iequals(infoTable[i].mnemonic, name))
            return Opcode(i);
    return std::nullopt;
}

std::string_view
condName(Cond c)
{
    const auto idx = unsigned(c);
    PIPESIM_ASSERT(idx < condNames.size(), "bad condition code ", idx);
    return condNames[idx];
}

std::optional<Cond>
condFromName(std::string_view name)
{
    for (unsigned i = 0; i < condNames.size(); ++i)
        if (iequals(condNames[i], name))
            return Cond(i);
    return std::nullopt;
}

} // namespace pipesim::isa
