/**
 * @file
 * Flattened opcode space of our PIPE rendition, with a static trait
 * table describing each opcode's format and operand usage.
 */

#ifndef PIPESIM_ISA_OPCODES_HH
#define PIPESIM_ISA_OPCODES_HH

#include <optional>
#include <string_view>

namespace pipesim::isa
{

/** Every executable operation, across all encodings. */
enum class Opcode : unsigned char
{
    // Register-register ALU (1 parcel).
    Add, Sub, And, Or, Xor, Sll, Srl, Sra,
    // Register-immediate ALU (2 parcels).
    Addi, Subi, Andi, Ori, Xori, Slli, Srli, Srai,
    // Immediates (2 parcels).
    Li, Lui,
    // Memory address generation.
    Ld,   //!< ld [rs1 + imm16]  (2 parcels) -> LAQ
    LdX,  //!< ldx [rs1 + rs2]   (1 parcel)  -> LAQ
    St,   //!< st [rs1 + imm16]  (2 parcels) -> SAQ
    StX,  //!< stx [rs1 + rs2]   (1 parcel)  -> SAQ
    // Control.
    Pbr,  //!< prepare-to-branch (1 parcel)
    Lbr,  //!< load branch register with absolute address (2 parcels)
    // Unary (1 parcel).
    Mov, Not, Neg,
    // Misc (1 parcel).
    Nop, Rsw, Halt,

    NumOpcodes,
};

/** PBR condition codes (3-bit field). */
enum class Cond : unsigned char
{
    Always = 0,
    Eqz    = 1,  //!< rs == 0
    Nez    = 2,  //!< rs != 0
    Ltz    = 3,  //!< rs <  0 (signed)
    Gez    = 4,  //!< rs >= 0 (signed)
    Gtz    = 5,  //!< rs >  0 (signed)
    Lez    = 6,  //!< rs <= 0 (signed)
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    unsigned parcels;    //!< natural (compact) encoding size, 1 or 2
    bool hasRd;          //!< writes a data register (field b)
    bool hasRs1;         //!< reads data register in field c
    bool hasRs2;         //!< reads data register in field d
    bool hasImm;         //!< carries a 16-bit immediate parcel
    bool isLoad;         //!< pushes the Load Address Queue
    bool isStore;        //!< pushes the Store Address Queue
    bool isBranch;       //!< is the prepare-to-branch instruction
};

/** @return the trait record for @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** @return the mnemonic for @p op. */
std::string_view mnemonic(Opcode op);

/** @return the opcode whose mnemonic is @p name (case-insensitive). */
std::optional<Opcode> opcodeFromMnemonic(std::string_view name);

/** @return the assembly name of a condition code ("nez", ...). */
std::string_view condName(Cond c);

/** @return the condition whose name is @p name (case-insensitive). */
std::optional<Cond> condFromName(std::string_view name);

} // namespace pipesim::isa

#endif // PIPESIM_ISA_OPCODES_HH
