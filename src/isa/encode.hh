/**
 * @file
 * Instruction encoder: decoded Instruction -> parcels.
 *
 * Two format modes are supported, mirroring simulation parameter (1)
 * of the paper:
 *  - Compact: the native PIPE mix of one- and two-parcel encodings.
 *  - Fixed32: every instruction occupies two parcels (4 bytes); a
 *    one-parcel instruction is padded with a zero immediate parcel.
 *    All results presented in the paper use a fixed 32-bit format
 *    "to make comparisons to other machines more realistic".
 */

#ifndef PIPESIM_ISA_ENCODE_HH
#define PIPESIM_ISA_ENCODE_HH

#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace pipesim::isa
{

/** Instruction format selection (simulation parameter 1). */
enum class FormatMode
{
    Compact,  //!< native 16/32-bit PIPE formats
    Fixed32,  //!< every instruction padded to 32 bits
};

/**
 * Encode @p inst into parcels.
 *
 * @param inst Instruction to encode; imm must fit in 16 bits
 *             (signed or unsigned view).
 * @param mode Format mode; Fixed32 always yields two parcels.
 * @return the encoded parcels (1 or 2).
 */
std::vector<Parcel> encode(const Instruction &inst, FormatMode mode);

/**
 * Number of parcels the instruction starting with first parcel @p p1
 * occupies under @p mode.
 */
unsigned instParcels(Parcel p1, FormatMode mode);

} // namespace pipesim::isa

#endif // PIPESIM_ISA_ENCODE_HH
