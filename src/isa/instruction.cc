#include "isa/instruction.hh"

#include "isa/fields.hh"

namespace pipesim::isa
{

std::vector<std::uint8_t>
Instruction::srcRegs() const
{
    const OpcodeInfo &info = opcodeInfo(op);
    std::vector<std::uint8_t> regs;
    if (info.hasRs1)
        regs.push_back(rs1);
    if (info.hasRs2)
        regs.push_back(rs2);
    // PBR reads the condition register unless the branch is
    // unconditional.
    if (op == Opcode::Pbr && cond != Cond::Always)
        regs.push_back(rs1);
    return regs;
}

bool
Instruction::writesReg(std::uint8_t r) const
{
    const OpcodeInfo &info = opcodeInfo(op);
    return info.hasRd && rd == r;
}

unsigned
Instruction::ldqPops() const
{
    unsigned n = 0;
    for (std::uint8_t r : srcRegs())
        if (r == queueReg)
            ++n;
    return n;
}

bool
Instruction::pushesSdq() const
{
    const OpcodeInfo &info = opcodeInfo(op);
    return info.hasRd && rd == queueReg;
}

} // namespace pipesim::isa
