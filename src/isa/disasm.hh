/**
 * @file
 * Disassembler: decoded Instruction -> assembly text.
 *
 * Output round-trips through the assembler (modulo labels, which the
 * disassembler renders as absolute addresses).
 */

#ifndef PIPESIM_ISA_DISASM_HH
#define PIPESIM_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace pipesim::isa
{

/** Render @p inst as assembly text (e.g. "add r1, r2, r3"). */
std::string disassemble(const Instruction &inst);

} // namespace pipesim::isa

#endif // PIPESIM_ISA_DISASM_HH
