#include "isa/decode.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "isa/fields.hh"

namespace pipesim::isa
{

namespace
{

Opcode
aluRROpcode(unsigned func)
{
    static constexpr Opcode table[8] = {
        Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
        Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra,
    };
    return table[func & 7];
}

Opcode
aluRIOpcode(unsigned func)
{
    static constexpr Opcode table[8] = {
        Opcode::Addi, Opcode::Subi, Opcode::Andi, Opcode::Ori,
        Opcode::Xori, Opcode::Slli, Opcode::Srli, Opcode::Srai,
    };
    return table[func & 7];
}

} // namespace

Instruction
decode(Parcel p1, Parcel p2, FormatMode mode)
{
    Instruction inst;
    const unsigned a = fieldA(p1);
    const unsigned b = fieldB(p1);
    const unsigned c = fieldC(p1);
    const unsigned d = fieldD(p1);
    const auto imm = std::int32_t(sext(p2, 16));

    switch (Major(majorOf(p1))) {
      case Major::AluRR:
        inst.op = aluRROpcode(a);
        inst.rd = std::uint8_t(b);
        inst.rs1 = std::uint8_t(c);
        inst.rs2 = std::uint8_t(d);
        break;
      case Major::AluRI:
        inst.op = aluRIOpcode(a);
        inst.rd = std::uint8_t(b);
        inst.rs1 = std::uint8_t(c);
        inst.imm = imm;
        break;
      case Major::LiGrp:
        inst.op = a == 0 ? Opcode::Li : Opcode::Lui;
        inst.rd = std::uint8_t(b);
        inst.imm = imm;
        break;
      case Major::Ld:
        if (a == 0) {
            inst.op = Opcode::Ld;
            inst.rs1 = std::uint8_t(c);
            inst.imm = imm;
        } else {
            inst.op = Opcode::LdX;
            inst.rs1 = std::uint8_t(c);
            inst.rs2 = std::uint8_t(d);
        }
        break;
      case Major::St:
        if (a == 0) {
            inst.op = Opcode::St;
            inst.rs1 = std::uint8_t(c);
            inst.imm = imm;
        } else {
            inst.op = Opcode::StX;
            inst.rs1 = std::uint8_t(c);
            inst.rs2 = std::uint8_t(d);
        }
        break;
      case Major::Unary:
        switch (a) {
          case 0: inst.op = Opcode::Mov; break;
          case 1: inst.op = Opcode::Not; break;
          case 2: inst.op = Opcode::Neg; break;
          default: panic("bad unary function ", a);
        }
        inst.rd = std::uint8_t(b);
        inst.rs1 = std::uint8_t(c);
        break;
      case Major::Lbr:
        inst.op = Opcode::Lbr;
        inst.br = std::uint8_t(a);
        // Branch targets are absolute byte addresses; decode the
        // immediate as unsigned so programs may span 64 KiB.
        inst.imm = std::int32_t(p2);
        break;
      case Major::Misc:
        switch (a) {
          case 0: inst.op = Opcode::Nop; break;
          case 1: inst.op = Opcode::Rsw; break;
          case 2: inst.op = Opcode::Halt; break;
          default: panic("bad misc function ", a);
        }
        break;
      case Major::Pbr:
        inst.op = Opcode::Pbr;
        inst.br = std::uint8_t(a);
        inst.cond = Cond(b);
        inst.rs1 = std::uint8_t(c);
        inst.count = std::uint8_t(d);
        break;
      default:
        panic("bad major opcode ", majorOf(p1));
    }

    inst.parcels = std::uint8_t(instParcels(p1, mode));
    return inst;
}

} // namespace pipesim::isa
