#include "isa/encode.hh"

#include "common/log.hh"
#include "isa/fields.hh"

namespace pipesim::isa
{

namespace
{

/** ALU function index within the AluRR / AluRI majors. */
unsigned
aluFunc(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Addi: return 0;
      case Opcode::Sub: case Opcode::Subi: return 1;
      case Opcode::And: case Opcode::Andi: return 2;
      case Opcode::Or:  case Opcode::Ori:  return 3;
      case Opcode::Xor: case Opcode::Xori: return 4;
      case Opcode::Sll: case Opcode::Slli: return 5;
      case Opcode::Srl: case Opcode::Srli: return 6;
      case Opcode::Sra: case Opcode::Srai: return 7;
      default: panic("not an ALU opcode");
    }
}

void
checkImm(const Instruction &inst)
{
    if (inst.imm < -32768 || inst.imm > 65535)
        fatal("immediate ", inst.imm, " out of 16-bit range for '",
              mnemonic(inst.op), "'");
}

} // namespace

std::vector<Parcel>
encode(const Instruction &inst, FormatMode mode)
{
    const OpcodeInfo &info = opcodeInfo(inst.op);
    Parcel first = 0;
    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra:
        first = makeParcel(Major::AluRR, aluFunc(inst.op), inst.rd,
                           inst.rs1, inst.rs2);
        break;
      case Opcode::Addi: case Opcode::Subi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Slli:
      case Opcode::Srli: case Opcode::Srai:
        first = makeParcel(Major::AluRI, aluFunc(inst.op), inst.rd,
                           inst.rs1, 0);
        break;
      case Opcode::Li:
        first = makeParcel(Major::LiGrp, 0, inst.rd, 0, 0);
        break;
      case Opcode::Lui:
        first = makeParcel(Major::LiGrp, 1, inst.rd, 0, 0);
        break;
      case Opcode::Ld:
        first = makeParcel(Major::Ld, 0, 0, inst.rs1, 0);
        break;
      case Opcode::LdX:
        first = makeParcel(Major::Ld, 1, 0, inst.rs1, inst.rs2);
        break;
      case Opcode::St:
        first = makeParcel(Major::St, 0, 0, inst.rs1, 0);
        break;
      case Opcode::StX:
        first = makeParcel(Major::St, 1, 0, inst.rs1, inst.rs2);
        break;
      case Opcode::Mov:
        first = makeParcel(Major::Unary, 0, inst.rd, inst.rs1, 0);
        break;
      case Opcode::Not:
        first = makeParcel(Major::Unary, 1, inst.rd, inst.rs1, 0);
        break;
      case Opcode::Neg:
        first = makeParcel(Major::Unary, 2, inst.rd, inst.rs1, 0);
        break;
      case Opcode::Lbr:
        first = makeParcel(Major::Lbr, inst.br, 0, 0, 0);
        break;
      case Opcode::Nop:
        first = makeParcel(Major::Misc, 0, 0, 0, 0);
        break;
      case Opcode::Rsw:
        first = makeParcel(Major::Misc, 1, 0, 0, 0);
        break;
      case Opcode::Halt:
        first = makeParcel(Major::Misc, 2, 0, 0, 0);
        break;
      case Opcode::Pbr:
        PIPESIM_ASSERT(inst.count <= 7, "pbr delay count out of range");
        first = makeParcel(Major::Pbr, inst.br, unsigned(inst.cond),
                           inst.rs1, inst.count);
        break;
      default:
        panic("cannot encode opcode ", unsigned(inst.op));
    }

    std::vector<Parcel> out{first};
    if (info.hasImm) {
        checkImm(inst);
        out.push_back(Parcel(inst.imm & 0xffff));
    } else if (mode == FormatMode::Fixed32) {
        out.push_back(0);
    }
    return out;
}

unsigned
instParcels(Parcel p1, FormatMode mode)
{
    if (mode == FormatMode::Fixed32)
        return 2;
    switch (Major(majorOf(p1))) {
      case Major::AluRI:
      case Major::LiGrp:
      case Major::Lbr:
        return 2;
      case Major::Ld:
      case Major::St:
        return fieldA(p1) == 0 ? 2 : 1;
      default:
        return 1;
    }
}

} // namespace pipesim::isa
