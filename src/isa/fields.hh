/**
 * @file
 * Parcel-level field layout of the PIPE instruction encoding.
 *
 * PIPE instructions come in one- and two-parcel forms (a parcel is a
 * 16-bit quantity).  As in the real machine, the register fields sit
 * in the same position in every instruction, which keeps the decode
 * logic trivial.  Our rendition of the first parcel:
 *
 *     [15:12] major opcode
 *     [11:9]  field a   (ALU function / branch register / mode)
 *     [8:6]   field b   (destination register / condition)
 *     [5:3]   field c   (source register 1)
 *     [2:0]   field d   (source register 2 / delay-slot count)
 *
 * Two-parcel instructions carry a 16-bit immediate in the second
 * parcel.  The paper notes that "the existence of a branch
 * instruction is determined by a single bit of the opcode"; we honour
 * that property by reserving major 0x8 for PBR so that parcel bit 15
 * by itself identifies a branch (all other majors are < 8).
 */

#ifndef PIPESIM_ISA_FIELDS_HH
#define PIPESIM_ISA_FIELDS_HH

#include "common/bitutil.hh"
#include "common/types.hh"

namespace pipesim::isa
{

/** Major opcode values (parcel bits [15:12]). */
enum class Major : unsigned
{
    AluRR = 0x0,  //!< register-register ALU op, 1 parcel
    AluRI = 0x1,  //!< register-immediate ALU op, 2 parcels
    LiGrp = 0x2,  //!< load immediate / load upper immediate, 2 parcels
    Ld    = 0x3,  //!< load address generation (LAQ push)
    St    = 0x4,  //!< store address generation (SAQ push)
    Unary = 0x5,  //!< mov / not / neg, 1 parcel
    Lbr   = 0x6,  //!< load branch register, 2 parcels
    Misc  = 0x7,  //!< nop / rsw / halt, 1 parcel
    Pbr   = 0x8,  //!< prepare-to-branch, 1 parcel (bit 15 set)
};

/** Field extractors for the first parcel. */
constexpr unsigned majorOf(Parcel p) { return unsigned(bits(p, 12, 4)); }
constexpr unsigned fieldA(Parcel p) { return unsigned(bits(p, 9, 3)); }
constexpr unsigned fieldB(Parcel p) { return unsigned(bits(p, 6, 3)); }
constexpr unsigned fieldC(Parcel p) { return unsigned(bits(p, 3, 3)); }
constexpr unsigned fieldD(Parcel p) { return unsigned(bits(p, 0, 3)); }

/** Compose a first parcel from its fields. */
constexpr Parcel
makeParcel(Major major, unsigned a, unsigned b, unsigned c, unsigned d)
{
    return Parcel((unsigned(major) << 12) | ((a & 7) << 9) |
                  ((b & 7) << 6) | ((c & 7) << 3) | (d & 7));
}

/** The single-bit branch test the PIPE cache control logic relies on. */
constexpr bool parcelIsBranch(Parcel p) { return (p & 0x8000) != 0; }

/** Number of addressable data registers per bank. */
inline constexpr unsigned numDataRegs = 8;

/** Number of branch registers. */
inline constexpr unsigned numBranchRegs = 8;

/**
 * The architectural queue register.  Reading r7 pops the Load Data
 * Queue; writing r7 pushes the Store Data Queue.
 */
inline constexpr unsigned queueReg = 7;

} // namespace pipesim::isa

#endif // PIPESIM_ISA_FIELDS_HH
