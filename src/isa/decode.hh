/**
 * @file
 * Instruction decoder: parcels -> decoded Instruction.
 */

#ifndef PIPESIM_ISA_DECODE_HH
#define PIPESIM_ISA_DECODE_HH

#include "common/types.hh"
#include "isa/encode.hh"
#include "isa/instruction.hh"

namespace pipesim::isa
{

/**
 * Decode an instruction.
 *
 * @param p1   First parcel.
 * @param p2   Second parcel (ignored when the instruction is a
 *             single parcel under @p mode).
 * @param mode Format mode the program was encoded with.
 * @return the decoded instruction; inst.parcels reflects the bytes
 *         the instruction occupies under @p mode.
 */
Instruction decode(Parcel p1, Parcel p2, FormatMode mode);

} // namespace pipesim::isa

#endif // PIPESIM_ISA_DECODE_HH
