#include "isa/disasm.hh"

#include <sstream>

#include "common/log.hh"

namespace pipesim::isa
{

namespace
{

std::string reg(unsigned r) { return "r" + std::to_string(r); }
std::string breg(unsigned b) { return "b" + std::to_string(b); }

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
        break;
      case Opcode::Addi: case Opcode::Subi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Slli:
      case Opcode::Srli: case Opcode::Srai:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::Li:
      case Opcode::Lui:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Ld:
      case Opcode::St:
        os << " [" << reg(inst.rs1) << " + " << inst.imm << "]";
        break;
      case Opcode::LdX:
      case Opcode::StX:
        os << " [" << reg(inst.rs1) << " + " << reg(inst.rs2) << "]";
        break;
      case Opcode::Mov: case Opcode::Not: case Opcode::Neg:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1);
        break;
      case Opcode::Lbr:
        os << " " << breg(inst.br) << ", " << inst.imm;
        break;
      case Opcode::Pbr:
        os << " " << breg(inst.br) << ", " << unsigned(inst.count) << ", "
           << condName(inst.cond);
        if (inst.cond != Cond::Always)
            os << ", " << reg(inst.rs1);
        break;
      case Opcode::Nop:
      case Opcode::Rsw:
      case Opcode::Halt:
        break;
      default:
        panic("cannot disassemble opcode ", unsigned(inst.op));
    }
    return os.str();
}

} // namespace pipesim::isa
