/**
 * @file
 * The decoded instruction record passed between the fetch unit and
 * the pipeline, plus operand-usage helpers.
 */

#ifndef PIPESIM_ISA_INSTRUCTION_HH
#define PIPESIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace pipesim::isa
{

/**
 * A fully decoded PIPE instruction.
 *
 * All fields are populated by the decoder; unused fields are zero.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;    //!< destination data register
    std::uint8_t rs1 = 0;   //!< first source data register
    std::uint8_t rs2 = 0;   //!< second source data register
    std::uint8_t br = 0;    //!< branch register (pbr/lbr)
    std::uint8_t count = 0; //!< pbr delay-slot count (0..7)
    Cond cond = Cond::Always;
    std::int32_t imm = 0;   //!< sign-extended 16-bit immediate
    std::uint8_t parcels = 1; //!< encoded size actually occupied

    /** Size of the encoded instruction in bytes. */
    unsigned sizeBytes() const { return parcels * parcelBytes; }

    bool isPbr() const { return op == Opcode::Pbr; }
    bool isLoad() const { return opcodeInfo(op).isLoad; }
    bool isStore() const { return opcodeInfo(op).isStore; }
    bool isHalt() const { return op == Opcode::Halt; }

    /**
     * Data registers read by this instruction, in the order their
     * values are consumed.  Order matters for r7: each appearance
     * pops one Load Data Queue entry.
     */
    std::vector<std::uint8_t> srcRegs() const;

    /** @return true if this instruction writes data register @p r. */
    bool writesReg(std::uint8_t r) const;

    /** Number of r7 source operands (LDQ pops at issue). */
    unsigned ldqPops() const;

    /** @return true if the result is pushed to the SDQ (rd == r7). */
    bool pushesSdq() const;

    bool operator==(const Instruction &other) const = default;
};

/** A decoded instruction tagged with its fetch address. */
struct FetchedInst
{
    Addr pc = 0;
    Instruction inst;
};

} // namespace pipesim::isa

#endif // PIPESIM_ISA_INSTRUCTION_HH
