/**
 * @file
 * Inline builder helpers for constructing decoded Instructions in
 * code (program generators, tests).  Purely convenience; the
 * Instruction struct stays a plain aggregate.
 */

#ifndef PIPESIM_ISA_BUILD_HH
#define PIPESIM_ISA_BUILD_HH

#include "isa/instruction.hh"

namespace pipesim::isa::build
{

inline Instruction
rrr(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Instruction i;
    i.op = op;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.rs2 = std::uint8_t(rs2);
    return i;
}

inline Instruction
rri(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.imm = imm;
    return i;
}

inline Instruction
li(unsigned rd, std::int32_t imm)
{
    return rri(Opcode::Li, rd, 0, imm);
}

inline Instruction
ld(unsigned base, std::int32_t offset)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.rs1 = std::uint8_t(base);
    i.imm = offset;
    return i;
}

inline Instruction
st(unsigned base, std::int32_t offset)
{
    Instruction i;
    i.op = Opcode::St;
    i.rs1 = std::uint8_t(base);
    i.imm = offset;
    return i;
}

inline Instruction
mov(unsigned rd, unsigned rs)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs);
    return i;
}

inline Instruction
lbr(unsigned br, Addr target)
{
    Instruction i;
    i.op = Opcode::Lbr;
    i.br = std::uint8_t(br);
    i.imm = std::int32_t(target);
    return i;
}

inline Instruction
pbr(unsigned br, unsigned count, Cond cond, unsigned rs = 0)
{
    Instruction i;
    i.op = Opcode::Pbr;
    i.br = std::uint8_t(br);
    i.count = std::uint8_t(count);
    i.cond = cond;
    i.rs1 = std::uint8_t(rs);
    return i;
}

inline Instruction
halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return i;
}

inline Instruction
nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    return i;
}

} // namespace pipesim::isa::build

#endif // PIPESIM_ISA_BUILD_HH
