#include "codegen/codegen.hh"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/log.hh"
#include "mem/data_memory.hh"
#include "isa/fields.hh"

namespace pipesim::codegen
{

using isa::Instruction;
using isa::Opcode;

namespace
{

// Register conventions (see header).
constexpr unsigned regZero = 0;
constexpr unsigned firstPtrReg = 1;
constexpr unsigned maxPtrRegs = 3;
constexpr unsigned regCounter = 4;
constexpr unsigned firstScalarReg = 5;
constexpr unsigned maxScalarRegs = 2;
constexpr unsigned regQueue = isa::queueReg;

constexpr unsigned innerBranchReg = 0;
constexpr unsigned outerBranchReg = 1;

Instruction
makeRRI(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs1);
    i.imm = imm;
    return i;
}

Instruction
makeLd(unsigned base, std::int32_t off)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.rs1 = std::uint8_t(base);
    i.imm = off;
    return i;
}

Instruction
makeSt(unsigned base, std::int32_t off)
{
    Instruction i;
    i.op = Opcode::St;
    i.rs1 = std::uint8_t(base);
    i.imm = off;
    return i;
}

Instruction
makeMov(unsigned rd, unsigned rs)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = std::uint8_t(rd);
    i.rs1 = std::uint8_t(rs);
    return i;
}

Instruction
makeLbr(unsigned br, Addr target)
{
    Instruction i;
    i.op = Opcode::Lbr;
    i.br = std::uint8_t(br);
    i.imm = std::int32_t(target);
    return i;
}

Instruction
makePbr(unsigned br, unsigned count, isa::Cond cond, unsigned rs)
{
    Instruction i;
    i.op = Opcode::Pbr;
    i.br = std::uint8_t(br);
    i.count = std::uint8_t(count);
    i.cond = cond;
    i.rs1 = std::uint8_t(rs);
    return i;
}

} // namespace

CodeGenerator::CodeGenerator(const CodeGenOptions &options)
    : _opts(options), _program(options.mode, Layout::codeBase)
{
    PIPESIM_ASSERT(_opts.ldqWindow >= 1, "ldqWindow must be >= 1");
    PIPESIM_ASSERT(_opts.maxDelaySlots <= 7, "PBR count field is 3 bits");
    // Program prologue: establish the zero register.
    emit(makeRRI(Opcode::Li, regZero, 0, 0));
}

void
CodeGenerator::emit(const Instruction &inst)
{
    _program.append(inst);
}

void
CodeGenerator::emitLoadAddress(unsigned reg, Addr value)
{
    if (value <= 0x7fff) {
        emit(makeRRI(Opcode::Li, reg, 0, std::int32_t(value)));
    } else {
        Instruction lui;
        lui.op = Opcode::Lui;
        lui.rd = std::uint8_t(reg);
        lui.imm = std::int32_t(value >> 16);
        emit(lui);
        emit(makeRRI(Opcode::Ori, reg, reg, std::int32_t(value & 0xffff)));
    }
}

Addr
CodeGenerator::allocScalarSlot()
{
    const Addr slot = _scalarCursor;
    _scalarCursor += wordBytes;
    if (_scalarCursor > FpuDevice::baseAddr)
        fatal("scalar area overflow: too many scalars/constants");
    return slot;
}

Addr
CodeGenerator::constSlotFor(float value)
{
    const Word bits = std::bit_cast<Word>(value);
    auto it = _constSlots.find(bits);
    if (it != _constSlots.end())
        return it->second;
    const Addr slot = allocScalarSlot();
    _constSlots.emplace(bits, slot);
    _dataInit.emplace_back(slot, bits);
    return slot;
}

Addr
CodeGenerator::scalarSlotFor(KernelContext &ctx, const std::string &name)
{
    auto it = ctx.scalarSlot.find(name);
    PIPESIM_ASSERT(it != ctx.scalarSlot.end(), "undeclared scalar '", name,
                   "'");
    return it->second;
}

int
CodeGenerator::staticOffset(const KernelContext &ctx,
                            const ArrayRef &ref) const
{
    auto it = ctx.arrayAddr.find(ref.array);
    PIPESIM_ASSERT(it != ctx.arrayAddr.end(), "undeclared array '",
                   ref.array, "'");
    const std::int64_t off = std::int64_t(it->second) -
                             std::int64_t(ctx.anchor) +
                             std::int64_t(ref.offset) * wordBytes;
    if (off < -32768 || off > 32767)
        fatal("array displacement ", off, " for '", ref.array,
              "' exceeds the 16-bit immediate");
    return int(off);
}

void
CodeGenerator::layoutKernel(const Kernel &kernel, KernelContext &ctx)
{
    ctx.kernel = &kernel;
    ctx.anchor = _arrayCursor;

    for (const ArrayDecl &decl : kernel.arrays) {
        if (ctx.arrayAddr.count(decl.name))
            fatal("array '", decl.name, "' declared twice");
        ctx.arrayAddr[decl.name] = _arrayCursor;
        std::vector<Word> init(decl.elems);
        for (unsigned i = 0; i < decl.elems; ++i)
            init[i] =
                std::bit_cast<Word>(ArrayDecl::initValue(decl.name, i));
        _program.addDataWords(_arrayCursor, init);
        _arrayCursor += decl.elems * wordBytes;
    }
    if (_arrayCursor > pipesim::DataMemory::defaultSize)
        fatal("array area overflow");

    unsigned next_scalar_reg = firstScalarReg;
    for (const ScalarDecl &decl : kernel.scalars) {
        if (ctx.scalarSlot.count(decl.name))
            fatal("scalar '", decl.name, "' declared twice");
        const Addr slot = allocScalarSlot();
        ctx.scalarSlot[decl.name] = slot;
        _dataInit.emplace_back(slot, std::bit_cast<Word>(decl.init));
        if (decl.preferRegister &&
            next_scalar_reg < firstScalarReg + maxScalarRegs) {
            ctx.scalarReg[decl.name] = next_scalar_reg++;
        }
    }

    // Stride classes -> pointer registers.
    auto note_stride = [&](int stride) {
        if (ctx.strideReg.count(stride))
            return;
        const unsigned reg = firstPtrReg + unsigned(ctx.strideReg.size());
        if (reg >= firstPtrReg + maxPtrRegs)
            fatal("kernel '", kernel.name, "' needs more than ",
                  maxPtrRegs, " stride classes");
        ctx.strideReg[stride] = reg;
    };
    std::function<void(const FExpr &)> walk = [&](const FExpr &e) {
        if (e.kind == FExpr::Kind::Array)
            note_stride(e.ref.stride);
        if (e.kind == FExpr::Kind::Bin) {
            walk(*e.lhs);
            walk(*e.rhs);
        }
    };
    for (const Statement &stmt : kernel.body) {
        if (stmt.targetKind == Statement::TargetKind::Array)
            note_stride(stmt.arrayTarget.stride);
        walk(*stmt.value);
    }

    if (kernel.outerReps > 1) {
        ctx.outerSlot = allocScalarSlot();
        _dataInit.emplace_back(ctx.outerSlot, Word(kernel.outerReps));
    }
}

void
CodeGenerator::emitPreamble(const KernelContext &ctx)
{
    // Pointer registers: all stride classes start at the anchor.
    for (const auto &[stride, reg] : ctx.strideReg)
        emitLoadAddress(reg, ctx.anchor);

    // Register-cached scalars, loaded through the queues.
    for (const auto &[name, reg] : ctx.scalarReg)
        emit(makeLd(regZero, std::int32_t(ctx.scalarSlot.at(name))));
    for (const auto &[name, reg] : ctx.scalarReg)
        emit(makeMov(reg, regQueue));

    emit(makeRRI(Opcode::Li, regCounter, 0,
                 std::int32_t(ctx.kernel->tripCount)));
}

void
CodeGenerator::emitOperand(const Source &src, Addr fpu_slot,
                           std::vector<Step> &steps)
{
    unsigned src_reg = regQueue;
    switch (src.kind) {
      case Source::Kind::Reg:
        src_reg = src.reg;
        break;
      case Source::Kind::LeafArray: {
        Step ld;
        ld.kind = Step::Kind::LoadArray;
        ld.ref = src.ref;
        steps.push_back(ld);
        break;
      }
      case Source::Kind::LeafSlot:
      case Source::Kind::Res: {
        Step ld;
        ld.kind = Step::Kind::LoadSlot;
        ld.slot = src.slot;
        ld.pinned = src.kind == Source::Kind::Res || src.pinnedLoad;
        steps.push_back(ld);
        break;
      }
    }
    Step push;
    push.kind = Step::Kind::PushOperand;
    push.slot = fpu_slot;
    push.srcReg = src_reg;
    steps.push_back(push);
}

namespace
{

/** Does @p expr contain an operation of kind @p op? */
bool
containsOpKind(const FExpr &expr, FpuOp op)
{
    if (expr.kind != FExpr::Kind::Bin)
        return false;
    return expr.op == op || containsOpKind(*expr.lhs, op) ||
           containsOpKind(*expr.rhs, op);
}

} // namespace

CodeGenerator::Source
CodeGenerator::spillIfConflicting(const Source &src, const FExpr &other,
                                  std::vector<Step> &steps)
{
    if (src.kind != Source::Kind::Res ||
        !containsOpKind(other, src.fpuKind))
        return src;

    const Addr scratch = allocScalarSlot();
    Step ld;
    ld.kind = Step::Kind::LoadSlot;
    ld.slot = src.slot;
    ld.pinned = true;
    steps.push_back(ld);
    Step st;
    st.kind = Step::Kind::StoreTarget;
    st.ref = ArrayRef{}; // slot store
    st.slot = scratch;
    st.srcReg = regQueue;
    steps.push_back(st);

    Source spilled;
    spilled.kind = Source::Kind::LeafSlot;
    spilled.slot = scratch;
    spilled.pinnedLoad = true;
    return spilled;
}

CodeGenerator::Source
CodeGenerator::walkExpr(const KernelContext &ctx, const FExpr &expr,
                        std::vector<Step> &steps)
{
    switch (expr.kind) {
      case FExpr::Kind::Array: {
        Source s;
        s.kind = Source::Kind::LeafArray;
        s.ref = expr.ref;
        return s;
      }
      case FExpr::Kind::Scalar: {
        auto it = ctx.scalarReg.find(expr.scalar);
        Source s;
        if (it != ctx.scalarReg.end()) {
            s.kind = Source::Kind::Reg;
            s.reg = it->second;
        } else {
            s.kind = Source::Kind::LeafSlot;
            s.slot = ctx.scalarSlot.at(expr.scalar);
        }
        return s;
      }
      case FExpr::Kind::Const: {
        Source s;
        s.kind = Source::Kind::LeafSlot;
        s.slot = constSlotFor(expr.value);
        return s;
      }
      case FExpr::Kind::Bin: {
        // Complete both subexpressions first, then push the two
        // operands back to back (single A latch per op kind).
        Source l = walkExpr(ctx, *expr.lhs, steps);
        l = spillIfConflicting(l, *expr.rhs, steps);
        const Source r = walkExpr(ctx, *expr.rhs, steps);
        emitOperand(l, FpuDevice::opA(expr.op), steps);
        emitOperand(r, FpuDevice::opB(expr.op), steps);
        Source s;
        s.kind = Source::Kind::Res;
        s.slot = FpuDevice::opResult(expr.op);
        s.fpuKind = expr.op;
        return s;
      }
    }
    panic("bad expression kind");
}

std::vector<CodeGenerator::Step>
CodeGenerator::buildSteps(const KernelContext &ctx, const Statement &stmt)
{
    std::vector<Step> steps;
    const Source value = walkExpr(ctx, *stmt.value, steps);

    // Materialise the final value's load (if any) and route it to
    // the target.
    unsigned src_reg = regQueue;
    if (value.kind == Source::Kind::Reg) {
        src_reg = value.reg;
    } else if (value.kind == Source::Kind::LeafArray) {
        Step ld;
        ld.kind = Step::Kind::LoadArray;
        ld.ref = value.ref;
        steps.push_back(ld);
    } else {
        Step ld;
        ld.kind = Step::Kind::LoadSlot;
        ld.slot = value.slot;
        ld.pinned = value.kind == Source::Kind::Res;
        steps.push_back(ld);
    }

    if (stmt.targetKind == Statement::TargetKind::Array) {
        Step st;
        st.kind = Step::Kind::StoreTarget;
        st.ref = stmt.arrayTarget;
        st.srcReg = src_reg;
        steps.push_back(st);
    } else {
        auto it = ctx.scalarReg.find(stmt.scalarTarget);
        if (it != ctx.scalarReg.end()) {
            Step mv;
            mv.kind = Step::Kind::MovScalar;
            mv.dstReg = it->second;
            mv.srcReg = src_reg;
            steps.push_back(mv);
        } else {
            Step st;
            st.kind = Step::Kind::StoreTarget;
            st.ref = ArrayRef{}; // slot store marked by empty array name
            st.slot = ctx.scalarSlot.at(stmt.scalarTarget);
            st.srcReg = src_reg;
            steps.push_back(st);
        }
    }
    return steps;
}

std::vector<CodeGenerator::Step>
CodeGenerator::scheduleSteps(const std::vector<Step> &steps) const
{
    // Loads are hoisted ahead of their consumers ("moved as far ahead
    // of the instruction requiring the data as possible") subject to:
    //  - loads never reorder among themselves (LDQ is a FIFO);
    //  - pinned loads (FPU results) never move earlier than their
    //    original position, which walkExpr placed after the operand
    //    stores that start the operation;
    //  - at most ldqWindow loads outstanding, so the LDQ reservation
    //    at issue can always make progress.
    std::vector<Step> loads;
    std::vector<std::size_t> pin; // min consumer index for emission
    std::vector<Step> consumers;
    for (const Step &s : steps) {
        if (s.isLoad()) {
            loads.push_back(s);
            std::size_t raw = s.pinned ? consumers.size() : 0;
            if (!pin.empty())
                raw = std::max(raw, pin.back());
            pin.push_back(raw);
        } else {
            consumers.push_back(s);
        }
    }

    std::vector<Step> out;
    out.reserve(steps.size());
    std::size_t li = 0;
    std::size_t outstanding = 0;
    for (std::size_t ci = 0; ci < consumers.size(); ++ci) {
        while (li < loads.size() && pin[li] <= ci &&
               outstanding < _opts.ldqWindow) {
            out.push_back(loads[li++]);
            ++outstanding;
        }
        if (consumers[ci].consumesLdq()) {
            if (outstanding == 0) {
                PIPESIM_ASSERT(li < loads.size() && pin[li] <= ci,
                               "consumer with no load available");
                out.push_back(loads[li++]);
                ++outstanding;
            }
            --outstanding;
        }
        out.push_back(consumers[ci]);
    }
    PIPESIM_ASSERT(li == loads.size(),
                   "unconsumed loads in statement schedule");
    return out;
}

std::vector<Instruction>
CodeGenerator::lowerSteps(const KernelContext &ctx,
                          const std::vector<Step> &steps)
{
    std::vector<Instruction> insts;
    for (const Step &s : steps) {
        switch (s.kind) {
          case Step::Kind::LoadArray:
            insts.push_back(makeLd(ctx.strideReg.at(s.ref.stride),
                                   staticOffset(ctx, s.ref)));
            break;
          case Step::Kind::LoadSlot:
            insts.push_back(makeLd(regZero, std::int32_t(s.slot)));
            break;
          case Step::Kind::PushOperand:
            insts.push_back(makeSt(regZero, std::int32_t(s.slot)));
            insts.push_back(makeMov(regQueue, s.srcReg));
            break;
          case Step::Kind::StoreTarget:
            if (s.ref.array.empty())
                insts.push_back(makeSt(regZero, std::int32_t(s.slot)));
            else
                insts.push_back(makeSt(ctx.strideReg.at(s.ref.stride),
                                       staticOffset(ctx, s.ref)));
            insts.push_back(makeMov(regQueue, s.srcReg));
            break;
          case Step::Kind::MovScalar:
            insts.push_back(makeMov(s.dstReg, s.srcReg));
            break;
        }
    }
    return insts;
}

KernelCodeInfo
CodeGenerator::emitKernel(const Kernel &kernel)
{
    PIPESIM_ASSERT(!_finished, "emitKernel after finish()");
    if (kernel.tripCount == 0 || kernel.tripCount > 32767)
        fatal("kernel '", kernel.name, "': trip count out of range");

    KernelContext ctx;
    layoutKernel(kernel, ctx);

    KernelCodeInfo info;
    info.id = kernel.id;
    info.name = kernel.name;
    info.kernelStart = _program.nextCodeAddr();
    info.arrayAddrs = ctx.arrayAddr;
    info.scalarSlots = ctx.scalarSlot;

    const bool has_outer = kernel.outerReps > 1;
    if (has_outer) {
        // lbr b1, outer_head  (the instruction right after the lbr)
        const Addr lbr_at = _program.nextCodeAddr();
        const unsigned lbr_size =
            _opts.mode == isa::FormatMode::Fixed32 ? 4 : 4;
        emit(makeLbr(outerBranchReg, lbr_at + lbr_size));
    }

    emitPreamble(ctx);

    // lbr b0, inner_loop (the next instruction).
    {
        const Addr lbr_at = _program.nextCodeAddr();
        const unsigned lbr_size =
            _opts.mode == isa::FormatMode::Fixed32 ? 4 : 4;
        emit(makeLbr(innerBranchReg, lbr_at + lbr_size));
    }

    info.innerLoopStart = _program.nextCodeAddr();

    // Build the whole inner-loop body as an instruction list first so
    // the PBR and its delay slots can be arranged.
    std::vector<Instruction> body;
    for (const Statement &stmt : kernel.body) {
        const auto steps = scheduleSteps(buildSteps(ctx, stmt));
        const auto insts = lowerSteps(ctx, steps);
        body.insert(body.end(), insts.begin(), insts.end());
    }

    // Pointer increments execute after all body uses; the loop body
    // is [statements..., increments...], and the PBR is placed so
    // that exactly `delay` of its trailing instructions become delay
    // slots (every post-PBR instruction must be a delay slot or a
    // taken branch would skip it).
    for (const auto &[stride, reg] : ctx.strideReg)
        body.push_back(makeRRI(Opcode::Addi, reg, reg,
                               std::int32_t(stride) * wordBytes));

    const unsigned delay = std::min<unsigned>(
        _opts.maxDelaySlots, unsigned(body.size()));
    info.delaySlots = delay;

    const std::size_t head_len = body.size() - delay;
    for (std::size_t i = 0; i < head_len; ++i)
        emit(body[i]);
    emit(makeRRI(Opcode::Subi, regCounter, regCounter, 1));
    emit(makePbr(innerBranchReg, delay, isa::Cond::Nez, regCounter));
    for (std::size_t i = head_len; i < body.size(); ++i)
        emit(body[i]);

    info.innerLoopBytes =
        unsigned(_program.nextCodeAddr() - info.innerLoopStart);

    // Write register-cached scalars back to their memory slots.
    for (const auto &[name, reg] : ctx.scalarReg) {
        emit(makeSt(regZero, std::int32_t(ctx.scalarSlot.at(name))));
        emit(makeMov(regQueue, reg));
    }

    if (has_outer) {
        // Decrement the memory-resident outer counter and loop.  The
        // write-back pair can serve as delay slots when the budget
        // allows; otherwise it runs before the PBR.
        emit(makeLd(regZero, std::int32_t(ctx.outerSlot)));
        emit(makeMov(firstPtrReg, regQueue));
        emit(makeRRI(Opcode::Subi, firstPtrReg, firstPtrReg, 1));
        const std::vector<Instruction> tail = {
            makeSt(regZero, std::int32_t(ctx.outerSlot)),
            makeMov(regQueue, firstPtrReg),
        };
        const unsigned outer_delay = std::min<unsigned>(
            _opts.maxDelaySlots, unsigned(tail.size()));
        const std::size_t pre = tail.size() - outer_delay;
        for (std::size_t i = 0; i < pre; ++i)
            emit(tail[i]);
        emit(makePbr(outerBranchReg, outer_delay, isa::Cond::Nez,
                     firstPtrReg));
        for (std::size_t i = pre; i < tail.size(); ++i)
            emit(tail[i]);
    }

    _infos.push_back(info);
    return info;
}

Program
CodeGenerator::finish()
{
    PIPESIM_ASSERT(!_finished, "finish() called twice");
    _finished = true;
    Instruction halt;
    halt.op = Opcode::Halt;
    emit(halt);

    for (const auto &[addr, word] : _dataInit)
        _program.addDataWords(addr, {word});

    return std::move(_program);
}

} // namespace pipesim::codegen
