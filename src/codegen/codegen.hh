/**
 * @file
 * The code generator: Kernel IR -> PIPE assembly (a Program).
 *
 * This stands in for the paper's PIPE compiler.  It reproduces the
 * code shape the paper depends on:
 *
 *  - all floating point flows through the memory-mapped FPU via
 *    store/store/load triples and the architectural queues;
 *  - loads are hoisted ahead of their consumers ("the load
 *    instructions are moved as far ahead of the instruction requiring
 *    the data as possible", section 3.1.2), bounded by the LDQ
 *    reservation window so issue can always make progress;
 *  - loop control uses LBR + PBR with compiler-filled delay slots
 *    (tail-of-body instructions and pointer increments), averaging
 *    the ~4 unconditionally executed slots the paper reports;
 *  - array addressing is strength-reduced onto per-stride pointer
 *    registers stepped each iteration.
 *
 * Register conventions (8 data registers, r7 is the queue register):
 *
 *     r0        constant zero (absolute addressing base)
 *     r1..r3    stride-class pointer registers
 *     r4        inner loop counter
 *     r5, r6    register-cached scalars
 *     r7        LDQ head / SDQ tail
 */

#ifndef PIPESIM_CODEGEN_CODEGEN_HH
#define PIPESIM_CODEGEN_CODEGEN_HH

#include <map>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "codegen/ir.hh"

namespace pipesim::codegen
{

/** Data-space layout constants for generated programs. */
struct Layout
{
    static constexpr Addr codeBase = 0x0000;
    /** Scalars, constants, spill slots, outer-loop counters. */
    static constexpr Addr scalarBase = 0x6000;
    /** Array storage (pointer-addressed; may exceed 32 KiB). */
    static constexpr Addr arrayBase = 0x8000;
};

/** Code generation options. */
struct CodeGenOptions
{
    isa::FormatMode mode = isa::FormatMode::Fixed32;
    /**
     * Maximum loads in flight ahead of their consumers; must be at
     * most (LDQ capacity - 1) or generated code can deadlock at the
     * LDQ reservation.
     */
    unsigned ldqWindow = 7;
    /** Maximum PBR delay-slot count to use (the field allows 0..7). */
    unsigned maxDelaySlots = 7;
};

/** What the generator reports about one emitted kernel. */
struct KernelCodeInfo
{
    int id = 0;
    std::string name;
    Addr kernelStart = 0;     //!< first instruction of the kernel
    Addr innerLoopStart = 0;  //!< PBR target of the inner loop
    unsigned innerLoopBytes = 0; //!< static inner-loop size (Table I)
    unsigned delaySlots = 0;  //!< PBR count used for the inner loop
    std::map<std::string, Addr> arrayAddrs;
    std::map<std::string, Addr> scalarSlots;
};

/**
 * Generates one Program containing a sequence of kernels that run
 * back to back and then halt, as in the paper's benchmark.
 */
class CodeGenerator
{
  public:
    explicit CodeGenerator(const CodeGenOptions &options = {});

    /** Append one kernel; returns placement/measurement info. */
    KernelCodeInfo emitKernel(const Kernel &kernel);

    /** Finish with HALT and return the completed program. */
    Program finish();

    /** Info for every kernel emitted so far. */
    const std::vector<KernelCodeInfo> &kernels() const { return _infos; }

  private:
    // Scheduling step types (see emitStatement).
    struct Step
    {
        enum class Kind
        {
            LoadArray,   //!< ld [ptr + off]
            LoadSlot,    //!< ld [r0 + slot] (scalar/const/FPU result)
            PushOperand, //!< st [r0 + fpu operand]; mov r7, src
            StoreTarget, //!< st [target]; mov r7, src
            MovScalar,   //!< mov rScalar, src
        };
        Kind kind;
        ArrayRef ref;      //!< LoadArray / StoreTarget
        Addr slot = 0;     //!< LoadSlot / PushOperand address
        unsigned srcReg = unsigned(-1); //!< r7 when == queue register
        unsigned dstReg = 0; //!< MovScalar destination

        /**
         * FPU-result loads are pinned: hoisting one above its
         * operation's operand stores would let a later external
         * memory load wedge the in-order load-return path (the
         * result read would block the LDQ while the stores that
         * start the operation sit behind the blocked load).
         */
        bool pinned = false;

        bool
        isLoad() const
        {
            return kind == Kind::LoadArray || kind == Kind::LoadSlot;
        }
        bool
        consumesLdq() const
        {
            return !isLoad() && srcReg == 7;
        }
    };

    /**
     * Value source produced by walking an expression.  Loads are
     * deferred to the consumption point so that (a) the two operand
     * pushes of an FPU operation are adjacent -- the device has one
     * A latch per kind, so nested same-kind operations must not
     * interleave their pushes -- and (b) load issue order equals LDQ
     * consumption order by construction.
     */
    struct Source
    {
        enum class Kind { Reg, LeafSlot, LeafArray, Res };
        Kind kind;
        unsigned reg = 0; //!< Reg
        Addr slot = 0;    //!< LeafSlot / Res
        ArrayRef ref;     //!< LeafArray
        FpuOp fpuKind = FpuOp::Add; //!< Res: producing operation kind
        /** LeafSlot reload of a spilled value: may not be hoisted
         *  above the spill store. */
        bool pinnedLoad = false;
    };

    /** Emit the (deferred) load for @p src, then a push/use of it. */
    void emitOperand(const Source &src, Addr fpu_slot,
                     std::vector<Step> &steps);

    /**
     * Spill a deferred FPU result to a scratch slot when the other
     * operand's subtree starts operations of the same kind: the
     * device returns results of one kind in FIFO order, so a
     * deferred result read must not cross later same-kind reads.
     */
    Source spillIfConflicting(const Source &src, const FExpr &other,
                              std::vector<Step> &steps);

    struct KernelContext
    {
        const Kernel *kernel;
        std::map<int, unsigned> strideReg;     //!< stride -> pointer reg
        Addr anchor = 0;                       //!< pointer base address
        std::map<std::string, Addr> arrayAddr;
        std::map<std::string, Addr> scalarSlot;
        std::map<std::string, unsigned> scalarReg; //!< register-cached
        Addr outerSlot = 0;
    };

    void layoutKernel(const Kernel &kernel, KernelContext &ctx);
    void emitPreamble(const KernelContext &ctx);
    std::vector<Step> buildSteps(const KernelContext &ctx,
                                 const Statement &stmt);
    Source walkExpr(const KernelContext &ctx, const FExpr &expr,
                    std::vector<Step> &steps);
    std::vector<Step> scheduleSteps(const std::vector<Step> &steps) const;
    std::vector<isa::Instruction> lowerSteps(const KernelContext &ctx,
                                             const std::vector<Step> &steps);

    /** [r0 + slot] for a named scalar (allocating on first use). */
    Addr scalarSlotFor(KernelContext &ctx, const std::string &name);
    Addr constSlotFor(float value);
    Addr allocScalarSlot();

    int staticOffset(const KernelContext &ctx, const ArrayRef &ref) const;

    void emit(const isa::Instruction &inst);
    void emitLoadAddress(unsigned reg, Addr value);

    CodeGenOptions _opts;
    Program _program;
    std::vector<KernelCodeInfo> _infos;

    Addr _scalarCursor = Layout::scalarBase;
    Addr _arrayCursor = Layout::arrayBase;
    std::map<Word, Addr> _constSlots;
    std::vector<std::pair<Addr, Word>> _dataInit;
    bool _finished = false;
};

} // namespace pipesim::codegen

#endif // PIPESIM_CODEGEN_CODEGEN_HH
