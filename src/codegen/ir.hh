/**
 * @file
 * The kernel intermediate representation consumed by the code
 * generator and by the host-side reference interpreter.
 *
 * The IR deliberately covers exactly what the Livermore inner loops
 * need: single-precision expressions over strided array references
 * a[s*k + c], named scalars, and constants, assigned to array
 * elements or scalars inside a counted inner loop (optionally
 * repeated by an outer loop).  Recurrences (negative offsets reading
 * elements stored by earlier iterations) are supported by the
 * simulator's program-order memory discipline.
 */

#ifndef PIPESIM_CODEGEN_IR_HH
#define PIPESIM_CODEGEN_IR_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/fpu.hh"

namespace pipesim::codegen
{

struct FExpr;
using FExprPtr = std::shared_ptr<const FExpr>;

/** A strided array reference: array[stride*k + offset]. */
struct ArrayRef
{
    std::string array;
    int stride = 1;  //!< elements advanced per loop iteration
    int offset = 0;  //!< constant element offset
};

/** A single-precision expression tree. */
struct FExpr
{
    enum class Kind
    {
        Array,   //!< strided array element
        Scalar,  //!< named scalar
        Const,   //!< literal constant
        Bin,     //!< FPU binary operation
    };

    Kind kind;
    ArrayRef ref;         //!< Array
    std::string scalar;   //!< Scalar
    float value = 0.0f;   //!< Const
    FpuOp op = FpuOp::Add;
    FExprPtr lhs, rhs;    //!< Bin
};

FExprPtr ref(std::string array, int stride, int offset);
/** Unit-stride reference array[k + offset]. */
FExprPtr ref(std::string array, int offset = 0);
FExprPtr scalar(std::string name);
FExprPtr cnst(float value);
FExprPtr add(FExprPtr l, FExprPtr r);
FExprPtr sub(FExprPtr l, FExprPtr r);
FExprPtr mul(FExprPtr l, FExprPtr r);
FExprPtr div(FExprPtr l, FExprPtr r);

/** One assignment executed per inner-loop iteration. */
struct Statement
{
    enum class TargetKind { Array, Scalar };
    TargetKind targetKind;
    ArrayRef arrayTarget;      //!< valid when targetKind == Array
    std::string scalarTarget;  //!< valid when targetKind == Scalar
    FExprPtr value;
};

Statement assign(ArrayRef target, FExprPtr value);
Statement assignScalar(std::string target, FExprPtr value);

/** Array declaration with a deterministic initial-value pattern. */
struct ArrayDecl
{
    std::string name;
    unsigned elems;

    /** Initial value of element @p i (shared with the reference). */
    static float
    initValue(const std::string &name, unsigned i)
    {
        // Small positive values keyed to the array name so different
        // arrays differ; magnitudes stay well-conditioned across the
        // kernels' multiply/accumulate chains.
        unsigned h = 2166136261u;
        for (char c : name)
            h = (h ^ unsigned(c)) * 16777619u;
        return 0.001f + 0.01f * float((i + h % 19) % 37) /
                   float(1 + (h >> 28));
    }
};

/** Scalar declaration. */
struct ScalarDecl
{
    std::string name;
    float init;
    /** Hint: keep this scalar's bits in a data register. */
    bool preferRegister = false;
};

/** One Livermore kernel expressed in the IR. */
struct Kernel
{
    int id = 0;
    std::string name;
    std::vector<ArrayDecl> arrays;
    std::vector<ScalarDecl> scalars;
    unsigned tripCount = 0;  //!< inner-loop iterations per pass
    unsigned outerReps = 1;  //!< passes over the inner loop
    std::vector<Statement> body;
};

} // namespace pipesim::codegen

#endif // PIPESIM_CODEGEN_IR_HH
