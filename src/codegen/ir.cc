#include "codegen/ir.hh"

namespace pipesim::codegen
{

FExprPtr
ref(std::string array, int stride, int offset)
{
    auto e = std::make_shared<FExpr>();
    e->kind = FExpr::Kind::Array;
    e->ref = ArrayRef{std::move(array), stride, offset};
    return e;
}

FExprPtr
ref(std::string array, int offset)
{
    return ref(std::move(array), 1, offset);
}

FExprPtr
scalar(std::string name)
{
    auto e = std::make_shared<FExpr>();
    e->kind = FExpr::Kind::Scalar;
    e->scalar = std::move(name);
    return e;
}

FExprPtr
cnst(float value)
{
    auto e = std::make_shared<FExpr>();
    e->kind = FExpr::Kind::Const;
    e->value = value;
    return e;
}

namespace
{

FExprPtr
bin(FpuOp op, FExprPtr l, FExprPtr r)
{
    auto e = std::make_shared<FExpr>();
    e->kind = FExpr::Kind::Bin;
    e->op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
}

} // namespace

FExprPtr add(FExprPtr l, FExprPtr r) { return bin(FpuOp::Add, l, r); }
FExprPtr sub(FExprPtr l, FExprPtr r) { return bin(FpuOp::Sub, l, r); }
FExprPtr mul(FExprPtr l, FExprPtr r) { return bin(FpuOp::Mul, l, r); }
FExprPtr div(FExprPtr l, FExprPtr r) { return bin(FpuOp::Div, l, r); }

Statement
assign(ArrayRef target, FExprPtr value)
{
    Statement s;
    s.targetKind = Statement::TargetKind::Array;
    s.arrayTarget = std::move(target);
    s.value = std::move(value);
    return s;
}

Statement
assignScalar(std::string target, FExprPtr value)
{
    Statement s;
    s.targetKind = Statement::TargetKind::Scalar;
    s.scalarTarget = std::move(target);
    s.value = std::move(value);
    return s;
}

} // namespace pipesim::codegen
