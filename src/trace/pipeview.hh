/**
 * @file
 * Cycle-timeline visualiser: runs a simulator step by step, samples
 * the machine every cycle and renders a compact text timeline of
 * issue activity, stall causes and queue occupancy — the quickest way
 * to see *why* a configuration loses cycles.
 *
 * Timeline letters (one column per cycle):
 *
 *     I  an instruction issued this cycle
 *     f  issue idle: the decoder had no instruction (fetch starve)
 *     d  issue stalled waiting for load data (LDQ empty)
 *     q  issue stalled on a full store/load queue
 *     .  other stall (busy register, drained, ...)
 */

#ifndef PIPESIM_TRACE_PIPEVIEW_HH
#define PIPESIM_TRACE_PIPEVIEW_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace pipesim
{

class PipeViewer
{
  public:
    /** Per-cycle sample of the interesting machine state. */
    struct Sample
    {
        Cycle cycle;
        bool issued;
        char cause;          //!< timeline letter (see file comment)
        std::size_t ldqOcc;
        std::size_t sdqOcc;
        bool memBusy;
    };

    /**
     * Run @p sim to completion (or @p max_cycles), sampling every
     * cycle.
     */
    void run(Simulator &sim, Cycle max_cycles = 1'000'000);

    const std::vector<Sample> &samples() const { return _samples; }

    /** Render the timeline, wrapped at @p width columns per row. */
    std::string timeline(unsigned width = 72) const;

    /** One-line utilisation summary. */
    std::string summary() const;

  private:
    std::vector<Sample> _samples;
};

} // namespace pipesim

#endif // PIPESIM_TRACE_PIPEVIEW_HH
