/**
 * @file
 * Execution tracing: a retiring-instruction trace (cycle, pc,
 * disassembly) for debugging and for tests that assert on dynamic
 * behaviour.  Both tracers are ProbeBus listeners on the pipeline's
 * retire probe; attach them to a Simulator's probes() before running.
 */

#ifndef PIPESIM_TRACE_TRACE_HH
#define PIPESIM_TRACE_TRACE_HH

#include <ostream>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "obs/probe.hh"

namespace pipesim
{

/**
 * Streams one line per retired instruction to an ostream:
 *
 *     <cycle> <pc> <disassembly>
 *
 * Attach before running; detach (or destroy the tracer) before the
 * probe bus dies.
 */
class InstructionTracer
{
  public:
    explicit InstructionTracer(std::ostream &out);
    ~InstructionTracer() { detach(); }

    InstructionTracer(const InstructionTracer &) = delete;
    InstructionTracer &operator=(const InstructionTracer &) = delete;

    /** Listen on @p bus's retire probe. */
    void attach(obs::ProbeBus &bus);

    /** Stop listening (idempotent). */
    void detach();

    std::uint64_t lines() const { return _lines; }

  private:
    std::ostream &_out;
    std::uint64_t _lines = 0;
    obs::ProbeBus *_bus = nullptr;
    obs::ProbePoint<obs::RetireEvent>::ListenerId _id = 0;
};

/**
 * Records retired (pc, cycle) pairs in memory, for tests that check
 * dynamic paths and issue timing.
 */
class RetireRecorder
{
  public:
    struct Record
    {
        Addr pc;
        Cycle cycle;
        isa::Opcode op;
    };

    RetireRecorder() = default;
    ~RetireRecorder() { detach(); }

    RetireRecorder(const RetireRecorder &) = delete;
    RetireRecorder &operator=(const RetireRecorder &) = delete;

    /** Listen on @p bus's retire probe. */
    void attach(obs::ProbeBus &bus);

    /** Stop listening (idempotent). */
    void detach();

    const std::vector<Record> &records() const { return _records; }

  private:
    std::vector<Record> _records;
    obs::ProbeBus *_bus = nullptr;
    obs::ProbePoint<obs::RetireEvent>::ListenerId _id = 0;
};

} // namespace pipesim

#endif // PIPESIM_TRACE_TRACE_HH
