/**
 * @file
 * Execution tracing: a retiring-instruction trace (cycle, pc,
 * disassembly, key machine state) for debugging and for tests that
 * assert on dynamic behaviour.
 */

#ifndef PIPESIM_TRACE_TRACE_HH
#define PIPESIM_TRACE_TRACE_HH

#include <ostream>
#include <vector>

#include "common/types.hh"
#include "cpu/pipeline.hh"
#include "isa/instruction.hh"

namespace pipesim
{

/**
 * Streams one line per retired instruction to an ostream:
 *
 *     <cycle> <pc> <disassembly>
 *
 * Attach before running; the tracer must outlive the pipeline run.
 */
class InstructionTracer
{
  public:
    explicit InstructionTracer(std::ostream &out);

    /** Install this tracer as the pipeline's retire hook. */
    void attach(Pipeline &pipeline);

    std::uint64_t lines() const { return _lines; }

  private:
    std::ostream &_out;
    std::uint64_t _lines = 0;
};

/**
 * Records retired (pc, cycle) pairs in memory, for tests that check
 * dynamic paths and issue timing.
 */
class RetireRecorder
{
  public:
    struct Record
    {
        Addr pc;
        Cycle cycle;
        isa::Opcode op;
    };

    void attach(Pipeline &pipeline);

    const std::vector<Record> &records() const { return _records; }

  private:
    std::vector<Record> _records;
};

} // namespace pipesim

#endif // PIPESIM_TRACE_TRACE_HH
