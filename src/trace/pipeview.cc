#include "trace/pipeview.hh"

#include <sstream>

#include "common/strutil.hh"

namespace pipesim
{

void
PipeViewer::run(Simulator &sim, Cycle max_cycles)
{
    _samples.clear();

    obs::ProbeBus &bus = sim.probes();

    // The pipeline emits queueSample, then (maybe) retire, then the
    // tick's cycleClass; the last listener folds the cycle's state
    // into one Sample.
    bool retired = false;
    std::uint8_t ldq = 0;
    std::uint8_t sdq = 0;
    const auto qid = bus.queueSample.connect(
        [&](const obs::QueueSampleEvent &ev) {
            ldq = ev.ldq;
            sdq = ev.sdq;
        });
    const auto rid = bus.retire.connect(
        [&](const obs::RetireEvent &) { retired = true; });
    const auto cid = bus.cycleClass.connect(
        [&](const obs::CycleClassEvent &ev) {
            Sample s;
            s.cycle = ev.cycle;
            s.issued = retired;
            retired = false;
            if (s.issued) {
                s.cause = 'I';
            } else {
                switch (ev.cls) {
                  case obs::CycleClass::FetchStarve:
                  case obs::CycleClass::BusContention:
                    s.cause = 'f';
                    break;
                  case obs::CycleClass::LoadDataWait:
                    s.cause = 'd';
                    break;
                  case obs::CycleClass::QueueFull:
                    s.cause = 'q';
                    break;
                  default:
                    s.cause = '.';
                    break;
                }
            }
            s.ldqOcc = ldq;
            s.sdqOcc = sdq;
            s.memBusy = !sim.memorySystem().quiescent();
            _samples.push_back(s);
        });

    while (!sim.done() && sim.now() < max_cycles)
        sim.step();

    bus.cycleClass.disconnect(cid);
    bus.retire.disconnect(rid);
    bus.queueSample.disconnect(qid);
}

std::string
PipeViewer::timeline(unsigned width) const
{
    std::ostringstream os;
    for (std::size_t base = 0; base < _samples.size(); base += width) {
        os << format("%8llu  ",
                     static_cast<unsigned long long>(
                         _samples[base].cycle));
        const std::size_t end =
            std::min(_samples.size(), base + width);
        for (std::size_t i = base; i < end; ++i)
            os << _samples[i].cause;
        os << "\n";
    }
    return os.str();
}

std::string
PipeViewer::summary() const
{
    std::uint64_t issued = 0;
    std::uint64_t starve = 0;
    std::uint64_t data = 0;
    std::uint64_t queues = 0;
    for (const Sample &s : _samples) {
        issued += s.issued;
        starve += s.cause == 'f';
        data += s.cause == 'd';
        queues += s.cause == 'q';
    }
    const double n = _samples.empty() ? 1.0 : double(_samples.size());
    return format("cycles=%zu issue=%.1f%% fetch-starve=%.1f%% "
                  "ldq-wait=%.1f%% queue-full=%.1f%%",
                  _samples.size(), 100.0 * double(issued) / n,
                  100.0 * double(starve) / n, 100.0 * double(data) / n,
                  100.0 * double(queues) / n);
}

} // namespace pipesim
