#include "trace/pipeview.hh"

#include <sstream>

#include "common/strutil.hh"

namespace pipesim
{

void
PipeViewer::run(Simulator &sim, Cycle max_cycles)
{
    _samples.clear();

    StatGroup &st = sim.stats();
    auto queue_stalls = [&st]() {
        return st.counterValue("cpu.stall_sdq_full") +
               st.counterValue("cpu.stall_laq_full") +
               st.counterValue("cpu.stall_saq_full") +
               st.counterValue("cpu.stall_ldq_reserved");
    };
    std::uint64_t retired = sim.pipeline().instructionsRetired();
    std::uint64_t starve = st.counterValue("cpu.fetch_starve_cycles");
    std::uint64_t ldq_stall = st.counterValue("cpu.stall_ldq_empty");
    std::uint64_t q_stall = queue_stalls();

    while (!sim.done() && sim.now() < max_cycles) {
        sim.step();

        Sample s;
        s.cycle = sim.now() - 1;
        const std::uint64_t retired_now =
            sim.pipeline().instructionsRetired();
        s.issued = retired_now != retired;
        retired = retired_now;

        const std::uint64_t starve_now =
            st.counterValue("cpu.fetch_starve_cycles");
        const std::uint64_t ldq_now =
            st.counterValue("cpu.stall_ldq_empty");
        const std::uint64_t q_now = queue_stalls();
        if (s.issued)
            s.cause = 'I';
        else if (starve_now != starve)
            s.cause = 'f';
        else if (ldq_now != ldq_stall)
            s.cause = 'd';
        else if (q_now != q_stall)
            s.cause = 'q';
        else
            s.cause = '.';
        starve = starve_now;
        ldq_stall = ldq_now;
        q_stall = q_now;

        s.ldqOcc = sim.pipeline().queues().ldq().size();
        s.sdqOcc = sim.pipeline().queues().sdq().size();
        s.memBusy = !sim.memorySystem().quiescent();
        _samples.push_back(s);
    }
}

std::string
PipeViewer::timeline(unsigned width) const
{
    std::ostringstream os;
    for (std::size_t base = 0; base < _samples.size(); base += width) {
        os << format("%8llu  ",
                     static_cast<unsigned long long>(
                         _samples[base].cycle));
        const std::size_t end =
            std::min(_samples.size(), base + width);
        for (std::size_t i = base; i < end; ++i)
            os << _samples[i].cause;
        os << "\n";
    }
    return os.str();
}

std::string
PipeViewer::summary() const
{
    std::uint64_t issued = 0;
    std::uint64_t starve = 0;
    std::uint64_t data = 0;
    std::uint64_t queues = 0;
    for (const Sample &s : _samples) {
        issued += s.issued;
        starve += s.cause == 'f';
        data += s.cause == 'd';
        queues += s.cause == 'q';
    }
    const double n = _samples.empty() ? 1.0 : double(_samples.size());
    return format("cycles=%zu issue=%.1f%% fetch-starve=%.1f%% "
                  "ldq-wait=%.1f%% queue-full=%.1f%%",
                  _samples.size(), 100.0 * double(issued) / n,
                  100.0 * double(starve) / n, 100.0 * double(data) / n,
                  100.0 * double(queues) / n);
}

} // namespace pipesim
