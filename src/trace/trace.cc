#include "trace/trace.hh"

#include <iomanip>

#include "isa/disasm.hh"

namespace pipesim
{

InstructionTracer::InstructionTracer(std::ostream &out) : _out(out)
{
}

void
InstructionTracer::attach(Pipeline &pipeline)
{
    pipeline.setRetireHook(
        [this](const isa::FetchedInst &fi, Cycle now) {
            _out << std::setw(10) << now << "  " << std::setw(6)
                 << fi.pc << "  " << isa::disassemble(fi.inst) << "\n";
            ++_lines;
        });
}

void
RetireRecorder::attach(Pipeline &pipeline)
{
    pipeline.setRetireHook(
        [this](const isa::FetchedInst &fi, Cycle now) {
            _records.push_back(Record{fi.pc, now, fi.inst.op});
        });
}

} // namespace pipesim
