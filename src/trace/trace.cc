#include "trace/trace.hh"

#include <iomanip>

#include "isa/disasm.hh"

namespace pipesim
{

InstructionTracer::InstructionTracer(std::ostream &out) : _out(out)
{
}

void
InstructionTracer::attach(obs::ProbeBus &bus)
{
    detach();
    _bus = &bus;
    _id = bus.retire.connect([this](const obs::RetireEvent &ev) {
        _out << std::setw(10) << ev.cycle << "  " << std::setw(6)
             << ev.inst.pc << "  " << isa::disassemble(ev.inst.inst)
             << "\n";
        ++_lines;
    });
}

void
InstructionTracer::detach()
{
    if (!_bus)
        return;
    _bus->retire.disconnect(_id);
    _bus = nullptr;
}

void
RetireRecorder::attach(obs::ProbeBus &bus)
{
    detach();
    _bus = &bus;
    _id = bus.retire.connect([this](const obs::RetireEvent &ev) {
        _records.push_back(Record{ev.inst.pc, ev.cycle, ev.inst.inst.op});
    });
}

void
RetireRecorder::detach()
{
    if (!_bus)
        return;
    _bus->retire.disconnect(_id);
    _bus = nullptr;
}

} // namespace pipesim
