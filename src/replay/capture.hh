/**
 * @file
 * Trace capture: a probe-bus listener that records the committed
 * instruction stream of a cycle-accurate run into a replay::Trace.
 *
 * Capture listens to the pipeline's retire probe, so it records
 * exactly the architectural instruction stream — squashed wrong-path
 * fetches never appear.  The stream is a property of the program
 * alone (PIPE has no speculation that changes committed results), so
 * one capture drives replays under every machine configuration; the
 * recorded provenance says which machine produced it.
 */

#ifndef PIPESIM_REPLAY_CAPTURE_HH
#define PIPESIM_REPLAY_CAPTURE_HH

#include <string>

#include "obs/probe.hh"
#include "replay/trace_format.hh"

namespace pipesim
{
class Program;
class Simulator;
struct SimConfig;
} // namespace pipesim

namespace pipesim::replay
{

/**
 * Records every retirement of one Simulator run.  Attach before
 * running, run to completion, then call finish() for the trace.
 */
class TraceCapture
{
  public:
    /** @param provenance Free-form capture description stored in the
     *                    trace header. */
    TraceCapture(Simulator &sim, std::string provenance);
    ~TraceCapture();

    TraceCapture(const TraceCapture &) = delete;
    TraceCapture &operator=(const TraceCapture &) = delete;

    /**
     * Detach and hand over the finished trace (meta filled in,
     * sha256 computed by encoding the records once).
     */
    Trace finish();

  private:
    obs::ProbeBus &_bus;
    obs::ProbePoint<obs::RetireEvent>::ListenerId _id;
    bool _connected = true;
    Trace _trace;
};

/**
 * Convenience: run a fresh Simulator over @p program with capture
 * attached and return the trace.
 * @throws SimAbort / FatalError exactly as the underlying run would.
 */
Trace captureTrace(const SimConfig &config, const Program &program,
                   const std::string &provenance);

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_CAPTURE_HH
