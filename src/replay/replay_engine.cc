#include "replay/replay_engine.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/abort.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "mem/data_memory.hh"
#include "mem/fpu.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "replay/checkpoint.hh"
#include "replay/replay_machine.hh"

namespace pipesim::replay
{

// Cancellation note: every tick loop below calls
// ReplayMachine::watchdogs(config), which — in addition to the
// simulated-time watchdogs — polls the sweep's per-point cancel flag
// (SimConfig::cancelFlag, throwing TimeoutAbort) and the guard's
// shutdown flag (throwing InterruptedError).  Under the pooled window
// passes those exceptions are captured in each window's std::future
// and rethrown at the plan-order collection point, so a deadline or a
// SIGINT never strands a worker mid-window.

namespace
{

void
checkReplayable(const SimConfig &config, const Program &program,
                const Trace &trace)
{
    if (config.fault.enabled())
        fatal("trace replay cannot inject faults: a fault changes the "
              "timing the trace was captured without; use the cycle "
              "engine for fault experiments");
    const std::string hash = programSha256(program);
    if (hash != trace.meta.programSha256)
        fatal("trace was captured from a different program: trace "
              "records program sha256 ", trace.meta.programSha256,
              " but this program hashes to ", hash,
              " (capture provenance: ",
              trace.meta.provenance.empty() ? "none"
                                            : trace.meta.provenance,
              ")");
}

SimResult
replayExact(const SimConfig &config, const Program &program,
            const Trace &trace)
{
    obs::ScopedPhase phase("replay.exact", obs::Scope::Coarse);
    DataMemory dataMem;
    dataMem.loadProgram(program);
    ReplayMachine m(config, program, trace, 0, dataMem);
    while (!m.done()) {
        m.step();
        m.watchdogs(config);
    }
    if (!m.pipe.traceExhausted())
        fatal("trace replay halted after ", m.pipe.cursor(),
              " instructions but the trace holds ",
              trace.records.size(),
              " — the trace does not match this program");

    SimResult r;
    r.totalCycles = m.pipe.haltCycle();
    r.instructions = m.pipe.instructionsRetired();
    for (const auto &name : m.stats.counterNames())
        r.counters.emplace(name, m.stats.counterValue(name));
    r.meta["engine"] = "trace-exact";
    r.meta["trace_sha256"] = trace.sha256;
    r.meta["program_sha256"] = trace.meta.programSha256;
    return r;
}

/**
 * What one executed window contributed.  Wall-clock phase times are
 * carried here (instead of added to the profiler in place) so pooled
 * windows never touch the profiler from a worker thread and the
 * attribution is identical for any job count.
 */
struct WindowOutcome
{
    /** The trace ended inside this window's warm-up: nothing was
     *  measured, and no later window can measure anything either. */
    bool warmIncomplete = false;

    std::uint64_t insts = 0;
    Cycle cycles = 0;
    std::map<std::string, std::uint64_t> counterDeltas;

    std::uint64_t warmNs = 0;
    std::uint64_t measureNs = 0;
    std::uint64_t ckptNs = 0;
};

/** Advance @p m to @p warmEnd (detailed warm-up).  @return false when
 *  the trace ran out first. */
bool
runWarmup(ReplayMachine &m, const SimConfig &config,
          std::size_t warmEnd, bool prof, WindowOutcome &out)
{
    const std::uint64_t startNs = prof ? obs::profileNowNs() : 0;
    while (m.pipe.cursor() < warmEnd && !m.done()) {
        m.step();
        m.watchdogs(config);
    }
    if (prof)
        out.warmNs = obs::profileNowNs() - startNs;
    if (m.pipe.cursor() < warmEnd) {
        out.warmIncomplete = true;
        return false;
    }
    return true;
}

/** Run the measured span of @p win on a machine already positioned at
 *  its warm end, filling the outcome's deltas. */
void
runMeasure(ReplayMachine &m, const SimConfig &config,
           const SampleWindow &win, bool prof, WindowOutcome &out)
{
    const Cycle warmEndCycle = m.now;
    const auto names = m.stats.counterNames();
    std::vector<std::uint64_t> before;
    before.reserve(names.size());
    for (const auto &name : names)
        before.push_back(m.stats.counterValue(name));

    const std::uint64_t startNs = prof ? obs::profileNowNs() : 0;
    while (m.pipe.cursor() < win.measureEnd && !m.done()) {
        m.step();
        m.watchdogs(config);
    }
    if (prof)
        out.measureNs = obs::profileNowNs() - startNs;

    out.insts = m.pipe.cursor() - win.warmEnd;
    out.cycles = m.now - warmEndCycle;
    if (out.insts == 0)
        return;
    for (std::size_t i = 0; i < names.size(); ++i)
        out.counterDeltas[names[i]] =
            m.stats.counterValue(names[i]) - before[i];
}

/**
 * The serial pass: windows run in plan order against one shared
 * DataMemory (stale values from an earlier window are harmless — only
 * addresses reach the timing model).  With @p save set this is the
 * checkpoint-create pass: each window's machine state and the backing
 * store's dirty pages are snapshotted at the warm end, right where
 * the restore pass will resume.
 */
std::vector<WindowOutcome>
runSerialWindows(const SimConfig &config, const Program &program,
                 const Trace &trace,
                 const std::vector<SampleWindow> &plan, bool prof,
                 CheckpointSet *save)
{
    auto &registry = obs::MetricsRegistry::instance();
    DataMemory dataMem;
    dataMem.loadProgram(program);

    std::vector<WindowOutcome> outcomes;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const SampleWindow &win = plan[i];
        WindowOutcome out;
        ReplayMachine m(config, program, trace, win.start, dataMem);
        m.fetch->reset(trace.records[win.start].pc);
        if (!runWarmup(m, config, win.warmEnd, prof, out)) {
            outcomes.push_back(std::move(out));
            break;
        }
        if (save) {
            const std::uint64_t saveStartNs =
                prof ? obs::profileNowNs() : 0;
            StateWriter w;
            m.saveState(w);
            dataMem.saveDirtyPages(w);
            CheckpointWindow cw;
            cw.index = i;
            cw.start = win.start;
            cw.warmEnd = win.warmEnd;
            cw.payload = w.take();
            if (prof)
                out.ckptNs = obs::profileNowNs() - saveStartNs;
            registry.counter("replay.ckpt.windows_saved").add(1);
            registry.counter("replay.ckpt.bytes_written")
                .add(cw.payload.size());
            save->windows.push_back(std::move(cw));
        }
        runMeasure(m, config, win, prof, out);
        outcomes.push_back(std::move(out));
    }
    return outcomes;
}

/** The pooled cold pass: each window is an independent job with its
 *  own DataMemory (a shared store would race). */
std::vector<WindowOutcome>
runPooledWindows(const SimConfig &config, const Program &program,
                 const Trace &trace,
                 const std::vector<SampleWindow> &plan, bool prof,
                 unsigned jobs)
{
    std::vector<WindowOutcome> outcomes(plan.size());
    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        futures.push_back(pool.submit([&, i] {
            const SampleWindow &win = plan[i];
            WindowOutcome &out = outcomes[i];
            DataMemory dataMem;
            dataMem.loadProgram(program);
            ReplayMachine m(config, program, trace, win.start, dataMem);
            m.fetch->reset(trace.records[win.start].pc);
            if (!runWarmup(m, config, win.warmEnd, prof, out))
                return;
            runMeasure(m, config, win, prof, out);
        }));
    }
    // Collect in plan order so the first failing window's exception
    // surfaces deterministically, exactly as the serial pass would
    // have thrown it (the pool already fault-isolates each job).
    for (auto &f : futures)
        f.get();
    return outcomes;
}

/** Validate that @p set was created for exactly this (trace, program,
 *  config, sampling plan) tuple. */
void
checkCheckpointUsable(const CheckpointSet &set, const Trace &trace,
                      const std::string &configHash,
                      const ReplayOptions &opt,
                      const std::vector<SampleWindow> &plan,
                      const std::string &path)
{
    const auto reject = [&](auto &&...what) {
        fatal("checkpoint ", path, ": ",
              std::forward<decltype(what)>(what)...,
              "; re-create it with --ckpt-create");
    };
    if (set.meta.traceSha256 != trace.sha256)
        reject("created from a different trace (checkpoint has ",
               set.meta.traceSha256, ", this trace is ", trace.sha256,
               ")");
    if (set.meta.programSha256 != trace.meta.programSha256)
        reject("created from a different program image");
    if (set.meta.configSha256 != configHash)
        reject("created for a different machine configuration "
               "(checkpoint has ", set.meta.configSha256,
               ", this config hashes to ", configHash, ")");
    if (set.meta.samplePeriod != opt.samplePeriod ||
        set.meta.sampleWarmup != opt.sampleWarmup ||
        set.meta.sampleMeasure != opt.sampleMeasure)
        reject("created with sampling ", set.meta.samplePeriod, "/",
               set.meta.sampleWarmup, "/", set.meta.sampleMeasure,
               " (period/warmup/measure) but this run asks for ",
               opt.samplePeriod, "/", opt.sampleWarmup, "/",
               opt.sampleMeasure);
    if (set.meta.traceRecords != trace.records.size())
        reject("records a ", set.meta.traceRecords,
               "-record trace but this trace holds ",
               trace.records.size());
    if (set.windows.size() > plan.size())
        reject("holds ", set.windows.size(),
               " windows but the plan has only ", plan.size());
    for (std::size_t i = 0; i < set.windows.size(); ++i) {
        const CheckpointWindow &cw = set.windows[i];
        if (cw.index != i || cw.start != plan[i].start ||
            cw.warmEnd != plan[i].warmEnd)
            reject("window ", i, " covers records [", cw.start, ", ",
                   cw.warmEnd, ") but the plan expects [",
                   plan[i].start, ", ", plan[i].warmEnd, ")");
    }
}

/**
 * The checkpointed pass: restore each window's warm state from @p set
 * and run only its measured span.  A window beyond the stored count
 * means the creator's warm-up ran off the trace end there, so it (and
 * everything after it) contributes nothing — matching the serial
 * pass's early stop.
 */
std::vector<WindowOutcome>
runCheckpointedWindows(const SimConfig &config, const Program &program,
                       const Trace &trace,
                       const std::vector<SampleWindow> &plan, bool prof,
                       unsigned jobs, const CheckpointSet &set)
{
    auto &registry = obs::MetricsRegistry::instance();
    std::vector<WindowOutcome> outcomes(plan.size());

    const auto runOne = [&](std::size_t i) {
        const SampleWindow &win = plan[i];
        WindowOutcome &out = outcomes[i];
        if (i >= set.windows.size()) {
            out.warmIncomplete = true;
            return;
        }
        const CheckpointWindow &cw = set.windows[i];
        DataMemory dataMem;
        dataMem.loadProgram(program);
        ReplayMachine m(config, program, trace, win.start, dataMem);
        const std::uint64_t restoreStartNs =
            prof ? obs::profileNowNs() : 0;
        StateReader r(cw.payload,
                      "checkpoint " + set.sha256.substr(0, 16) +
                          " window " + std::to_string(i));
        m.restoreState(r);
        dataMem.restoreDirtyPages(r);
        r.expectEnd();
        if (prof)
            out.ckptNs = obs::profileNowNs() - restoreStartNs;
        registry.counter("replay.ckpt.windows_restored").add(1);
        registry.counter("replay.ckpt.bytes_read")
            .add(cw.payload.size());
        runMeasure(m, config, win, prof, out);
    };

    if (jobs <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            runOne(i);
        return outcomes;
    }
    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        futures.push_back(pool.submit([&runOne, i] { runOne(i); }));
    for (auto &f : futures)
        f.get();
    return outcomes;
}

SimResult
replaySampled(const SimConfig &config, const Program &program,
              const Trace &trace, const ReplayOptions &opt)
{
    if (opt.sampleMeasure == 0)
        fatal("trace replay: sampleMeasure must be nonzero");
    if (std::uint64_t(opt.sampleWarmup) + opt.sampleMeasure >
        opt.samplePeriod)
        fatal("trace replay: samplePeriod (", opt.samplePeriod,
              ") must cover warmup (", opt.sampleWarmup,
              ") + measure (", opt.sampleMeasure, ")");

    obs::ScopedPhase samplePhase("replay.sampled", obs::Scope::Coarse);
    const std::size_t total = trace.records.size();
    const std::vector<std::size_t> syncPoints =
        computeSyncPoints(program, trace);
    const std::vector<SampleWindow> plan =
        planSampleWindows(total, syncPoints, opt);

    // Warm-up vs measurement attribution across all windows (the
    // paper's sampling cost model: warm-up is pure overhead).  The
    // clock is only read when the profiler is attached.
    const bool prof = obs::Profiler::enabled();
    obs::CachedPhase warmPhase, measurePhase, ckptPhase;

    const bool useCkpt = !opt.ckptDir.empty();
    std::string ckptMode = "off";
    if (useCkpt) {
        // Touch the checkpoint metrics before any window runs so the
        // exported key set is identical for every mode and job count
        // (the key-set contract, obs/metrics.hh).
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("replay.ckpt.windows_saved");
        registry.counter("replay.ckpt.windows_restored");
        registry.counter("replay.ckpt.bytes_written");
        registry.counter("replay.ckpt.bytes_read");
        ckptMode = opt.ckptCreate ? "create" : "restore";
    }
    if (prof) {
        warmPhase = obs::CachedPhase("window.warmup");
        measurePhase = obs::CachedPhase("window.measure");
        if (useCkpt)
            ckptPhase = obs::CachedPhase(opt.ckptCreate
                                             ? "replay.ckpt.save"
                                             : "replay.ckpt.restore");
    }

    std::vector<WindowOutcome> outcomes;
    if (useCkpt && opt.ckptCreate) {
        // The create pass IS the serial sampled run, plus snapshots:
        // every window's state at its warm end is exactly what the
        // serial path computes, which is what makes restored results
        // bit-identical by construction.
        CheckpointSet set;
        set.meta.traceSha256 = trace.sha256;
        set.meta.programSha256 = trace.meta.programSha256;
        set.meta.configSha256 = configSha256(config);
        set.meta.samplePeriod = opt.samplePeriod;
        set.meta.sampleWarmup = opt.sampleWarmup;
        set.meta.sampleMeasure = opt.sampleMeasure;
        set.meta.traceRecords = total;
        set.meta.provenance =
            "pipesim live-points: " + config.fetchName();
        outcomes = runSerialWindows(config, program, trace, plan, prof,
                                    &set);
        writeCheckpoint(set, checkpointPath(opt.ckptDir, config));
    } else if (useCkpt) {
        const std::string path = checkpointPath(opt.ckptDir, config);
        const CheckpointSet set = readCheckpoint(path);
        checkCheckpointUsable(set, trace, configSha256(config), opt,
                              plan, path);
        outcomes = runCheckpointedWindows(config, program, trace, plan,
                                          prof, resolveJobCount(opt.jobs),
                                          set);
    } else if (opt.jobs == 1) {
        outcomes = runSerialWindows(config, program, trace, plan, prof,
                                    nullptr);
    } else {
        outcomes = runPooledWindows(config, program, trace, plan, prof,
                                    resolveJobCount(opt.jobs));
    }

    // Accumulate in plan order: every execution strategy feeds the
    // estimator the same sequence, so the result is bit-identical for
    // any job count and checkpoint mode.
    std::map<std::string, std::uint64_t> measuredCounters;
    std::vector<double> windowCpis;
    std::uint64_t measuredInsts = 0;
    Cycle measuredCycles = 0;
    for (const WindowOutcome &out : outcomes) {
        if (prof) {
            warmPhase.add(out.warmNs);
            measurePhase.add(out.measureNs);
            if (useCkpt)
                ckptPhase.add(out.ckptNs);
        }
        if (out.warmIncomplete)
            break; // trace (and program) ended inside the warm-up
        if (out.insts == 0)
            continue;
        measuredInsts += out.insts;
        measuredCycles += out.cycles;
        windowCpis.push_back(double(out.cycles) / double(out.insts));
        for (const auto &[name, delta] : out.counterDeltas)
            measuredCounters[name] += delta;
    }

    if (measuredInsts == 0)
        fatal("trace replay: sampling produced no measured "
              "instructions (trace of ", total,
              " records, period ", opt.samplePeriod, ")");

    // Ratio estimator for the point value; the CI comes from the
    // spread of the per-window CPIs (CLT over systematic windows).
    const double cpi = double(measuredCycles) / double(measuredInsts);
    std::string relCi = "n/a"; // a single window has no spread
    if (windowCpis.size() > 1) {
        double mean = 0.0;
        for (double c : windowCpis)
            mean += c;
        mean /= double(windowCpis.size());
        double var = 0.0;
        for (double c : windowCpis)
            var += (c - mean) * (c - mean);
        var /= double(windowCpis.size() - 1);
        relCi = std::to_string(
            1.96 * std::sqrt(var / double(windowCpis.size())) / mean);
    }

    SimResult r;
    r.totalCycles = Cycle(std::llround(cpi * double(total)));
    r.instructions = total;
    r.counters = std::move(measuredCounters);
    r.meta["engine"] = "trace-sampled";
    r.meta["trace_sha256"] = trace.sha256;
    r.meta["program_sha256"] = trace.meta.programSha256;
    r.meta["sample_period"] = std::to_string(opt.samplePeriod);
    r.meta["sample_warmup"] = std::to_string(opt.sampleWarmup);
    r.meta["sample_measure"] = std::to_string(opt.sampleMeasure);
    r.meta["sample_windows"] = std::to_string(windowCpis.size());
    r.meta["sampled_instructions"] = std::to_string(measuredInsts);
    r.meta["cpi_estimate"] = std::to_string(cpi);
    r.meta["cpi_rel_ci95"] = relCi;
    r.meta["ckpt_mode"] = ckptMode;
    // Counters sum only the measured windows; scale by
    // instructions/sampled_instructions for whole-run estimates.
    r.meta["counters_scope"] = "measured_windows";
    return r;
}

} // namespace

std::vector<std::size_t>
computeSyncPoints(const Program &program, const Trace &trace)
{
    obs::ScopedPhase phase("replay.sync_scan", obs::Scope::Coarse);
    // The scan touches every trace record but the program's static
    // footprint is small, so decode each pc once and replay the scan
    // from the cache — this is what keeps sampled replay fast on
    // multi-million-instruction traces.
    struct PcInfo
    {
        bool known = false;
        std::int8_t ldqPops = 0;
        bool isLoad = false, pushesSdq = false, isStore = false;
        std::uint8_t count = 0;
    };
    std::vector<PcInfo> decoded; // flat, indexed by pc / parcelBytes

    std::vector<std::size_t> points;
    std::int64_t ldqBalance = 0; // loads issued - r7 source reads
    std::int64_t sdqBalance = 0; // r7 dest writes - store addresses
    std::array<std::int64_t, unsigned(FpuOp::NumOps)> fpuBalance{};
    unsigned branchShadow = 0; // records left in a taken pbr's shadow
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const bool fpuIdle =
            std::all_of(fpuBalance.begin(), fpuBalance.end(),
                        [](std::int64_t b) { return b == 0; });
        if (ldqBalance == 0 && sdqBalance == 0 && fpuIdle &&
            branchShadow == 0)
            points.push_back(i);
        const TraceRecord &rec = trace.records[i];
        const std::size_t slot = rec.pc / parcelBytes;
        if (slot >= decoded.size())
            decoded.resize(slot + 1);
        if (!decoded[slot].known) {
            const auto di = program.decodeAt(rec.pc);
            if (!di)
                fatal("trace record #", i, " names pc 0x", std::hex,
                      rec.pc, std::dec,
                      " which is not a decodable instruction in this "
                      "program");
            decoded[slot] = PcInfo{true, std::int8_t(di->ldqPops()),
                                   di->isLoad(), di->pushesSdq(),
                                   di->isStore(), di->count};
        }
        const PcInfo &inst = decoded[slot];
        ldqBalance -= inst.ldqPops;
        if (inst.isLoad)
            ++ldqBalance;
        if (inst.pushesSdq)
            ++sdqBalance;
        if (inst.isStore)
            --sdqBalance;
        if (rec.hasMemAddr && FpuDevice::contains(rec.memAddr)) {
            for (unsigned k = 0; k < unsigned(FpuOp::NumOps); ++k) {
                const auto op = FpuOp(k);
                if (rec.memIsStore && rec.memAddr == FpuDevice::opB(op))
                    ++fpuBalance[k];
                if (!rec.memIsStore &&
                    rec.memAddr == FpuDevice::opResult(op))
                    --fpuBalance[k];
            }
        }
        if (branchShadow > 0)
            --branchShadow;
        if (rec.isPbr && rec.branchTaken)
            branchShadow = std::max(branchShadow, unsigned(inst.count));
    }
    return points;
}

std::vector<SampleWindow>
planSampleWindows(std::size_t totalRecords,
                  const std::vector<std::size_t> &syncPoints,
                  const ReplayOptions &opt)
{
    std::vector<SampleWindow> plan;
    for (std::size_t k = 0;; ++k) {
        const std::size_t target = k * std::size_t(opt.samplePeriod);
        if (target >= totalRecords)
            break;
        const auto it = std::lower_bound(syncPoints.begin(),
                                         syncPoints.end(), target);
        if (it == syncPoints.end())
            break;
        const std::size_t start = *it;
        // Sparse sync points can round consecutive period targets up
        // to the same point; a duplicate window would be measured
        // twice, double-weighting it in the CPI estimator and
        // double-counting its deltas.
        if (!plan.empty() && plan.back().start == start)
            continue;
        const std::size_t warmEnd =
            std::min<std::size_t>(start + opt.sampleWarmup, totalRecords);
        const std::size_t measureEnd = std::min<std::size_t>(
            warmEnd + opt.sampleMeasure, totalRecords);
        if (measureEnd <= warmEnd)
            break; // nothing left to measure in the tail
        plan.push_back(SampleWindow{start, warmEnd, measureEnd});
    }
    return plan;
}

SimResult
replayTrace(const SimConfig &config, const Program &program,
            const Trace &trace, const ReplayOptions &options)
{
    checkReplayable(config, program, trace);
    if (trace.records.empty())
        fatal("trace replay: the trace holds no records");
    if (options.samplePeriod == 0)
        return replayExact(config, program, trace);
    return replaySampled(config, program, trace, options);
}

} // namespace pipesim::replay
