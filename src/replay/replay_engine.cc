#include "replay/replay_engine.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/abort.hh"
#include "common/log.hh"
#include "core/fetch_factory.hh"
#include "mem/data_memory.hh"
#include "mem/fpu.hh"
#include "obs/profiler.hh"
#include "replay/replay_pipeline.hh"

namespace pipesim::replay
{

namespace
{

void
checkReplayable(const SimConfig &config, const Program &program,
                const Trace &trace)
{
    if (config.fault.enabled())
        fatal("trace replay cannot inject faults: a fault changes the "
              "timing the trace was captured without; use the cycle "
              "engine for fault experiments");
    const std::string hash = programSha256(program);
    if (hash != trace.meta.programSha256)
        fatal("trace was captured from a different program: trace "
              "records program sha256 ", trace.meta.programSha256,
              " but this program hashes to ", hash,
              " (capture provenance: ",
              trace.meta.provenance.empty() ? "none"
                                            : trace.meta.provenance,
              ")");
}

/**
 * One replayed machine instance (exact run or one sampling window).
 * The backing store is shared by the caller: replay timing is
 * value-independent, so sampling windows reuse one DataMemory instead
 * of zeroing a fresh megabyte each (stale values from an earlier
 * window are harmless — only addresses reach the timing model).
 */
struct ReplayMachine
{
    MemorySystem mem;
    std::unique_ptr<FetchUnit> fetch;
    ReplayPipeline pipe;
    StatGroup stats;
    Cycle now = 0;
    Cycle lastProgressCycle = 0;
    std::uint64_t lastRetired = 0;

    ReplayMachine(const SimConfig &config, const Program &program,
                  const Trace &trace, std::size_t firstRecord,
                  DataMemory &dataMem)
        : mem(config.mem, dataMem),
          fetch(makeFetchUnit(config.fetch, program, mem)),
          pipe(config.cpu, *fetch, mem, trace, firstRecord)
    {
        // Match Simulator's registration order so reports line up.
        pipe.regStats(stats, "cpu");
        fetch->regStats(stats, "fetch");
        mem.regStats(stats, "mem");
    }

    void
    step()
    {
        fetch->tick(now);
        mem.tick(now);
        pipe.tick(now);
        if (pipe.instructionsRetired() != lastRetired) {
            lastRetired = pipe.instructionsRetired();
            lastProgressCycle = now;
        }
        ++now;
    }

    bool
    done() const
    {
        return pipe.halted() && pipe.drained() && mem.quiescent();
    }

    void
    watchdogs(const SimConfig &config) const
    {
        if (now > config.maxCycles)
            simAbort("trace replay exceeded ", config.maxCycles,
                     " cycles");
        if (!pipe.halted() &&
            now - lastProgressCycle > config.progressWindow)
            simAbort("trace replay: no instruction retired for ",
                     config.progressWindow,
                     " cycles: machine deadlocked at cycle ", now);
    }
};

SimResult
replayExact(const SimConfig &config, const Program &program,
            const Trace &trace)
{
    obs::ScopedPhase phase("replay.exact", obs::Scope::Coarse);
    DataMemory dataMem;
    dataMem.loadProgram(program);
    ReplayMachine m(config, program, trace, 0, dataMem);
    while (!m.done()) {
        m.step();
        m.watchdogs(config);
    }
    if (!m.pipe.traceExhausted())
        fatal("trace replay halted after ", m.pipe.cursor(),
              " instructions but the trace holds ",
              trace.records.size(),
              " — the trace does not match this program");

    SimResult r;
    r.totalCycles = m.pipe.haltCycle();
    r.instructions = m.pipe.instructionsRetired();
    for (const auto &name : m.stats.counterNames())
        r.counters.emplace(name, m.stats.counterValue(name));
    r.meta["engine"] = "trace-exact";
    r.meta["trace_sha256"] = trace.sha256;
    r.meta["program_sha256"] = trace.meta.programSha256;
    return r;
}

/**
 * Record indices where a fresh machine can pick up the trace without
 * depending on state produced before the cut:
 *
 *  - the architectural queues are provably empty (every load before
 *    the index has met its r7 read and every store address its store
 *    data — the FIFO pairing makes a zero running balance a clean
 *    cut);
 *  - no FPU operation is in flight (a result load after the cut whose
 *    operand-B store preceded it would block forever on a fresh
 *    device);
 *  - the index is not inside a taken PBR's delay-slot shadow (fetch
 *    restarted at a shadow pc would fall through instead of taking
 *    the redirect the committed stream followed).
 */
std::vector<std::size_t>
computeSyncPoints(const Program &program, const Trace &trace)
{
    obs::ScopedPhase phase("replay.sync_scan", obs::Scope::Coarse);
    // The scan touches every trace record but the program's static
    // footprint is small, so decode each pc once and replay the scan
    // from the cache — this is what keeps sampled replay fast on
    // multi-million-instruction traces.
    struct PcInfo
    {
        bool known = false;
        std::int8_t ldqPops = 0;
        bool isLoad = false, pushesSdq = false, isStore = false;
        std::uint8_t count = 0;
    };
    std::vector<PcInfo> decoded; // flat, indexed by pc / parcelBytes

    std::vector<std::size_t> points;
    std::int64_t ldqBalance = 0; // loads issued - r7 source reads
    std::int64_t sdqBalance = 0; // r7 dest writes - store addresses
    std::array<std::int64_t, unsigned(FpuOp::NumOps)> fpuBalance{};
    unsigned branchShadow = 0; // records left in a taken pbr's shadow
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const bool fpuIdle =
            std::all_of(fpuBalance.begin(), fpuBalance.end(),
                        [](std::int64_t b) { return b == 0; });
        if (ldqBalance == 0 && sdqBalance == 0 && fpuIdle &&
            branchShadow == 0)
            points.push_back(i);
        const TraceRecord &rec = trace.records[i];
        const std::size_t slot = rec.pc / parcelBytes;
        if (slot >= decoded.size())
            decoded.resize(slot + 1);
        if (!decoded[slot].known) {
            const auto di = program.decodeAt(rec.pc);
            if (!di)
                fatal("trace record #", i, " names pc 0x", std::hex,
                      rec.pc, std::dec,
                      " which is not a decodable instruction in this "
                      "program");
            decoded[slot] = PcInfo{true, std::int8_t(di->ldqPops()),
                                   di->isLoad(), di->pushesSdq(),
                                   di->isStore(), di->count};
        }
        const PcInfo &inst = decoded[slot];
        ldqBalance -= inst.ldqPops;
        if (inst.isLoad)
            ++ldqBalance;
        if (inst.pushesSdq)
            ++sdqBalance;
        if (inst.isStore)
            --sdqBalance;
        if (rec.hasMemAddr && FpuDevice::contains(rec.memAddr)) {
            for (unsigned k = 0; k < unsigned(FpuOp::NumOps); ++k) {
                const auto op = FpuOp(k);
                if (rec.memIsStore && rec.memAddr == FpuDevice::opB(op))
                    ++fpuBalance[k];
                if (!rec.memIsStore &&
                    rec.memAddr == FpuDevice::opResult(op))
                    --fpuBalance[k];
            }
        }
        if (branchShadow > 0)
            --branchShadow;
        if (rec.isPbr && rec.branchTaken)
            branchShadow = std::max(branchShadow, unsigned(inst.count));
    }
    return points;
}

SimResult
replaySampled(const SimConfig &config, const Program &program,
              const Trace &trace, const ReplayOptions &opt)
{
    if (opt.sampleMeasure == 0)
        fatal("trace replay: sampleMeasure must be nonzero");
    if (std::uint64_t(opt.sampleWarmup) + opt.sampleMeasure >
        opt.samplePeriod)
        fatal("trace replay: samplePeriod (", opt.samplePeriod,
              ") must cover warmup (", opt.sampleWarmup,
              ") + measure (", opt.sampleMeasure, ")");

    obs::ScopedPhase samplePhase("replay.sampled", obs::Scope::Coarse);
    const std::size_t total = trace.records.size();
    const std::vector<std::size_t> syncPoints =
        computeSyncPoints(program, trace);

    DataMemory dataMem;
    dataMem.loadProgram(program);

    // Warm-up vs measurement attribution across all windows (the
    // paper's sampling cost model: warm-up is pure overhead).  The
    // clock is only read when the profiler is attached.
    const bool prof = obs::Profiler::enabled();
    obs::CachedPhase warmPhase, measurePhase;
    if (prof) {
        warmPhase = obs::CachedPhase("window.warmup");
        measurePhase = obs::CachedPhase("window.measure");
    }

    std::map<std::string, std::uint64_t> measuredCounters;
    std::vector<double> windowCpis;
    std::uint64_t measuredInsts = 0;
    Cycle measuredCycles = 0;

    for (std::size_t k = 0;; ++k) {
        const std::size_t target = k * std::size_t(opt.samplePeriod);
        if (target >= total)
            break;
        auto it = std::lower_bound(syncPoints.begin(), syncPoints.end(),
                                   target);
        if (it == syncPoints.end())
            break;
        const std::size_t start = *it;
        const std::size_t warmEnd =
            std::min<std::size_t>(start + opt.sampleWarmup, total);
        const std::size_t measureEnd =
            std::min<std::size_t>(warmEnd + opt.sampleMeasure, total);
        if (measureEnd <= warmEnd)
            break; // nothing left to measure in the tail

        ReplayMachine m(config, program, trace, start, dataMem);
        m.fetch->reset(trace.records[start].pc);

        const std::uint64_t warmStartNs =
            prof ? obs::profileNowNs() : 0;
        while (m.pipe.cursor() < warmEnd && !m.done()) {
            m.step();
            m.watchdogs(config);
        }
        if (prof)
            warmPhase.add(obs::profileNowNs() - warmStartNs);
        if (m.pipe.cursor() < warmEnd)
            break; // trace (and program) ended inside the warm-up

        const Cycle warmEndCycle = m.now;
        std::vector<std::uint64_t> before;
        const auto names = m.stats.counterNames();
        before.reserve(names.size());
        for (const auto &name : names)
            before.push_back(m.stats.counterValue(name));

        const std::uint64_t measureStartNs =
            prof ? obs::profileNowNs() : 0;
        while (m.pipe.cursor() < measureEnd && !m.done()) {
            m.step();
            m.watchdogs(config);
        }
        if (prof)
            measurePhase.add(obs::profileNowNs() - measureStartNs);

        const std::uint64_t insts = m.pipe.cursor() - warmEnd;
        const Cycle cycles = m.now - warmEndCycle;
        if (insts == 0)
            continue;
        measuredInsts += insts;
        measuredCycles += cycles;
        windowCpis.push_back(double(cycles) / double(insts));
        for (std::size_t i = 0; i < names.size(); ++i)
            measuredCounters[names[i]] +=
                m.stats.counterValue(names[i]) - before[i];
    }

    if (measuredInsts == 0)
        fatal("trace replay: sampling produced no measured "
              "instructions (trace of ", total,
              " records, period ", opt.samplePeriod, ")");

    // Ratio estimator for the point value; the CI comes from the
    // spread of the per-window CPIs (CLT over systematic windows).
    const double cpi = double(measuredCycles) / double(measuredInsts);
    double relCi = 0.0;
    if (windowCpis.size() > 1) {
        double mean = 0.0;
        for (double c : windowCpis)
            mean += c;
        mean /= double(windowCpis.size());
        double var = 0.0;
        for (double c : windowCpis)
            var += (c - mean) * (c - mean);
        var /= double(windowCpis.size() - 1);
        relCi = 1.96 * std::sqrt(var / double(windowCpis.size())) / mean;
    }

    SimResult r;
    r.totalCycles = Cycle(std::llround(cpi * double(total)));
    r.instructions = total;
    r.counters = std::move(measuredCounters);
    r.meta["engine"] = "trace-sampled";
    r.meta["trace_sha256"] = trace.sha256;
    r.meta["program_sha256"] = trace.meta.programSha256;
    r.meta["sample_period"] = std::to_string(opt.samplePeriod);
    r.meta["sample_warmup"] = std::to_string(opt.sampleWarmup);
    r.meta["sample_measure"] = std::to_string(opt.sampleMeasure);
    r.meta["sample_windows"] = std::to_string(windowCpis.size());
    r.meta["sampled_instructions"] = std::to_string(measuredInsts);
    r.meta["cpi_estimate"] = std::to_string(cpi);
    r.meta["cpi_rel_ci95"] = std::to_string(relCi);
    // Counters sum only the measured windows; scale by
    // instructions/sampled_instructions for whole-run estimates.
    r.meta["counters_scope"] = "measured_windows";
    return r;
}

} // namespace

SimResult
replayTrace(const SimConfig &config, const Program &program,
            const Trace &trace, const ReplayOptions &options)
{
    checkReplayable(config, program, trace);
    if (trace.records.empty())
        fatal("trace replay: the trace holds no records");
    if (options.samplePeriod == 0)
        return replayExact(config, program, trace);
    return replaySampled(config, program, trace, options);
}

} // namespace pipesim::replay
