#include "replay/checkpoint.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/sha256.hh"
#include "common/state_io.hh"
#include "replay/trace_format.hh"

namespace pipesim::replay
{

namespace
{

constexpr std::array<std::uint8_t, 8> kMagic = {'P', 'I', 'P', 'E',
                                                'C', 'K', 'P', 'T'};

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putHexDigest(std::vector<std::uint8_t> &out, const std::string &hex,
             const char *what)
{
    if (hex.size() != 64)
        fatal("checkpoint encode: ", what, " must be 64 hex chars, got ",
              hex.size());
    const auto nibble = [&](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return std::uint8_t(c - '0');
        if (c >= 'a' && c <= 'f')
            return std::uint8_t(c - 'a' + 10);
        fatal("checkpoint encode: ", what,
              " must be lower-case hex, got '", c, "'");
    };
    for (unsigned i = 0; i < 64; i += 2)
        out.push_back(
            std::uint8_t(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
}

std::string
hexDigestString(const std::uint8_t *bytes)
{
    static const char hex[] = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (unsigned i = 0; i < 32; ++i) {
        s += hex[bytes[i] >> 4];
        s += hex[bytes[i] & 0xf];
    }
    return s;
}

/** Bounds-checked cursor, mirroring the PIPETRC decoder's. */
class Reader
{
  public:
    Reader(const std::vector<std::uint8_t> &bytes, const std::string &name)
        : _bytes(bytes), _name(name)
    {
    }

    std::size_t pos() const { return _pos; }
    std::size_t remaining() const { return _bytes.size() - _pos; }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("checkpoint ", _name, ": ", what, " (at byte offset ",
              _pos, " of ", _bytes.size(), ")");
    }

    const std::uint8_t *
    take(std::size_t n, const char *what)
    {
        if (remaining() < n)
            fail(std::string("truncated while reading ") + what);
        const std::uint8_t *p = _bytes.data() + _pos;
        _pos += n;
        return p;
    }

    std::uint32_t
    takeU32(const char *what)
    {
        const std::uint8_t *p = take(4, what);
        return std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
               std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24;
    }

    std::uint64_t
    takeU64(const char *what)
    {
        const std::uint64_t lo = takeU32(what);
        const std::uint64_t hi = takeU32(what);
        return lo | hi << 32;
    }

  private:
    const std::vector<std::uint8_t> &_bytes;
    std::string _name;
    std::size_t _pos = 0;
};

} // namespace

std::string
configSha256(const SimConfig &config)
{
    // Serialize through StateWriter so the hash input is fixed-order,
    // fixed-width and endian-independent — the same discipline as the
    // checkpoint payloads it keys.
    StateWriter w;
    w.u32(std::uint32_t(config.fetch.strategy));
    w.u32(config.fetch.cacheBytes);
    w.u32(config.fetch.lineBytes);
    w.u32(config.fetch.iqBytes);
    w.u32(config.fetch.iqbBytes);
    w.u32(std::uint32_t(config.fetch.offchipPolicy));
    w.b(config.fetch.alwaysPrefetch);
    w.u32(config.fetch.parityRetryLimit);
    w.u32(config.mem.accessTime);
    w.u32(config.mem.busWidthBytes);
    w.b(config.mem.pipelined);
    w.b(config.mem.instructionPriority);
    w.u32(config.mem.fpuLatency);
    w.u32(config.mem.dcacheBytes);
    w.u32(config.mem.dcacheLineBytes);
    w.u64(config.cpu.laqEntries);
    w.u64(config.cpu.ldqEntries);
    w.u64(config.cpu.saqEntries);
    w.u64(config.cpu.sdqEntries);
    w.u32(config.cpu.aluLatency);
    return sha256Hex(w.data());
}

std::string
checkpointPath(const std::string &dir, const SimConfig &config)
{
    return dir + "/ckpt-" + configSha256(config).substr(0, 16) +
           ".pipeckpt";
}

std::vector<std::uint8_t>
encodeCheckpoint(CheckpointSet &set)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    putU32(out, checkpointFormatVersion);
    putU32(out, 0); // reserved
    putHexDigest(out, set.meta.traceSha256, "trace hash");
    putHexDigest(out, set.meta.programSha256, "program hash");
    putHexDigest(out, set.meta.configSha256, "config hash");
    putU32(out, set.meta.samplePeriod);
    putU32(out, set.meta.sampleWarmup);
    putU32(out, set.meta.sampleMeasure);
    putU64(out, set.meta.traceRecords);
    putU32(out, std::uint32_t(set.windows.size()));
    putU32(out, std::uint32_t(set.meta.provenance.size()));
    out.insert(out.end(), set.meta.provenance.begin(),
               set.meta.provenance.end());
    // Header checksum: a flipped byte in the cache key must not let a
    // stale snapshot masquerade as valid for this configuration.
    putU32(out, crc32(out.data(), out.size()));

    for (const CheckpointWindow &win : set.windows) {
        putU64(out, win.index);
        putU64(out, win.start);
        putU64(out, win.warmEnd);
        putU32(out, std::uint32_t(win.payload.size()));
        putU32(out, crc32(win.payload.data(), win.payload.size()));
        out.insert(out.end(), win.payload.begin(), win.payload.end());
    }

    // Whole-file digest; doubles as the telemetry identity.
    Sha256 h;
    h.update(out.data(), out.size());
    const auto digest = h.digest();
    set.sha256 = hexDigestString(digest.data());
    out.insert(out.end(), digest.begin(), digest.end());
    return out;
}

CheckpointSet
decodeCheckpoint(const std::vector<std::uint8_t> &bytes,
                 const std::string &name)
{
    // Verify the whole-file digest first: it covers the window
    // payloads' structure (lengths, offsets) that the per-window CRCs
    // alone cannot anchor to the header.
    if (bytes.size() < kMagic.size() + 32)
        fatal("checkpoint ", name, ": file too short (", bytes.size(),
              " bytes) to be a pipesim checkpoint");
    const std::size_t bodyLen = bytes.size() - 32;
    Sha256 h;
    h.update(bytes.data(), bodyLen);
    const auto digest = h.digest();
    if (std::memcmp(digest.data(), bytes.data() + bodyLen, 32) != 0)
        fatal("checkpoint ", name,
              ": file digest mismatch: the file is corrupt or "
              "truncated");

    Reader in(bytes, name);
    const std::uint8_t *magic = in.take(kMagic.size(), "magic");
    if (std::memcmp(magic, kMagic.data(), kMagic.size()) != 0)
        fatal("checkpoint ", name,
              ": bad magic (not a pipesim checkpoint file)");
    const std::uint32_t version = in.takeU32("version");
    if (version != checkpointFormatVersion)
        fatal("checkpoint ", name, ": unsupported format version ",
              version, " (this build reads version ",
              checkpointFormatVersion, ")");
    in.takeU32("reserved field");

    CheckpointSet set;
    set.meta.traceSha256 = hexDigestString(in.take(32, "trace hash"));
    set.meta.programSha256 =
        hexDigestString(in.take(32, "program hash"));
    set.meta.configSha256 = hexDigestString(in.take(32, "config hash"));
    set.meta.samplePeriod = in.takeU32("sample period");
    set.meta.sampleWarmup = in.takeU32("sample warmup");
    set.meta.sampleMeasure = in.takeU32("sample measure");
    set.meta.traceRecords = in.takeU64("trace record count");
    const std::uint32_t windowCount = in.takeU32("window count");
    // A window costs at least its 32-byte descriptor; anything
    // claiming more windows than the file could hold is corrupt, and
    // rejecting it here bounds every allocation below.
    if (windowCount > bytes.size() / 32 + 1)
        fatal("checkpoint ", name, ": window count ", windowCount,
              " impossible for a ", bytes.size(), "-byte file");
    const std::uint32_t provLen = in.takeU32("provenance length");
    if (provLen > in.remaining())
        in.fail("provenance length runs past end of file");
    const std::uint8_t *prov = in.take(provLen, "provenance");
    set.meta.provenance.assign(prov, prov + provLen);
    const std::uint32_t headerCrcComputed = crc32(bytes.data(), in.pos());
    const std::uint32_t headerCrcStored = in.takeU32("header checksum");
    if (headerCrcStored != headerCrcComputed)
        fatal("checkpoint ", name,
              ": header failed its checksum (stored ", headerCrcStored,
              ", computed ", headerCrcComputed,
              "): the file is corrupt");

    set.windows.reserve(windowCount);
    for (std::uint32_t i = 0; i < windowCount; ++i) {
        const std::size_t winStart = in.pos();
        CheckpointWindow win;
        win.index = in.takeU64("window index");
        win.start = in.takeU64("window start record");
        win.warmEnd = in.takeU64("window warm-end record");
        if (win.start > win.warmEnd ||
            win.warmEnd > set.meta.traceRecords)
            fatal("checkpoint ", name, ": window at byte offset ",
                  winStart, " claims records [", win.start, ", ",
                  win.warmEnd, ") outside the ",
                  set.meta.traceRecords, "-record trace");
        const std::uint32_t payloadBytes = in.takeU32("payload size");
        const std::uint32_t expectedCrc = in.takeU32("payload checksum");
        if (payloadBytes > in.remaining())
            in.fail("window payload runs past end of file");
        const std::uint8_t *payload =
            in.take(payloadBytes, "window payload");
        const std::uint32_t actualCrc = crc32(payload, payloadBytes);
        if (actualCrc != expectedCrc)
            fatal("checkpoint ", name, ": window at byte offset ",
                  winStart, " failed its checksum (stored ",
                  expectedCrc, ", computed ", actualCrc,
                  "): the file is corrupt");
        win.payload.assign(payload, payload + payloadBytes);
        set.windows.push_back(std::move(win));
    }
    if (in.remaining() != 32)
        in.fail("trailing bytes between the last window and the file "
                "digest");

    set.sha256 = hexDigestString(digest.data());
    return set;
}

void
writeCheckpoint(CheckpointSet &set, const std::string &path)
{
    const std::vector<std::uint8_t> bytes = encodeCheckpoint(set);
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec)
            fatal("cannot create checkpoint directory ",
                  parent.string(), ": ", ec.message());
    }
    // Write-then-rename: a concurrent reader (another sweep point, a
    // crashed creator's successor) either sees the old complete file
    // or the new complete file, never a torn one.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open checkpoint file ", tmp, " for writing");
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 std::streamsize(bytes.size()));
        if (!os)
            fatal("failed writing ", bytes.size(),
                  " bytes to checkpoint file ", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename checkpoint file ", tmp, " to ", path);
}

CheckpointSet
readCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open checkpoint file ", path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        fatal("failed reading checkpoint file ", path);
    return decodeCheckpoint(bytes, path);
}

std::string
describeCheckpoint(const CheckpointSet &set)
{
    std::size_t payloadBytes = 0;
    for (const CheckpointWindow &win : set.windows)
        payloadBytes += win.payload.size();
    std::ostringstream os;
    os << "windows:       " << set.windows.size() << "\n"
       << "state bytes:   " << payloadBytes << "\n"
       << "sample period: " << set.meta.samplePeriod << " (warmup "
       << set.meta.sampleWarmup << ", measure " << set.meta.sampleMeasure
       << ")\n"
       << "trace records: " << set.meta.traceRecords << "\n"
       << "trace sha256:  " << set.meta.traceSha256 << "\n"
       << "program hash:  " << set.meta.programSha256 << "\n"
       << "config hash:   " << set.meta.configSha256 << "\n"
       << "file sha256:   " << set.sha256 << "\n"
       << "provenance:    "
       << (set.meta.provenance.empty() ? "(none)"
                                       : set.meta.provenance)
       << "\n";
    return os.str();
}

} // namespace pipesim::replay
