/**
 * @file
 * One replayed machine instance (an exact run or one sampling
 * window): the real fetch unit and memory system driving the
 * surrogate backend (ReplayPipeline).
 *
 * Extracted from replay_engine.cc so the checkpoint store
 * (replay/checkpoint.hh) can snapshot and restore a warm machine:
 * saveState() serializes every timing-relevant component in a fixed
 * order and restoreState() rebuilds it on a fresh instance, including
 * re-binding the callbacks of in-flight memory requests (which cannot
 * be serialized) to the new machine's components.
 */

#ifndef PIPESIM_REPLAY_REPLAY_MACHINE_HH
#define PIPESIM_REPLAY_REPLAY_MACHINE_HH

#include <cstdint>
#include <memory>

#include "common/state_io.hh"
#include "common/stats.hh"
#include "core/fetch_unit.hh"
#include "mem/memory_system.hh"
#include "replay/replay_pipeline.hh"
#include "sim/config.hh"

namespace pipesim::replay
{

/**
 * The backing store is shared by the caller: replay timing is
 * value-independent, so sampling windows may reuse one DataMemory
 * instead of zeroing a fresh megabyte each (stale values from an
 * earlier window are harmless — only addresses reach the timing
 * model).
 */
struct ReplayMachine
{
    MemorySystem mem;
    std::unique_ptr<FetchUnit> fetch;
    ReplayPipeline pipe;
    StatGroup stats;
    Cycle now = 0;
    Cycle lastProgressCycle = 0;
    std::uint64_t lastRetired = 0;

    ReplayMachine(const SimConfig &config, const Program &program,
                  const Trace &trace, std::size_t firstRecord,
                  DataMemory &dataMem);

    /** Advance one cycle (fetch, memory, then the pipeline). */
    void step();

    bool done() const;

    /** @throws SimAbort on the cycle-limit or progress watchdogs. */
    void watchdogs(const SimConfig &config) const;

    /**
     * Serialize the machine's full warm state (clock, pipeline, fetch
     * unit, memory system).  The shared DataMemory's contents are NOT
     * included — the checkpoint store captures its dirty pages
     * separately, since the backing store outlives any one machine.
     */
    void saveState(StateWriter &w) const;

    /**
     * Restore state written by saveState() into this machine.  The
     * machine must have been constructed with the same config,
     * program, trace and firstRecord that produced the snapshot
     * (the checkpoint store's cache key enforces this).  In-flight
     * memory requests are re-bound to this machine's pipeline and
     * fetch unit by request class.
     */
    void restoreState(StateReader &r);
};

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_REPLAY_MACHINE_HH
