#include "replay/replay_machine.hh"

#include "common/abort.hh"
#include "core/fetch_factory.hh"
#include "mem/request.hh"
#include "sim/guard.hh"

namespace pipesim::replay
{

ReplayMachine::ReplayMachine(const SimConfig &config,
                             const Program &program, const Trace &trace,
                             std::size_t firstRecord, DataMemory &dataMem)
    : mem(config.mem, dataMem),
      fetch(makeFetchUnit(config.fetch, program, mem)),
      pipe(config.cpu, *fetch, mem, trace, firstRecord)
{
    // Match Simulator's registration order so reports line up.
    pipe.regStats(stats, "cpu");
    fetch->regStats(stats, "fetch");
    mem.regStats(stats, "mem");
}

void
ReplayMachine::step()
{
    fetch->tick(now);
    mem.tick(now);
    pipe.tick(now);
    if (pipe.instructionsRetired() != lastRetired) {
        lastRetired = pipe.instructionsRetired();
        lastProgressCycle = now;
    }
    ++now;
}

bool
ReplayMachine::done() const
{
    return pipe.halted() && pipe.drained() && mem.quiescent();
}

void
ReplayMachine::watchdogs(const SimConfig &config) const
{
    if (now > config.maxCycles)
        simAbort("trace replay exceeded ", config.maxCycles, " cycles");
    if (!pipe.halted() && now - lastProgressCycle > config.progressWindow)
        simAbort("trace replay: no instruction retired for ",
                 config.progressWindow,
                 " cycles: machine deadlocked at cycle ", now);
    // Host-side watchdogs, mirroring Simulator::checkWatchdogs: the
    // sweep's per-point wall-clock deadline and the guard's
    // SIGINT/SIGTERM flag (no snapshot machinery here — replay
    // failures report without forensics).
    if (config.cancelFlag &&
        config.cancelFlag->load(std::memory_order_relaxed))
        throw TimeoutAbort("abort: trace replay point exceeded its "
                           "wall-clock deadline (timeout): cancelled "
                           "at cycle " +
                           std::to_string(now));
    checkInterrupt();
}

void
ReplayMachine::saveState(StateWriter &w) const
{
    w.u64(now);
    w.u64(lastProgressCycle);
    w.u64(lastRetired);
    pipe.saveState(w);
    fetch->saveState(w);
    mem.saveState(w);
}

void
ReplayMachine::restoreState(StateReader &r)
{
    now = r.u64();
    lastProgressCycle = r.u64();
    lastRetired = r.u64();
    pipe.restoreState(r);
    fetch->restoreState(r);
    mem.restoreState(r, [this](MemRequest &req) {
        if (req.cls == ReqClass::Data)
            pipe.rebindDataRequest(req);
        else
            fetch->rebindRequest(req);
    });
}

} // namespace pipesim::replay
