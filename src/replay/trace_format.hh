/**
 * @file
 * The versioned binary trace format behind the trace-driven replay
 * engine (docs/trace_replay.md has the full specification).
 *
 * A trace records the committed instruction stream of one run: for
 * every retired instruction its fetch address, and — only where the
 * program image cannot supply them — the effective address of a
 * load/store and the resolved direction/target of a PBR.  Everything
 * else (opcode, operands, delay-slot counts) is re-derived at replay
 * time by decoding the program at the recorded pc.
 *
 * File layout (all integers little-endian):
 *
 *     header   magic "PIPETRC\0", u32 version, u32 reserved,
 *              u64 record count, u32 entry pc, u32 records/chunk,
 *              32-byte program SHA-256, u32 provenance length,
 *              provenance bytes (UTF-8, free form)
 *     chunks   u32 payload bytes, u32 CRC-32 of the payload,
 *              payload: delta/varint-encoded records
 *
 * Per record: one flag byte, then a zigzag-varint pc delta from the
 * previous record's pc (the first record deltas from the entry pc);
 * if the flag byte marks a memory op, a zigzag-varint effective-
 * address delta from the previous memory op's address; if it marks a
 * PBR, a zigzag-varint target delta from the record's own pc.  Delta
 * state is reset at every chunk boundary so a corrupt chunk cannot
 * poison its neighbours' decode.
 *
 * Readers never trust the input: any structural inconsistency —
 * truncation, a bad magic/version, a CRC mismatch, varints running
 * past the chunk, trailing garbage — raises FatalError with a
 * diagnostic naming the offset, never a crash or hang.
 */

#ifndef PIPESIM_REPLAY_TRACE_FORMAT_HH
#define PIPESIM_REPLAY_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pipesim
{
class Program;
} // namespace pipesim

namespace pipesim::replay
{

/** Current (and only) format version. */
inline constexpr std::uint32_t traceFormatVersion = 1;

/** Records per chunk used by the encoder. */
inline constexpr std::uint32_t traceChunkRecords = 4096;

/** One committed instruction, with its timing-relevant outcomes. */
struct TraceRecord
{
    Addr pc = 0;
    bool hasMemAddr = false;  //!< load/store; memAddr is valid
    bool memIsStore = false;  //!< the op pushes the SAQ (else LAQ)
    Addr memAddr = 0;         //!< effective address
    bool isPbr = false;       //!< PBR; taken/target are valid
    bool branchTaken = false;
    Addr branchTarget = 0;

    bool operator==(const TraceRecord &other) const = default;
};

/** Trace identity and provenance, serialised in the header. */
struct TraceMeta
{
    Addr entry = 0;                 //!< pc fetching started at
    std::string programSha256;      //!< hex digest of the program image
    std::string provenance;         //!< free-form capture description
};

/** A fully decoded trace. */
struct Trace
{
    TraceMeta meta;
    std::vector<TraceRecord> records;

    /**
     * SHA-256 (hex) of the encoded byte stream; filled by
     * encodeTrace/decodeTrace/writeTrace/readTrace so results can be
     * attributed to an exact capture.
     */
    std::string sha256;
};

/**
 * Canonical fingerprint of a program image: SHA-256 over the format
 * mode, code base, entry, code bytes and every data segment.  Stored
 * in the trace header and re-checked at replay time.
 */
std::string programSha256(const Program &program);

/** CRC-32 (IEEE 802.3) of @p len bytes — the per-chunk checksum. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Encode @p trace; also refreshes trace.sha256. */
std::vector<std::uint8_t> encodeTrace(Trace &trace);

/**
 * Decode a trace from @p bytes.  @p name labels diagnostics (file
 * path or a test label).
 * @throws FatalError on any corruption or truncation.
 */
Trace decodeTrace(const std::vector<std::uint8_t> &bytes,
                  const std::string &name);

/** Encode and write @p trace to @p path (refreshes trace.sha256). */
void writeTrace(Trace &trace, const std::string &path);

/**
 * Read and decode the trace at @p path.
 * @throws FatalError when the file is unreadable or corrupt.
 */
Trace readTrace(const std::string &path);

/** One-line human-readable summary (the `pipesim-trace inspect`
 *  output): counts, hashes, provenance. */
std::string describeTrace(const Trace &trace);

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_TRACE_FORMAT_HH
