#include "replay/capture.hh"

#include "obs/profiler.hh"
#include "sim/simulator.hh"

namespace pipesim::replay
{

TraceCapture::TraceCapture(Simulator &sim, std::string provenance)
    : _bus(sim.probes())
{
    _trace.meta.entry = sim.program().entry();
    _trace.meta.programSha256 = programSha256(sim.program());
    _trace.meta.provenance = std::move(provenance);
    _id = _bus.retire.connect([this](const obs::RetireEvent &ev) {
        TraceRecord r;
        r.pc = ev.inst.pc;
        r.hasMemAddr = ev.hasMemAddr;
        r.memIsStore = ev.memIsStore;
        r.memAddr = ev.memAddr;
        r.isPbr = ev.hasBranch;
        r.branchTaken = ev.branchTaken;
        r.branchTarget = ev.branchTarget;
        _trace.records.push_back(r);
    });
}

TraceCapture::~TraceCapture()
{
    if (_connected)
        _bus.retire.disconnect(_id);
}

Trace
TraceCapture::finish()
{
    if (_connected) {
        _bus.retire.disconnect(_id);
        _connected = false;
    }
    encodeTrace(_trace); // refresh _trace.sha256
    return std::move(_trace);
}

Trace
captureTrace(const SimConfig &config, const Program &program,
             const std::string &provenance)
{
    obs::ScopedPhase phase("capture", obs::Scope::Coarse);
    Simulator sim(config, program);
    TraceCapture capture(sim, provenance);
    sim.run();
    return capture.finish();
}

} // namespace pipesim::replay
