/**
 * @file
 * The trace-driven surrogate backend: a cycle-exact timing mirror of
 * cpu/pipeline.hh that consumes trace annotations instead of
 * executing values.
 *
 * Why this is exact (docs/trace_replay.md spells out the argument):
 * the real pipeline's *timing* depends on data values through exactly
 * three channels — a PBR's resolved direction/target, a load/store's
 * effective address, and HALT.  The first two are recorded per
 * instruction in the trace; the third follows from the opcode.  Every
 * other value (ALU results, loaded data, FPU results) can be garbage
 * without perturbing a single cycle: register reads gate only on
 * busy-until timestamps, queue behaviour only on occupancy, the
 * memory system's latencies only on addresses.  The validation
 * harness (tests/test_replay.cc) enforces the mirror invariant
 * against the executing pipeline at every Livermore sweep point.
 *
 * The tick structure, hazard checks, queue updates and data-port
 * protocol below intentionally track Pipeline line for line; when
 * editing one, edit both.
 */

#ifndef PIPESIM_REPLAY_REPLAY_PIPELINE_HH
#define PIPESIM_REPLAY_REPLAY_PIPELINE_HH

#include <iosfwd>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/fetch_unit.hh"
#include "cpu/pipeline.hh"
#include "cpu/regfile.hh"
#include "isa/instruction.hh"
#include "mem/memory_system.hh"
#include "queue/arch_queues.hh"
#include "replay/trace_format.hh"

namespace pipesim::replay
{

class ReplayPipeline
{
  public:
    /**
     * @param trace  The captured run; records are consumed from
     *               @p firstRecord onward, one per issued instruction.
     * @param firstRecord Starting index (sampled replay restarts
     *               windows mid-trace; 0 for a full replay).
     */
    ReplayPipeline(const PipelineConfig &config, FetchUnit &fetch,
                   MemorySystem &mem, const Trace &trace,
                   std::size_t firstRecord = 0);
    ~ReplayPipeline();

    ReplayPipeline(const ReplayPipeline &) = delete;
    ReplayPipeline &operator=(const ReplayPipeline &) = delete;

    /** Advance one cycle (after the fetch and memory ticks). */
    void tick(Cycle now);

    bool halted() const { return _halted; }
    bool drained() const;
    Cycle haltCycle() const { return _haltCycle; }
    std::uint64_t instructionsRetired() const { return _retired.value(); }

    /** Index of the next unconsumed trace record. */
    std::size_t cursor() const { return _cursor; }

    /** @return true once every record in the trace was issued. */
    bool traceExhausted() const { return _cursor >= _trace.records.size(); }

    void regStats(StatGroup &stats, const std::string &prefix);
    void dumpState(std::ostream &os) const;

    /** Serialize the pipeline's full state for a checkpoint. */
    void saveState(StateWriter &w) const;

    /**
     * Restore state saved by saveState().  Latched instructions
     * carry their full decoding in the snapshot (a latch may hold a
     * speculatively fetched instruction from outside the code image,
     * squashed before execution, so the program cannot re-decode it).
     */
    void restoreState(StateReader &r);

    /**
     * Re-attach this pipeline's callbacks to an in-flight Data-class
     * request restored by MemorySystem::restoreState (mirrors the
     * binding in peekDataOp: loads deliver into the LDQ, stores have
     * no callbacks).
     */
    void rebindDataRequest(MemRequest &req);

  private:
    class DataPort : public MemClient
    {
      public:
        explicit DataPort(ReplayPipeline &owner) : _owner(owner) {}
        std::optional<MemRequest> peek() override;
        void accepted() override;

      private:
        ReplayPipeline &_owner;
    };

    enum class StallReason
    {
        None,
        RegBusy,
        LdqEmpty,
        SdqFull,
        LaqFull,
        LdqReserved,
        SaqFull,
    };

    StallReason issueHazard(const isa::Instruction &inst, Cycle now) const;
    void execute(const isa::FetchedInst &fi, Cycle now);
    const TraceRecord &recordFor(const isa::FetchedInst &fi);

    std::optional<MemRequest> peekDataOp();
    void dataOpAccepted();

    PipelineConfig _cfg;
    FetchUnit &_fetch;
    MemorySystem &_mem;
    const Trace &_trace;
    DataPort _dataPort;

    RegFile _regs;
    ArchQueues _queues;

    std::optional<isa::FetchedInst> _idLatch;
    std::optional<isa::FetchedInst> _issueLatch;

    struct Resolve
    {
        bool taken;
        Addr target;
    };
    std::optional<Resolve> _pendingResolve;

    bool _halted = false;
    Cycle _haltCycle = 0;
    std::size_t _cursor = 0;

    std::uint64_t _memOpSeq = 0;
    std::uint64_t _loadsAccepted = 0;
    std::uint64_t _loadsIssued = 0;
    std::uint64_t _loadsDelivered = 0;

    Counter _retired;
    Counter _issueStallRegBusy;
    Counter _issueStallLdqEmpty;
    Counter _issueStallSdqFull;
    Counter _issueStallLaqFull;
    Counter _issueStallLdqReserved;
    Counter _issueStallSaqFull;
    Counter _fetchStarveCycles;
    Counter _loads;
    Counter _stores;
    Counter _pbrTaken;
    Counter _pbrNotTaken;
};

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_REPLAY_PIPELINE_HH
