#include "replay/trace_format.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "assembler/program.hh"
#include "common/log.hh"
#include "common/sha256.hh"

namespace pipesim::replay
{

namespace
{

constexpr std::array<std::uint8_t, 8> kMagic = {'P', 'I', 'P', 'E',
                                                'T', 'R', 'C', '\0'};

// Record flag bits.
constexpr std::uint8_t kFlagMem = 1 << 0;
constexpr std::uint8_t kFlagStore = 1 << 1;
constexpr std::uint8_t kFlagPbr = 1 << 2;
constexpr std::uint8_t kFlagTaken = 1 << 3;
constexpr std::uint8_t kFlagsKnown =
    kFlagMem | kFlagStore | kFlagPbr | kFlagTaken;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t
zigzag(std::int64_t v)
{
    return std::uint32_t((v << 1) ^ (v >> 63));
}

std::int64_t
unzigzag(std::uint32_t v)
{
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(std::uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(std::uint8_t(v));
}

/** Signed delta between two 32-bit addresses, in [-2^31, 2^31). */
std::int64_t
addrDelta(Addr to, Addr from)
{
    return std::int64_t(std::int32_t(to - from));
}

/** Bounds-checked cursor over one byte buffer; all read failures
 *  funnel into FatalError with the buffer name and offset. */
class Reader
{
  public:
    Reader(const std::vector<std::uint8_t> &bytes, const std::string &name)
        : _bytes(bytes), _name(name)
    {
    }

    std::size_t pos() const { return _pos; }
    std::size_t remaining() const { return _bytes.size() - _pos; }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("trace ", _name, ": ", what, " (at byte offset ", _pos,
              " of ", _bytes.size(), ")");
    }

    const std::uint8_t *
    take(std::size_t n, const char *what)
    {
        if (remaining() < n)
            fail(std::string("truncated while reading ") + what);
        const std::uint8_t *p = _bytes.data() + _pos;
        _pos += n;
        return p;
    }

    std::uint8_t takeU8(const char *what) { return *take(1, what); }

    std::uint32_t
    takeU32(const char *what)
    {
        const std::uint8_t *p = take(4, what);
        return std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
               std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24;
    }

    std::uint64_t
    takeU64(const char *what)
    {
        const std::uint64_t lo = takeU32(what);
        const std::uint64_t hi = takeU32(what);
        return lo | hi << 32;
    }

    std::uint32_t
    takeVarint(const char *what)
    {
        std::uint32_t v = 0;
        for (unsigned shift = 0; shift < 35; shift += 7) {
            const std::uint8_t b = takeU8(what);
            v |= std::uint32_t(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
        }
        fail(std::string("overlong varint in ") + what);
    }

  private:
    const std::vector<std::uint8_t> &_bytes;
    std::string _name;
    std::size_t _pos = 0;
};

} // namespace

std::string
programSha256(const Program &program)
{
    Sha256 h;
    const std::uint32_t mode = std::uint32_t(program.mode());
    const std::uint32_t base = program.codeBase();
    const std::uint32_t entry = program.entry();
    h.update(&mode, sizeof(mode));
    h.update(&base, sizeof(base));
    h.update(&entry, sizeof(entry));
    h.update(program.code().data(), program.code().size());
    for (const auto &seg : program.dataSegments()) {
        const std::uint32_t segBase = seg.base;
        const std::uint64_t segLen = seg.bytes.size();
        h.update(&segBase, sizeof(segBase));
        h.update(&segLen, sizeof(segLen));
        h.update(seg.bytes.data(), seg.bytes.size());
    }
    return h.hexDigest();
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (unsigned k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t>
encodeTrace(Trace &trace)
{
    PIPESIM_ASSERT(trace.meta.programSha256.size() == 64,
                   "program hash must be 64 hex chars");
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    putU32(out, traceFormatVersion);
    putU32(out, 0); // reserved
    putU64(out, trace.records.size());
    putU32(out, trace.meta.entry);
    putU32(out, traceChunkRecords);
    for (unsigned i = 0; i < 64; i += 2) {
        const auto nibble = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9')
                return std::uint8_t(c - '0');
            PIPESIM_ASSERT(c >= 'a' && c <= 'f',
                           "program hash must be lower-case hex");
            return std::uint8_t(c - 'a' + 10);
        };
        out.push_back(
            std::uint8_t(nibble(trace.meta.programSha256[i]) << 4 |
                         nibble(trace.meta.programSha256[i + 1])));
    }
    putU32(out, std::uint32_t(trace.meta.provenance.size()));
    out.insert(out.end(), trace.meta.provenance.begin(),
               trace.meta.provenance.end());
    // Header checksum: the chunk CRCs only protect record payloads,
    // but a flipped header byte (entry pc, record count, hash) would
    // silently shift every decoded address.
    putU32(out, crc32(out.data(), out.size()));

    std::vector<std::uint8_t> payload;
    for (std::size_t base = 0; base < trace.records.size();
         base += traceChunkRecords) {
        const std::size_t count = std::min<std::size_t>(
            traceChunkRecords, trace.records.size() - base);
        payload.clear();
        Addr prevPc = trace.meta.entry;
        Addr prevMem = 0;
        for (std::size_t i = base; i < base + count; ++i) {
            const TraceRecord &r = trace.records[i];
            std::uint8_t flags = 0;
            if (r.hasMemAddr)
                flags |= kFlagMem;
            if (r.memIsStore)
                flags |= kFlagStore;
            if (r.isPbr)
                flags |= kFlagPbr;
            if (r.branchTaken)
                flags |= kFlagTaken;
            payload.push_back(flags);
            putVarint(payload, zigzag(addrDelta(r.pc, prevPc)));
            prevPc = r.pc;
            if (r.hasMemAddr) {
                putVarint(payload, zigzag(addrDelta(r.memAddr, prevMem)));
                prevMem = r.memAddr;
            }
            if (r.isPbr)
                putVarint(payload,
                          zigzag(addrDelta(r.branchTarget, r.pc)));
        }
        putU32(out, std::uint32_t(payload.size()));
        putU32(out, crc32(payload.data(), payload.size()));
        out.insert(out.end(), payload.begin(), payload.end());
    }

    trace.sha256 = sha256Hex(out);
    return out;
}

Trace
decodeTrace(const std::vector<std::uint8_t> &bytes, const std::string &name)
{
    Reader in(bytes, name);

    const std::uint8_t *magic = in.take(kMagic.size(), "magic");
    if (std::memcmp(magic, kMagic.data(), kMagic.size()) != 0)
        fatal("trace ", name, ": bad magic (not a pipesim trace file)");
    const std::uint32_t version = in.takeU32("version");
    if (version != traceFormatVersion)
        fatal("trace ", name, ": unsupported format version ", version,
              " (this build reads version ", traceFormatVersion, ")");
    in.takeU32("reserved field");
    const std::uint64_t recordCount = in.takeU64("record count");
    // A record costs at least 2 bytes encoded; anything claiming more
    // records than the file could hold is corrupt, and rejecting it
    // here bounds every allocation below.
    if (recordCount > bytes.size() / 2 + 1)
        fatal("trace ", name, ": record count ", recordCount,
              " impossible for a ", bytes.size(), "-byte file");

    Trace trace;
    trace.meta.entry = in.takeU32("entry pc");
    const std::uint32_t chunkRecords = in.takeU32("chunk size");
    if (chunkRecords == 0)
        fatal("trace ", name, ": zero records per chunk");
    const std::uint8_t *hash = in.take(32, "program hash");
    static const char hex[] = "0123456789abcdef";
    for (unsigned i = 0; i < 32; ++i) {
        trace.meta.programSha256 += hex[hash[i] >> 4];
        trace.meta.programSha256 += hex[hash[i] & 0xf];
    }
    const std::uint32_t provLen = in.takeU32("provenance length");
    if (provLen > in.remaining())
        in.fail("provenance length runs past end of file");
    const std::uint8_t *prov = in.take(provLen, "provenance");
    trace.meta.provenance.assign(prov, prov + provLen);
    const std::uint32_t headerCrcComputed = crc32(bytes.data(), in.pos());
    const std::uint32_t headerCrcStored = in.takeU32("header checksum");
    if (headerCrcStored != headerCrcComputed)
        fatal("trace ", name, ": header failed its checksum (stored ",
              headerCrcStored, ", computed ", headerCrcComputed,
              "): the file is corrupt");

    trace.records.reserve(recordCount);
    while (trace.records.size() < recordCount) {
        const std::size_t chunkStart = in.pos();
        const std::uint32_t payloadBytes = in.takeU32("chunk header");
        const std::uint32_t expectedCrc = in.takeU32("chunk checksum");
        if (payloadBytes > in.remaining())
            in.fail("chunk payload runs past end of file");
        const std::uint8_t *payload = in.take(payloadBytes, "chunk payload");
        const std::uint32_t actualCrc = crc32(payload, payloadBytes);
        if (actualCrc != expectedCrc)
            fatal("trace ", name, ": chunk at byte offset ", chunkStart,
                  " failed its checksum (stored ", expectedCrc,
                  ", computed ", actualCrc,
                  "): the file is corrupt");

        const std::size_t want = std::min<std::size_t>(
            chunkRecords, recordCount - trace.records.size());
        std::vector<std::uint8_t> chunk(payload, payload + payloadBytes);
        Reader rec(chunk, name + " (chunk at offset " +
                              std::to_string(chunkStart) + ")");
        Addr prevPc = trace.meta.entry;
        Addr prevMem = 0;
        for (std::size_t i = 0; i < want; ++i) {
            TraceRecord r;
            const std::uint8_t flags = rec.takeU8("record flags");
            if (flags & ~kFlagsKnown)
                rec.fail("unknown record flag bits set");
            r.hasMemAddr = flags & kFlagMem;
            r.memIsStore = flags & kFlagStore;
            r.isPbr = flags & kFlagPbr;
            r.branchTaken = flags & kFlagTaken;
            if (r.memIsStore && !r.hasMemAddr)
                rec.fail("store flag without a memory address");
            if (r.branchTaken && !r.isPbr)
                rec.fail("taken flag on a non-branch record");
            r.pc = Addr(std::int64_t(prevPc) +
                        unzigzag(rec.takeVarint("pc delta")));
            prevPc = r.pc;
            if (r.hasMemAddr) {
                r.memAddr =
                    Addr(std::int64_t(prevMem) +
                         unzigzag(rec.takeVarint("memory address delta")));
                prevMem = r.memAddr;
            }
            if (r.isPbr)
                r.branchTarget =
                    Addr(std::int64_t(r.pc) +
                         unzigzag(rec.takeVarint("branch target delta")));
            trace.records.push_back(r);
        }
        if (rec.remaining() != 0)
            fatal("trace ", name, ": chunk at byte offset ", chunkStart,
                  " has ", rec.remaining(),
                  " byte(s) of trailing garbage after its last record");
    }
    if (in.remaining() != 0)
        in.fail("trailing bytes after the last chunk");

    trace.sha256 = sha256Hex(bytes);
    return trace;
}

void
writeTrace(Trace &trace, const std::string &path)
{
    const std::vector<std::uint8_t> bytes = encodeTrace(trace);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open trace file ", path, " for writing");
    os.write(reinterpret_cast<const char *>(bytes.data()),
             std::streamsize(bytes.size()));
    if (!os)
        fatal("failed writing ", bytes.size(), " bytes to trace file ",
              path);
}

Trace
readTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file ", path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        fatal("failed reading trace file ", path);
    return decodeTrace(bytes, path);
}

std::string
describeTrace(const Trace &trace)
{
    std::uint64_t loads = 0, stores = 0, pbrs = 0, taken = 0;
    for (const TraceRecord &r : trace.records) {
        if (r.hasMemAddr)
            ++(r.memIsStore ? stores : loads);
        if (r.isPbr) {
            ++pbrs;
            if (r.branchTaken)
                ++taken;
        }
    }
    std::ostringstream os;
    os << "records:      " << trace.records.size() << "\n"
       << "entry pc:     0x" << std::hex << trace.meta.entry << std::dec
       << "\n"
       << "loads:        " << loads << "\n"
       << "stores:       " << stores << "\n"
       << "branches:     " << pbrs << " (" << taken << " taken)\n"
       << "program hash: " << trace.meta.programSha256 << "\n"
       << "trace sha256: " << trace.sha256 << "\n"
       << "provenance:   "
       << (trace.meta.provenance.empty() ? "(none)"
                                         : trace.meta.provenance)
       << "\n";
    return os.str();
}

} // namespace pipesim::replay
