/**
 * @file
 * PIPECKPT: the versioned binary live-points store behind
 * checkpointed sampled replay (docs/trace_replay.md has the full
 * specification).
 *
 * A checkpoint file caches the warm machine state of every sampling
 * window of one (trace, program, machine configuration, sampling
 * parameters) tuple: for each planned window, the complete serialized
 * state of the replayed machine at the end of the window's warm-up
 * (ReplayMachine::saveState) plus the shared DataMemory's dirty
 * pages.  A later sampled replay of the same tuple restores each
 * window from its snapshot and runs only the measured instructions —
 * the TurboSMARTSim "live-points" idea — making the windows
 * independent jobs that parallelize with bit-identical results.
 *
 * File layout (all integers little-endian, digests 32 raw bytes):
 *
 *     header   magic "PIPECKPT", u32 version, u32 reserved,
 *              trace SHA-256, program SHA-256, config SHA-256,
 *              u32 samplePeriod, u32 sampleWarmup, u32 sampleMeasure,
 *              u64 trace record count, u32 window count,
 *              u32 provenance length, provenance bytes (UTF-8),
 *              u32 CRC-32 of everything above
 *     windows  per window: u64 window index, u64 start record,
 *              u64 warm-end record, u32 payload bytes,
 *              u32 CRC-32 of the payload, payload (state_io stream)
 *     trailer  SHA-256 of everything above
 *
 * The three digests form the cache key: a checkpoint is only valid
 * for the exact trace, program image and machine configuration that
 * produced it, and the loader re-checks all three (plus the sampling
 * parameters) before any payload is trusted.  As with PIPETRC,
 * readers never trust the input: truncation, bad magic/version, CRC
 * or digest mismatches and trailing garbage all raise FatalError with
 * a diagnostic naming the offset.
 */

#ifndef PIPESIM_REPLAY_CHECKPOINT_HH
#define PIPESIM_REPLAY_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace pipesim::replay
{

/** Current (and only) checkpoint format version. */
inline constexpr std::uint32_t checkpointFormatVersion = 1;

/** Checkpoint identity: the cache key plus provenance. */
struct CheckpointMeta
{
    std::string traceSha256;   //!< hex digest of the encoded trace
    std::string programSha256; //!< hex digest of the program image
    std::string configSha256;  //!< hex digest of the machine config
    std::uint32_t samplePeriod = 0;
    std::uint32_t sampleWarmup = 0;
    std::uint32_t sampleMeasure = 0;
    std::uint64_t traceRecords = 0;
    std::string provenance; //!< free-form creation description
};

/** One window's warm snapshot. */
struct CheckpointWindow
{
    std::uint64_t index = 0;   //!< position in the window plan
    std::uint64_t start = 0;   //!< sync-point record the window began at
    std::uint64_t warmEnd = 0; //!< record the snapshot was taken at
    std::vector<std::uint8_t> payload; //!< state_io byte stream
};

/** A fully decoded checkpoint file. */
struct CheckpointSet
{
    CheckpointMeta meta;
    std::vector<CheckpointWindow> windows;

    /** SHA-256 (hex) of the encoded byte stream; filled by
     *  encode/decode/write/read so telemetry can name the file. */
    std::string sha256;
};

/**
 * Canonical fingerprint of the timing-relevant machine configuration:
 * SHA-256 over a fixed-order serialization of every FetchConfig,
 * MemSystemConfig and PipelineConfig field.  Two configs with equal
 * hashes replay any trace cycle-identically.
 */
std::string configSha256(const SimConfig &config);

/**
 * Canonical file path for @p config's checkpoints under @p dir:
 * `<dir>/ckpt-<first 16 hex chars of configSha256>.pipeckpt`.
 * One file per machine configuration keeps sweep points independent.
 */
std::string checkpointPath(const std::string &dir,
                           const SimConfig &config);

/** Encode @p set; also refreshes set.sha256. */
std::vector<std::uint8_t> encodeCheckpoint(CheckpointSet &set);

/**
 * Decode a checkpoint from @p bytes.  @p name labels diagnostics.
 * @throws FatalError on any corruption or truncation.
 */
CheckpointSet decodeCheckpoint(const std::vector<std::uint8_t> &bytes,
                               const std::string &name);

/**
 * Encode and atomically write @p set to @p path (temp file +
 * rename, so a crashed creator never leaves a half-written file
 * where a reader will find it).  Refreshes set.sha256.
 */
void writeCheckpoint(CheckpointSet &set, const std::string &path);

/**
 * Read and decode the checkpoint at @p path.
 * @throws FatalError when the file is unreadable or corrupt.
 */
CheckpointSet readCheckpoint(const std::string &path);

/** Human-readable summary (the `pipesim-trace checkpoint` inspect
 *  output): window count, sizes, hashes, provenance. */
std::string describeCheckpoint(const CheckpointSet &set);

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_CHECKPOINT_HH
