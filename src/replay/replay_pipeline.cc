#include "replay/replay_pipeline.hh"

#include <ostream>

#include "common/log.hh"
#include "isa/opcodes.hh"

namespace pipesim::replay
{

using isa::Cond;
using isa::Opcode;

namespace
{

/**
 * Opcodes whose execution produces an ALU result (the `result`
 * optional in Pipeline::execute()): these, and only these, write a
 * destination register or push the SDQ, so they are the ones whose
 * issue sets a busy-until timestamp.  Must track Pipeline::execute's
 * switch; the cross-engine validation tests catch drift.
 */
bool
producesAluResult(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Addi:
      case Opcode::Subi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Li:
      case Opcode::Lui:
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Neg:
        return true;
      default:
        return false;
    }
}

} // namespace

ReplayPipeline::ReplayPipeline(const PipelineConfig &config,
                               FetchUnit &fetch, MemorySystem &mem,
                               const Trace &trace,
                               std::size_t firstRecord)
    : _cfg(config), _fetch(fetch), _mem(mem), _trace(trace),
      _dataPort(*this),
      _queues(config.laqEntries, config.ldqEntries, config.saqEntries,
              config.sdqEntries),
      _cursor(firstRecord)
{
    _mem.setDataClient(&_dataPort);
}

ReplayPipeline::~ReplayPipeline()
{
    _mem.setDataClient(nullptr);
}

bool
ReplayPipeline::drained() const
{
    return _queues.laq().empty() && _queues.saq().empty() &&
           _queues.sdq().empty() && _loadsIssued == _loadsDelivered;
}

std::optional<MemRequest>
ReplayPipeline::peekDataOp()
{
    const auto &laq = _queues.laq();
    const auto &saq = _queues.saq();
    const bool have_load = !laq.empty();
    const bool have_store = !saq.empty();
    if (!have_load && !have_store)
        return std::nullopt;

    bool pick_load;
    if (have_load && have_store)
        pick_load = laq.front().seq < saq.front().seq;
    else
        pick_load = have_load;

    MemRequest req;
    req.cls = ReqClass::Data;
    req.bytes = wordBytes;
    if (pick_load) {
        req.addr = laq.front().addr;
        req.isStore = false;
        req.dataSeq = _loadsAccepted;
        req.onData = [this](Word) {
            PIPESIM_ASSERT(!_queues.ldq().full(),
                           "LDQ overflow: reservation logic broken");
            // The loaded value is timing-irrelevant; park a zero.
            _queues.ldq().push(0);
            ++_loadsDelivered;
        };
    } else {
        if (_queues.sdq().empty())
            return std::nullopt;
        req.addr = saq.front().addr;
        req.isStore = true;
        req.storeData = _queues.sdq().front();
    }
    return req;
}

void
ReplayPipeline::dataOpAccepted()
{
    auto &laq = _queues.laq();
    auto &saq = _queues.saq();
    const bool have_load = !laq.empty();
    const bool have_store = !saq.empty();
    PIPESIM_ASSERT(have_load || have_store, "acceptance with empty queues");
    bool pick_load;
    if (have_load && have_store)
        pick_load = laq.front().seq < saq.front().seq;
    else
        pick_load = have_load;

    if (pick_load) {
        laq.pop();
        ++_loadsAccepted;
    } else {
        saq.pop();
        _queues.sdq().pop();
    }
}

std::optional<MemRequest>
ReplayPipeline::DataPort::peek()
{
    return _owner.peekDataOp();
}

void
ReplayPipeline::DataPort::accepted()
{
    _owner.dataOpAccepted();
}

ReplayPipeline::StallReason
ReplayPipeline::issueHazard(const isa::Instruction &inst, Cycle now) const
{
    unsigned ldq_pops = 0;
    for (std::uint8_t r : inst.srcRegs()) {
        if (r == isa::queueReg) {
            ++ldq_pops;
        } else if (_regs.busyUntil(r) > now) {
            return StallReason::RegBusy;
        }
    }
    if (ldq_pops > _queues.ldq().size())
        return StallReason::LdqEmpty;
    if (inst.pushesSdq() && _queues.sdq().full())
        return StallReason::SdqFull;
    if (inst.isLoad()) {
        if (_queues.laq().full())
            return StallReason::LaqFull;
        const std::size_t in_flight = _loadsIssued - _loadsDelivered;
        if (_queues.ldq().size() - ldq_pops + in_flight + 1 >
            _queues.ldq().capacity())
            return StallReason::LdqReserved;
    }
    if (inst.isStore() && _queues.saq().full())
        return StallReason::SaqFull;
    return StallReason::None;
}

const TraceRecord &
ReplayPipeline::recordFor(const isa::FetchedInst &fi)
{
    if (_cursor >= _trace.records.size())
        fatal("trace replay: the fetch stream issued instruction #",
              _cursor, " at pc 0x", std::hex, fi.pc, std::dec,
              " but the trace holds only ", _trace.records.size(),
              " records — the trace does not match this program "
              "(capture provenance: ",
              _trace.meta.provenance.empty() ? "none"
                                             : _trace.meta.provenance,
              ")");
    const TraceRecord &r = _trace.records[_cursor];
    const isa::Instruction &inst = fi.inst;
    const bool mismatch =
        r.pc != fi.pc ||
        r.hasMemAddr != (inst.isLoad() || inst.isStore()) ||
        r.memIsStore != inst.isStore() || r.isPbr != inst.isPbr();
    if (mismatch)
        fatal("trace replay diverged at record #", _cursor,
              ": trace says pc 0x", std::hex, r.pc,
              " but the machine issued pc 0x", fi.pc, std::dec,
              " — the trace was captured from a different program "
              "(capture provenance: ",
              _trace.meta.provenance.empty() ? "none"
                                             : _trace.meta.provenance,
              ")");
    ++_cursor;
    return r;
}

void
ReplayPipeline::execute(const isa::FetchedInst &fi, Cycle now)
{
    const isa::Instruction &inst = fi.inst;
    const auto &info = isa::opcodeInfo(inst.op);
    const TraceRecord &rec = recordFor(fi);

    // Source reads: only the r7 pops matter (register values are
    // never consumed for timing); the hazard check already proved the
    // LDQ holds enough entries.
    for (std::uint8_t r : inst.srcRegs())
        if (r == isa::queueReg)
            _queues.ldq().pop();

    switch (inst.op) {
      case Opcode::Ld:
      case Opcode::LdX:
        _queues.laq().push(PendingAccess{_memOpSeq++, rec.memAddr});
        ++_loadsIssued;
        ++_loads;
        break;
      case Opcode::St:
      case Opcode::StX:
        _queues.saq().push(PendingAccess{_memOpSeq++, rec.memAddr});
        ++_stores;
        break;
      case Opcode::Lbr:
        break; // branch registers are bypassed by the trace targets
      case Opcode::Pbr:
        if (rec.branchTaken)
            ++_pbrTaken;
        else
            ++_pbrNotTaken;
        _pendingResolve = Resolve{rec.branchTaken, rec.branchTarget};
        break;
      case Opcode::Rsw:
        // Bank switches redirect which busy-until slots later reads
        // check, so they are timing-relevant.
        _regs.switchBanks();
        break;
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        _halted = true;
        _haltCycle = now;
        break;
      default:
        PIPESIM_ASSERT(producesAluResult(inst.op),
                       "unexecutable opcode in trace replay");
        break;
    }

    if (producesAluResult(inst.op) && info.hasRd) {
        if (inst.rd == isa::queueReg) {
            _queues.sdq().push(0); // value is timing-irrelevant
        } else {
            _regs.setBusyUntil(inst.rd, now + _cfg.aluLatency);
        }
    }
}

void
ReplayPipeline::tick(Cycle now)
{
    // Mirror of Pipeline::tick, step for step.
    if (_pendingResolve) {
        _fetch.branchResolved(_pendingResolve->taken,
                              _pendingResolve->target);
        _pendingResolve.reset();
    }

    _queues.sampleOccupancy();

    if (_halted) {
        // Drain phase: nothing issues.
    } else if (_issueLatch) {
        const StallReason hazard = issueHazard(_issueLatch->inst, now);
        switch (hazard) {
          case StallReason::None:
            execute(*_issueLatch, now);
            ++_retired;
            _issueLatch.reset();
            break;
          case StallReason::RegBusy:
            ++_issueStallRegBusy;
            break;
          case StallReason::LdqEmpty:
            ++_issueStallLdqEmpty;
            break;
          case StallReason::SdqFull:
            ++_issueStallSdqFull;
            break;
          case StallReason::LaqFull:
            ++_issueStallLaqFull;
            break;
          case StallReason::LdqReserved:
            ++_issueStallLdqReserved;
            break;
          case StallReason::SaqFull:
            ++_issueStallSaqFull;
            break;
        }
    }

    if (!_issueLatch && _idLatch) {
        _issueLatch = _idLatch;
        _idLatch.reset();
    }

    if (!_halted && !_idLatch) {
        if (_fetch.instructionReady())
            _idLatch = _fetch.take();
        else
            ++_fetchStarveCycles;
    }
}

void
ReplayPipeline::rebindDataRequest(MemRequest &req)
{
    // Mirror of peekDataOp's binding: loads deliver into the LDQ,
    // stores carry no callbacks.
    if (req.isStore)
        return;
    req.onData = [this](Word) {
        PIPESIM_ASSERT(!_queues.ldq().full(),
                       "LDQ overflow: reservation logic broken");
        _queues.ldq().push(0);
        ++_loadsDelivered;
    };
}

namespace
{

/**
 * Latches serialize the full decoded instruction, not just the pc:
 * the fetch unit can run ahead of a taken branch or past the code
 * image and latch an instruction the pipeline will squash without
 * executing, so re-decoding from the Program on restore would reject
 * a state the live machine legitimately held.
 */
void
saveLatch(StateWriter &w, const std::optional<isa::FetchedInst> &latch)
{
    w.b(latch.has_value());
    if (!latch)
        return;
    w.u32(latch->pc);
    const isa::Instruction &i = latch->inst;
    w.u8(std::uint8_t(i.op));
    w.u8(i.rd);
    w.u8(i.rs1);
    w.u8(i.rs2);
    w.u8(i.br);
    w.u8(i.count);
    w.u8(std::uint8_t(i.cond));
    w.u32(std::uint32_t(i.imm));
    w.u8(i.parcels);
}

void
restoreLatch(StateReader &r, std::optional<isa::FetchedInst> &latch)
{
    latch.reset();
    if (!r.b())
        return;
    isa::FetchedInst fi;
    fi.pc = r.u32();
    const std::uint8_t op = r.u8();
    if (op >= std::uint8_t(isa::Opcode::NumOpcodes))
        r.fail("latched opcode ", unsigned(op), " out of range");
    fi.inst.op = isa::Opcode(op);
    fi.inst.rd = r.u8();
    fi.inst.rs1 = r.u8();
    fi.inst.rs2 = r.u8();
    fi.inst.br = r.u8();
    fi.inst.count = r.u8();
    const std::uint8_t cond = r.u8();
    if (cond > std::uint8_t(isa::Cond::Lez))
        r.fail("latched condition ", unsigned(cond), " out of range");
    fi.inst.cond = isa::Cond(cond);
    fi.inst.imm = std::int32_t(r.u32());
    fi.inst.parcels = r.u8();
    latch = fi;
}

} // namespace

void
ReplayPipeline::saveState(StateWriter &w) const
{
    _regs.saveState(w);
    _queues.saveState(w);
    saveLatch(w, _idLatch);
    saveLatch(w, _issueLatch);
    w.b(_pendingResolve.has_value());
    if (_pendingResolve) {
        w.b(_pendingResolve->taken);
        w.u32(_pendingResolve->target);
    }
    w.b(_halted);
    w.u64(_haltCycle);
    w.u64(_cursor);
    w.u64(_memOpSeq);
    w.u64(_loadsAccepted);
    w.u64(_loadsIssued);
    w.u64(_loadsDelivered);
    w.u64(_retired.value());
    w.u64(_issueStallRegBusy.value());
    w.u64(_issueStallLdqEmpty.value());
    w.u64(_issueStallSdqFull.value());
    w.u64(_issueStallLaqFull.value());
    w.u64(_issueStallLdqReserved.value());
    w.u64(_issueStallSaqFull.value());
    w.u64(_fetchStarveCycles.value());
    w.u64(_loads.value());
    w.u64(_stores.value());
    w.u64(_pbrTaken.value());
    w.u64(_pbrNotTaken.value());
}

void
ReplayPipeline::restoreState(StateReader &r)
{
    _regs.restoreState(r);
    _queues.restoreState(r);
    restoreLatch(r, _idLatch);
    restoreLatch(r, _issueLatch);
    _pendingResolve.reset();
    if (r.b()) {
        Resolve res;
        res.taken = r.b();
        res.target = r.u32();
        _pendingResolve = res;
    }
    _halted = r.b();
    _haltCycle = r.u64();
    _cursor = r.u64();
    if (_cursor > _trace.records.size())
        r.fail("cursor ", _cursor, " past trace end");
    _memOpSeq = r.u64();
    _loadsAccepted = r.u64();
    _loadsIssued = r.u64();
    _loadsDelivered = r.u64();
    _retired.set(r.u64());
    _issueStallRegBusy.set(r.u64());
    _issueStallLdqEmpty.set(r.u64());
    _issueStallSdqFull.set(r.u64());
    _issueStallLaqFull.set(r.u64());
    _issueStallLdqReserved.set(r.u64());
    _issueStallSaqFull.set(r.u64());
    _fetchStarveCycles.set(r.u64());
    _loads.set(r.u64());
    _stores.set(r.u64());
    _pbrTaken.set(r.u64());
    _pbrNotTaken.set(r.u64());
}

void
ReplayPipeline::dumpState(std::ostream &os) const
{
    os << "replay pipeline: " << (_halted ? "halted" : "running")
       << ", retired " << _retired.value() << " instruction(s), next "
       << "trace record #" << _cursor << " of "
       << _trace.records.size() << "\n";
    os << "  queues: laq " << _queues.laq().size() << "/"
       << _queues.laq().capacity() << ", ldq " << _queues.ldq().size()
       << "/" << _queues.ldq().capacity() << ", saq "
       << _queues.saq().size() << "/" << _queues.saq().capacity()
       << ", sdq " << _queues.sdq().size() << "/"
       << _queues.sdq().capacity() << "\n";
    os << "  loads issued/accepted/delivered: " << _loadsIssued << "/"
       << _loadsAccepted << "/" << _loadsDelivered << "\n";
}

void
ReplayPipeline::regStats(StatGroup &stats, const std::string &prefix)
{
    // Counter names match cpu/pipeline.cc exactly, so a replayed
    // SimResult is key-compatible with the cycle simulator's.
    stats.regCounter(prefix + ".retired", &_retired,
                     "instructions issued/retired");
    stats.regCounter(prefix + ".stall_reg_busy", &_issueStallRegBusy,
                     "issue stalls on a busy register");
    stats.regCounter(prefix + ".stall_ldq_empty", &_issueStallLdqEmpty,
                     "issue stalls waiting for load data (r7)");
    stats.regCounter(prefix + ".stall_sdq_full", &_issueStallSdqFull,
                     "issue stalls on a full store data queue");
    stats.regCounter(prefix + ".stall_laq_full", &_issueStallLaqFull,
                     "issue stalls on a full load address queue");
    stats.regCounter(prefix + ".stall_ldq_reserved",
                     &_issueStallLdqReserved,
                     "issue stalls with no LDQ slot to reserve");
    stats.regCounter(prefix + ".stall_saq_full", &_issueStallSaqFull,
                     "issue stalls on a full store address queue");
    stats.regCounter(prefix + ".fetch_starve_cycles", &_fetchStarveCycles,
                     "cycles the decoder had no instruction available");
    stats.regCounter(prefix + ".loads", &_loads, "load instructions");
    stats.regCounter(prefix + ".stores", &_stores, "store instructions");
    stats.regCounter(prefix + ".pbr_taken", &_pbrTaken,
                     "prepare-to-branch instructions taken");
    stats.regCounter(prefix + ".pbr_not_taken", &_pbrNotTaken,
                     "prepare-to-branch instructions not taken");
    _queues.regStats(stats, prefix + ".queues");
}

} // namespace pipesim::replay
