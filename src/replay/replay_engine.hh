/**
 * @file
 * Trace-driven simulation: replay a captured instruction stream
 * through any machine configuration, without executing values.
 *
 * Two modes (docs/trace_replay.md documents the guarantees):
 *
 *  - Exact (samplePeriod == 0): a cycle-driven run with the real
 *    fetch unit and memory system and a surrogate backend
 *    (ReplayPipeline).  Miss counts, stall counters and the cycle
 *    count are bit-exact against Simulator for the same config —
 *    enforced by tests/test_replay.cc across the full Livermore
 *    sweep grid.
 *
 *  - Sampled (samplePeriod > 0): SMARTS-style systematic sampling.
 *    Every samplePeriod instructions a fresh machine replays
 *    sampleWarmup instructions of detailed warm-up followed by
 *    sampleMeasure measured instructions; the run's CPI is estimated
 *    from the measured windows and the total cycle count
 *    extrapolated.  Windows begin only at architectural sync points
 *    (no load data or store data crossing the window boundary), so a
 *    window can never deadlock on queue state it did not observe.
 */

#ifndef PIPESIM_REPLAY_REPLAY_ENGINE_HH
#define PIPESIM_REPLAY_REPLAY_ENGINE_HH

#include "replay/trace_format.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace pipesim::replay
{

/** How to replay; default is the exact mode. */
struct ReplayOptions
{
    /**
     * Sampling period in instructions; 0 selects the exact mode.
     * Must be >= sampleWarmup + sampleMeasure when nonzero.
     */
    unsigned samplePeriod = 0;
    unsigned sampleWarmup = 300;  //!< detailed warm-up per window
    unsigned sampleMeasure = 700; //!< measured instructions per window
};

/**
 * Replay @p trace through the machine described by @p config.
 *
 * The result's counters use the same names as the cycle simulator's;
 * result.meta records the engine, the trace and program hashes, and
 * (when sampling) the window parameters and the CPI confidence
 * interval.
 *
 * @throws FatalError when the trace was not captured from @p program
 *         (hash mismatch or per-record divergence) or when fault
 *         injection is requested (replay has no fault injector).
 * @throws SimAbort on the same watchdogs as the cycle simulator.
 */
SimResult replayTrace(const SimConfig &config, const Program &program,
                      const Trace &trace,
                      const ReplayOptions &options = {});

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_REPLAY_ENGINE_HH
