/**
 * @file
 * Trace-driven simulation: replay a captured instruction stream
 * through any machine configuration, without executing values.
 *
 * Two modes (docs/trace_replay.md documents the guarantees):
 *
 *  - Exact (samplePeriod == 0): a cycle-driven run with the real
 *    fetch unit and memory system and a surrogate backend
 *    (ReplayPipeline).  Miss counts, stall counters and the cycle
 *    count are bit-exact against Simulator for the same config —
 *    enforced by tests/test_replay.cc across the full Livermore
 *    sweep grid.
 *
 *  - Sampled (samplePeriod > 0): SMARTS-style systematic sampling.
 *    Every samplePeriod instructions a fresh machine replays
 *    sampleWarmup instructions of detailed warm-up followed by
 *    sampleMeasure measured instructions; the run's CPI is estimated
 *    from the measured windows and the total cycle count
 *    extrapolated.  Windows begin only at architectural sync points
 *    (no load data or store data crossing the window boundary), so a
 *    window can never deadlock on queue state it did not observe.
 *
 * Sampled replay is plan/execute split: planSampleWindows() first
 * enumerates the (deduplicated) measurement windows, then the windows
 * run as independent jobs — serially, on a thread pool (jobs > 1), or
 * restored from a live-points checkpoint (replay/checkpoint.hh) that
 * skips the warm-up entirely.  Results accumulate in plan order, so
 * every execution strategy produces bit-identical estimates.
 */

#ifndef PIPESIM_REPLAY_REPLAY_ENGINE_HH
#define PIPESIM_REPLAY_REPLAY_ENGINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "replay/trace_format.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace pipesim::replay
{

/** How to replay; default is the exact mode. */
struct ReplayOptions
{
    /**
     * Sampling period in instructions; 0 selects the exact mode.
     * Must be >= sampleWarmup + sampleMeasure when nonzero.
     */
    unsigned samplePeriod = 0;
    unsigned sampleWarmup = 300;  //!< detailed warm-up per window
    unsigned sampleMeasure = 700; //!< measured instructions per window

    /**
     * Worker threads for sampled windows (0 resolves like --jobs:
     * PIPESIM_JOBS, then hardware concurrency).  Results are
     * bit-identical for any value; 1 keeps the single-threaded path
     * that shares one DataMemory across windows.  Ignored by the
     * exact mode and forced to 1 while creating checkpoints.
     */
    unsigned jobs = 1;

    /**
     * Live-points checkpoint directory (replay/checkpoint.hh).
     * Empty disables checkpointing.  Non-empty with ckptCreate runs
     * the serial sampled pass and saves every window's warm state;
     * non-empty without ckptCreate requires a matching checkpoint
     * file and replays only the measured instructions of each window.
     */
    std::string ckptDir;
    bool ckptCreate = false;
};

/**
 * One planned sampling window, in trace record indices:
 * [start, warmEnd) is detailed warm-up, [warmEnd, measureEnd) is
 * measured.  start is always a sync point.
 */
struct SampleWindow
{
    std::size_t start = 0;
    std::size_t warmEnd = 0;
    std::size_t measureEnd = 0;

    bool operator==(const SampleWindow &other) const = default;
};

/**
 * Record indices where a fresh machine can pick up the trace without
 * depending on state produced before the cut: the architectural
 * queues are provably empty, no FPU operation is in flight, and the
 * index is not inside a taken PBR's delay-slot shadow.
 */
std::vector<std::size_t> computeSyncPoints(const Program &program,
                                           const Trace &trace);

/**
 * Enumerate the sampling windows for a trace of @p totalRecords
 * records: each period target rounds up to the next sync point, warm
 * and measured spans clamp to the trace end, and a target that lands
 * on an already-planned sync point is dropped (sparse sync points
 * would otherwise measure the same window twice, double-weighting it
 * in the CPI estimator).  Pure function of its arguments — the same
 * plan drives serial, pooled and checkpointed execution.
 */
std::vector<SampleWindow>
planSampleWindows(std::size_t totalRecords,
                  const std::vector<std::size_t> &syncPoints,
                  const ReplayOptions &opt);

/**
 * Replay @p trace through the machine described by @p config.
 *
 * The result's counters use the same names as the cycle simulator's;
 * result.meta records the engine, the trace and program hashes, and
 * (when sampling) the window parameters and the CPI confidence
 * interval ("n/a" when fewer than two windows were measured).
 *
 * @throws FatalError when the trace was not captured from @p program
 *         (hash mismatch or per-record divergence), when fault
 *         injection is requested (replay has no fault injector), or
 *         when a requested checkpoint is missing, corrupt or keyed to
 *         a different (trace, program, config, sampling) tuple.
 * @throws SimAbort on the same watchdogs as the cycle simulator.
 */
SimResult replayTrace(const SimConfig &config, const Program &program,
                      const Trace &trace,
                      const ReplayOptions &options = {});

} // namespace pipesim::replay

#endif // PIPESIM_REPLAY_REPLAY_ENGINE_HH
