#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/simulator.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;
using workloads::BranchyReference;
using workloads::BranchySpec;
using workloads::buildBranchyProgram;
using workloads::runBranchyReference;

namespace
{

/** Run @p spec under @p cfg and compare against the host model. */
void
runAndVerify(const BranchySpec &spec, SimConfig cfg,
             SimResult *out = nullptr)
{
    const auto built = buildBranchyProgram(spec);
    const BranchyReference ref = runBranchyReference(spec);
    cfg.progressWindow = 200000;
    Simulator sim(cfg, built.program);
    const auto res = sim.run();
    EXPECT_EQ(sim.dataMemory().readWord(built.accSlot), ref.acc);
    EXPECT_EQ(sim.dataMemory().readWord(built.stateSlot), ref.state);
    // PBR accounting: block branches plus the outer loop's.
    EXPECT_EQ(res.counter("cpu.pbr_taken"),
              ref.takenBranches + spec.iterations - 1);
    EXPECT_EQ(res.counter("cpu.pbr_not_taken"),
              ref.notTakenBranches + 1);
    if (out)
        *out = res;
}

} // namespace

TEST(Synthetic, ReferenceIsDeterministic)
{
    BranchySpec spec;
    const auto a = runBranchyReference(spec);
    const auto b = runBranchyReference(spec);
    EXPECT_EQ(a.acc, b.acc);
    EXPECT_EQ(a.state, b.state);
    EXPECT_GT(a.takenBranches, 0u);
    EXPECT_GT(a.notTakenBranches, 0u);
}

TEST(Synthetic, MaskBitsControlSelectivity)
{
    BranchySpec even;
    even.maskBits = 1;
    even.iterations = 200;
    const auto r1 = runBranchyReference(even);
    const double frac1 = double(r1.takenBranches) /
                         double(r1.takenBranches + r1.notTakenBranches);
    EXPECT_NEAR(frac1, 0.5, 0.1);

    BranchySpec rare = even;
    rare.maskBits = 3;
    const auto r3 = runBranchyReference(rare);
    const double frac3 = double(r3.takenBranches) /
                         double(r3.takenBranches + r3.notTakenBranches);
    EXPECT_NEAR(frac3, 0.125, 0.06);

    BranchySpec always = even;
    always.maskBits = 0;
    const auto r0 = runBranchyReference(always);
    EXPECT_EQ(r0.notTakenBranches, 0u);
}

TEST(Synthetic, MachineMatchesHostOnDefaultSpec)
{
    BranchySpec spec;
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    runAndVerify(spec, cfg);
}

class SyntheticStrategies : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SyntheticStrategies, MatchesHostModel)
{
    BranchySpec spec;
    spec.blocks = 6;
    spec.iterations = 40;
    spec.delaySlots = 3;
    SimConfig cfg;
    const std::string strategy = GetParam();
    if (strategy == "conv")
        cfg.fetch = conventionalConfigFor(64, 16);
    else if (strategy == "tib")
        cfg.fetch = tibConfigFor(64, 16);
    else
        cfg.fetch = pipeConfigFor(strategy, 64);
    cfg.mem.accessTime = 6;
    cfg.mem.busWidthBytes = 4;
    runAndVerify(spec, cfg);
}

INSTANTIATE_TEST_SUITE_P(All, SyntheticStrategies,
                         ::testing::Values("conv", "tib", "8-8",
                                           "16-16", "16-32", "32-32"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = 'x';
                             return name;
                         });

class SyntheticShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(SyntheticShapes, MatchesHostModel)
{
    const auto &[slots, mask] = GetParam();
    BranchySpec spec;
    spec.blocks = 5;
    spec.iterations = 30;
    spec.delaySlots = slots;
    spec.maskBits = mask;
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.mem.accessTime = 3;
    runAndVerify(spec, cfg);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SyntheticShapes,
                         ::testing::Combine(::testing::Values(0u, 1u,
                                                              4u, 7u),
                                            ::testing::Values(0u, 1u,
                                                              2u)));

TEST(Synthetic, GuaranteedOnlyPolicyCorrectOnBranchyCode)
{
    BranchySpec spec;
    spec.delaySlots = 1;
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.fetch.offchipPolicy = OffchipPolicy::GuaranteedOnly;
    cfg.mem.accessTime = 6;
    SimResult res;
    runAndVerify(spec, cfg, &res);
    // Branchy code with shallow slots actually exercises the gate.
    EXPECT_GT(res.counter("fetch.blocked_on_guarantee"), 0u);
}

TEST(Synthetic, SpecValidation)
{
    BranchySpec bad;
    bad.blocks = 0;
    EXPECT_THROW(buildBranchyProgram(bad), FatalError);
    bad = BranchySpec{};
    bad.delaySlots = 8;
    EXPECT_THROW(buildBranchyProgram(bad), FatalError);
    bad = BranchySpec{};
    bad.seed = 0;
    EXPECT_THROW(runBranchyReference(bad), FatalError);
}

TEST(Synthetic, MoreBlocksMeanMoreInstructions)
{
    BranchySpec small;
    small.blocks = 2;
    BranchySpec big;
    big.blocks = 12;
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 512);
    const auto built_small = buildBranchyProgram(small);
    const auto built_big = buildBranchyProgram(big);
    const auto rs = runSimulation(cfg, built_small.program);
    const auto rb = runSimulation(cfg, built_big.program);
    EXPECT_GT(rb.instructions, rs.instructions);
}

TEST(SyntheticStream, InstructionCountIsExact)
{
    const auto stream = workloads::buildSyntheticStream(5000);
    EXPECT_GE(stream.instructions, 5000u);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    Simulator sim(cfg, stream.program);
    const auto res = sim.run();
    EXPECT_EQ(res.instructions, stream.instructions);
    EXPECT_EQ(sim.dataMemory().readWord(stream.accSlot),
              workloads::syntheticStreamReference(stream.iterations));
}

TEST(SyntheticStream, TinyTargetStillRunsOneIteration)
{
    const auto stream = workloads::buildSyntheticStream(1);
    EXPECT_EQ(stream.iterations, 1u);
    SimConfig cfg;
    const auto res = runSimulation(cfg, stream.program);
    EXPECT_EQ(res.instructions, stream.instructions);
}

TEST(SyntheticStream, ZeroTargetIsFatal)
{
    EXPECT_THROW(workloads::buildSyntheticStream(0), FatalError);
}
