#include <gtest/gtest.h>

#include "common/log.hh"

#include "cpu/regfile.hh"

using namespace pipesim;

TEST(RegFileTest, ReadWriteDataRegisters)
{
    RegFile rf;
    rf.write(0, 11);
    rf.write(6, 66);
    EXPECT_EQ(rf.read(0), 11u);
    EXPECT_EQ(rf.read(6), 66u);
    EXPECT_EQ(rf.read(3), 0u);
}

TEST(RegFileTest, BankSwitchIsolatesValues)
{
    RegFile rf;
    rf.write(2, 100);
    rf.switchBanks();
    EXPECT_EQ(rf.read(2), 0u);
    rf.write(2, 200);
    rf.switchBanks();
    EXPECT_EQ(rf.read(2), 100u);
    rf.switchBanks();
    EXPECT_EQ(rf.read(2), 200u);
}

TEST(RegFileTest, BusyTracking)
{
    RegFile rf;
    EXPECT_EQ(rf.busyUntil(1), 0u);
    rf.setBusyUntil(1, 42);
    EXPECT_EQ(rf.busyUntil(1), 42u);
    // Busy state is per bank too.
    rf.switchBanks();
    EXPECT_EQ(rf.busyUntil(1), 0u);
}

TEST(RegFileTest, BranchRegisters)
{
    RegFile rf;
    rf.writeBranch(0, 0x40);
    rf.writeBranch(7, 0x80);
    EXPECT_EQ(rf.readBranch(0), 0x40u);
    EXPECT_EQ(rf.readBranch(7), 0x80u);
    // Branch registers are not banked.
    rf.switchBanks();
    EXPECT_EQ(rf.readBranch(0), 0x40u);
}

TEST(RegFileTest, ResetClearsEverything)
{
    RegFile rf;
    rf.write(1, 5);
    rf.writeBranch(1, 9);
    rf.setBusyUntil(1, 100);
    rf.switchBanks();
    rf.reset();
    EXPECT_EQ(rf.read(1), 0u);
    EXPECT_EQ(rf.readBranch(1), 0u);
    EXPECT_EQ(rf.busyUntil(1), 0u);
    EXPECT_EQ(rf.currentBank(), 0u);
}

TEST(RegFileTest, BadRegisterPanics)
{
    RegFile rf;
    EXPECT_THROW(rf.read(8), PanicError);
    EXPECT_THROW(rf.write(9, 0), PanicError);
    EXPECT_THROW(rf.readBranch(8), PanicError);
}
