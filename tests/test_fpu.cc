#include <gtest/gtest.h>

#include "common/log.hh"

#include <bit>
#include <cmath>

#include "mem/fpu.hh"

using namespace pipesim;

namespace
{

Word f2w(float f) { return std::bit_cast<Word>(f); }
float w2f(Word w) { return std::bit_cast<float>(w); }

MemRequest
readReq(FpuOp op, std::uint64_t seq)
{
    MemRequest req;
    req.addr = FpuDevice::opResult(op);
    req.bytes = wordBytes;
    req.cls = ReqClass::Data;
    req.dataSeq = seq;
    return req;
}

} // namespace

TEST(FpuAddressMap, WindowLayout)
{
    EXPECT_TRUE(FpuDevice::contains(FpuDevice::baseAddr));
    EXPECT_FALSE(FpuDevice::contains(FpuDevice::baseAddr - 4));
    EXPECT_FALSE(FpuDevice::contains(FpuDevice::baseAddr + 4 * 16));
    EXPECT_EQ(FpuDevice::opB(FpuOp::Add), FpuDevice::opA(FpuOp::Add) + 4);
    EXPECT_EQ(FpuDevice::opResult(FpuOp::Mul),
              FpuDevice::opA(FpuOp::Mul) + 8);
    // The window sits below 32 KiB so r0-relative addressing reaches it.
    EXPECT_LT(FpuDevice::baseAddr + 4 * 16, 0x8000u);
}

TEST(FpuDeviceTest, MultiplyAfterLatency)
{
    FpuDevice fpu(4);
    fpu.store(FpuDevice::opA(FpuOp::Mul), f2w(2.0f), 10);
    fpu.store(FpuDevice::opB(FpuOp::Mul), f2w(3.5f), 11);
    fpu.queueRead(readReq(FpuOp::Mul, 0), 11);
    EXPECT_FALSE(fpu.peekReady(14)); // 11 + 4 = 15
    auto ready = fpu.peekReady(15);
    ASSERT_TRUE(ready);
    EXPECT_FLOAT_EQ(w2f(ready->value), 7.0f);
    fpu.popReady(15);
    EXPECT_EQ(fpu.pendingReads(), 0u);
}

TEST(FpuDeviceTest, AllFourOperations)
{
    FpuDevice fpu(1);
    struct Case { FpuOp op; float a, b, expect; };
    const Case cases[] = {
        {FpuOp::Add, 1.5f, 2.25f, 3.75f},
        {FpuOp::Sub, 1.5f, 2.25f, -0.75f},
        {FpuOp::Mul, 1.5f, 2.0f, 3.0f},
        {FpuOp::Div, 3.0f, 2.0f, 1.5f},
    };
    std::uint64_t seq = 0;
    for (const Case &c : cases) {
        fpu.store(FpuDevice::opA(c.op), f2w(c.a), 0);
        fpu.store(FpuDevice::opB(c.op), f2w(c.b), 0);
        fpu.queueRead(readReq(c.op, seq++), 0);
        auto ready = fpu.peekReady(1);
        ASSERT_TRUE(ready);
        EXPECT_FLOAT_EQ(w2f(ready->value), c.expect);
        fpu.popReady(1);
    }
}

TEST(FpuDeviceTest, ALatchPersistsAcrossOperations)
{
    FpuDevice fpu(1);
    fpu.store(FpuDevice::opA(FpuOp::Mul), f2w(10.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Mul), f2w(2.0f), 0);
    // Second op reuses the A latch.
    fpu.store(FpuDevice::opB(FpuOp::Mul), f2w(3.0f), 0);
    fpu.queueRead(readReq(FpuOp::Mul, 0), 0);
    fpu.queueRead(readReq(FpuOp::Mul, 1), 0);
    auto r0 = fpu.peekReady(1);
    ASSERT_TRUE(r0);
    EXPECT_FLOAT_EQ(w2f(r0->value), 20.0f);
    fpu.popReady(1);
    auto r1 = fpu.peekReady(1);
    ASSERT_TRUE(r1);
    EXPECT_FLOAT_EQ(w2f(r1->value), 30.0f);
}

TEST(FpuDeviceTest, PipelinedSameKindResultsFifo)
{
    FpuDevice fpu(4);
    fpu.store(FpuDevice::opA(FpuOp::Add), f2w(1.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Add), f2w(1.0f), 0); // ready at 4
    fpu.store(FpuDevice::opA(FpuOp::Add), f2w(2.0f), 1);
    fpu.store(FpuDevice::opB(FpuOp::Add), f2w(2.0f), 1); // ready at 5
    fpu.queueRead(readReq(FpuOp::Add, 0), 1);
    fpu.queueRead(readReq(FpuOp::Add, 1), 1);
    auto r0 = fpu.peekReady(10);
    ASSERT_TRUE(r0);
    EXPECT_FLOAT_EQ(w2f(r0->value), 2.0f);
    EXPECT_EQ(r0->req.dataSeq, 0u);
    fpu.popReady(10);
    auto r1 = fpu.peekReady(10);
    ASSERT_TRUE(r1);
    EXPECT_FLOAT_EQ(w2f(r1->value), 4.0f);
}

TEST(FpuDeviceTest, ReadBlocksUntilResultReady)
{
    FpuDevice fpu(4);
    // Read queued before the operation even starts.
    fpu.queueRead(readReq(FpuOp::Sub, 0), 0);
    EXPECT_FALSE(fpu.peekReady(100));
    fpu.store(FpuDevice::opA(FpuOp::Sub), f2w(5.0f), 100);
    fpu.store(FpuDevice::opB(FpuOp::Sub), f2w(3.0f), 100);
    EXPECT_FALSE(fpu.peekReady(103));
    auto ready = fpu.peekReady(104);
    ASSERT_TRUE(ready);
    EXPECT_FLOAT_EQ(w2f(ready->value), 2.0f);
}

TEST(FpuDeviceTest, OldestDataSeqWinsAcrossKinds)
{
    FpuDevice fpu(1);
    fpu.store(FpuDevice::opA(FpuOp::Add), f2w(1.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Add), f2w(1.0f), 0);
    fpu.store(FpuDevice::opA(FpuOp::Mul), f2w(2.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Mul), f2w(2.0f), 0);
    // The mul read is older in program order.
    fpu.queueRead(readReq(FpuOp::Mul, 3), 0);
    fpu.queueRead(readReq(FpuOp::Add, 7), 0);
    auto ready = fpu.peekReady(2);
    ASSERT_TRUE(ready);
    EXPECT_EQ(ready->req.dataSeq, 3u);
}

TEST(FpuDeviceTest, StoreToResultAddressIsFatal)
{
    FpuDevice fpu(1);
    EXPECT_THROW(fpu.store(FpuDevice::opResult(FpuOp::Add), 0, 0),
                 FatalError);
}

TEST(FpuDeviceTest, LoadFromOperandAddressIsFatal)
{
    FpuDevice fpu(1);
    MemRequest req;
    req.addr = FpuDevice::opA(FpuOp::Add);
    EXPECT_THROW(fpu.queueRead(req, 0), FatalError);
}

TEST(FpuDeviceTest, DivisionByZeroGivesInfinity)
{
    FpuDevice fpu(1);
    fpu.store(FpuDevice::opA(FpuOp::Div), f2w(1.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Div), f2w(0.0f), 0);
    fpu.queueRead(readReq(FpuOp::Div, 0), 0);
    auto ready = fpu.peekReady(1);
    ASSERT_TRUE(ready);
    EXPECT_TRUE(std::isinf(w2f(ready->value)));
}

TEST(FpuDeviceTest, StatsCountOpsAndReturns)
{
    FpuDevice fpu(1);
    StatGroup stats;
    fpu.regStats(stats, "fpu");
    fpu.store(FpuDevice::opA(FpuOp::Add), f2w(1.0f), 0);
    fpu.store(FpuDevice::opB(FpuOp::Add), f2w(1.0f), 0);
    EXPECT_EQ(stats.counterValue("fpu.ops_started"), 1u);
    fpu.queueRead(readReq(FpuOp::Add, 0), 0);
    fpu.popReady(1);
    EXPECT_EQ(stats.counterValue("fpu.results_returned"), 1u);
}
