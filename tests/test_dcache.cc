#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

/** Re-load the same word many times; hits should dominate. */
const char *reloadProgram = R"(
    li  r1, 0x4000
    li  r2, 8         ; iterations
    li  r3, 0         ; sum
    lbr b0, loop
loop:
    ld  [r1 + 0]
    add r3, r3, r7
    subi r2, r2, 1
    pbr b0, 0, nez, r2
    li  r4, 0x4100
    st  [r4 + 0]
    mov r7, r3
    halt
.data 0x4000
    .word 5
.data 0x4100
    .word 0
)";

SimResult
runWith(const char *src, unsigned dcache_bytes, Word *result,
        unsigned access_time = 6)
{
    Program p = assembler::assemble(src);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = access_time;
    cfg.mem.dcacheBytes = dcache_bytes;
    Simulator sim(cfg, p);
    const auto res = sim.run();
    if (result)
        *result = sim.dataMemory().readWord(0x4100);
    return res;
}

} // namespace

TEST(DataCacheExt, DisabledByDefault)
{
    Program p = assembler::assemble("halt");
    SimConfig cfg;
    DataMemory dm(1 << 16);
    MemorySystem mem(cfg.mem, dm);
    EXPECT_FALSE(mem.hasDcache());
}

TEST(DataCacheExt, RepeatLoadsHit)
{
    Word sum = 0;
    const auto res = runWith(reloadProgram, 256, &sum);
    EXPECT_EQ(sum, 40u);
    EXPECT_EQ(res.counter("mem.dcache_misses"), 1u);
    EXPECT_EQ(res.counter("mem.dcache_hits"), 7u);
}

TEST(DataCacheExt, HitsMakeTheLoopFaster)
{
    Word sum_off = 0;
    Word sum_on = 0;
    const auto off = runWith(reloadProgram, 0, &sum_off);
    const auto on = runWith(reloadProgram, 256, &sum_on);
    EXPECT_EQ(sum_off, sum_on);
    EXPECT_LT(on.totalCycles, off.totalCycles);
}

TEST(DataCacheExt, StoreThenLoadCoherent)
{
    const char *src = R"(
        li  r1, 0x4000
        ld  [r1 + 0]      ; warm the cache line
        mov r2, r7
        st  [r1 + 0]      ; overwrite (write-through + update)
        li  r3, 99
        mov r7, r3
        ld  [r1 + 0]      ; must see 99 (cache hit)
        li  r4, 0x4100
        st  [r4 + 0]
        mov r7, r7
        halt
    .data 0x4000
        .word 7
    .data 0x4100
        .word 0
    )";
    Word result = 0;
    const auto res = runWith(src, 256, &result);
    EXPECT_EQ(result, 99u);
    EXPECT_GE(res.counter("mem.dcache_hits"), 1u);
}

TEST(DataCacheExt, FpuAccessesBypassTheCache)
{
    const char *src = R"(
        li  r1, 0x7f00     ; FPU base
        li  r2, 0x4000
        ld  [r2 + 0]       ; 2.0
        ld  [r2 + 4]       ; 3.0
        st  [r1 + 32]      ; mul A
        mov r7, r7
        st  [r1 + 36]      ; mul B
        mov r7, r7
        ld  [r1 + 40]      ; result: must come from the FPU
        st  [r2 + 8]
        mov r7, r7
        halt
    .data 0x4000
        .float 2.0, 3.0
        .word 0
    )";
    Program p = assembler::assemble(src);
    SimConfig cfg;
    cfg.mem.dcacheBytes = 256;
    Simulator sim(cfg, p);
    sim.run();
    const Word bits = sim.dataMemory().readWord(0x4008);
    EXPECT_EQ(bits, 0x40c00000u); // 6.0f
}

TEST(DataCacheExt, BenchmarkCorrectWithDcache)
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.05);
    for (unsigned size : {64u, 512u}) {
        SimConfig cfg;
        cfg.fetch = pipeConfigFor("16-16", 64);
        cfg.mem.accessTime = 6;
        cfg.mem.dcacheBytes = size;
        Simulator sim(cfg, bench.program);
        sim.run();
        for (std::size_t i = 0; i < bench.kernels.size(); ++i) {
            std::string diag;
            EXPECT_TRUE(workloads::verifyAgainstReference(
                sim.dataMemory(), bench.kernels[i], bench.codeInfo[i],
                &diag))
                << "dcache " << size << ": " << diag;
        }
    }
}

TEST(DataCacheExt, BenchmarkFasterWithDcache)
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.05);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.mem.accessTime = 6;
    cfg.mem.dcacheBytes = 0;
    const auto off = runSimulation(cfg, bench.program);
    cfg.mem.dcacheBytes = 1024;
    const auto on = runSimulation(cfg, bench.program);
    EXPECT_LT(on.totalCycles, off.totalCycles);
    EXPECT_GT(on.counter("mem.dcache_hits"), 0u);
    // Off-chip data traffic shrinks accordingly.
    EXPECT_LT(on.counter("mem.data_requests"),
              off.counter("mem.data_requests"));
}

TEST(DataCacheExt, InOrderDeliveryAcrossHitAndMiss)
{
    // A miss followed by a hit: the hit's data must not enter the
    // LDQ before the miss's (r7 pops would otherwise swap values).
    const char *src = R"(
        li  r1, 0x4000
        ld  [r1 + 0]      ; warm word 0
        mov r2, r7
        ld  [r1 + 64]     ; miss (different line)
        ld  [r1 + 0]      ; hit, but younger
        sub r3, r7, r7    ; miss_value - hit_value = 11 - 5 = 6
        li  r4, 0x4100
        st  [r4 + 0]
        mov r7, r3
        halt
    .data 0x4000
        .word 5
        .space 60
        .word 11
    .data 0x4100
        .word 0
    )";
    Word result = 0;
    runWith(src, 256, &result);
    EXPECT_EQ(result, 6u);
}
