#include <gtest/gtest.h>

#include "common/log.hh"

#include "cache/subblock_cache.hh"

using namespace pipesim;

TEST(SubblockCacheTest, Geometry)
{
    SubblockCache c(128, 16, 4);
    EXPECT_EQ(c.subblocksPerLine(), 4u);
    EXPECT_EQ(c.subblockBase(0x17), 0x14u);
    EXPECT_EQ(c.lineBase(0x17), 0x10u);
}

TEST(SubblockCacheTest, PerSubblockValidity)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0x10);
    EXPECT_TRUE(c.linePresent(0x10));
    EXPECT_FALSE(c.subblockValid(0x10));
    c.fill(0x14, 4); // middle sub-block only
    EXPECT_FALSE(c.subblockValid(0x10));
    EXPECT_TRUE(c.subblockValid(0x14));
    EXPECT_TRUE(c.subblockValid(0x16)); // same sub-block
    EXPECT_FALSE(c.subblockValid(0x18));
}

TEST(SubblockCacheTest, ArbitraryFillPatternAllowed)
{
    // Unlike the PIPE line cache, sub-blocks may fill in any order.
    SubblockCache c(64, 16, 4);
    c.allocate(0);
    c.fill(0xc, 4);
    c.fill(0x0, 4);
    EXPECT_TRUE(c.subblockValid(0x0));
    EXPECT_TRUE(c.subblockValid(0xc));
    EXPECT_FALSE(c.subblockValid(0x4));
}

TEST(SubblockCacheTest, BytesValidSpansSubblocks)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0);
    c.fill(0, 8);
    EXPECT_TRUE(c.bytesValid(0, 8));
    EXPECT_TRUE(c.bytesValid(2, 4)); // straddles two valid sub-blocks
    EXPECT_FALSE(c.bytesValid(6, 4)); // reaches an invalid one
}

TEST(SubblockCacheTest, BytesValidAcrossLineBoundary)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0x00);
    c.fill(0x0c, 4);
    c.allocate(0x10);
    c.fill(0x10, 4);
    EXPECT_TRUE(c.bytesValid(0x0c, 8)); // last of line 0 + first of 1
}

TEST(SubblockCacheTest, AllocationClearsValidBits)
{
    SubblockCache c(32, 16, 4); // two frames
    c.allocate(0x00);
    c.fill(0x00, 16);
    c.allocate(0x40); // evicts 0x00 (same frame)
    EXPECT_FALSE(c.linePresent(0x00));
    EXPECT_FALSE(c.subblockValid(0x40));
}

TEST(SubblockCacheTest, MisalignedFillPanics)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0);
    EXPECT_THROW(c.fill(2, 4), PanicError);
}

TEST(SubblockCacheTest, FillUnallocatedPanics)
{
    SubblockCache c(64, 16, 4);
    EXPECT_THROW(c.fill(0, 4), PanicError);
}

TEST(SubblockCacheTest, FillAcrossLinePanics)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0);
    EXPECT_THROW(c.fill(0xc, 8), PanicError);
}

TEST(SubblockCacheTest, TwoByteSubblocks)
{
    // Compact-format mode uses parcel-sized sub-blocks.
    SubblockCache c(64, 8, 2);
    EXPECT_EQ(c.subblocksPerLine(), 4u);
    c.allocate(0);
    c.fill(0, 2);
    EXPECT_TRUE(c.bytesValid(0, 2));
    EXPECT_FALSE(c.bytesValid(0, 4));
}

TEST(SubblockCacheTest, InvalidateAll)
{
    SubblockCache c(64, 16, 4);
    c.allocate(0x20);
    c.fill(0x20, 16);
    c.invalidateAll();
    EXPECT_FALSE(c.linePresent(0x20));
}

TEST(SubblockCacheTest, BadGeometryRejected)
{
    EXPECT_THROW(SubblockCache(100, 16, 4), FatalError);
    EXPECT_THROW(SubblockCache(64, 16, 32), FatalError);
    EXPECT_THROW(SubblockCache(32, 64, 4), FatalError);
}

TEST(SubblockCacheTest, ColdStartNothingIsValid)
{
    // Fresh cache: no tag matches, no valid bits, and probing must
    // not disturb state (cold-start queries are pure).
    SubblockCache c(64, 16, 4);
    for (Addr a = 0; a < 64; a += 4) {
        EXPECT_FALSE(c.linePresent(a));
        EXPECT_FALSE(c.subblockValid(a));
        EXPECT_FALSE(c.bytesValid(a, 4));
    }
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(SubblockCacheTest, ValidBitHitAfterPartialLineFill)
{
    // The defining sub-block property: after a partial fill, the
    // filled sub-block hits while its line-mates still miss.
    SubblockCache c(128, 16, 4);
    c.allocate(0x20);
    c.fill(0x28, 4); // third sub-block only
    EXPECT_TRUE(c.linePresent(0x20));
    EXPECT_TRUE(c.subblockValid(0x28));
    EXPECT_TRUE(c.bytesValid(0x28, 4));
    EXPECT_TRUE(c.bytesValid(0x2a, 2)); // interior of the sub-block
    EXPECT_FALSE(c.subblockValid(0x20));
    EXPECT_FALSE(c.subblockValid(0x24));
    EXPECT_FALSE(c.subblockValid(0x2c));
    EXPECT_FALSE(c.bytesValid(0x24, 8)); // spans valid + invalid
}

TEST(SubblockCacheTest, TagReplacementMidFillDropsOldBits)
{
    SubblockCache c(32, 16, 4); // two frames: conflict at +0x20
    c.allocate(0x00);
    c.fill(0x00, 4);
    c.fill(0x08, 4); // line half-filled when the conflict arrives
    c.allocate(0x20); // same frame, new tag, mid-fill of 0x00's line
    EXPECT_FALSE(c.linePresent(0x00));
    EXPECT_TRUE(c.linePresent(0x20));
    // The old line's valid bits must not leak into the new tenant —
    // especially at the offsets that were valid before.
    EXPECT_FALSE(c.subblockValid(0x20));
    EXPECT_FALSE(c.subblockValid(0x28));
    EXPECT_FALSE(c.bytesValid(0x20, 16));
    // Filling the new tenant works from the cleared state.
    c.fill(0x24, 4);
    EXPECT_TRUE(c.subblockValid(0x24));
    EXPECT_FALSE(c.subblockValid(0x20));
    // And the evicted line stays gone even after the new fill.
    EXPECT_FALSE(c.subblockValid(0x00));
    EXPECT_FALSE(c.subblockValid(0x08));
}

TEST(SubblockCacheTest, ReallocatingTheSameLineClearsItsBits)
{
    // allocate() on a line already present is a self-eviction: the
    // tag stays but every valid bit resets (cold restart of a fill).
    SubblockCache c(64, 16, 4);
    c.allocate(0x10);
    c.fill(0x10, 8);
    EXPECT_TRUE(c.bytesValid(0x10, 8));
    c.allocate(0x10);
    EXPECT_TRUE(c.linePresent(0x10));
    EXPECT_FALSE(c.subblockValid(0x10));
    EXPECT_FALSE(c.subblockValid(0x14));
}

TEST(SubblockCacheTest, LookupAccountingSeparatesHitsAndMisses)
{
    SubblockCache c(64, 16, 4);
    c.recordLookup(false);
    c.recordLookup(false);
    c.recordLookup(true);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
}
