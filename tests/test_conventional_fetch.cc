#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "core/conventional_fetch.hh"
#include "mem/memory_system.hh"

using namespace pipesim;
using isa::Opcode;

namespace
{

struct Harness
{
    Harness(const std::string &src, FetchConfig fcfg,
            MemSystemConfig mcfg = {})
        : program(assembler::assemble(src)), dataMem(1 << 16),
          sys(mcfg, dataMem), unit(fcfg, program, sys)
    {
        dataMem.loadProgram(program);
    }

    void
    step()
    {
        unit.tick(now);
        sys.tick(now);
        ++now;
    }

    isa::FetchedInst
    pull(unsigned max_cycles = 200)
    {
        for (unsigned i = 0; i < max_cycles; ++i) {
            if (unit.instructionReady())
                return unit.take();
            step();
        }
        throw std::runtime_error("no instruction within limit");
    }

    Program program;
    DataMemory dataMem;
    MemorySystem sys;
    ConventionalFetchUnit unit;
    Cycle now = 0;
};

const char *straightLine = R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2
    sub r4, r3, r1
    nop
    nop
    halt
)";

FetchConfig
convCfg(unsigned cache = 128, unsigned line = 16)
{
    FetchConfig f;
    f.strategy = FetchStrategy::Conventional;
    f.cacheBytes = cache;
    f.lineBytes = line;
    return f;
}

} // namespace

TEST(ConventionalFetch, DeliversProgramInOrder)
{
    Harness h(straightLine, convCfg());
    const Opcode expect[] = {Opcode::Li,  Opcode::Li,  Opcode::Add,
                             Opcode::Sub, Opcode::Nop, Opcode::Nop,
                             Opcode::Halt};
    Addr pc = 0;
    for (Opcode op : expect) {
        const auto fi = h.pull();
        EXPECT_EQ(fi.inst.op, op);
        EXPECT_EQ(fi.pc, pc);
        pc += fi.inst.sizeBytes();
    }
}

TEST(ConventionalFetch, DemandMissFetchesBusRegion)
{
    MemSystemConfig mcfg;
    mcfg.accessTime = 1;
    mcfg.busWidthBytes = 8;
    Harness h(straightLine, convCfg(), mcfg);
    h.pull();
    // An 8-byte bus region covers two fixed-32 instructions.
    EXPECT_TRUE(h.unit.cache().bytesValid(0, 8));
}

TEST(ConventionalFetch, AlwaysPrefetchFillsNextInstruction)
{
    // With an 8-byte bus the demand region covers instructions 0 and
    // 4, so after referencing instruction 4 the prefetcher (not a
    // demand miss) fetches instruction 8.
    MemSystemConfig mcfg;
    mcfg.busWidthBytes = 8;
    Harness h(straightLine, convCfg(), mcfg);
    h.pull(); // @0 (demand region fills 0..7)
    h.pull(); // @4: reference queues prefetch of 8
    for (int i = 0; i < 10; ++i)
        h.step();
    StatGroup stats;
    h.unit.regStats(stats, "f");
    EXPECT_GT(stats.counterValue("f.prefetch_fetches"), 0u);
    EXPECT_TRUE(h.unit.cache().bytesValid(8, 4));
}

TEST(ConventionalFetch, PrefetchCrossesLineBoundaryAndRetags)
{
    // Single-frame cache: prefetching across the line boundary
    // retags the only frame (the always-prefetch policy does this
    // "even if this address maps into the next cache line").
    Harness h(straightLine, convCfg(16, 16));
    // Pull the four instructions of line 0; the reference to the
    // last one prefetches into the next line, evicting line 0.
    h.pull();
    h.pull();
    h.pull();
    h.pull();
    for (int i = 0; i < 10; ++i)
        h.step();
    EXPECT_TRUE(h.unit.cache().linePresent(16));
    EXPECT_FALSE(h.unit.cache().linePresent(0));
}

TEST(ConventionalFetch, SingleOutstandingRequest)
{
    // A demand miss while a prefetch is in flight must wait for the
    // prefetch to finish (Hill's model cost).  We observe it
    // indirectly: total requests never overlap, so with access time
    // T the delivery of back-to-back misses is serialised.
    MemSystemConfig mcfg;
    mcfg.accessTime = 6;
    Harness h(straightLine, convCfg(), mcfg);
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull();
    const Cycle after_first = h.now;
    h.pull();
    h.pull();
    // Two more instructions = at least one more serialised request.
    EXPECT_GE(h.now, after_first);
    EXPECT_GE(stats.counterValue("f.demand_fetches") +
                  stats.counterValue("f.prefetch_fetches"),
              2u);
}

TEST(ConventionalFetch, TakenBranchAfterDelaySlots)
{
    const char *src = R"(
        lbr  b0, target
        pbr  b0, 2, always
        nop
        nop
        add r1, r1, r1
    target:
        halt
    )";
    Harness h(src, convCfg());
    EXPECT_EQ(h.pull().inst.op, Opcode::Lbr);
    EXPECT_EQ(h.pull().inst.op, Opcode::Pbr);
    h.step();
    h.unit.branchResolved(true, *h.program.symbol("target"));
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    const auto fi = h.pull();
    EXPECT_EQ(fi.inst.op, Opcode::Halt);
    EXPECT_EQ(fi.pc, *h.program.symbol("target"));
}

TEST(ConventionalFetch, BlocksAtUnresolvedBranch)
{
    const char *src = R"(
        pbr b0, 0, always
        nop
        halt
    )";
    Harness h(src, convCfg());
    h.pull();
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(h.unit.instructionReady());
        h.step();
    }
    h.unit.branchResolved(true, 4);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
}

TEST(ConventionalFetch, HitDeliversEveryCycleOnWarmLoop)
{
    const char *src = R"(
        lbr b0, loop
    loop:
        add r1, r1, r1
        add r2, r2, r2
        pbr b0, 1, always
        nop
    )";
    Harness h(src, convCfg());
    h.pull(); // lbr
    auto iteration = [&]() {
        h.pull();
        h.pull();
        h.pull(); // pbr
        h.step();
        h.unit.branchResolved(true, *h.program.symbol("loop"));
        h.pull(); // delay slot
    };
    iteration(); // cold
    const auto misses = h.unit.cache().misses();
    iteration(); // warm: no new misses
    iteration();
    EXPECT_EQ(h.unit.cache().misses(), misses);
}

TEST(ConventionalFetch, MissStatsCountDistinctStalls)
{
    MemSystemConfig mcfg;
    mcfg.accessTime = 6;
    Harness h(straightLine, convCfg(), mcfg);
    h.pull();
    // One demand miss recorded for the first instruction even though
    // the stall lasted several cycles.
    EXPECT_EQ(h.unit.cache().misses(), 1u);
}

TEST(ConventionalFetch, TakeWithoutReadyPanics)
{
    Harness h(straightLine, convCfg());
    EXPECT_THROW(h.unit.take(), PanicError);
}
