#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/table.hh"

using namespace pipesim;

namespace
{

Table
sampleTable()
{
    Table t({"size", "conv", "pipe"});
    t.beginRow();
    t.cell(16u);
    t.cell(std::uint64_t{100});
    t.cell(std::uint64_t{80});
    t.beginRow();
    t.cell(32u);
    t.cell("-");
    t.cell(2.5, 1);
    return t;
}

} // namespace

TEST(TableTest, DimensionsAndAccess)
{
    Table t = sampleTable();
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.at(0, 0), "16");
    EXPECT_EQ(t.at(0, 2), "80");
    EXPECT_EQ(t.at(1, 1), "-");
    EXPECT_EQ(t.at(1, 2), "2.5");
}

TEST(TableTest, TextRenderingAligned)
{
    const std::string text = sampleTable().toText();
    EXPECT_NE(text.find("size"), std::string::npos);
    EXPECT_NE(text.find("conv"), std::string::npos);
    EXPECT_NE(text.find("100"), std::string::npos);
    // Header separator rule exists.
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, MarkdownRendering)
{
    const std::string md = sampleTable().toMarkdown();
    EXPECT_NE(md.find("| size | conv | pipe |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 16 | 100 | 80 |"), std::string::npos);
}

TEST(TableTest, CsvRendering)
{
    const std::string csv = sampleTable().toCsv();
    EXPECT_NE(csv.find("size,conv,pipe"), std::string::npos);
    EXPECT_NE(csv.find("16,100,80"), std::string::npos);
}

TEST(TableTest, CsvQuotesCommasAndQuotes)
{
    Table t({"a"});
    t.beginRow();
    t.cell("x,y");
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);

    Table t2({"a"});
    t2.beginRow();
    t2.cell("say \"hi\"");
    EXPECT_NE(t2.toCsv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CellBeforeBeginRowPanics)
{
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), PanicError);
}

TEST(TableTest, TooManyCellsPanics)
{
    Table t({"a"});
    t.beginRow();
    t.cell("1");
    EXPECT_THROW(t.cell("2"), PanicError);
}

TEST(TableTest, ShortRowDetectedAtNextBeginRow)
{
    Table t({"a", "b"});
    t.beginRow();
    t.cell("only-one");
    EXPECT_THROW(t.beginRow(), PanicError);
}

TEST(TableTest, EmptyHeadersRejected)
{
    EXPECT_THROW(Table({}), PanicError);
}

TEST(TableTest, NegativeAndDoubleCells)
{
    Table t({"v"});
    t.beginRow();
    t.cell(std::int64_t{-5});
    EXPECT_EQ(t.at(0, 0), "-5");
    Table t2({"v"});
    t2.beginRow();
    t2.cell(3.14159, 3);
    EXPECT_EQ(t2.at(0, 0), "3.142");
}

TEST(TableTest, CsvBlanksSentinelsWithNoteColumn)
{
    // sampleTable row 2 holds a "-" (not-run) cell: the CSV must not
    // carry the sentinel into the numeric column; instead the field
    // is empty and a trailing quoted note column explains it.
    const std::string csv = sampleTable().toCsv();
    EXPECT_NE(csv.find("size,conv,pipe,note"), std::string::npos);
    EXPECT_NE(csv.find("16,100,80,\n"), std::string::npos);
    EXPECT_NE(csv.find("32,,2.5,\"conv=no data\"\n"),
              std::string::npos);
    EXPECT_EQ(csv.find(",-,"), std::string::npos);
}

TEST(TableTest, CsvErrSentinelNamesEveryColumn)
{
    Table t({"size", "conv", "pipe"});
    t.beginRow();
    t.cell(64u);
    t.cell("ERR");
    t.cell("-");
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("64,,,\"conv=ERR; pipe=no data\""),
              std::string::npos);
}

TEST(TableTest, CsvWithoutSentinelsHasNoNoteColumn)
{
    Table t({"a", "b"});
    t.beginRow();
    t.cell(1u);
    t.cell(2u);
    const std::string csv = t.toCsv();
    EXPECT_EQ(csv.find("note"), std::string::npos);
    EXPECT_NE(csv.find("a,b\n1,2\n"), std::string::npos);
}
