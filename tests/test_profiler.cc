/**
 * Host-side observability tests: the hierarchical wall-clock profiler
 * (obs/profiler.hh), the metrics registry (obs/metrics.hh) and their
 * exports (--stats-json "host" section, pipesim-profile documents,
 * the Chrome-trace host lane).
 *
 * The profiler and registry are process-wide singletons, so every
 * fixture resets them; tests here must not assume a pristine process.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/stats_export.hh"
#include "obs/trace_export.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

/** Spin for roughly @p ns of wall-clock (coarse, but monotone). */
void
busyWait(std::uint64_t ns)
{
    const std::uint64_t start = obs::profileNowNs();
    while (obs::profileNowNs() - start < ns) {
    }
}

class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Profiler::instance().disable();
        obs::Profiler::instance().reset();
    }

    void
    TearDown() override
    {
        obs::Profiler::instance().disable();
        obs::Profiler::instance().reset();
    }

    const obs::Profiler::Phase *
    phaseByPath(const std::vector<obs::Profiler::Phase> &phases,
                const std::string &path)
    {
        for (const auto &p : phases)
            if (p.path == path)
                return &p;
        return nullptr;
    }
};

TEST_F(ProfilerTest, DisabledByDefaultAndScopedPhaseIsNoOp)
{
    ASSERT_FALSE(obs::Profiler::enabled());
    {
        obs::ScopedPhase p("never");
        obs::ScopedPhase q("never/child", obs::Scope::Coarse);
    }
    EXPECT_TRUE(obs::Profiler::instance().snapshot().empty());
    EXPECT_TRUE(obs::Profiler::instance().spans().empty());
    EXPECT_EQ(obs::Profiler::instance().wallNs(), 0u);
}

TEST_F(ProfilerTest, CachedPhaseOnDisabledProfilerIsNoOp)
{
    obs::CachedPhase c("never");
    c.add(123456);
    EXPECT_TRUE(obs::Profiler::instance().snapshot().empty());
}

TEST_F(ProfilerTest, NestedPhasesBuildSlashPaths)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase outer("outer");
        {
            obs::ScopedPhase inner("inner");
            busyWait(100'000);
        }
        {
            obs::ScopedPhase inner("inner");
            busyWait(100'000);
        }
    }
    const auto phases = obs::Profiler::instance().snapshot();
    const auto *outer = phaseByPath(phases, "outer");
    const auto *inner = phaseByPath(phases, "outer/inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 2u);
    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
}

TEST_F(ProfilerTest, ChildTimeSumsIntoParentWithinTolerance)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase outer("outer");
        {
            obs::ScopedPhase a("a");
            busyWait(2'000'000);
        }
        {
            obs::ScopedPhase b("b");
            busyWait(2'000'000);
        }
    }
    const auto phases = obs::Profiler::instance().snapshot();
    const auto *outer = phaseByPath(phases, "outer");
    const auto *a = phaseByPath(phases, "outer/a");
    const auto *b = phaseByPath(phases, "outer/b");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Children nest strictly inside the parent, so their sum can
    // never exceed it; the parent adds only scope-entry overhead, so
    // the children must dominate (generous floor for busy machines).
    EXPECT_LE(a->ns + b->ns, outer->ns);
    EXPECT_GE(double(a->ns + b->ns), 0.5 * double(outer->ns));
}

TEST_F(ProfilerTest, RootScopeAttachesAtThreadRoot)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase outer("outer");
        obs::ScopedPhase point("point", obs::Scope::Root, "label");
        busyWait(10'000);
    }
    const auto phases = obs::Profiler::instance().snapshot();
    EXPECT_NE(phaseByPath(phases, "point"), nullptr);
    EXPECT_EQ(phaseByPath(phases, "outer/point"), nullptr);
}

TEST_F(ProfilerTest, MergesIdenticalPathsAcrossThreads)
{
    obs::Profiler::instance().enable();
    auto work = [] {
        obs::ScopedPhase p("worker", obs::Scope::Root);
        busyWait(100'000);
    };
    std::thread t1(work), t2(work);
    t1.join();
    t2.join();
    work(); // and once on this thread

    const auto phases = obs::Profiler::instance().snapshot();
    const auto *merged = phaseByPath(phases, "worker");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->count, 3u);

    // Spans stay per-thread (three distinct tids for the host lane).
    const auto spans = obs::Profiler::instance().spans();
    ASSERT_EQ(spans.size(), 3u);
    std::set<std::uint64_t> tids;
    for (const auto &s : spans)
        tids.insert(s.tid);
    EXPECT_EQ(tids.size(), 3u);
}

TEST_F(ProfilerTest, CoarseScopeRecordsSpansWithLabels)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase p("phase", obs::Scope::Coarse, "the-label");
        busyWait(10'000);
    }
    {
        obs::ScopedPhase p("phase", obs::Scope::Coarse);
        busyWait(10'000);
    }
    const auto spans = obs::Profiler::instance().spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "the-label");
    EXPECT_EQ(spans[1].name, "phase");
    EXPECT_GT(spans[1].startNs, spans[0].startNs);
    // Aggregation merges under the literal name, label or not.
    const auto phases = obs::Profiler::instance().snapshot();
    const auto *merged = phaseByPath(phases, "phase");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->count, 2u);
}

TEST_F(ProfilerTest, CoverageCountsTopLevelPhases)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase p("top");
        busyWait(5'000'000);
    }
    // The busy-wait dominates this test body, so top-level coverage
    // must be substantial (not ~0, not above 1).
    const double c = obs::Profiler::instance().coverage();
    EXPECT_GT(c, 0.2);
    EXPECT_LE(c, 1.0);
}

TEST_F(ProfilerTest, ResetDropsEverything)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase p("gone", obs::Scope::Coarse);
    }
    ASSERT_FALSE(obs::Profiler::instance().snapshot().empty());
    obs::Profiler::instance().reset();
    EXPECT_TRUE(obs::Profiler::instance().snapshot().empty());
    EXPECT_TRUE(obs::Profiler::instance().spans().empty());
}

TEST_F(ProfilerTest, ReportNamesEveryPhase)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase outer("alpha");
        obs::ScopedPhase inner("beta");
        busyWait(10'000);
    }
    const std::string report = obs::Profiler::instance().report();
    EXPECT_NE(report.find("alpha"), std::string::npos);
    EXPECT_NE(report.find("beta"), std::string::npos);
    EXPECT_NE(report.find("% of wall"), std::string::npos);
}

TEST_F(ProfilerTest, ProfileJsonDocumentValidates)
{
    obs::Profiler::instance().enable();
    {
        obs::ScopedPhase p("doc");
        busyWait(10'000);
    }
    std::ostringstream os;
    obs::writeProfileJson(os);
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    ASSERT_NE(doc->find("schema"), nullptr);
    EXPECT_EQ(doc->find("schema")->string, "pipesim-profile");
    EXPECT_EQ(doc->find("schema_version")->number, 1.0);
    ASSERT_NE(doc->find("host"), nullptr);
    ASSERT_NE(doc->find("git_rev"), nullptr);
    const auto *profile = doc->find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(profile->find("enabled")->boolean, true);
    const auto *phases = profile->find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_TRUE(phases->isArray());
    ASSERT_EQ(phases->array.size(), 1u);
    EXPECT_EQ(phases->array[0].find("path")->string, "doc");
    EXPECT_NE(doc->find("metrics"), nullptr);
    EXPECT_NE(doc->find("histograms"), nullptr);
}

TEST_F(ProfilerTest, StatsJsonOmitsHostSectionWhenDetached)
{
    SimResult r;
    r.totalCycles = 10;
    r.instructions = 5;
    std::ostringstream os;
    obs::writeStatsJson(os, r, nullptr, "label");
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("host"), nullptr);
}

TEST_F(ProfilerTest, StatsJsonCarriesHostSectionWhenProfiling)
{
    obs::Profiler::instance().enable();
    obs::MetricsRegistry::instance().counter("test.stats_json").add(7);
    {
        obs::ScopedPhase p("export");
        busyWait(10'000);
    }
    SimResult r;
    r.totalCycles = 10;
    r.instructions = 5;
    std::ostringstream os;
    obs::writeStatsJson(os, r, nullptr, "label");
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const auto *host = doc->find("host");
    ASSERT_NE(host, nullptr);
    ASSERT_NE(host->find("profile"), nullptr);
    const auto *metrics = host->find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->find("test.stats_json"), nullptr);
    EXPECT_EQ(metrics->find("test.stats_json")->number, 7.0);
}

TEST_F(ProfilerTest, HostSectionCarriesProcessGauges)
{
    obs::Profiler::instance().enable();
    SimResult r;
    r.totalCycles = 10;
    r.instructions = 5;
    std::ostringstream os;
    obs::writeStatsJson(os, r, nullptr, "label");
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const auto *host = doc->find("host");
    ASSERT_NE(host, nullptr);
    const auto *metrics = host->find("metrics");
    ASSERT_NE(metrics, nullptr);
    // The process gauges are refreshed on every export
    // (obs::updateProcessGauges): uptime counts from static init,
    // max RSS comes from getrusage and is always at least a page.
    const auto *uptime = metrics->find("process.uptime_seconds");
    ASSERT_NE(uptime, nullptr);
    EXPECT_GE(uptime->number, 0.0);
    const auto *rss = metrics->find("process.max_rss_bytes");
    ASSERT_NE(rss, nullptr);
    EXPECT_GT(rss->number, 4096.0);
}

TEST_F(ProfilerTest, ChromeTraceGrowsHostLaneWhenProfiling)
{
    obs::Profiler::instance().enable();

    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const auto bench = workloads::buildLivermoreBenchmark(0.02);

    Simulator sim(cfg, bench.program);
    obs::ChromeTraceWriter trace;
    trace.attach(sim.probes());
    sim.run();
    trace.detach();

    std::ostringstream os;
    trace.write(os);
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    unsigned hostSpans = 0, hostMeta = 0;
    for (const auto &e : events->array) {
        if (e.find("pid") == nullptr || e.find("pid")->number != 1.0)
            continue;
        const std::string ph = e.find("ph")->string;
        if (ph == "X")
            ++hostSpans;
        if (ph == "M")
            ++hostMeta;
    }
    // At least the sim.run coarse span, plus process/thread metadata.
    EXPECT_GE(hostSpans, 1u);
    EXPECT_GE(hostMeta, 2u);
}

TEST_F(ProfilerTest, SimulatorPhaseBreakdownCoversTheRun)
{
    obs::Profiler::instance().enable();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const auto bench = workloads::buildLivermoreBenchmark(0.02);
    runSimulation(cfg, bench.program);

    const auto phases = obs::Profiler::instance().snapshot();
    const auto *run = phaseByPath(phases, "sim.run");
    ASSERT_NE(run, nullptr);
    std::uint64_t childSum = 0;
    for (const char *name : {"fetch", "mem", "pipeline", "other"}) {
        const auto *p =
            phaseByPath(phases, std::string("sim.run/") + name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_GT(p->count, 0u) << name;
        childSum += p->ns;
    }
    // Chained timestamps: the four phases partition the loop, so they
    // must explain nearly all of sim.run (>= 95% acceptance bar).
    EXPECT_LE(childSum, run->ns);
    EXPECT_GE(double(childSum), 0.95 * double(run->ns));
}

class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::MetricsRegistry::instance().resetAll();
    }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    auto &c = obs::MetricsRegistry::instance().counter("test.counter");
    c.reset();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, GaugeTracksPeak)
{
    auto &g = obs::MetricsRegistry::instance().gauge("test.gauge");
    g.reset();
    g.set(5);
    g.set(9);
    g.set(2);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.max(), 9);
}

TEST_F(MetricsTest, RegistryReturnsSameObjectPerName)
{
    auto &reg = obs::MetricsRegistry::instance();
    EXPECT_EQ(&reg.counter("test.same"), &reg.counter("test.same"));
    EXPECT_EQ(&reg.histogram("test.same_h"),
              &reg.histogram("test.same_h"));
}

TEST_F(MetricsTest, NameKindConflictPanics)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("test.kind_conflict");
    EXPECT_THROW(reg.gauge("test.kind_conflict"), PanicError);
    EXPECT_THROW(reg.histogram("test.kind_conflict"), PanicError);
}

TEST_F(MetricsTest, LogHistogramBucketBoundariesAreFixed)
{
    using H = obs::LogHistogram;
    EXPECT_EQ(H::bucketLowerBound(0), 0u);
    EXPECT_EQ(H::bucketLowerBound(1), 2u);
    EXPECT_EQ(H::bucketLowerBound(2), 4u);
    EXPECT_EQ(H::bucketLowerBound(10), 1024u);

    EXPECT_EQ(H::bucketIndex(0), 0u);
    EXPECT_EQ(H::bucketIndex(1), 0u);
    EXPECT_EQ(H::bucketIndex(2), 1u);
    EXPECT_EQ(H::bucketIndex(3), 1u);
    EXPECT_EQ(H::bucketIndex(4), 2u);
    EXPECT_EQ(H::bucketIndex(1023), 9u);
    EXPECT_EQ(H::bucketIndex(1024), 10u);
    EXPECT_EQ(H::bucketIndex(~std::uint64_t(0)), 63u);

    // Every bucket's lower bound indexes into itself (stability).
    for (unsigned i = 0; i < H::numBuckets; ++i)
        EXPECT_EQ(H::bucketIndex(H::bucketLowerBound(i)), i) << i;
}

TEST_F(MetricsTest, LogHistogramStats)
{
    auto &h = obs::MetricsRegistry::instance().histogram("test.hist");
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    for (std::uint64_t v : {1, 2, 4, 8, 1000})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1015u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1015.0 / 5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    // Quantiles are monotone and bounded by the observed extremes.
    EXPECT_LE(h.quantile(0.50), h.quantile(0.90));
    EXPECT_LE(h.quantile(0.90), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.max());
}

TEST_F(MetricsTest, WriteJsonExportsSortedKeysAndGaugePeaks)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("test.json_c").add(3);
    reg.gauge("test.json_g").set(5);
    reg.gauge("test.json_g").set(1);
    reg.histogram("test.json_h").sample(100);

    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    reg.writeJson(w);
    w.endObject();
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const auto *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("test.json_c")->number, 3.0);
    EXPECT_EQ(metrics->find("test.json_g")->number, 1.0);
    EXPECT_EQ(metrics->find("test.json_g_peak")->number, 5.0);
    const auto *hist = doc->find("histograms");
    ASSERT_NE(hist, nullptr);
    const auto *h = hist->find("test.json_h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->number, 1.0);
    EXPECT_EQ(h->find("min")->number, 100.0);
    EXPECT_EQ(h->find("max")->number, 100.0);
    ASSERT_NE(h->find("p50"), nullptr);
    ASSERT_NE(h->find("p90"), nullptr);
    ASSERT_NE(h->find("p99"), nullptr);
}

} // namespace
