/**
 * The trace container format: round-trips, checksum verification,
 * and — most importantly — that no corruption of any single byte,
 * truncation, or garbage file can do anything other than raise a
 * FatalError with a diagnostic (never crash, never hang, never decode
 * silently wrong).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/sha256.hh"
#include "replay/capture.hh"
#include "replay/trace_format.hh"
#include "sim/config.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;
using namespace pipesim::replay;

namespace
{

Trace
sampleTrace(std::size_t records = 10)
{
    Trace t;
    t.meta.entry = 0x1000;
    t.meta.programSha256 = std::string(64, 'a');
    t.meta.provenance = "unit test";
    Addr pc = 0x1000;
    for (std::size_t i = 0; i < records; ++i) {
        TraceRecord r;
        r.pc = pc;
        if (i % 3 == 1) {
            r.hasMemAddr = true;
            r.memIsStore = (i % 6 == 4);
            r.memAddr = 0x8000 + Addr(i) * 4;
        }
        if (i % 5 == 2) {
            r.isPbr = true;
            r.branchTaken = (i % 2 == 0);
            r.branchTarget = 0x1000 + Addr(i % 4) * 2;
        }
        t.records.push_back(r);
        // Mix of forward and backward moves exercises the zig-zag
        // delta coding.
        pc = (i % 4 == 3) ? pc - 6 : pc + 4;
    }
    return t;
}

} // namespace

TEST(Sha256Test, KnownVectors)
{
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256Hex("", 0),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    const std::string abc = "abc";
    EXPECT_EQ(sha256Hex(abc.data(), abc.size()),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    const std::string two = "abcdbcdecdefdefgefghfghighijhijk"
                            "ijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(sha256Hex(two.data(), two.size()),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(TraceFormatTest, EncodeDecodeRoundTrip)
{
    Trace t = sampleTrace(4500); // spans two chunks
    const std::vector<std::uint8_t> bytes = encodeTrace(t);
    EXPECT_FALSE(t.sha256.empty());
    const Trace back = decodeTrace(bytes, "test");
    EXPECT_EQ(back.meta.entry, t.meta.entry);
    EXPECT_EQ(back.meta.programSha256, t.meta.programSha256);
    EXPECT_EQ(back.meta.provenance, t.meta.provenance);
    ASSERT_EQ(back.records.size(), t.records.size());
    EXPECT_EQ(back.records, t.records);
    EXPECT_EQ(back.sha256, t.sha256);
}

TEST(TraceFormatTest, EmptyTraceRoundTrips)
{
    Trace t;
    t.meta.programSha256 = std::string(64, 'b');
    const auto bytes = encodeTrace(t);
    const Trace back = decodeTrace(bytes, "empty");
    EXPECT_TRUE(back.records.empty());
}

TEST(TraceFormatTest, FileRoundTripWithChecksum)
{
    const std::string path = "trace_format_roundtrip.pipetrc";
    Trace t = sampleTrace(100);
    writeTrace(t, path);
    const Trace back = readTrace(path);
    EXPECT_EQ(back.records, t.records);
    EXPECT_EQ(back.sha256, t.sha256);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, DescribeNamesTheEssentials)
{
    Trace t = sampleTrace(50);
    encodeTrace(t);
    const std::string d = describeTrace(t);
    EXPECT_NE(d.find("50"), std::string::npos);
    EXPECT_NE(d.find(t.meta.provenance), std::string::npos);
    EXPECT_NE(d.find(t.sha256), std::string::npos);
}

TEST(TraceFormatTest, CapturedLivermoreTraceRoundTrips)
{
    const auto bench = workloads::buildLivermoreBenchmark(0.02);
    Trace t = captureTrace(SimConfig{}, bench.program, "roundtrip");
    ASSERT_GT(t.records.size(), 1000u);
    const auto bytes = encodeTrace(t);
    const Trace back = decodeTrace(bytes, "livermore");
    EXPECT_EQ(back.records, t.records);
    EXPECT_EQ(back.meta.programSha256, programSha256(bench.program));
}

TEST(TraceCorruptionTest, EveryTruncationIsFatal)
{
    Trace t = sampleTrace(20);
    const auto bytes = encodeTrace(t);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + len);
        EXPECT_THROW(decodeTrace(cut, "truncated"), FatalError)
            << "truncated to " << len << " of " << bytes.size();
    }
}

TEST(TraceCorruptionTest, EverySingleByteFlipIsFatal)
{
    // The header CRC covers the metadata and each chunk CRC covers
    // its payload, so *no* single-byte corruption may decode: every
    // flip must raise FatalError — never a crash, hang, or silently
    // wrong record stream.
    Trace t = sampleTrace(20);
    const auto bytes = encodeTrace(t);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (const std::uint8_t flip :
             {std::uint8_t(0xff), std::uint8_t(0x01)}) {
            std::vector<std::uint8_t> bad = bytes;
            bad[i] ^= flip;
            EXPECT_THROW(decodeTrace(bad, "flipped"), FatalError)
                << "byte " << i << " xor 0x" << std::hex << unsigned(flip);
        }
    }
}

TEST(TraceCorruptionTest, GarbageFilesAreFatal)
{
    const std::vector<std::uint8_t> empty;
    EXPECT_THROW(decodeTrace(empty, "empty"), FatalError);

    std::vector<std::uint8_t> noise(256);
    for (std::size_t i = 0; i < noise.size(); ++i)
        noise[i] = std::uint8_t(i * 37 + 11);
    EXPECT_THROW(decodeTrace(noise, "noise"), FatalError);

    // The right magic but nothing else.
    std::vector<std::uint8_t> magicOnly = {'P', 'I', 'P', 'E',
                                           'T', 'R', 'C', '\0'};
    EXPECT_THROW(decodeTrace(magicOnly, "magic-only"), FatalError);
}

TEST(TraceCorruptionTest, WrongVersionIsFatal)
{
    Trace t = sampleTrace(5);
    auto bytes = encodeTrace(t);
    bytes[8] = 0x7f; // version field follows the 8-byte magic
    EXPECT_THROW(decodeTrace(bytes, "version"), FatalError);
}

TEST(TraceCorruptionTest, TrailingGarbageIsFatal)
{
    Trace t = sampleTrace(5);
    auto bytes = encodeTrace(t);
    bytes.push_back(0x42);
    EXPECT_THROW(decodeTrace(bytes, "trailing"), FatalError);
}

TEST(TraceCorruptionTest, MissingFileIsFatal)
{
    EXPECT_THROW(readTrace("no/such/trace.pipetrc"), FatalError);
}

TEST(TraceCorruptionTest, DiagnosticNamesTheFile)
{
    std::vector<std::uint8_t> noise(64, 0xee);
    try {
        decodeTrace(noise, "my-trace-name");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("my-trace-name"),
                  std::string::npos);
    }
}

TEST(TraceFormatTest, ProgramHashDistinguishesPrograms)
{
    const auto a = workloads::buildLivermoreBenchmark(0.02);
    const auto b = workloads::buildLivermoreBenchmark(0.04);
    EXPECT_NE(programSha256(a.program), programSha256(b.program));
    EXPECT_EQ(programSha256(a.program), programSha256(a.program));
    EXPECT_EQ(programSha256(a.program).size(), 64u);
}
